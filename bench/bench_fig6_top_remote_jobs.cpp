// Figure 6: the top-40 jobs with only *remote* matched transfers whose
// transfer time exceeds 10% of queuing time.
//
// Paper observations: compared to the local cases of Fig. 5, remote
// jobs show more stable transfer-time percentages and much shorter
// extreme queuing times — evidence that strictly following the
// data-locality principle does not always win (§5.3).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Fig. 6 - top 40 remote-transfer jobs, >10% of queue in "
                "transfer",
                "remote transfer-time % is more stable and extreme queues "
                "are shorter than the local outliers of Fig. 5");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const auto rows = analysis::build_breakdown(ctx.result.store, ctx.tri.rm1);
  const auto local = analysis::top_by_queuing(
      rows, core::LocalityClass::kAllLocal, 0.10, 40);
  const auto remote = analysis::top_by_queuing(
      rows, core::LocalityClass::kAllRemote, 0.10, 40);

  util::Table table({"Job (pandaid)", "Status", "Queue time",
                     "Transfer time", "Transfer %", "Bytes", "#xfers"});
  for (std::size_t c = 2; c <= 6; ++c) table.set_align(c, util::Align::kRight);
  for (const auto& row : remote) {
    table.add_row({std::to_string(row.pandaid),
                   row.job_failed ? "F" : "D",
                   util::format_duration(row.queuing_time),
                   util::format_duration(row.transfer_time_in_queue),
                   util::format_percent(row.queue_fraction),
                   util::format_bytes(
                       static_cast<double>(row.transferred_bytes)),
                   std::to_string(row.transfer_count)});
  }
  table.print(std::cout);

  // Cross-figure comparison the paper draws.
  util::OnlineStats local_fraction;
  util::OnlineStats remote_fraction;
  util::SimDuration local_max_queue = 0;
  util::SimDuration remote_max_queue = 0;
  for (const auto& row : local) {
    local_fraction.add(row.queue_fraction);
    local_max_queue = std::max(local_max_queue, row.queuing_time);
  }
  for (const auto& row : remote) {
    remote_fraction.add(row.queue_fraction);
    remote_max_queue = std::max(remote_max_queue, row.queuing_time);
  }
  std::cout << "\nSelected " << remote.size() << " remote jobs (paper: 40)\n";
  std::cout << "Transfer-% spread (stddev): local "
            << util::format_percent(local_fraction.stddev())
            << " vs remote " << util::format_percent(remote_fraction.stddev())
            << "  (paper: remote more stable)\n";
  std::cout << "Worst queuing time: local "
            << util::format_duration(local_max_queue) << " vs remote "
            << util::format_duration(remote_max_queue)
            << "  (paper: local outliers much longer)\n";
  return 0;
}
