// Figure 3: site-to-site transfer-volume heatmap over a long window.
//
// Paper (92 days, 05-07/2025): 957.98 PB total, 737.85 PB local
// (diagonal), per-pair mean 77.75 TB vs geometric mean 1.11 TB, outlier
// cells above 30 PB at T0/T1 diagonals, and an "unknown" pseudo-site
// absorbing transfers with unidentified endpoints (42.4 PB CERN->unknown).
#include <fstream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner(
      "Fig. 3 - file-transfer pattern among computing sites",
      "957.98 PB total, 77% local; mean 77.75 TB vs geomean 1.11 TB per "
      "pair; >30 PB diagonal outliers; CERN->unknown outlier");

  // The heatmap uses the longer, heavier campaign.
  scenario::ScenarioConfig config = scenario::ScenarioConfig::heatmap_campaign();
  config.seed = bench::kDefaultSeed;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  const auto result = scenario::run_campaign(config);

  const analysis::TransferHeatmap heatmap(result.store, result.topology);
  const auto s = heatmap.summary();

  std::cout << "Observation window: " << config.days << " days, "
            << s.active_sites << " active sites (incl. the 'unknown' "
            << "pseudo-site)\n\n";

  util::Table summary({"Quantity", "Measured", "Paper (92d, full ATLAS)"});
  summary.set_align(1, util::Align::kRight);
  summary.set_align(2, util::Align::kRight);
  summary.add_row({"Total transferred volume",
                   util::format_bytes(s.total_bytes), "957.98 PB"});
  summary.add_row({"Local (diagonal) volume",
                   util::format_bytes(s.local_bytes), "737.85 PB"});
  summary.add_row({"Local fraction", util::format_percent(s.local_fraction()),
                   "77.0%"});
  summary.add_row({"Mean per site pair",
                   util::format_bytes(s.mean_pair_bytes), "77.75 TB"});
  summary.add_row({"Geometric mean (nonzero pairs)",
                   util::format_bytes(s.geomean_pair_bytes), "1.11 TB"});
  summary.add_row({"Mean / geomean (imbalance)",
                   util::format_fixed(s.mean_pair_bytes /
                                          std::max(s.geomean_pair_bytes, 1.0),
                                      1),
                   "70.0"});
  summary.add_row({"Volume with unknown endpoint",
                   util::format_bytes(s.unknown_bytes), "> 42.4 PB"});
  summary.print(std::cout);

  std::cout << "\nTop 10 cells (paper's outliers are T0/T1 diagonals plus "
               "CERN->unknown):\n";
  util::Table top({"Rank", "Source", "Destination", "Volume", "Kind"});
  top.set_align(3, util::Align::kRight);
  int rank = 1;
  for (const auto& cell : heatmap.top_cells(10)) {
    top.add_row({std::to_string(rank++), cell.src_name, cell.dst_name,
                 util::format_bytes(cell.bytes),
                 cell.local ? "local (diagonal)" : "remote"});
  }
  top.print(std::cout);

  std::ofstream csv("fig3_heatmap.csv");
  if (csv) {
    heatmap.write_csv(csv);
    std::cout << "\nFull matrix written to fig3_heatmap.csv\n";
  }
  std::cout << "\n" << heatmap.to_ascii(40) << "\n";
  return 0;
}
