// Figure 10 case study: a successful job whose local transfers dominate
// its queuing time and run back-to-back rather than in parallel.
//
// Paper: pandaid 6583770648 spent 83% of queuing (328 s) on three
// sequential local transfers of 2.1/4.4/4.5 GB with a 17.7x throughput
// spread — "clear evidence of bandwidth underutilization".
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Fig. 10 - successful job with dominant sequential local "
                "staging",
                "83% of queuing in transfer; 3 sequential transfers; "
                "17.7x throughput spread");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const analysis::CaseStudyExtractor extractor(ctx.result.store, ctx.tri);
  const auto cs = extractor.sequential_staging_case();
  if (!cs) {
    std::cout << "No matching case in this campaign (try another seed).\n";
    return 0;
  }

  std::cout << analysis::render_timeline(ctx.result.store, cs->match)
            << "\n";
  std::cout << analysis::render_transfer_table(ctx.result.store,
                                               ctx.result.topology,
                                               cs->match);

  // Sequentiality: do any two matched transfers overlap in time?
  const auto& transfers = ctx.result.store.transfers();
  bool overlapping = false;
  const auto& idx = cs->match.transfer_indices;
  for (std::size_t a = 0; a < idx.size(); ++a) {
    for (std::size_t b = a + 1; b < idx.size(); ++b) {
      const auto& x = transfers[idx[a]];
      const auto& y = transfers[idx[b]];
      if (x.started_at < y.finished_at && y.started_at < x.finished_at) {
        overlapping = true;
      }
    }
  }

  std::cout << "\nMeasured vs paper:\n";
  std::cout << "  matched by: " << core::method_name(cs->method)
            << " (paper: exact)\n";
  std::cout << "  transfer share of queuing: "
            << util::format_percent(cs->metrics.queue_fraction())
            << " (paper 83%)\n";
  std::cout << "  transfer time: "
            << util::format_duration(cs->metrics.transfer_time_in_queue)
            << " (paper 328 s)\n";
  std::cout << "  throughput spread across transfers: x"
            << util::format_fixed(cs->throughput_spread, 1)
            << " (paper x17.7)\n";
  std::cout << "  transfers sequential (no overlap): "
            << (overlapping ? "NO - overlapped" : "YES") << "\n";
  return 0;
}
