// Performance microbenchmarks (google-benchmark) for the library's hot
// paths: index construction, per-method matching (serial and parallel),
// metrics, redundancy scanning and the simulation itself.
//
// Motivated by the paper's §5.5: metadata volume "imposes the need for
// efficient computing for scalability ... such as parallelization".
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pandarus.hpp"

namespace {

using namespace pandarus;

/// Console output plus a machine-readable record per run, written to
/// BENCH_perf.json at exit (override the path with PANDARUS_BENCH_JSON)
/// so CI can archive and diff wall times and matched-job counts.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      bench::BenchRecord rec;
      rec.name = run.benchmark_name();
      if (run.iterations > 0) {
        rec.wall_ms = run.real_accumulated_time /
                      static_cast<double>(run.iterations) * 1e3;
      }
      for (const auto& [name, counter] : run.counters) {
        if (name == "matched_jobs") {
          rec.matched_jobs = counter.value;
        } else {
          rec.counters.emplace_back(name, counter.value);
        }
      }
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::vector<bench::BenchRecord>& records() const {
    return records_;
  }

 private:
  std::vector<bench::BenchRecord> records_;
};

const scenario::ScenarioResult& snapshot() {
  static const scenario::ScenarioResult result = [] {
    scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
    config.days = 1.0;
    config.seed = 7;
    return scenario::run_campaign(config);
  }();
  return result;
}

void BM_MatcherIndexBuild(benchmark::State& state) {
  const auto& store = snapshot().store;
  for (auto _ : state) {
    core::Matcher matcher(store);
    benchmark::DoNotOptimize(&matcher);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(store.transfers().size()));
}
BENCHMARK(BM_MatcherIndexBuild);

void BM_MatcherIndexBuildParallel(benchmark::State& state) {
  const auto& store = snapshot().store;
  parallel::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::Matcher matcher(store, pool);
    benchmark::DoNotOptimize(&matcher);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(store.transfers().size()));
}
BENCHMARK(BM_MatcherIndexBuildParallel)->Arg(2)->Arg(4);

void BM_MatchRun(benchmark::State& state) {
  const auto& store = snapshot().store;
  const core::Matcher matcher(store);
  const auto options = core::MatchOptions::for_method(
      static_cast<core::MatchMethod>(state.range(0)));
  std::size_t matched = 0;
  for (auto _ : state) {
    const auto result = matcher.run(options);
    matched = result.matched_job_count();
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(store.jobs().size()));
  state.counters["matched_jobs"] = static_cast<double>(matched);
}
BENCHMARK(BM_MatchRun)->Arg(0)->Arg(1)->Arg(2);

void BM_MatchRunParallel(benchmark::State& state) {
  const auto& store = snapshot().store;
  const core::Matcher matcher(store);
  parallel::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const core::ParallelMatchDriver driver(matcher, pool);
  for (auto _ : state) {
    const auto result = driver.run(core::MatchOptions::rm2());
    benchmark::DoNotOptimize(result.matched_job_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(store.jobs().size()));
}
BENCHMARK(BM_MatchRunParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_WindowedMatch(benchmark::State& state) {
  const auto& store = snapshot().store;
  core::WindowedMatcher::Config config;
  config.window = util::hours(static_cast<double>(state.range(0)));
  config.lookback = util::days(2);
  const core::WindowedMatcher matcher(store, config);
  for (auto _ : state) {
    const auto result = matcher.run(core::MatchOptions::rm2());
    benchmark::DoNotOptimize(result.matched_job_count());
  }
  state.counters["windows"] = static_cast<double>(matcher.window_count());
}
BENCHMARK(BM_WindowedMatch)->Arg(2)->Arg(6)->Arg(24);

void BM_DiagnoseAllJobs(benchmark::State& state) {
  const auto& store = snapshot().store;
  const core::Matcher matcher(store);
  for (auto _ : state) {
    std::size_t matched = 0;
    for (std::size_t i = 0; i < store.jobs().size(); ++i) {
      matched += matcher.diagnose_job(i, core::MatchOptions::exact())
                     .outcome == core::MatchOutcome::kMatched;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(store.jobs().size()));
}
BENCHMARK(BM_DiagnoseAllJobs);

void BM_ComputeMetrics(benchmark::State& state) {
  const auto& store = snapshot().store;
  const core::Matcher matcher(store);
  const auto result = matcher.run(core::MatchOptions::rm2());
  for (auto _ : state) {
    util::SimDuration total = 0;
    for (const auto& m : result.jobs) {
      total += core::compute_metrics(store, m).transfer_time_in_queue;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ComputeMetrics);

void BM_GlobalRedundancyScan(benchmark::State& state) {
  const auto& store = snapshot().store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::scan_global_redundancy(store));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(store.transfers().size()));
}
BENCHMARK(BM_GlobalRedundancyScan);

void BM_HeatmapBuild(benchmark::State& state) {
  const auto& result = snapshot();
  for (auto _ : state) {
    const analysis::TransferHeatmap heatmap(result.store, result.topology);
    benchmark::DoNotOptimize(heatmap.summary().total_bytes);
  }
}
BENCHMARK(BM_HeatmapBuild);

void BM_CampaignSimulation(benchmark::State& state) {
  for (auto _ : state) {
    scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
    config.days = 0.1;
    config.seed = static_cast<std::uint64_t>(state.iterations());
    const auto result = scenario::run_campaign(config);
    benchmark::DoNotOptimize(result.events_processed);
  }
}
BENCHMARK(BM_CampaignSimulation)->Unit(benchmark::kMillisecond);

// --- colstore: the ROADMAP's telemetry-at-scale path --------------------

/// NDJSON event stream of a small recorded campaign, captured once.
/// The process-wide log (PANDARUS_EVENTS/_COL hooks) is saved and
/// restored around the recording so this bench never pollutes the
/// env-armed stream CI replays and gates on.
const std::string& recorded_ndjson() {
  static const std::string text = [] {
    obs::EventLog* prev = obs::EventLog::installed();
    obs::EventLog log;
    log.install();
    scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
    config.days = 0.5;
    config.seed = 7;
    const auto result = scenario::run_campaign(config);
    benchmark::DoNotOptimize(result.events_processed);
    log.uninstall();
    if (prev != nullptr) prev->install();
    log.close();
    return log.to_ndjson();
  }();
  return text;
}

std::uint64_t ndjson_line_count(const std::string& text) {
  std::uint64_t n = 0;
  for (const char c : text) n += c == '\n';
  return n;
}

void BM_ColstoreEncode(benchmark::State& state) {
  const std::string& text = recorded_ndjson();
  const std::uint64_t events = ndjson_line_count(text);
  const std::string path = "bench-colstore-encode.tmp";
  std::uint64_t col_bytes = 0;
  for (auto _ : state) {
    obs::ColWriter writer(path);
    std::size_t start = 0;
    while (start < text.size()) {
      const std::size_t nl = text.find('\n', start);
      writer.append_ndjson_line(
          std::string_view(text).substr(start, nl - start));
      start = nl + 1;
    }
    writer.close();
    col_bytes = writer.stats().bytes_written;
    benchmark::DoNotOptimize(col_bytes);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(events),
      benchmark::Counter::kIsRate);
  const auto per_event = [events](std::uint64_t bytes) {
    return events != 0
               ? static_cast<double>(bytes) / static_cast<double>(events)
               : 0.0;
  };
  state.counters["col_bytes_per_event"] = per_event(col_bytes);
  state.counters["ndjson_bytes_per_event"] = per_event(text.size());
  state.counters["col_size_ratio"] =
      text.empty() ? 0.0
                   : static_cast<double>(col_bytes) /
                         static_cast<double>(text.size());
}
BENCHMARK(BM_ColstoreEncode)->Unit(benchmark::kMillisecond);

/// Encoded-once colstore file shared by the scan benches; removed by
/// the last bench registration's teardown (process exit).
const std::string& encoded_colstore() {
  static const std::string path = [] {
    const std::string p = "bench-colstore-scan.tmp";
    obs::ColWriter writer(p);
    const std::string& text = recorded_ndjson();
    std::size_t start = 0;
    while (start < text.size()) {
      const std::size_t nl = text.find('\n', start);
      writer.append_ndjson_line(
          std::string_view(text).substr(start, nl - start));
      start = nl + 1;
    }
    writer.close();
    return p;
  }();
  return path;
}

void BM_ColstoreScan(benchmark::State& state) {
  const std::string& path = encoded_colstore();
  std::uint64_t rows = 0;
  for (auto _ : state) {
    obs::ColReader reader(path);
    obs::DecodedEvent event;
    rows = 0;
    while (reader.next(event)) ++rows;
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(rows),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ColstoreScan)->Unit(benchmark::kMillisecond);

void BM_ColstoreScanFiltered(benchmark::State& state) {
  const std::string& path = encoded_colstore();
  const std::uint64_t total = ndjson_line_count(recorded_ndjson());
  std::uint64_t skipped = 0;
  for (auto _ : state) {
    obs::ColFilter filter;
    filter.kinds = {"transfer_record"};
    obs::ColReader reader(path, filter);
    obs::DecodedEvent event;
    std::uint64_t rows = 0;
    while (reader.next(event)) ++rows;
    skipped = reader.stats().chunks_skipped;
    benchmark::DoNotOptimize(rows);
  }
  // Throughput counts the events the filter scanned *past*, which is
  // what chunk skipping accelerates.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
  state.counters["chunks_skipped"] = static_cast<double>(skipped);
}
BENCHMARK(BM_ColstoreScanFiltered)->Unit(benchmark::kMillisecond);

// --- health detectors + metric query ------------------------------------

/// Synthetic feed through every typed detector path: sampler rows,
/// link probes, breaker transitions, terminal transfers.  Each
/// iteration is one fresh epoch (the ts regression at iteration start
/// exercises the reset path exactly like repeated campaigns do).
void BM_HealthDetectors(benchmark::State& state) {
  constexpr int kTicks = 1000;
  const std::vector<std::string> names = {
      "jobs_queued", "pandarus_match_candidates_scanned_total",
      "pandarus_match_jobs_matched_total", "events_dropped"};
  std::uint64_t fired = 0;
  std::uint64_t observations = 0;
  for (auto _ : state) {
    obs::HealthEngine engine;
    engine.set_emit_events(false);
    for (int i = 0; i < kTicks; ++i) {
      const std::int64_t ts = 1000 + 1800 * i;
      // Queue depth spikes every 100 ticks; counters keep advancing.
      const std::int64_t depth = i % 100 == 7 ? 5000 : 40 + i % 5;
      engine.on_sample(ts, names,
                       {depth, 100 * i, 60 * i, 0});
      engine.on_link_sample(ts, i % 8, (i + 1) % 8, i % 4,
                            i % 50 == 3 ? 1.0 : (i % 10) / 20.0);
      engine.on_transfer_terminal(
          ts, i % 7 != 0, i % 21 == 0 ? "stalled_terminal" : "none",
          100 + (i % 1000) * 10);
      if (i % 200 == 0) engine.on_breaker(ts, 0, 1, i % 400 == 0);
    }
    const auto counts = engine.counts();
    fired = counts.fired;
    observations = counts.observations;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(observations));
  state.counters["observations_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(observations),
      benchmark::Counter::kIsRate);
  state.counters["alerts_fired"] = static_cast<double>(fired);
}
BENCHMARK(BM_HealthDetectors)->Unit(benchmark::kMillisecond);

/// Out-of-core metric query scan throughput over the recorded
/// campaign's colstore encoding: filter + bucket + group + quantile,
/// the pandarus-query hot path.
void BM_MetricQueryScan(benchmark::State& state) {
  const std::string& path = encoded_colstore();
  analysis::MetricQuerySpec spec;
  spec.kinds = {"transfer_done"};
  spec.bucket_ms = 3'600'000;
  spec.group_by = {"dst"};
  spec.value_field = "bytes";
  spec.aggregates = {analysis::MetricAggregate::kCount,
                     analysis::MetricAggregate::kSum,
                     analysis::MetricAggregate::kP95};
  std::uint64_t scanned = 0;
  std::uint64_t rows = 0;
  for (auto _ : state) {
    auto source = analysis::open_event_source(path);
    const analysis::MetricQueryResult result =
        analysis::run_metric_query(*source, spec);
    scanned = result.events_scanned;
    rows = result.rows.size();
    benchmark::DoNotOptimize(result.rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scanned));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(scanned),
      benchmark::Counter::kIsRate);
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_MetricQueryScan)->Unit(benchmark::kMillisecond);

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler scheduler;
    for (int i = 0; i < 10'000; ++i) {
      scheduler.schedule_at((i * 7919) % 100'000, [] {});
    }
    scheduler.run();
    benchmark::DoNotOptimize(scheduler.processed_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10'000);
}
BENCHMARK(BM_SchedulerThroughput);

}  // namespace

// Expanded BENCHMARK_MAIN so the PANDARUS_METRICS / PANDARUS_TRACE env
// hooks cover the microbenchmarks too (snapshot + Chrome trace at exit).
int main(int argc, char** argv) {
  pandarus::obs::install_env_hooks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* json_path = std::getenv("PANDARUS_BENCH_JSON");
  pandarus::bench::write_bench_json(
      json_path != nullptr ? json_path : "BENCH_perf.json",
      reporter.records());
  benchmark::Shutdown();
  return 0;
}
