// Figure 12 / Table 3 case study: an RM2-matched job whose files were
// transferred twice, with the UNKNOWN destination of one set recovered
// by byte-exact size pairing.
//
// Paper: pandaid 6585617863 — transfers 0-2 (job-triggered, destination
// recorded UNKNOWN due to a retrieval error) duplicate transfers 3-5
// (pre-creation, CERN-PROD -> CERN-PROD); identical sizes pair them up,
// inferring UNKNOWN = CERN-PROD and exposing avoidable redundancy.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Fig. 12 / Table 3 - RM2-matched job with redundant "
                "transfers and inferable UNKNOWN endpoint",
                "duplicate file set; UNKNOWN destination inferred from "
                "byte-exact sizes; redundancy 'in principle avoidable'");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const analysis::CaseStudyExtractor extractor(ctx.result.store, ctx.tri);
  const auto cs = extractor.rm2_redundant_case();
  if (!cs) {
    std::cout << "No matching case in this campaign (try another seed).\n";
    return 0;
  }

  const auto& job = ctx.result.store.jobs()[cs->match.job_index];
  std::cout << analysis::render_timeline(ctx.result.store, cs->match)
            << "\nTransfer summary (Table 3 analogue):\n";
  std::cout << analysis::render_transfer_table(ctx.result.store,
                                               ctx.result.topology,
                                               cs->match);

  std::cout << "\nInferred sites (RM2 metadata reconstruction):\n";
  for (const auto& inf : cs->inferred_sites) {
    const auto& t = ctx.result.store.transfers()[inf.transfer_index];
    std::cout << "  transfer " << t.transfer_id
              << ": UNKNOWN destination inferred = "
              << ctx.result.topology.site_name(inf.inferred_destination)
              << " (evidence: transfer "
              << ctx.result.store.transfers()[inf.evidence_index].transfer_id
              << " with identical size "
              << util::format_count(std::uint64_t{t.file_size}) << " B)\n";
  }

  std::uint64_t wasted = 0;
  for (const auto& group : cs->redundant) wasted += group.wasted_bytes();
  std::cout << "\nRedundant transfer groups: " << cs->redundant.size()
            << ", avoidable volume "
            << util::format_bytes(static_cast<double>(wasted)) << "\n";
  std::cout << "Job outcome: " << (job.failed ? "FAILED" : "successful")
            << " (paper's case was successful)\n";

  // Grid-wide view: how much avoidable duplicate traffic exists overall?
  // A 6-hour window separates genuine waste (re-delivery while the first
  // copy should still be on disk) from lifetime-expiry churn.
  const auto global =
      core::scan_global_redundancy(ctx.result.store, util::hours(6));
  std::cout << "\nCampaign-wide redundancy (re-delivery within 6h): "
            << global.redundant_transfers << " duplicate deliveries in "
            << global.groups << " groups, "
            << util::format_bytes(static_cast<double>(global.wasted_bytes))
            << " avoidable.\n";
  return 0;
}
