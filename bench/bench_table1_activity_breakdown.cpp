// Table 1: breakdown of exact-matched transfers by activity type.
//
// Paper: Analysis Download 14,811/176,694 (8.38%); Analysis Upload
// 2,919/3,059 (95.42%); Analysis Download Direct IO 12,650/548,712
// (2.31%); Production Upload 0/824,963 (0%); Production Download
// 0/31,801 (0%); Total 30,380/1,585,229 (1.92%).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Table 1 - breakdown of exact matched transfers",
                "Upload 95.42% >> Download 8.38% >> Direct IO 2.31% >> "
                "Production 0%");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const auto breakdown =
      analysis::activity_breakdown(ctx.result.store, ctx.tri.exact);
  analysis::print_table1(std::cout, breakdown);

  std::cout << "\nShape checks vs the paper:\n";
  auto pct = [&](dms::Activity a) {
    return breakdown.rows[static_cast<std::size_t>(a)].percentage();
  };
  std::cout << "  Analysis Upload ("
            << util::format_percent(pct(dms::Activity::kAnalysisUpload))
            << ") >> Analysis Download ("
            << util::format_percent(pct(dms::Activity::kAnalysisDownload))
            << ") >> Direct IO ("
            << util::format_percent(
                   pct(dms::Activity::kAnalysisDownloadDirectIO))
            << ") : "
            << (pct(dms::Activity::kAnalysisUpload) >
                        pct(dms::Activity::kAnalysisDownload) &&
                    pct(dms::Activity::kAnalysisDownload) >
                        pct(dms::Activity::kAnalysisDownloadDirectIO)
                    ? "HOLDS"
                    : "VIOLATED")
            << "\n";
  std::cout << "  Production Upload/Download match 0%: "
            << (pct(dms::Activity::kProductionUpload) == 0.0 &&
                        pct(dms::Activity::kProductionDownload) == 0.0
                    ? "HOLDS"
                    : "VIOLATED")
            << "\n";
  return 0;
}
