// Section 3.2: spatial and temporal imbalance of transfer activity, and
// the error concentrations it produces.
//
// Paper: "the WLCG supports massive data movement across the grid, but
// with significant spatial and temporal imbalance.  While each system
// achieves its separate design goals, these transfer patterns expose
// system vulnerability and increase the likelihood of errors at network
// and storage hot spots."
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Section 3.2 - spatial/temporal imbalance and hot-spot "
                "errors",
                "extremely imbalanced site activity (mean >> geomean in "
                "Fig. 3); errors concentrate at hot spots");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  // --- spatial --------------------------------------------------------
  const auto spatial =
      analysis::spatial_imbalance(ctx.result.store, ctx.result.topology);
  std::cout << "Spatial imbalance over " << spatial.sites.size()
            << " sites:\n";
  std::cout << "  Gini(byte volume) = "
            << util::format_fixed(spatial.gini_bytes, 3)
            << ", Gini(job count) = "
            << util::format_fixed(spatial.gini_jobs, 3) << "\n";
  std::cout << "  top-1 site carries "
            << util::format_percent(spatial.top1_byte_share)
            << " of all bytes; top-5 carry "
            << util::format_percent(spatial.top5_byte_share) << "\n\n";

  util::Table table({"Site", "Tier", "Bytes in", "Bytes out", "Jobs",
                     "Failure rate"});
  for (std::size_t c = 2; c <= 5; ++c) table.set_align(c, util::Align::kRight);
  for (std::size_t i = 0; i < std::min<std::size_t>(10, spatial.sites.size());
       ++i) {
    const auto& s = spatial.sites[i];
    table.add_row(
        {std::string(ctx.result.topology.site_name(s.site)),
         grid::tier_name(ctx.result.topology.site(s.site).tier),
         util::format_bytes(static_cast<double>(s.bytes_in)),
         util::format_bytes(static_cast<double>(s.bytes_out)),
         util::format_count(s.jobs), util::format_percent(s.failure_rate())});
  }
  table.print(std::cout);

  // Hot-spot error concentration: failure rate at the 5 busiest sites vs
  // everywhere else.
  std::uint64_t hot_jobs = 0;
  std::uint64_t hot_failed = 0;
  std::uint64_t cold_jobs = 0;
  std::uint64_t cold_failed = 0;
  for (std::size_t i = 0; i < spatial.sites.size(); ++i) {
    const auto& s = spatial.sites[i];
    if (i < 5) {
      hot_jobs += s.jobs;
      hot_failed += s.failed_jobs;
    } else {
      cold_jobs += s.jobs;
      cold_failed += s.failed_jobs;
    }
  }
  const double hot_rate =
      hot_jobs ? static_cast<double>(hot_failed) / static_cast<double>(hot_jobs) : 0.0;
  const double cold_rate =
      cold_jobs ? static_cast<double>(cold_failed) / static_cast<double>(cold_jobs)
                : 0.0;
  std::cout << "\nFailure rate at the 5 busiest sites: "
            << util::format_percent(hot_rate) << " vs elsewhere: "
            << util::format_percent(cold_rate) << "\n";

  // --- temporal -------------------------------------------------------
  const auto temporal =
      analysis::temporal_imbalance(ctx.result.store, util::hours(6));
  std::cout << "\nTemporal imbalance (6-hour bins): peak "
            << util::format_bytes(temporal.peak_bytes) << ", mean "
            << util::format_bytes(temporal.mean_bytes)
            << ", peak/mean = "
            << util::format_fixed(temporal.peak_to_mean(), 2) << "\n";
  double peak = temporal.peak_bytes > 0 ? temporal.peak_bytes : 1.0;
  for (const auto& p : temporal.series) {
    const auto width =
        static_cast<std::size_t>(p.bytes / peak * 50.0);
    std::cout << "  " << util::format_time(p.bin_start) << " |"
              << std::string(width, '#') << " "
              << util::format_bytes(p.bytes) << "\n";
  }

  // --- error distribution ----------------------------------------------
  const auto errors = analysis::error_distribution(ctx.result.store);
  std::cout << "\nJob error distribution (" << errors.total_failed
            << " failed of " << errors.total_jobs << " jobs):\n";
  for (const auto& [code, count] : errors.by_code) {
    std::cout << "  " << code << " (" << wms::errors::message(code)
              << "): " << count << " ("
              << util::format_percent(errors.share(code)) << ")\n";
  }
  return 0;
}
