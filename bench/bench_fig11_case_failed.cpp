// Figure 11 case study: a failed job whose matched transfer spans both
// queuing and execution.
//
// Paper: pandaid 6583431126 — first transfer (4.6 GB) done in 22 s, the
// second (20.5 GB) ran >30 min across queuing AND wall time (>90% of the
// job lifetime), a >20x throughput spread; the job failed with error
// 1305 "Non-zero return code from Overlay (1)".
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Fig. 11 - failed job with a transfer spanning queuing and "
                "execution",
                ">90% of lifetime in transfer; >20x throughput spread; "
                "error 1305 'Non-zero return code from Overlay (1)'");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const analysis::CaseStudyExtractor extractor(ctx.result.store, ctx.tri);
  const auto cs = extractor.failed_spanning_case();
  if (!cs) {
    std::cout << "No matching case in this campaign (try another seed).\n";
    return 0;
  }

  const auto& job = ctx.result.store.jobs()[cs->match.job_index];
  std::cout << analysis::render_timeline(ctx.result.store, cs->match)
            << "\n";
  std::cout << analysis::render_transfer_table(ctx.result.store,
                                               ctx.result.topology,
                                               cs->match);

  const util::SimDuration lifetime = job.lifetime();
  const util::SimDuration in_transfer =
      cs->metrics.transfer_time_in_queue + cs->metrics.transfer_time_in_wall;
  std::cout << "\nMeasured vs paper:\n";
  std::cout << "  job failed with error " << job.error_code << " ("
            << wms::errors::message(job.error_code) << ")\n";
  std::cout << "  transfer spans execution: "
            << (cs->metrics.transfer_spans_execution ? "YES" : "NO")
            << " (paper: yes)\n";
  std::cout << "  transfer share of job lifetime: "
            << util::format_percent(
                   lifetime > 0 ? static_cast<double>(in_transfer) /
                                      static_cast<double>(lifetime)
                                : 0.0)
            << " (paper >90%)\n";
  std::cout << "  throughput spread: x"
            << util::format_fixed(cs->throughput_spread, 1)
            << " (paper >20x)\n";
  return 0;
}
