// Tables 2a/2b: matched transfers and matched jobs by matching method.
//
// Paper 2a (transfers, local/remote/total/%): Exact 28,579/1,801/30,380
// (1.92%); RM1 35,065/1,817/36,882 (2.33%); RM2 36,320/24,273/60,593
// (3.82%).  Paper 2b (jobs, all-local/all-remote/mixed/total/%):
// Exact 7,649/258/0/7,907 (0.82%); RM1 8,763/260/0/9,023 (0.93%);
// RM2 8,727/7,662/112/16,501 (1.71%).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Table 2 - matched transfers and jobs by matching method",
                "Exact < RM1 < RM2; exact ~94% local; RM2's gain is "
                "mostly remote/unknown transfers and creates mixed jobs");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const auto cmp = analysis::compare_methods(ctx.result.store, ctx.tri);
  analysis::print_table2(std::cout, cmp);

  std::cout << "\nShape checks vs the paper:\n";
  const auto& tr = cmp.transfers;
  const auto& jb = cmp.jobs;
  auto verdict = [](bool ok) { return ok ? "HOLDS" : "VIOLATED"; };
  std::cout << "  transfers: Exact <= RM1 <= RM2: "
            << verdict(tr[0].total() <= tr[1].total() &&
                       tr[1].total() <= tr[2].total())
            << "\n";
  std::cout << "  jobs:      Exact <= RM1 <= RM2: "
            << verdict(jb[0].total() <= jb[1].total() &&
                       jb[1].total() <= jb[2].total())
            << "\n";
  const double exact_local_share =
      tr[0].total() > 0 ? static_cast<double>(tr[0].local) /
                              static_cast<double>(tr[0].total())
                        : 0.0;
  std::cout << "  exact matches mostly local ("
            << util::format_percent(exact_local_share)
            << ", paper 94%): " << verdict(exact_local_share > 0.7) << "\n";
  std::cout << "  RM2 adds more remote transfers than RM1 did: "
            << verdict(tr[2].remote - tr[1].remote >=
                       tr[1].remote - tr[0].remote)
            << "\n";
  std::cout << "  mixed-transfer jobs appear only via RM2's unknown-site "
               "relaxation (paper: 0 -> 0 -> 112): "
            << verdict(jb[2].mixed >= jb[1].mixed) << "\n";
  return 0;
}
