// Figure 7: bandwidth usage of matched transfers over time at six remote
// site-to-site connections.
//
// Paper observations: rates fluctuate strongly within short intervals
// (mostly <10 MBps with spikes over 60 MBps on one link), and usage in
// opposite directions of the same pair is asymmetric (up to 130 MBps).
#include "bench_common.hpp"

namespace {

void print_series(const pandarus::analysis::SeriesPoint* data,
                  std::size_t n, double peak) {
  using pandarus::util::format_time;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = data[i];
    if (p.mbps <= 0.0) continue;
    const auto width = static_cast<std::size_t>(p.mbps / peak * 50.0);
    std::printf("  %s %8.2f MBps |%s\n", format_time(p.bin_start).c_str(),
                p.mbps, std::string(width, '#').c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Fig. 7 - bandwidth usage at six remote connections",
                "strong short-interval fluctuation; asymmetric opposite "
                "directions (10-60 MBps typical, 130 MBps spikes)");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const auto pairs = analysis::top_matched_pairs(ctx.result.store,
                                                 ctx.tri.rm2,
                                                 /*local=*/false, 6);
  if (pairs.empty()) {
    std::cout << "No remote matched transfers in this campaign.\n";
    return 0;
  }

  for (const auto& pv : pairs) {
    const auto series = analysis::bandwidth_series(
        ctx.result.store, &ctx.tri.rm2, pv.src, pv.dst, util::minutes(10));
    const auto stats = analysis::series_stats(series);
    std::cout << "From " << ctx.result.topology.site_name(pv.src) << " to "
              << ctx.result.topology.site_name(pv.dst) << " ("
              << pv.transfers << " matched transfers, "
              << util::format_bytes(static_cast<double>(pv.bytes))
              << "):\n";
    std::cout << "  peak " << util::format_fixed(stats.peak_mbps, 1)
              << " MBps, mean " << util::format_fixed(stats.mean_mbps, 1)
              << " MBps over " << stats.active_bins
              << " active 10-min bins, burstiness (peak/mean) "
              << util::format_fixed(stats.burstiness(), 1) << "\n";
    print_series(series.data(), std::min<std::size_t>(series.size(), 24),
                 std::max(stats.peak_mbps, 1.0));

    // Asymmetry vs the reverse direction (the paper's Fig. 7a vs 7b).
    const auto reverse = analysis::bandwidth_series(
        ctx.result.store, &ctx.tri.rm2, pv.dst, pv.src, util::minutes(10));
    const auto reverse_stats = analysis::series_stats(reverse);
    if (reverse_stats.active_bins > 0) {
      std::cout << "  reverse direction peak "
                << util::format_fixed(reverse_stats.peak_mbps, 1)
                << " MBps (asymmetry x"
                << util::format_fixed(
                       stats.peak_mbps /
                           std::max(reverse_stats.peak_mbps, 1e-9),
                       2)
                << ")\n";
    } else {
      std::cout << "  reverse direction idle (fully asymmetric)\n";
    }
    std::cout << "\n";
  }
  return 0;
}
