// Figure 2: total ATLAS volume managed by Rucio, 2009-2024, approaching
// 1 exabyte by mid-2024 and more than doubling since 2018.
#include "bench_common.hpp"

int main() {
  using namespace pandarus;
  bench::banner(
      "Fig. 2 - cumulative data volume managed by the DMS, 2009-2024",
      "~1 EB by mid-2024; more than doubled since 2018");

  const auto years = analysis::simulate_volume_growth();
  util::Table table({"Year", "Run phase", "Ingest (PB)", "Deleted (PB)",
                     "Cumulative (PB)", "Bar"});
  for (std::size_t c = 2; c <= 4; ++c) table.set_align(c, util::Align::kRight);
  double v2018 = 0.0;
  for (const auto& y : years) {
    if (y.year == 2018) v2018 = y.total_pb;
    const auto bar_width = static_cast<std::size_t>(y.total_pb / 25.0);
    table.add_row({std::to_string(y.year),
                   analysis::is_shutdown_year(y.year) ? "shutdown" : "run",
                   util::format_fixed(y.added_pb, 1),
                   util::format_fixed(y.deleted_pb, 1),
                   util::format_fixed(y.total_pb, 1),
                   std::string(bar_width, '#')});
  }
  table.print(std::cout);

  const double final_pb = years.back().total_pb;
  std::cout << "\nMeasured: " << util::format_fixed(final_pb, 1)
            << " PB by " << years.back().year << " ("
            << util::format_fixed(final_pb / 1000.0, 2) << " EB); "
            << util::format_fixed(final_pb / v2018, 2)
            << "x the 2018 volume (paper: >2x).\n";
  return 0;
}
