// Figure 9: matched-job counts in the four job-status x task-status
// classes as a function of the transfer-time-percentage threshold T.
//
// Paper: 7,907 exactly matched jobs, 80.5% successful; e.g. 913
// ok/ok jobs below T=1%, 1,438 below 2%; even at T=75% there remain 72
// jobs above the threshold, most of them failed — suggesting elevated
// failure rates at extreme transfer-time percentages.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Fig. 9 - job counts by status class vs transfer-time-% "
                "threshold",
                "80.5% of matched jobs successful; the >75% tail is small "
                "and dominated by failed jobs");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const auto rows = analysis::build_breakdown(ctx.result.store,
                                              ctx.tri.exact);
  const auto thresholds = analysis::default_thresholds();
  const auto sweep = analysis::run_threshold_sweep(rows, thresholds);

  util::Table table({"T", "ok/ok", "fail/ok", "ok/fail", "fail/fail",
                     "total <= T"});
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, util::Align::kRight);
  for (const auto& row : sweep.rows) {
    const int pct = static_cast<int>(row.threshold * 100.0 + 0.5);
    if (pct != 1 && pct != 2 && pct != 5 && pct % 10 != 0) continue;
    table.add_row({std::to_string(pct) + "%",
                   std::to_string(row.counts[0]),
                   std::to_string(row.counts[1]),
                   std::to_string(row.counts[2]),
                   std::to_string(row.counts[3]),
                   std::to_string(row.total())});
  }
  table.print(std::cout);

  const double success_share =
      sweep.total_jobs > 0
          ? static_cast<double>(sweep.successful_jobs()) /
                static_cast<double>(sweep.total_jobs)
          : 0.0;
  std::cout << "\nMatched jobs: " << sweep.total_jobs << "; successful "
            << sweep.successful_jobs() << " ("
            << util::format_percent(success_share)
            << ", paper 80.5%)\n";

  const auto above75 = sweep.above(0.75);
  std::size_t above_total = 0;
  std::size_t above_failed = 0;
  for (std::size_t c = 0; c < analysis::kStatusClassCount; ++c) {
    above_total += above75[c];
    if (c == 1 || c == 3) above_failed += above75[c];  // job-failed classes
  }
  std::cout << "Jobs with transfer-time % > 75%: " << above_total
            << " (paper: 72), of which failed jobs: " << above_failed
            << " (paper: most)\n";
  // Robust form of the paper's claim at simulator sample sizes: the
  // extreme tail's failure share is a large multiple of the matched
  // population's overall failure rate.
  const double overall_failure =
      sweep.total_jobs > 0
          ? 1.0 - static_cast<double>(sweep.successful_jobs()) /
                      static_cast<double>(sweep.total_jobs)
          : 0.0;
  const double tail_failure =
      above_total > 0
          ? static_cast<double>(above_failed) /
                static_cast<double>(above_total)
          : 0.0;
  std::cout << "Tail failure share "
            << util::format_percent(tail_failure) << " vs overall "
            << util::format_percent(overall_failure)
            << " -> failure enrichment x"
            << util::format_fixed(
                   overall_failure > 0 ? tail_failure / overall_failure : 0.0,
                   1)
            << "\n";
  std::cout << "Extreme tail strongly failure-enriched (>=3x): "
            << (above_total == 0 ||
                        tail_failure >= 3.0 * overall_failure
                    ? "HOLDS"
                    : "VIOLATED")
            << "\n";
  return 0;
}
