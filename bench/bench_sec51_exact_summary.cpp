// Section 5.1: overall exact-matching statistics over the 8-day study.
//
// Paper: 966,453 user jobs; 6,784,936 transfer events; 1,585,229 with a
// valid jeditaskid; exact matching linked 30,380 transfers (1.92%) and
// 7,907 jobs (0.82%); transfer time within queuing averaged 8.43%
// (geometric mean 1.942%).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Section 5.1 - summary of exact matching",
                "1.92% of taskid transfers and 0.82% of user jobs linked; "
                "transfer-in-queue mean 8.43%, geomean 1.942%");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const auto s = analysis::overall_summary(ctx.result.store, ctx.tri.exact);
  analysis::print_overall(std::cout, s);

  util::Table table({"Quantity", "Measured", "Paper"});
  table.set_align(1, util::Align::kRight);
  table.set_align(2, util::Align::kRight);
  table.add_row({"User jobs collected",
                 util::format_count(std::uint64_t{s.total_jobs}), "966,453"});
  table.add_row({"Transfer events",
                 util::format_count(std::uint64_t{s.total_transfers}),
                 "6,784,936"});
  table.add_row({"... with valid jeditaskid",
                 util::format_count(std::uint64_t{s.transfers_with_taskid}),
                 "1,585,229"});
  table.add_row({"Share with jeditaskid",
                 util::format_percent(
                     static_cast<double>(s.transfers_with_taskid) /
                     static_cast<double>(std::max<std::size_t>(
                         s.total_transfers, 1))),
                 "23.4%"});
  table.add_row({"Exact-matched transfers",
                 util::format_count(std::uint64_t{s.matched_transfers}),
                 "30,380"});
  table.add_row({"Exact-matched transfer share",
                 util::format_percent(s.matched_transfer_pct), "1.92%"});
  table.add_row({"Exact-matched jobs",
                 util::format_count(std::uint64_t{s.matched_jobs}), "7,907"});
  table.add_row({"Exact-matched job share",
                 util::format_percent(s.matched_job_pct), "0.82%"});
  table.add_row({"Mean transfer-time % of queuing",
                 util::format_percent(s.mean_queue_fraction), "8.43%"});
  table.add_row({"Geometric mean",
                 util::format_percent(s.geomean_queue_fraction, 3),
                 "1.942%"});
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
