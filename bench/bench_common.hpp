// Shared harness for the reproduction benches: every bench_fig*/table*
// binary runs the same deterministic paper-scale campaign, matches it
// with all three strategies, and prints its table/figure from the result.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "pandarus.hpp"

namespace pandarus::bench {

/// One benchmark result for the machine-readable CI artifact.  Kept
/// free of any google-benchmark types so this header stays usable by
/// the campaign benches that don't link it.
struct BenchRecord {
  std::string name;
  double wall_ms = 0.0;        ///< mean wall time per iteration
  double matched_jobs = -1.0;  ///< "matched_jobs" counter; -1 if absent
  /// Any other user counters the run reported (rates already
  /// time-normalized), e.g. the colstore benches' events_per_sec and
  /// col_bytes_per_event.
  std::vector<std::pair<std::string, double>> counters;
};

/// Writes records as JSON ({"benchmarks": [{name, wall_ms,
/// matched_jobs, <counter>...}, ...]}); regression tooling diffs this
/// across runs.
inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "bench: cannot write " << path << '\n';
    return false;
  }
  std::fputs("{\n  \"benchmarks\": [", f);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f, "%s\n    {\"name\": \"%s\", \"wall_ms\": %.6f",
                 i == 0 ? "" : ",", r.name.c_str(), r.wall_ms);
    if (r.matched_jobs >= 0.0) {
      std::fprintf(f, ", \"matched_jobs\": %.0f", r.matched_jobs);
    }
    for (const auto& [name, value] : r.counters) {
      std::fprintf(f, ", \"%s\": %.6g", name.c_str(), value);
    }
    std::fputs("}", f);
  }
  std::fputs("\n  ]\n}\n", f);
  std::fclose(f);
  return true;
}

inline constexpr std::uint64_t kDefaultSeed = 20250401;

struct Context {
  scenario::ScenarioResult result;
  core::TriMatchResult tri;
};

/// Runs the standard 8-day paper-scale campaign (override the seed with
/// argv[1] or PANDARUS_SEED, the length with PANDARUS_DAYS) and links
/// jobs to transfers with all three strategies.  Also arms the
/// PANDARUS_METRICS / PANDARUS_TRACE observability hooks, so any bench
/// can dump a metrics snapshot and a Chrome trace with no code changes.
inline Context run_paper_campaign(int argc, char** argv,
                                  double days_override = 0.0) {
  obs::install_env_hooks();

  scenario::ScenarioConfig config = scenario::ScenarioConfig::paper_scale();
  config.seed = kDefaultSeed;
  if (const char* env = std::getenv("PANDARUS_SEED")) {
    config.seed = std::strtoull(env, nullptr, 10);
  }
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  if (days_override > 0.0) config.days = days_override;
  if (const char* env = std::getenv("PANDARUS_DAYS")) {
    const double days = std::strtod(env, nullptr);
    if (days > 0.0) config.days = days;
  }

  Context ctx{scenario::run_campaign(config), {}};
  const core::Matcher matcher(ctx.result.store);
  ctx.tri = core::run_all_methods(matcher);
  return ctx;
}

/// Prints the standard bench banner: which paper artefact this binary
/// regenerates and what the paper reported (for eyeball comparison).
inline void banner(const std::string& artefact,
                   const std::string& paper_says) {
  std::cout << "================================================================\n"
            << "Reproduces: " << artefact << "\n"
            << "Paper:      " << paper_says << "\n"
            << "================================================================\n";
}

inline void campaign_line(const Context& ctx) {
  std::cout << "[campaign] " << ctx.result.workload.user_jobs
            << " user jobs, " << ctx.result.workload.prod_jobs
            << " production jobs, "
            << ctx.result.store.counts().transfers << " transfer events ("
            << util::format_bytes(
                   static_cast<double>(ctx.result.transfers.bytes_moved))
            << " moved) over "
            << util::to_days(ctx.result.window_end -
                             ctx.result.window_begin)
            << " simulated days\n";
  // Wall-clock footer, read back from the obs registry the pipeline
  // instruments into (run_campaign's gauge, Matcher::run's counters) —
  // printed only when the registry actually holds wall-clock data, so a
  // context built without the instrumented pipeline (or after
  // reset_for_test) doesn't print a row of zeros.
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const std::int64_t campaign_ms =
      snap.gauge_value("pandarus_campaign_last_wall_ms");
  const std::uint64_t match_us =
      snap.counter_value("pandarus_match_run_wall_us_total");
  const std::uint64_t match_runs = snap.counter_value("pandarus_match_runs_total");
  if (campaign_ms > 0 || match_runs > 0) {
    std::cout << "[timing]   campaign " << campaign_ms
              << " ms wall, matching "
              << static_cast<double>(match_us) / 1000.0 << " ms wall over "
              << match_runs << " run(s)\n";
  }
  std::cout << '\n';
}

}  // namespace pandarus::bench
