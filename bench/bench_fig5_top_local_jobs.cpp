// Figure 5: the top-40 jobs with only local matched transfers whose
// transfer time exceeds 10% of queuing time, ordered by queuing time.
//
// Paper observations: extreme local queuing times (>10^4 s transfer
// time for the worst case), failed jobs clustering at high transfer-time
// percentages, and no significant correlation between transferred bytes
// and queuing time.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Fig. 5 - top 40 local-transfer jobs, >10% of queue in "
                "transfer",
                "extreme local queue tails; failures cluster at high "
                "transfer-time %; size uncorrelated with queue time");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const auto rows = analysis::build_breakdown(ctx.result.store, ctx.tri.rm1);
  const auto top = analysis::top_by_queuing(
      rows, core::LocalityClass::kAllLocal, 0.10, 40);

  util::Table table({"Job (pandaid)", "Status", "Queue time",
                     "Transfer time", "Transfer %", "Bytes", "#xfers"});
  for (std::size_t c = 2; c <= 6; ++c) table.set_align(c, util::Align::kRight);
  for (const auto& row : top) {
    table.add_row({std::to_string(row.pandaid),
                   row.job_failed ? "F" : "D",
                   util::format_duration(row.queuing_time),
                   util::format_duration(row.transfer_time_in_queue),
                   util::format_percent(row.queue_fraction),
                   util::format_bytes(
                       static_cast<double>(row.transferred_bytes)),
                   std::to_string(row.transfer_count)});
  }
  table.print(std::cout);

  // The paper's accompanying statistics.
  std::size_t failed = 0;
  for (const auto& row : top) failed += row.job_failed;
  const auto agg = analysis::aggregate(top);
  std::cout << "\nSelected " << top.size() << " jobs (paper: 40); "
            << failed << " failed.\n";
  std::cout << "Correlation(bytes, queue time) = "
            << util::format_fixed(agg.size_queue_correlation, 3)
            << ", correlation(bytes, transfer time) = "
            << util::format_fixed(agg.size_transfer_time_correlation, 3)
            << "  (paper: no significant correlation)\n";
  if (!top.empty()) {
    std::cout << "Longest queue: "
              << util::format_duration(top.front().queuing_time)
              << " with "
              << util::format_duration(top.front().transfer_time_in_queue)
              << " in transfer (paper's outlier exceeded 10,000 s).\n";
  }
  return 0;
}
