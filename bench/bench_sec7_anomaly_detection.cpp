// Section 7 (future work, implemented here): automated anomaly detection
// based on transfer-time thresholds.
//
// Paper: "Future efforts should focus on automating anomaly detection
// based on transfer-time thresholds, improving metadata completeness
// and consistency, and developing adaptive strategies...".  This bench
// runs the detector over the matched snapshot and checks the paper's
// implied payoff: flagged jobs fail at an elevated rate.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Section 7 - automated anomaly detection over matched jobs",
                "small anomalous minority (72 jobs >75% in Fig. 9); "
                "extreme cases fail disproportionately");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const core::AnomalyDetector detector;
  const auto report = detector.scan(ctx.result.store, ctx.tri.rm2);

  util::Table table({"Anomaly class", "Flags", "Example severity"});
  table.set_align(1, util::Align::kRight);
  for (std::size_t t = 0; t < core::kAnomalyTypeCount; ++t) {
    double worst = 0.0;
    for (const auto& a : report.anomalies) {
      if (static_cast<std::size_t>(a.type) == t) {
        worst = std::max(worst, a.severity);
      }
    }
    table.add_row({core::anomaly_name(static_cast<core::AnomalyType>(t)),
                   util::format_count(std::uint64_t{report.counts[t]}),
                   util::format_fixed(worst, 2)});
  }
  table.print(std::cout);

  std::cout << "\nScanned " << report.jobs_scanned
            << " matched jobs; flagged " << report.jobs_flagged << " ("
            << util::format_percent(
                   report.jobs_scanned > 0
                       ? static_cast<double>(report.jobs_flagged) /
                             static_cast<double>(report.jobs_scanned)
                       : 0.0)
            << ").\n";
  std::cout << "Failure rate among flagged jobs:   "
            << util::format_percent(report.flagged_failure_rate) << "\n";
  std::cout << "Failure rate among unflagged jobs: "
            << util::format_percent(report.unflagged_failure_rate) << "\n";
  std::cout << "Anomalies predict failure (flagged > unflagged): "
            << (report.flagged_failure_rate > report.unflagged_failure_rate
                    ? "HOLDS"
                    : "VIOLATED")
            << "  (paper Fig. 9: extreme transfer-time jobs are mostly "
               "failures)\n";

  // The top offenders, as an operator worklist.
  std::cout << "\nTop 10 anomalies by severity class:\n";
  util::Table top({"pandaid", "Class", "Severity", "Job"});
  std::vector<core::Anomaly> sorted = report.anomalies;
  std::sort(sorted.begin(), sorted.end(),
            [](const core::Anomaly& a, const core::Anomaly& b) {
              return a.severity > b.severity;
            });
  for (std::size_t i = 0; i < std::min<std::size_t>(10, sorted.size());
       ++i) {
    const auto& a = sorted[i];
    top.add_row({std::to_string(a.pandaid), core::anomaly_name(a.type),
                 util::format_fixed(a.severity, 2),
                 a.job_failed ? "FAILED" : "ok"});
  }
  top.print(std::cout);
  return 0;
}
