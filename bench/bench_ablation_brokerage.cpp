// Ablation (paper §3.1/§7 co-optimization direction): how does the
// brokerage policy trade queuing time against network traffic?
//
// The paper argues that PanDA's pure data-locality heuristic can
// overload data-hosting sites ("assigning jobs to sites with local data
// can lead to heavy site-level queuing delays, whereas assigning them to
// remote sites ... may result in shorter overall queuing times") and
// calls for policies with shared performance awareness.  This bench runs
// the same campaign under the three policies and reports the trade-off.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Ablation - brokerage policy (data-locality vs load-aware "
                "vs hybrid)",
                "locality minimizes WAN traffic but risks hot-site "
                "queuing; the paper's co-design direction (Section 7)");

  struct Row {
    const char* name;
    wms::BrokeragePolicy policy;
  };
  const Row policies[] = {
      {"data-locality", wms::BrokeragePolicy::kDataLocality},
      {"load-aware", wms::BrokeragePolicy::kLoadAware},
      {"hybrid", wms::BrokeragePolicy::kHybrid},
  };

  util::Table table({"Policy", "Jobs", "Failed %", "Median queue",
                     "P95 queue", "Stage-in xfers", "WAN bytes",
                     "Local bytes"});
  for (std::size_t c = 1; c <= 7; ++c) table.set_align(c, util::Align::kRight);

  for (const Row& row : policies) {
    scenario::ScenarioConfig config = scenario::ScenarioConfig::paper_scale();
    config.days = 4.0;  // shorter: three campaigns in one binary
    config.seed = bench::kDefaultSeed;
    if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
    config.brokerage.policy = row.policy;
    const auto result = scenario::run_campaign(config);

    std::vector<double> queue_ms;
    std::size_t failed = 0;
    for (const auto& j : result.store.jobs()) {
      queue_ms.push_back(static_cast<double>(j.queuing_time()));
      failed += j.failed;
    }
    util::Quantiles q(std::move(queue_ms));

    // WAN vs local bytes from job-driven traffic only (staging +
    // direct-io + uploads), so the policy's own effect is visible.
    std::uint64_t wan = 0;
    std::uint64_t local = 0;
    for (const auto& t : result.store.transfers()) {
      if (!t.success || !t.has_jeditaskid()) continue;
      if (t.is_local()) {
        local += t.file_size;
      } else {
        wan += t.file_size;
      }
    }

    const double failed_pct =
        result.store.jobs().empty()
            ? 0.0
            : static_cast<double>(failed) /
                  static_cast<double>(result.store.jobs().size());
    table.add_row(
        {row.name, util::format_count(std::uint64_t{result.store.jobs().size()}),
         util::format_percent(failed_pct),
         util::format_duration(static_cast<util::SimDuration>(q.median())),
         util::format_duration(static_cast<util::SimDuration>(q(0.95))),
         util::format_count(result.panda.stage_in_transfers +
                            result.panda.prefetch_transfers),
         util::format_bytes(static_cast<double>(wan)),
         util::format_bytes(static_cast<double>(local))});
  }
  table.print(std::cout);

  std::cout << "\nReading: data-locality minimizes WAN bytes; load-aware "
               "flattens queues at the cost of extra staging; hybrid sits "
               "between — the co-optimization space the paper's Section 7 "
               "targets.\n";
  return 0;
}
