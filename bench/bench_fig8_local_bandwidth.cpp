// Figure 8: bandwidth usage over time at six local sites (transfers
// entirely within one facility).
//
// Paper observations: local throughput is generally higher than remote
// but still fluctuates heavily (430 MBps spikes vs sustained <60 MBps
// lulls at the same site), so data locality does not guarantee
// consistent staging performance.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;
  bench::banner("Fig. 8 - bandwidth usage at six local sites",
                "local > remote on average but strongly fluctuating "
                "(430 MBps spikes vs <60 MBps lulls)");
  const bench::Context ctx = bench::run_paper_campaign(argc, argv);
  bench::campaign_line(ctx);

  const auto local_pairs = analysis::top_matched_pairs(
      ctx.result.store, ctx.tri.rm2, /*local=*/true, 6);
  const auto remote_pairs = analysis::top_matched_pairs(
      ctx.result.store, ctx.tri.rm2, /*local=*/false, 6);

  util::OnlineStats local_means;
  for (const auto& pv : local_pairs) {
    const auto series = analysis::bandwidth_series(
        ctx.result.store, &ctx.tri.rm2, pv.src, pv.dst, util::minutes(10));
    const auto stats = analysis::series_stats(series);
    local_means.add(stats.mean_mbps);
    std::cout << "Local site " << ctx.result.topology.site_name(pv.src)
              << " (" << pv.transfers << " matched transfers, "
              << util::format_bytes(static_cast<double>(pv.bytes))
              << "):\n";
    std::cout << "  peak " << util::format_fixed(stats.peak_mbps, 1)
              << " MBps, mean " << util::format_fixed(stats.mean_mbps, 1)
              << " MBps, burstiness (peak/mean) "
              << util::format_fixed(stats.burstiness(), 1) << ", "
              << stats.active_bins << " active bins\n";
    // Compact sparkline of up to 30 bins.
    std::string spark;
    const std::size_t shown = std::min<std::size_t>(series.size(), 60);
    for (std::size_t i = 0; i < shown; ++i) {
      static constexpr char kRamp[] = " .:-=+*#%@";
      const double frac = series[i].mbps / std::max(stats.peak_mbps, 1e-9);
      spark += kRamp[static_cast<std::size_t>(frac * 9.0)];
    }
    std::cout << "  [" << spark << "]\n\n";
  }

  util::OnlineStats remote_means;
  for (const auto& pv : remote_pairs) {
    const auto series = analysis::bandwidth_series(
        ctx.result.store, &ctx.tri.rm2, pv.src, pv.dst, util::minutes(10));
    remote_means.add(analysis::series_stats(series).mean_mbps);
  }
  std::cout << "Mean-of-means: local "
            << util::format_fixed(local_means.mean(), 1)
            << " MBps vs remote "
            << util::format_fixed(remote_means.mean(), 1)
            << " MBps  (paper: local generally higher)  -> "
            << (local_means.mean() > remote_means.mean() ? "HOLDS"
                                                         : "VIOLATED")
            << "\n";
  return 0;
}
