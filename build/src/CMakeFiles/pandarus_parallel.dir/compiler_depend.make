# Empty compiler generated dependencies file for pandarus_parallel.
# This may be replaced when dependencies are built.
