file(REMOVE_RECURSE
  "libpandarus_parallel.a"
)
