file(REMOVE_RECURSE
  "CMakeFiles/pandarus_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/pandarus_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libpandarus_parallel.a"
  "libpandarus_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandarus_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
