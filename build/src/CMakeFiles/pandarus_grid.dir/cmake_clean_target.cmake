file(REMOVE_RECURSE
  "libpandarus_grid.a"
)
