# Empty compiler generated dependencies file for pandarus_grid.
# This may be replaced when dependencies are built.
