# Empty dependencies file for pandarus_grid.
# This may be replaced when dependencies are built.
