file(REMOVE_RECURSE
  "CMakeFiles/pandarus_grid.dir/grid/builder.cpp.o"
  "CMakeFiles/pandarus_grid.dir/grid/builder.cpp.o.d"
  "CMakeFiles/pandarus_grid.dir/grid/link.cpp.o"
  "CMakeFiles/pandarus_grid.dir/grid/link.cpp.o.d"
  "CMakeFiles/pandarus_grid.dir/grid/load_model.cpp.o"
  "CMakeFiles/pandarus_grid.dir/grid/load_model.cpp.o.d"
  "CMakeFiles/pandarus_grid.dir/grid/site.cpp.o"
  "CMakeFiles/pandarus_grid.dir/grid/site.cpp.o.d"
  "CMakeFiles/pandarus_grid.dir/grid/topology.cpp.o"
  "CMakeFiles/pandarus_grid.dir/grid/topology.cpp.o.d"
  "libpandarus_grid.a"
  "libpandarus_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandarus_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
