
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/builder.cpp" "src/CMakeFiles/pandarus_grid.dir/grid/builder.cpp.o" "gcc" "src/CMakeFiles/pandarus_grid.dir/grid/builder.cpp.o.d"
  "/root/repo/src/grid/link.cpp" "src/CMakeFiles/pandarus_grid.dir/grid/link.cpp.o" "gcc" "src/CMakeFiles/pandarus_grid.dir/grid/link.cpp.o.d"
  "/root/repo/src/grid/load_model.cpp" "src/CMakeFiles/pandarus_grid.dir/grid/load_model.cpp.o" "gcc" "src/CMakeFiles/pandarus_grid.dir/grid/load_model.cpp.o.d"
  "/root/repo/src/grid/site.cpp" "src/CMakeFiles/pandarus_grid.dir/grid/site.cpp.o" "gcc" "src/CMakeFiles/pandarus_grid.dir/grid/site.cpp.o.d"
  "/root/repo/src/grid/topology.cpp" "src/CMakeFiles/pandarus_grid.dir/grid/topology.cpp.o" "gcc" "src/CMakeFiles/pandarus_grid.dir/grid/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pandarus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
