# Empty dependencies file for pandarus_dms.
# This may be replaced when dependencies are built.
