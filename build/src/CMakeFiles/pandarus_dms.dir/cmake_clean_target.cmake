file(REMOVE_RECURSE
  "libpandarus_dms.a"
)
