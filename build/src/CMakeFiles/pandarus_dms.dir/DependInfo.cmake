
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dms/catalog.cpp" "src/CMakeFiles/pandarus_dms.dir/dms/catalog.cpp.o" "gcc" "src/CMakeFiles/pandarus_dms.dir/dms/catalog.cpp.o.d"
  "/root/repo/src/dms/deletion.cpp" "src/CMakeFiles/pandarus_dms.dir/dms/deletion.cpp.o" "gcc" "src/CMakeFiles/pandarus_dms.dir/dms/deletion.cpp.o.d"
  "/root/repo/src/dms/did.cpp" "src/CMakeFiles/pandarus_dms.dir/dms/did.cpp.o" "gcc" "src/CMakeFiles/pandarus_dms.dir/dms/did.cpp.o.d"
  "/root/repo/src/dms/rse.cpp" "src/CMakeFiles/pandarus_dms.dir/dms/rse.cpp.o" "gcc" "src/CMakeFiles/pandarus_dms.dir/dms/rse.cpp.o.d"
  "/root/repo/src/dms/rule.cpp" "src/CMakeFiles/pandarus_dms.dir/dms/rule.cpp.o" "gcc" "src/CMakeFiles/pandarus_dms.dir/dms/rule.cpp.o.d"
  "/root/repo/src/dms/selector.cpp" "src/CMakeFiles/pandarus_dms.dir/dms/selector.cpp.o" "gcc" "src/CMakeFiles/pandarus_dms.dir/dms/selector.cpp.o.d"
  "/root/repo/src/dms/transfer.cpp" "src/CMakeFiles/pandarus_dms.dir/dms/transfer.cpp.o" "gcc" "src/CMakeFiles/pandarus_dms.dir/dms/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pandarus_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
