file(REMOVE_RECURSE
  "CMakeFiles/pandarus_dms.dir/dms/catalog.cpp.o"
  "CMakeFiles/pandarus_dms.dir/dms/catalog.cpp.o.d"
  "CMakeFiles/pandarus_dms.dir/dms/deletion.cpp.o"
  "CMakeFiles/pandarus_dms.dir/dms/deletion.cpp.o.d"
  "CMakeFiles/pandarus_dms.dir/dms/did.cpp.o"
  "CMakeFiles/pandarus_dms.dir/dms/did.cpp.o.d"
  "CMakeFiles/pandarus_dms.dir/dms/rse.cpp.o"
  "CMakeFiles/pandarus_dms.dir/dms/rse.cpp.o.d"
  "CMakeFiles/pandarus_dms.dir/dms/rule.cpp.o"
  "CMakeFiles/pandarus_dms.dir/dms/rule.cpp.o.d"
  "CMakeFiles/pandarus_dms.dir/dms/selector.cpp.o"
  "CMakeFiles/pandarus_dms.dir/dms/selector.cpp.o.d"
  "CMakeFiles/pandarus_dms.dir/dms/transfer.cpp.o"
  "CMakeFiles/pandarus_dms.dir/dms/transfer.cpp.o.d"
  "libpandarus_dms.a"
  "libpandarus_dms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandarus_dms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
