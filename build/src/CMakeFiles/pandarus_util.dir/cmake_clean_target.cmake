file(REMOVE_RECURSE
  "libpandarus_util.a"
)
