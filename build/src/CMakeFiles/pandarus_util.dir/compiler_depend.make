# Empty compiler generated dependencies file for pandarus_util.
# This may be replaced when dependencies are built.
