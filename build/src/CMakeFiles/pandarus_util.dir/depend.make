# Empty dependencies file for pandarus_util.
# This may be replaced when dependencies are built.
