file(REMOVE_RECURSE
  "CMakeFiles/pandarus_util.dir/util/csv.cpp.o"
  "CMakeFiles/pandarus_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/pandarus_util.dir/util/format.cpp.o"
  "CMakeFiles/pandarus_util.dir/util/format.cpp.o.d"
  "CMakeFiles/pandarus_util.dir/util/histogram.cpp.o"
  "CMakeFiles/pandarus_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/pandarus_util.dir/util/log.cpp.o"
  "CMakeFiles/pandarus_util.dir/util/log.cpp.o.d"
  "CMakeFiles/pandarus_util.dir/util/rng.cpp.o"
  "CMakeFiles/pandarus_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/pandarus_util.dir/util/stats.cpp.o"
  "CMakeFiles/pandarus_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/pandarus_util.dir/util/table.cpp.o"
  "CMakeFiles/pandarus_util.dir/util/table.cpp.o.d"
  "CMakeFiles/pandarus_util.dir/util/time.cpp.o"
  "CMakeFiles/pandarus_util.dir/util/time.cpp.o.d"
  "libpandarus_util.a"
  "libpandarus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandarus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
