file(REMOVE_RECURSE
  "libpandarus_core.a"
)
