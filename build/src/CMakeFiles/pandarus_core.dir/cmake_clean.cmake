file(REMOVE_RECURSE
  "CMakeFiles/pandarus_core.dir/core/anomaly.cpp.o"
  "CMakeFiles/pandarus_core.dir/core/anomaly.cpp.o.d"
  "CMakeFiles/pandarus_core.dir/core/exact.cpp.o"
  "CMakeFiles/pandarus_core.dir/core/exact.cpp.o.d"
  "CMakeFiles/pandarus_core.dir/core/inference.cpp.o"
  "CMakeFiles/pandarus_core.dir/core/inference.cpp.o.d"
  "CMakeFiles/pandarus_core.dir/core/match_types.cpp.o"
  "CMakeFiles/pandarus_core.dir/core/match_types.cpp.o.d"
  "CMakeFiles/pandarus_core.dir/core/metrics.cpp.o"
  "CMakeFiles/pandarus_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/pandarus_core.dir/core/parallel_driver.cpp.o"
  "CMakeFiles/pandarus_core.dir/core/parallel_driver.cpp.o.d"
  "CMakeFiles/pandarus_core.dir/core/relaxed.cpp.o"
  "CMakeFiles/pandarus_core.dir/core/relaxed.cpp.o.d"
  "CMakeFiles/pandarus_core.dir/core/windowed.cpp.o"
  "CMakeFiles/pandarus_core.dir/core/windowed.cpp.o.d"
  "libpandarus_core.a"
  "libpandarus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandarus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
