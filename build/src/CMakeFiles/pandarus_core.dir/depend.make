# Empty dependencies file for pandarus_core.
# This may be replaced when dependencies are built.
