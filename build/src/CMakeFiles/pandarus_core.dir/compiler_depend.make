# Empty compiler generated dependencies file for pandarus_core.
# This may be replaced when dependencies are built.
