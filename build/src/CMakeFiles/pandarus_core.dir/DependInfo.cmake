
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly.cpp" "src/CMakeFiles/pandarus_core.dir/core/anomaly.cpp.o" "gcc" "src/CMakeFiles/pandarus_core.dir/core/anomaly.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/CMakeFiles/pandarus_core.dir/core/exact.cpp.o" "gcc" "src/CMakeFiles/pandarus_core.dir/core/exact.cpp.o.d"
  "/root/repo/src/core/inference.cpp" "src/CMakeFiles/pandarus_core.dir/core/inference.cpp.o" "gcc" "src/CMakeFiles/pandarus_core.dir/core/inference.cpp.o.d"
  "/root/repo/src/core/match_types.cpp" "src/CMakeFiles/pandarus_core.dir/core/match_types.cpp.o" "gcc" "src/CMakeFiles/pandarus_core.dir/core/match_types.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/pandarus_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/pandarus_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/parallel_driver.cpp" "src/CMakeFiles/pandarus_core.dir/core/parallel_driver.cpp.o" "gcc" "src/CMakeFiles/pandarus_core.dir/core/parallel_driver.cpp.o.d"
  "/root/repo/src/core/relaxed.cpp" "src/CMakeFiles/pandarus_core.dir/core/relaxed.cpp.o" "gcc" "src/CMakeFiles/pandarus_core.dir/core/relaxed.cpp.o.d"
  "/root/repo/src/core/windowed.cpp" "src/CMakeFiles/pandarus_core.dir/core/windowed.cpp.o" "gcc" "src/CMakeFiles/pandarus_core.dir/core/windowed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pandarus_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_wms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_dms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
