file(REMOVE_RECURSE
  "libpandarus_wms.a"
)
