file(REMOVE_RECURSE
  "CMakeFiles/pandarus_wms.dir/wms/brokerage.cpp.o"
  "CMakeFiles/pandarus_wms.dir/wms/brokerage.cpp.o.d"
  "CMakeFiles/pandarus_wms.dir/wms/job.cpp.o"
  "CMakeFiles/pandarus_wms.dir/wms/job.cpp.o.d"
  "CMakeFiles/pandarus_wms.dir/wms/panda_server.cpp.o"
  "CMakeFiles/pandarus_wms.dir/wms/panda_server.cpp.o.d"
  "CMakeFiles/pandarus_wms.dir/wms/site_queue.cpp.o"
  "CMakeFiles/pandarus_wms.dir/wms/site_queue.cpp.o.d"
  "CMakeFiles/pandarus_wms.dir/wms/workload.cpp.o"
  "CMakeFiles/pandarus_wms.dir/wms/workload.cpp.o.d"
  "libpandarus_wms.a"
  "libpandarus_wms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandarus_wms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
