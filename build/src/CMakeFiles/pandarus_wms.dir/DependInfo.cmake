
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wms/brokerage.cpp" "src/CMakeFiles/pandarus_wms.dir/wms/brokerage.cpp.o" "gcc" "src/CMakeFiles/pandarus_wms.dir/wms/brokerage.cpp.o.d"
  "/root/repo/src/wms/job.cpp" "src/CMakeFiles/pandarus_wms.dir/wms/job.cpp.o" "gcc" "src/CMakeFiles/pandarus_wms.dir/wms/job.cpp.o.d"
  "/root/repo/src/wms/panda_server.cpp" "src/CMakeFiles/pandarus_wms.dir/wms/panda_server.cpp.o" "gcc" "src/CMakeFiles/pandarus_wms.dir/wms/panda_server.cpp.o.d"
  "/root/repo/src/wms/site_queue.cpp" "src/CMakeFiles/pandarus_wms.dir/wms/site_queue.cpp.o" "gcc" "src/CMakeFiles/pandarus_wms.dir/wms/site_queue.cpp.o.d"
  "/root/repo/src/wms/workload.cpp" "src/CMakeFiles/pandarus_wms.dir/wms/workload.cpp.o" "gcc" "src/CMakeFiles/pandarus_wms.dir/wms/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pandarus_dms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
