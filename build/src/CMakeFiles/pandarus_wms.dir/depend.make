# Empty dependencies file for pandarus_wms.
# This may be replaced when dependencies are built.
