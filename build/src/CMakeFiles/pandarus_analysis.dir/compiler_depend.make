# Empty compiler generated dependencies file for pandarus_analysis.
# This may be replaced when dependencies are built.
