file(REMOVE_RECURSE
  "CMakeFiles/pandarus_analysis.dir/analysis/bandwidth.cpp.o"
  "CMakeFiles/pandarus_analysis.dir/analysis/bandwidth.cpp.o.d"
  "CMakeFiles/pandarus_analysis.dir/analysis/breakdown.cpp.o"
  "CMakeFiles/pandarus_analysis.dir/analysis/breakdown.cpp.o.d"
  "CMakeFiles/pandarus_analysis.dir/analysis/casestudy.cpp.o"
  "CMakeFiles/pandarus_analysis.dir/analysis/casestudy.cpp.o.d"
  "CMakeFiles/pandarus_analysis.dir/analysis/heatmap.cpp.o"
  "CMakeFiles/pandarus_analysis.dir/analysis/heatmap.cpp.o.d"
  "CMakeFiles/pandarus_analysis.dir/analysis/imbalance.cpp.o"
  "CMakeFiles/pandarus_analysis.dir/analysis/imbalance.cpp.o.d"
  "CMakeFiles/pandarus_analysis.dir/analysis/report.cpp.o"
  "CMakeFiles/pandarus_analysis.dir/analysis/report.cpp.o.d"
  "CMakeFiles/pandarus_analysis.dir/analysis/summary.cpp.o"
  "CMakeFiles/pandarus_analysis.dir/analysis/summary.cpp.o.d"
  "CMakeFiles/pandarus_analysis.dir/analysis/threshold.cpp.o"
  "CMakeFiles/pandarus_analysis.dir/analysis/threshold.cpp.o.d"
  "CMakeFiles/pandarus_analysis.dir/analysis/volume_growth.cpp.o"
  "CMakeFiles/pandarus_analysis.dir/analysis/volume_growth.cpp.o.d"
  "libpandarus_analysis.a"
  "libpandarus_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandarus_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
