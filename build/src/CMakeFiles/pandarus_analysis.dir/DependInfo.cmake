
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bandwidth.cpp" "src/CMakeFiles/pandarus_analysis.dir/analysis/bandwidth.cpp.o" "gcc" "src/CMakeFiles/pandarus_analysis.dir/analysis/bandwidth.cpp.o.d"
  "/root/repo/src/analysis/breakdown.cpp" "src/CMakeFiles/pandarus_analysis.dir/analysis/breakdown.cpp.o" "gcc" "src/CMakeFiles/pandarus_analysis.dir/analysis/breakdown.cpp.o.d"
  "/root/repo/src/analysis/casestudy.cpp" "src/CMakeFiles/pandarus_analysis.dir/analysis/casestudy.cpp.o" "gcc" "src/CMakeFiles/pandarus_analysis.dir/analysis/casestudy.cpp.o.d"
  "/root/repo/src/analysis/heatmap.cpp" "src/CMakeFiles/pandarus_analysis.dir/analysis/heatmap.cpp.o" "gcc" "src/CMakeFiles/pandarus_analysis.dir/analysis/heatmap.cpp.o.d"
  "/root/repo/src/analysis/imbalance.cpp" "src/CMakeFiles/pandarus_analysis.dir/analysis/imbalance.cpp.o" "gcc" "src/CMakeFiles/pandarus_analysis.dir/analysis/imbalance.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/pandarus_analysis.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/pandarus_analysis.dir/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/summary.cpp" "src/CMakeFiles/pandarus_analysis.dir/analysis/summary.cpp.o" "gcc" "src/CMakeFiles/pandarus_analysis.dir/analysis/summary.cpp.o.d"
  "/root/repo/src/analysis/threshold.cpp" "src/CMakeFiles/pandarus_analysis.dir/analysis/threshold.cpp.o" "gcc" "src/CMakeFiles/pandarus_analysis.dir/analysis/threshold.cpp.o.d"
  "/root/repo/src/analysis/volume_growth.cpp" "src/CMakeFiles/pandarus_analysis.dir/analysis/volume_growth.cpp.o" "gcc" "src/CMakeFiles/pandarus_analysis.dir/analysis/volume_growth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pandarus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_wms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_dms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
