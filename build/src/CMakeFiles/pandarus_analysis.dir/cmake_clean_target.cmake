file(REMOVE_RECURSE
  "libpandarus_analysis.a"
)
