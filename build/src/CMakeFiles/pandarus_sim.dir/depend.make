# Empty dependencies file for pandarus_sim.
# This may be replaced when dependencies are built.
