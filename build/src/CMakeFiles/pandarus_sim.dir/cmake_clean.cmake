file(REMOVE_RECURSE
  "CMakeFiles/pandarus_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/pandarus_sim.dir/sim/scheduler.cpp.o.d"
  "libpandarus_sim.a"
  "libpandarus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandarus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
