file(REMOVE_RECURSE
  "libpandarus_sim.a"
)
