# Empty compiler generated dependencies file for pandarus_sim.
# This may be replaced when dependencies are built.
