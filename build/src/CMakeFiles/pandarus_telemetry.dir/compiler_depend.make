# Empty compiler generated dependencies file for pandarus_telemetry.
# This may be replaced when dependencies are built.
