file(REMOVE_RECURSE
  "libpandarus_telemetry.a"
)
