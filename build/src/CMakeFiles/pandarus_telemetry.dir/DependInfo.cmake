
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/corruption.cpp" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/corruption.cpp.o" "gcc" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/corruption.cpp.o.d"
  "/root/repo/src/telemetry/io.cpp" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/io.cpp.o" "gcc" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/io.cpp.o.d"
  "/root/repo/src/telemetry/query.cpp" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/query.cpp.o" "gcc" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/query.cpp.o.d"
  "/root/repo/src/telemetry/recorder.cpp" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/recorder.cpp.o" "gcc" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/recorder.cpp.o.d"
  "/root/repo/src/telemetry/records.cpp" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/records.cpp.o" "gcc" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/records.cpp.o.d"
  "/root/repo/src/telemetry/store.cpp" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/store.cpp.o" "gcc" "src/CMakeFiles/pandarus_telemetry.dir/telemetry/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pandarus_wms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_dms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
