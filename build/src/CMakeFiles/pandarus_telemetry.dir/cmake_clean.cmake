file(REMOVE_RECURSE
  "CMakeFiles/pandarus_telemetry.dir/telemetry/corruption.cpp.o"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/corruption.cpp.o.d"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/io.cpp.o"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/io.cpp.o.d"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/query.cpp.o"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/query.cpp.o.d"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/recorder.cpp.o"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/recorder.cpp.o.d"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/records.cpp.o"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/records.cpp.o.d"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/store.cpp.o"
  "CMakeFiles/pandarus_telemetry.dir/telemetry/store.cpp.o.d"
  "libpandarus_telemetry.a"
  "libpandarus_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandarus_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
