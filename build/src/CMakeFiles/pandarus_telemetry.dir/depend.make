# Empty dependencies file for pandarus_telemetry.
# This may be replaced when dependencies are built.
