file(REMOVE_RECURSE
  "CMakeFiles/pandarus_scenario.dir/scenario/campaign.cpp.o"
  "CMakeFiles/pandarus_scenario.dir/scenario/campaign.cpp.o.d"
  "CMakeFiles/pandarus_scenario.dir/scenario/config.cpp.o"
  "CMakeFiles/pandarus_scenario.dir/scenario/config.cpp.o.d"
  "libpandarus_scenario.a"
  "libpandarus_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandarus_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
