file(REMOVE_RECURSE
  "libpandarus_scenario.a"
)
