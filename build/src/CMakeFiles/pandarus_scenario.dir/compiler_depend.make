# Empty compiler generated dependencies file for pandarus_scenario.
# This may be replaced when dependencies are built.
