# Empty dependencies file for pandarus_scenario.
# This may be replaced when dependencies are built.
