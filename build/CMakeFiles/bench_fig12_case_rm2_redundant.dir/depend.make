# Empty dependencies file for bench_fig12_case_rm2_redundant.
# This may be replaced when dependencies are built.
