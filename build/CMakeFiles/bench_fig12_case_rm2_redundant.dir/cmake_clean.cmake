file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_case_rm2_redundant.dir/bench/bench_fig12_case_rm2_redundant.cpp.o"
  "CMakeFiles/bench_fig12_case_rm2_redundant.dir/bench/bench_fig12_case_rm2_redundant.cpp.o.d"
  "bench/bench_fig12_case_rm2_redundant"
  "bench/bench_fig12_case_rm2_redundant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_case_rm2_redundant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
