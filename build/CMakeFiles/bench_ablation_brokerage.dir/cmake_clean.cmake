file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_brokerage.dir/bench/bench_ablation_brokerage.cpp.o"
  "CMakeFiles/bench_ablation_brokerage.dir/bench/bench_ablation_brokerage.cpp.o.d"
  "bench/bench_ablation_brokerage"
  "bench/bench_ablation_brokerage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_brokerage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
