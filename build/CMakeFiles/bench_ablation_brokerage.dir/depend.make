# Empty dependencies file for bench_ablation_brokerage.
# This may be replaced when dependencies are built.
