file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_matching.dir/bench/bench_perf_matching.cpp.o"
  "CMakeFiles/bench_perf_matching.dir/bench/bench_perf_matching.cpp.o.d"
  "bench/bench_perf_matching"
  "bench/bench_perf_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
