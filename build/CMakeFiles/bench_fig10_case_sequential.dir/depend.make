# Empty dependencies file for bench_fig10_case_sequential.
# This may be replaced when dependencies are built.
