file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_case_sequential.dir/bench/bench_fig10_case_sequential.cpp.o"
  "CMakeFiles/bench_fig10_case_sequential.dir/bench/bench_fig10_case_sequential.cpp.o.d"
  "bench/bench_fig10_case_sequential"
  "bench/bench_fig10_case_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_case_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
