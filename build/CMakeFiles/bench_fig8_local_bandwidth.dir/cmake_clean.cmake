file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_local_bandwidth.dir/bench/bench_fig8_local_bandwidth.cpp.o"
  "CMakeFiles/bench_fig8_local_bandwidth.dir/bench/bench_fig8_local_bandwidth.cpp.o.d"
  "bench/bench_fig8_local_bandwidth"
  "bench/bench_fig8_local_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_local_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
