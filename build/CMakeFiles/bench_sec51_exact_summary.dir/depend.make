# Empty dependencies file for bench_sec51_exact_summary.
# This may be replaced when dependencies are built.
