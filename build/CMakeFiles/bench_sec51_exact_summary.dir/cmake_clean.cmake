file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_exact_summary.dir/bench/bench_sec51_exact_summary.cpp.o"
  "CMakeFiles/bench_sec51_exact_summary.dir/bench/bench_sec51_exact_summary.cpp.o.d"
  "bench/bench_sec51_exact_summary"
  "bench/bench_sec51_exact_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_exact_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
