file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_top_local_jobs.dir/bench/bench_fig5_top_local_jobs.cpp.o"
  "CMakeFiles/bench_fig5_top_local_jobs.dir/bench/bench_fig5_top_local_jobs.cpp.o.d"
  "bench/bench_fig5_top_local_jobs"
  "bench/bench_fig5_top_local_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_top_local_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
