# Empty dependencies file for bench_fig5_top_local_jobs.
# This may be replaced when dependencies are built.
