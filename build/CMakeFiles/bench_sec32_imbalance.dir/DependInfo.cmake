
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec32_imbalance.cpp" "CMakeFiles/bench_sec32_imbalance.dir/bench/bench_sec32_imbalance.cpp.o" "gcc" "CMakeFiles/bench_sec32_imbalance.dir/bench/bench_sec32_imbalance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pandarus_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_wms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_dms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandarus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
