# Empty dependencies file for bench_sec32_imbalance.
# This may be replaced when dependencies are built.
