file(REMOVE_RECURSE
  "CMakeFiles/bench_sec32_imbalance.dir/bench/bench_sec32_imbalance.cpp.o"
  "CMakeFiles/bench_sec32_imbalance.dir/bench/bench_sec32_imbalance.cpp.o.d"
  "bench/bench_sec32_imbalance"
  "bench/bench_sec32_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
