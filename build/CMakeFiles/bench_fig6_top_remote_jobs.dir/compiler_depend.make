# Empty compiler generated dependencies file for bench_fig6_top_remote_jobs.
# This may be replaced when dependencies are built.
