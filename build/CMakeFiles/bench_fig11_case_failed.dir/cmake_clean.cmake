file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_case_failed.dir/bench/bench_fig11_case_failed.cpp.o"
  "CMakeFiles/bench_fig11_case_failed.dir/bench/bench_fig11_case_failed.cpp.o.d"
  "bench/bench_fig11_case_failed"
  "bench/bench_fig11_case_failed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_case_failed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
