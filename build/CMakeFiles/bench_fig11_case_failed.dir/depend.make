# Empty dependencies file for bench_fig11_case_failed.
# This may be replaced when dependencies are built.
