file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_activity_breakdown.dir/bench/bench_table1_activity_breakdown.cpp.o"
  "CMakeFiles/bench_table1_activity_breakdown.dir/bench/bench_table1_activity_breakdown.cpp.o.d"
  "bench/bench_table1_activity_breakdown"
  "bench/bench_table1_activity_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_activity_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
