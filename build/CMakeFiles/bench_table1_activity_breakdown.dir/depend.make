# Empty dependencies file for bench_table1_activity_breakdown.
# This may be replaced when dependencies are built.
