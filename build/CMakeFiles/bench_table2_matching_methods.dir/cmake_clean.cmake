file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_matching_methods.dir/bench/bench_table2_matching_methods.cpp.o"
  "CMakeFiles/bench_table2_matching_methods.dir/bench/bench_table2_matching_methods.cpp.o.d"
  "bench/bench_table2_matching_methods"
  "bench/bench_table2_matching_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_matching_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
