# Empty compiler generated dependencies file for bench_table2_matching_methods.
# This may be replaced when dependencies are built.
