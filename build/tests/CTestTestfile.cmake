# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[util_test]=] "/root/repo/build/tests/util_test")
set_tests_properties([=[util_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[sim_test]=] "/root/repo/build/tests/sim_test")
set_tests_properties([=[sim_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[grid_test]=] "/root/repo/build/tests/grid_test")
set_tests_properties([=[grid_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[dms_test]=] "/root/repo/build/tests/dms_test")
set_tests_properties([=[dms_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[core_match_test]=] "/root/repo/build/tests/core_match_test")
set_tests_properties([=[core_match_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[windowed_test]=] "/root/repo/build/tests/windowed_test")
set_tests_properties([=[windowed_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[wms_test]=] "/root/repo/build/tests/wms_test")
set_tests_properties([=[wms_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[telemetry_test]=] "/root/repo/build/tests/telemetry_test")
set_tests_properties([=[telemetry_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[parallel_test]=] "/root/repo/build/tests/parallel_test")
set_tests_properties([=[parallel_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[analysis_test]=] "/root/repo/build/tests/analysis_test")
set_tests_properties([=[analysis_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[anomaly_imbalance_test]=] "/root/repo/build/tests/anomaly_imbalance_test")
set_tests_properties([=[anomaly_imbalance_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[scenario_test]=] "/root/repo/build/tests/scenario_test")
set_tests_properties([=[scenario_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[property_test]=] "/root/repo/build/tests/property_test")
set_tests_properties([=[property_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;pandarus_test;/root/repo/tests/CMakeLists.txt;0;")
