file(REMOVE_RECURSE
  "CMakeFiles/core_match_test.dir/core_match_test.cpp.o"
  "CMakeFiles/core_match_test.dir/core_match_test.cpp.o.d"
  "core_match_test"
  "core_match_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
