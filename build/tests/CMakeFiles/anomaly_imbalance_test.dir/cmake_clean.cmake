file(REMOVE_RECURSE
  "CMakeFiles/anomaly_imbalance_test.dir/anomaly_imbalance_test.cpp.o"
  "CMakeFiles/anomaly_imbalance_test.dir/anomaly_imbalance_test.cpp.o.d"
  "anomaly_imbalance_test"
  "anomaly_imbalance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_imbalance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
