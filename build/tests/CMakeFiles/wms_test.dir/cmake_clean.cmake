file(REMOVE_RECURSE
  "CMakeFiles/wms_test.dir/wms_test.cpp.o"
  "CMakeFiles/wms_test.dir/wms_test.cpp.o.d"
  "wms_test"
  "wms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
