# Empty dependencies file for metadata_quality.
# This may be replaced when dependencies are built.
