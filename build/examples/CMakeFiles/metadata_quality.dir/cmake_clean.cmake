file(REMOVE_RECURSE
  "CMakeFiles/metadata_quality.dir/metadata_quality.cpp.o"
  "CMakeFiles/metadata_quality.dir/metadata_quality.cpp.o.d"
  "metadata_quality"
  "metadata_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
