file(REMOVE_RECURSE
  "CMakeFiles/analysis_campaign.dir/analysis_campaign.cpp.o"
  "CMakeFiles/analysis_campaign.dir/analysis_campaign.cpp.o.d"
  "analysis_campaign"
  "analysis_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
