# Empty dependencies file for analysis_campaign.
# This may be replaced when dependencies are built.
