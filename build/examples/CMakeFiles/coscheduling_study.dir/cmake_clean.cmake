file(REMOVE_RECURSE
  "CMakeFiles/coscheduling_study.dir/coscheduling_study.cpp.o"
  "CMakeFiles/coscheduling_study.dir/coscheduling_study.cpp.o.d"
  "coscheduling_study"
  "coscheduling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coscheduling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
