# Empty dependencies file for coscheduling_study.
# This may be replaced when dependencies are built.
