// pandarus-flow: critical-path wait attribution over causal flows.
//
//   pandarus-flow <events.ndjson> [stacks.collapsed]
//   pandarus-flow --demo [seed] [stacks.collapsed]
//
// Replay mode rebuilds every job's causal flow from a PANDARUS_EVENTS
// stream recorded with flows armed (PANDARUS_FLOWS set) and prints the
// wait-attribution table: per-phase p50/p95/p99, campaign totals, the
// top links by critical stage-in seconds, and the flagged
// sequential-staging case-study jobs with their bottleneck link.
//
// Demo mode runs a small campaign with a live FlowTracker installed and
// prints the same attribution from the online analyzer — the numbers a
// replay of that campaign's stream would reproduce bit-for-bit.
//
// Both modes write a flamegraph collapsed-stack file (feed it to
// flamegraph.pl / speedscope / inferno): one stack per site and phase,
// stage-in split per link plus an idle frame.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "pandarus.hpp"

namespace {

int write_stacks(const std::string& path, const std::string& collapsed) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "pandarus-flow: cannot write " << path << '\n';
    return 1;
  }
  out << collapsed;
  std::cout << "wrote " << path << " (" << collapsed.size() << " bytes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pandarus;

  if (argc < 2) {
    std::cerr << "usage: pandarus-flow <events.ndjson> [stacks.collapsed]\n"
              << "       pandarus-flow --demo [seed] [stacks.collapsed]\n";
    return 2;
  }

  analysis::FlowAnalysis flows;
  std::string stacks_path = "flow-stacks.collapsed";

  if (std::strcmp(argv[1], "--demo") == 0) {
    obs::install_env_hooks();
    scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
    int arg = 2;
    if (arg < argc && std::isdigit(static_cast<unsigned char>(*argv[arg]))) {
      config.seed = std::strtoull(argv[arg++], nullptr, 10);
    }
    if (arg < argc) stacks_path = argv[arg];

    // A live tracker for the whole campaign (a no-op when
    // PANDARUS_FLOWS already installed one).
    obs::FlowTracker tracker;
    if (obs::FlowTracker::installed() == nullptr) tracker.install();
    obs::FlowTracker& active = *obs::FlowTracker::installed();

    std::cout << "Running a " << config.days << "-day campaign (seed "
              << config.seed << ") with causal flows on ...\n";
    const scenario::ScenarioResult result = scenario::run_campaign(config);

    std::map<std::int64_t, std::string> names;
    for (const grid::Site& s : result.topology.sites()) {
      names[static_cast<std::int64_t>(s.id)] = s.name;
    }
    flows = analysis::analyze_flows(active, std::move(names));
    if (&active == &tracker) tracker.uninstall();
  } else {
    const std::string events_path = argv[1];
    if (argc > 2) stacks_path = argv[2];
    const analysis::ReplayResult replay =
        analysis::replay_events_file(events_path);
    if (replay.lines_parsed == 0) {
      std::cerr << "pandarus-flow: no events parsed from " << events_path
                << '\n';
      return 1;
    }
    std::cout << "replayed " << replay.lines_parsed << " events ("
              << replay.flow_events.size() << " flow/transfer rows)\n";
    flows = analysis::rebuild_flows(replay);
  }

  if (flows.flows.empty()) {
    std::cerr << "pandarus-flow: no completed flows (was the stream "
                 "recorded with PANDARUS_FLOWS set?)\n";
    return 1;
  }
  std::cout << '\n' << analysis::render_attribution(flows);
  return write_stacks(stacks_path, flows.collapsed);
}
