// pandarus-events: query and convert recorded event streams.
//
//   pandarus-events convert <in> <out>
//       NDJSON -> colstore or colstore -> NDJSON (direction sniffed
//       from the input's magic bytes).
//   pandarus-events stats <file>
//       One JSON object on stdout: event/chunk counts, byte sizes,
//       sim-time span, per-kind counts.  Colstore stats walk only the
//       chunk headers and dictionary deltas — no column data decoded.
//   pandarus-events cat <colstore> [--type <kind>]... [--from <ms>]
//                    [--to <ms>] [--site <id>] [--limit <n>] [--tail <n>]
//       Filtered scan, NDJSON lines on stdout.  Kind and time-window
//       predicates skip whole chunks via the footer index; --limit
//       stops after the first N matches, --tail keeps only the last N
//       (ring buffer — bounded memory on any file size).
//   pandarus-events match <file>
//       Replays the stream (either format), rebuilds the MetadataStore
//       and runs the three matching methods; JSON counts on stdout.
//   pandarus-events recover <in> [<out>]
//       Salvages the longest valid prefix of a crash-truncated stream
//       (whole NDJSON lines / CRC-valid colstore chunks).  Without
//       <out> the file is repaired in place; a JSON recovery report
//       goes to stdout either way.
//
// Record a stream with PANDARUS_EVENTS=<path> (NDJSON) and/or
// PANDARUS_EVENTS_COL=<path> (colstore) on any campaign binary.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/event_source.hpp"
#include "analysis/events_replay.hpp"
#include "core/relaxed.hpp"
#include "obs/colstore.hpp"
#include "obs/recover.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: pandarus-events convert <in> <out>\n"
         "       pandarus-events stats <file>\n"
         "       pandarus-events cat <colstore> [--type <kind>]...\n"
         "                       [--from <ms>] [--to <ms>] [--site <id>]\n"
         "                       [--limit <n>] [--tail <n>]\n"
         "       pandarus-events match <file>\n"
         "       pandarus-events recover <in> [<out>]\n";
  return 2;
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
  using pandarus::obs::ColReader;
  using pandarus::obs::ColWriter;
  if (pandarus::obs::is_colstore_file(in_path)) {
    ColReader reader(in_path);
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
    pandarus::obs::DecodedEvent event;
    std::string line;
    std::uint64_t rows = 0;
    while (reader.next(event)) {
      line.clear();
      pandarus::obs::append_ndjson(event, line);
      line += '\n';
      out.write(line.data(), static_cast<std::streamsize>(line.size()));
      ++rows;
    }
    if (!reader.ok()) {
      std::cerr << "convert stopped early: " << reader.error() << "\n";
      return 1;
    }
    out.flush();
    if (!out) {
      std::cerr << "short write to " << out_path << "\n";
      return 1;
    }
    std::cerr << "wrote " << rows << " events (ndjson) to " << out_path
              << "\n";
    return 0;
  }
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << in_path << "\n";
    return 1;
  }
  ColWriter writer(out_path);
  std::string line;
  while (std::getline(in, line)) writer.append_ndjson_line(line);
  if (!writer.close()) {
    std::cerr << "convert failed: " << writer.error() << "\n";
    return 1;
  }
  const auto& s = writer.stats();
  std::cerr << "wrote " << s.rows << " events in " << s.chunks
            << " chunk(s), " << s.bytes_written << " bytes";
  if (s.rejected != 0) std::cerr << ", " << s.rejected << " line(s) rejected";
  std::cerr << " to " << out_path << "\n";
  return 0;
}

void print_stats_json(const char* format, std::uint64_t events,
                      std::uint64_t chunks, std::uint64_t file_bytes,
                      std::int64_t min_ts, std::int64_t max_ts,
                      const std::map<std::string, std::uint64_t>& kinds) {
  std::printf("{\"format\":\"%s\",\"events\":%llu,\"chunks\":%llu,"
              "\"file_bytes\":%llu,\"bytes_per_event\":%.2f,"
              "\"min_ts\":%lld,\"max_ts\":%lld,\"kinds\":{",
              format, static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(chunks),
              static_cast<unsigned long long>(file_bytes),
              events != 0 ? static_cast<double>(file_bytes) /
                                static_cast<double>(events)
                          : 0.0,
              static_cast<long long>(min_ts), static_cast<long long>(max_ts));
  bool first = true;
  for (const auto& [kind, count] : kinds) {
    std::printf("%s\"%s\":%llu", first ? "" : ",", kind.c_str(),
                static_cast<unsigned long long>(count));
    first = false;
  }
  std::printf("}}\n");
}

int cmd_stats(const std::string& path) {
  if (pandarus::obs::is_colstore_file(path)) {
    std::string error;
    const auto stats = pandarus::obs::colstore_stats(path, &error);
    if (!stats) {
      std::cerr << "stats failed: " << error << "\n";
      return 1;
    }
    print_stats_json("colstore", stats->events, stats->chunks,
                     stats->file_bytes, stats->min_ts, stats->max_ts,
                     stats->kind_counts);
    return 0;
  }
  const auto source = pandarus::analysis::open_event_source(path);
  if (!source) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::map<std::string, std::uint64_t> kinds;
  std::uint64_t events = 0;
  std::int64_t min_ts = 0;
  std::int64_t max_ts = 0;
  while (const auto* v = source->next()) {
    const std::int64_t ts = v->get_int("ts");
    if (events == 0) {
      min_ts = max_ts = ts;
    } else {
      min_ts = std::min(min_ts, ts);
      max_ts = std::max(max_ts, ts);
    }
    ++events;
    ++kinds[std::string(v->get_string("kind"))];
  }
  std::uint64_t file_bytes = 0;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size > 0) file_bytes = static_cast<std::uint64_t>(size);
    std::fclose(f);
  }
  print_stats_json("ndjson", events, 0, file_bytes, min_ts, max_ts, kinds);
  return 0;
}

int cmd_cat(int argc, char** argv) {
  const std::string path = argv[2];
  pandarus::obs::ColFilter filter;
  std::int64_t limit = -1;  // emit at most N matching rows, then stop
  std::int64_t tail = -1;   // emit only the last N matching rows
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto int_arg = [&](std::optional<std::int64_t>& slot) -> bool {
      if (i + 1 >= argc) return false;
      slot = std::strtoll(argv[++i], nullptr, 10);
      return true;
    };
    bool ok = true;
    if (arg == "--type" && i + 1 < argc) {
      filter.kinds.emplace_back(argv[++i]);
    } else if (arg == "--from") {
      ok = int_arg(filter.ts_from);
    } else if (arg == "--to") {
      ok = int_arg(filter.ts_to);
    } else if (arg == "--site") {
      ok = int_arg(filter.site);
    } else if (arg == "--limit" && i + 1 < argc) {
      limit = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--tail" && i + 1 < argc) {
      tail = std::strtoll(argv[++i], nullptr, 10);
    } else {
      ok = false;
    }
    if (!ok) return usage();
  }
  if (limit >= 0 && tail >= 0) {
    std::cerr << "--limit and --tail are mutually exclusive\n";
    return usage();
  }
  pandarus::obs::ColReader reader(path, filter);
  pandarus::obs::DecodedEvent event;
  std::string line;
  std::uint64_t emitted = 0;
  // --tail keeps a ring of the last N rendered lines (bounded memory),
  // so inspecting the end of a large file never prints the whole scan.
  std::vector<std::string> ring;
  std::size_t ring_next = 0;
  if (tail > 0) ring.resize(static_cast<std::size_t>(tail));
  while (reader.next(event)) {
    line.clear();
    pandarus::obs::append_ndjson(event, line);
    line += '\n';
    if (tail >= 0) {
      if (tail > 0) {
        ring[ring_next] = line;
        ring_next = (ring_next + 1) % ring.size();
      }
      ++emitted;
      continue;
    }
    if (limit >= 0 && emitted >= static_cast<std::uint64_t>(limit)) break;
    std::fwrite(line.data(), 1, line.size(), stdout);
    ++emitted;
  }
  std::uint64_t printed = emitted;
  if (tail >= 0) {
    printed = 0;
    if (tail > 0) {
      const std::uint64_t have =
          std::min<std::uint64_t>(emitted, ring.size());
      // Oldest retained line sits at ring_next once the ring has wrapped.
      std::size_t at = emitted >= ring.size() ? ring_next : 0;
      for (std::uint64_t n = 0; n < have; ++n) {
        const std::string& kept = ring[at];
        std::fwrite(kept.data(), 1, kept.size(), stdout);
        at = (at + 1) % ring.size();
      }
      printed = have;
    }
  }
  if (!reader.ok()) {
    std::cerr << "scan stopped early: " << reader.error() << "\n";
    return 1;
  }
  const auto& s = reader.stats();
  std::cerr << "emitted " << printed << " of " << s.rows_emitted
            << " matching rows (" << s.rows_decoded << " decoded); "
            << s.chunks_read << " chunk(s) read, " << s.chunks_skipped
            << " skipped\n";
  return 0;
}

int cmd_match(const std::string& path) {
  const auto replay = pandarus::analysis::replay_events_file(path);
  if (replay.lines_parsed == 0) {
    std::cerr << "no events replayed from " << path << "\n";
    return 1;
  }
  const auto counts = replay.store.counts();
  const pandarus::core::Matcher matcher(replay.store);
  const pandarus::core::TriMatchResult tri =
      pandarus::core::run_all_methods(matcher);
  const auto method = [](const char* name,
                         const pandarus::core::MatchResult& r,
                         bool last = false) {
    std::printf("\"%s\":{\"matched_jobs\":%zu,\"matched_transfers\":%zu}%s",
                name, r.matched_job_count(), r.matched_transfer_count(),
                last ? "" : ",");
  };
  std::printf("{\"jobs\":%zu,\"transfers\":%zu,", counts.jobs,
              counts.transfers);
  method("exact", tri.exact);
  method("rm1", tri.rm1);
  method("rm2", tri.rm2, /*last=*/true);
  std::printf("}\n");
  return 0;
}

int cmd_recover(const std::string& in_path, const std::string& out_path) {
  using pandarus::obs::RecoveryReport;
  const RecoveryReport report =
      pandarus::obs::is_colstore_file(in_path)
          ? pandarus::obs::recover_colstore_file(in_path, out_path)
          : pandarus::obs::recover_ndjson_file(in_path, out_path);
  std::printf("{\"ok\":%s,\"truncated\":%s,\"salvaged_events\":%llu,"
              "\"salvaged_chunks\":%llu,\"salvaged_bytes\":%llu,"
              "\"dropped_bytes\":%llu,\"detail\":\"%s\"}\n",
              report.ok ? "true" : "false",
              report.truncated ? "true" : "false",
              static_cast<unsigned long long>(report.salvaged_events),
              static_cast<unsigned long long>(report.salvaged_chunks),
              static_cast<unsigned long long>(report.salvaged_bytes),
              static_cast<unsigned long long>(report.dropped_bytes),
              report.detail.c_str());
  return report.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view cmd = argv[1];
  if (cmd == "convert" && argc == 4) return cmd_convert(argv[2], argv[3]);
  if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
  if (cmd == "cat" && argc >= 3) return cmd_cat(argc, argv);
  if (cmd == "match" && argc == 3) return cmd_match(argv[2]);
  if (cmd == "recover" && (argc == 3 || argc == 4)) {
    return cmd_recover(argv[2], argc == 4 ? argv[3] : argv[2]);
  }
  return usage();
}
