// Chaos sweep: deterministic infrastructure fault injection vs the
// transfer path's self-healing stack.
//
// For each fault intensity the same seeded fault plan (site outages,
// link blackouts/brownouts, storage outages, transfer-service brownouts
// — see fault::Plan::sample) is run twice: once with the legacy
// instant-requeue transfer engine and once with recovery enabled
// (exponential backoff, per-link circuit breakers, alternate-source
// retry).  The table quantifies what recovery buys: fewer terminal
// transfer failures and a matched-job fraction that survives the chaos.
//
//   ./chaos_sweep [--days N] [--seed S]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "pandarus.hpp"

namespace {

struct Row {
  double intensity = 0.0;
  bool recovery = false;
  pandarus::scenario::ScenarioResult result;
  std::size_t matched_jobs = 0;
  std::size_t total_jobs = 0;
};

Row run_one(double intensity, bool recovery, double days,
            std::uint64_t seed) {
  using namespace pandarus;
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = days;
  config.seed = seed;
  config.faults.intensity = intensity;
  if (recovery) config.with_self_healing();

  Row row;
  row.intensity = intensity;
  row.recovery = recovery;
  row.result = scenario::run_campaign(config);

  const core::Matcher matcher(row.result.store);
  const core::MatchResult exact = matcher.run(core::MatchOptions::exact());
  row.matched_jobs = exact.matched_job_count();
  row.total_jobs = row.result.store.jobs().size();
  return row;
}

std::string pct(double num, double den) {
  return den > 0.0 ? pandarus::util::format_percent(num / den) : "-";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pandarus;

  obs::install_env_hooks();

  double days = 0.5;
  std::uint64_t seed = 20250401;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--days") {
      days = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else {
      std::cout << "chaos_sweep - fault injection vs self-healing transfers\n"
                   "  --days N   observation window in days (default 0.5)\n"
                   "  --seed S   campaign seed (default 20250401)\n";
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }

  const double intensities[] = {0.0, 0.5, 1.0, 2.0, 4.0};

  util::Table table({"intensity", "recovery", "windows", "transfers",
                     "term-fail", "fail-rate", "breaker", "alt-src",
                     "backoff", "job-fail", "matched"});
  for (std::size_t c = 2; c < 9; ++c) table.set_align(c, util::Align::kRight);

  std::vector<Row> rows;
  for (const double intensity : intensities) {
    table.add_separator();
    for (const bool recovery : {false, true}) {
      if (intensity == 0.0 && recovery) continue;  // nothing to heal
      Row row = run_one(intensity, recovery, days, seed);
      const auto& t = row.result.transfers;
      const auto& p = row.result.panda;
      table.add_row({
          util::format_fixed(intensity, 1),
          recovery ? "on" : "off",
          std::to_string(row.result.fault_windows),
          std::to_string(t.submitted),
          std::to_string(t.failed),
          pct(static_cast<double>(t.failed),
              static_cast<double>(t.submitted)),
          std::to_string(t.breaker_opens),
          std::to_string(t.alt_source_retries),
          std::to_string(t.backoff_delays),
          pct(static_cast<double>(p.failed),
              static_cast<double>(p.finished + p.failed)),
          pct(static_cast<double>(row.matched_jobs),
              static_cast<double>(row.total_jobs)),
      });
      if (!row.result.drained) {
        std::cout << "warning: intensity " << intensity
                  << (recovery ? " (recovery)" : "")
                  << " did not drain; in-flight="
                  << row.result.transfers_in_flight << "\n";
      }
      rows.push_back(std::move(row));
    }
  }

  std::cout << "Chaos sweep over " << days << " days (seed " << seed
            << "): fault intensity vs transfer/job health\n\n";
  table.print(std::cout);

  // Recovery value: compare terminal failures at the intensity where the
  // legacy engine suffered most (each intensity resamples the plan, so
  // damage is not monotonic in the knob).
  const Row* worst_off = nullptr;
  for (const Row& r : rows) {
    if (r.recovery || r.intensity <= 0.0) continue;
    if (worst_off == nullptr ||
        r.result.transfers.failed > worst_off->result.transfers.failed) {
      worst_off = &r;
    }
  }
  const Row* worst_on = nullptr;
  for (const Row& r : rows) {
    if (worst_off != nullptr && r.recovery &&
        r.intensity == worst_off->intensity) {
      worst_on = &r;
    }
  }
  if (worst_off != nullptr && worst_on != nullptr &&
      worst_off->result.transfers.failed > 0) {
    const double reduction =
        1.0 - static_cast<double>(worst_on->result.transfers.failed) /
                  static_cast<double>(worst_off->result.transfers.failed);
    std::cout << "\nAt intensity "
              << util::format_fixed(worst_off->intensity, 1)
              << ", self-healing cut terminal transfer failures from "
              << worst_off->result.transfers.failed << " to "
              << worst_on->result.transfers.failed << " ("
              << util::format_percent(reduction) << " reduction)\n";
  }
  return 0;
}
