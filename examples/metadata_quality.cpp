// Metadata-quality study: the paper's central obstacle as an experiment.
//
// The same simulated campaign is re-analyzed under increasing metadata
// corruption.  Because corruption is injected *after* the simulation,
// the underlying ground truth is identical in every column — only the
// recorded metadata degrades — so the sweep isolates exactly how data
// quality drives the exact/RM1/RM2 coverage gap (§4.3, §5.5: "any future
// systematic and scalable analysis ... will be especially valuable once
// data quality improves").
//
//   ./metadata_quality [seed]
#include <iostream>

#include "pandarus.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;

  obs::install_env_hooks();

  std::uint64_t seed = 20250401;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  const double scales[] = {0.0, 0.5, 1.0, 2.0, 4.0};

  util::Table table({"Corruption x", "Exact jobs", "RM1 jobs", "RM2 jobs",
                     "Exact xfers", "RM2 xfers", "RM2/Exact",
                     "Unknown dst"});
  for (std::size_t c = 1; c <= 7; ++c) table.set_align(c, util::Align::kRight);

  std::cout << "Re-running the 2-day campaign under corruption scales "
               "{0, 0.5, 1, 2, 4} (seed "
            << seed << ") ...\n\n";

  for (double scale : scales) {
    scenario::ScenarioConfig config = scenario::ScenarioConfig::paper_scale();
    config.days = 2.0;
    config.seed = seed;
    config.apply_corruption = scale > 0.0;
    auto& c = config.corruption;
    c.p_drop_transfer_taskid = std::min(1.0, c.p_drop_transfer_taskid * scale);
    c.p_unknown_source = std::min(1.0, c.p_unknown_source * scale);
    c.p_unknown_destination =
        std::min(1.0, c.p_unknown_destination * scale);
    c.p_size_jitter = std::min(1.0, c.p_size_jitter * scale);
    c.p_drop_file_record = std::min(1.0, c.p_drop_file_record * scale);
    c.p_drop_job_record = std::min(1.0, c.p_drop_job_record * scale);
    c.p_size_jitter_bad_site =
        std::min(1.0, c.p_size_jitter_bad_site * scale);
    c.p_unknown_endpoint_bad_site_tasked =
        std::min(1.0, c.p_unknown_endpoint_bad_site_tasked * scale);
    c.p_unknown_endpoint_bad_site_anonymous =
        std::min(1.0, c.p_unknown_endpoint_bad_site_anonymous * scale);

    const auto result = scenario::run_campaign(config);
    const core::Matcher matcher(result.store);
    const auto tri = core::run_all_methods(matcher);

    const double ratio =
        tri.exact.matched_job_count() > 0
            ? static_cast<double>(tri.rm2.matched_job_count()) /
                  static_cast<double>(tri.exact.matched_job_count())
            : 0.0;
    table.add_row(
        {util::format_fixed(scale, 1),
         util::format_count(std::uint64_t{tri.exact.matched_job_count()}),
         util::format_count(std::uint64_t{tri.rm1.matched_job_count()}),
         util::format_count(std::uint64_t{tri.rm2.matched_job_count()}),
         util::format_count(std::uint64_t{tri.exact.matched_transfer_count()}),
         util::format_count(std::uint64_t{tri.rm2.matched_transfer_count()}),
         util::format_fixed(ratio, 2),
         util::format_count(
             result.corruption.transfers_destination_unknown)});
  }
  table.print(std::cout);

  // Why don't jobs match?  Diagnose the exact pipeline at baseline
  // corruption: the stage at which each unmatched job was eliminated.
  {
    scenario::ScenarioConfig config = scenario::ScenarioConfig::paper_scale();
    config.days = 2.0;
    config.seed = seed;
    const auto result = scenario::run_campaign(config);
    const core::Matcher matcher(result.store);
    std::array<std::size_t, core::kMatchOutcomeCount> outcomes{};
    for (std::size_t i = 0; i < result.store.jobs().size(); ++i) {
      const auto d = matcher.diagnose_job(i, core::MatchOptions::exact());
      ++outcomes[static_cast<std::size_t>(d.outcome)];
    }
    std::cout << "\nExact-pipeline diagnosis at baseline corruption ("
              << result.store.jobs().size() << " jobs):\n";
    for (std::size_t o = 0; o < core::kMatchOutcomeCount; ++o) {
      const double share =
          result.store.jobs().empty()
              ? 0.0
              : static_cast<double>(outcomes[o]) /
                    static_cast<double>(result.store.jobs().size());
      std::cout << "  " << core::match_outcome_name(
                       static_cast<core::MatchOutcome>(o))
                << ": " << outcomes[o] << " ("
                << util::format_percent(share) << ")\n";
    }
  }

  std::cout <<
      "\nReading: with pristine metadata (x0) exact matching approaches\n"
      "RM1/RM2 — the relaxations only pay off when records are damaged.\n"
      "As corruption grows, exact coverage collapses first (byte-exact\n"
      "size checks break), RM1 degrades more slowly (it only needs the\n"
      "attribute match and site labels), and the RM2/Exact ratio widens —\n"
      "the paper's Tables 1-2 sit at the x1.0 row of this sweep.\n";
  return 0;
}
