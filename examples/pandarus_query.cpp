// pandarus-query: out-of-core metric queries and replay-derived health
// over a recorded campaign (NDJSON or colstore; the format is sniffed).
//
//   pandarus-query agg <events-file> [options]
//     --kind k[,k...]     keep only these event kinds
//     --from MS --to MS   simulated-time range (inclusive)
//     --bucket MS         time-bucket width (0 = whole stream)
//     --group f[,f...]    group-by fields ("kind", "src", "dst", ...)
//     --value FIELD       field the value aggregates read
//     --agg a[,a...]      count,sum,min,max,mean,p50,p95,p99
//
//   pandarus-query alerts <events-file>
//     Streams the file through the health detectors (the same engine a
//     live run arms with PANDARUS_ALERTS) and prints status_json —
//     bit-identical to the live /api/alerts for the same stream.
//
// Both subcommands stream one event at a time: a campaign never has to
// fit in memory, which is the point of querying the colstore at all.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/event_source.hpp"
#include "analysis/health_replay.hpp"
#include "analysis/metric_query.hpp"

namespace {

using pandarus::analysis::MetricQuerySpec;

int usage() {
  std::cerr <<
      "usage: pandarus-query agg <events-file> [--kind k,...] [--from ms]\n"
      "           [--to ms] [--bucket ms] [--group field,...]\n"
      "           [--value field] [--agg count,sum,min,max,mean,p50,p95,p99]\n"
      "       pandarus-query alerts <events-file>\n";
  return 2;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int cmd_agg(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string path = argv[2];
  MetricQuerySpec spec;
  spec.aggregates.clear();
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--kind" && has_value) {
      spec.kinds = split_csv(argv[++i]);
    } else if (arg == "--from" && has_value) {
      spec.ts_from = std::atoll(argv[++i]);
    } else if (arg == "--to" && has_value) {
      spec.ts_to = std::atoll(argv[++i]);
    } else if (arg == "--bucket" && has_value) {
      spec.bucket_ms = std::atoll(argv[++i]);
    } else if (arg == "--group" && has_value) {
      spec.group_by = split_csv(argv[++i]);
    } else if (arg == "--value" && has_value) {
      spec.value_field = argv[++i];
    } else if (arg == "--agg" && has_value) {
      for (const std::string& name : split_csv(argv[++i])) {
        pandarus::analysis::MetricAggregate agg;
        if (!pandarus::analysis::parse_metric_aggregate(name, agg)) {
          std::cerr << "pandarus-query: unknown aggregate " << name << '\n';
          return 2;
        }
        spec.aggregates.push_back(agg);
      }
    } else {
      std::cerr << "pandarus-query: unknown option " << arg << '\n';
      return usage();
    }
  }
  if (spec.aggregates.empty()) {
    spec.aggregates.push_back(pandarus::analysis::MetricAggregate::kCount);
  }
  auto source = pandarus::analysis::open_event_source(path);
  if (source == nullptr) {
    std::cerr << "pandarus-query: cannot open " << path << '\n';
    return 1;
  }
  const pandarus::analysis::MetricQueryResult result =
      pandarus::analysis::run_metric_query(*source, spec);
  if (!result.source_error.empty()) {
    std::cerr << "pandarus-query: stream error: " << result.source_error
              << '\n';
    return 1;
  }
  pandarus::analysis::write_metric_query_json(std::cout, spec, result);
  return 0;
}

int cmd_alerts(int argc, char** argv) {
  if (argc != 3) return usage();
  auto engine = pandarus::analysis::derive_health_file(argv[2]);
  if (engine == nullptr) {
    std::cerr << "pandarus-query: cannot open " << argv[2] << '\n';
    return 1;
  }
  std::cout << engine->status_json();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "agg") return cmd_agg(argc, argv);
  if (command == "alerts") return cmd_alerts(argc, argv);
  return usage();
}
