// Resilience study: how does degraded transfer infrastructure propagate
// into job outcomes and error distributions?
//
// The paper's abstract: uncoordinated operation yields "underutilized
// resources, redundant or unnecessary transfers, and altered error
// distributions", and §3.2 asks for "strategies for system improvement"
// against network/storage hot-spot vulnerability.  This example degrades
// the transfer substrate in steps (failure and stall injection up,
// registration reliability down) and measures, per step:
//   * job failure rate and the error-code mix (the "altered error
//     distributions" — quantified with the L1 error_shift metric),
//   * staging watchdog releases (transfers overrunning into execution),
//   * anomaly-detector flags and redundancy waste.
//
//   ./resilience_study [seed]
#include <iostream>

#include "pandarus.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;

  std::uint64_t seed = 20250401;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  struct Step {
    const char* name;
    double degradation;  // scales failure/stall probabilities
  };
  const Step steps[] = {
      {"healthy", 0.25}, {"baseline", 1.0}, {"degraded", 3.0},
      {"crisis", 8.0},
  };

  struct Row {
    std::string name;
    double job_failure_rate = 0.0;
    std::uint64_t watchdog_releases = 0;
    std::uint64_t transfer_failures = 0;
    double anomaly_flag_rate = 0.0;
    std::uint64_t redundant_deliveries = 0;
    analysis::ErrorDistribution errors;
  };
  std::vector<Row> rows;

  for (const Step& step : steps) {
    scenario::ScenarioConfig config = scenario::ScenarioConfig::paper_scale();
    config.days = 2.0;
    config.seed = seed;
    config.transfer.failure_prob =
        std::min(0.9, config.transfer.failure_prob * step.degradation);
    config.transfer.stall_prob =
        std::min(0.9, config.transfer.stall_prob * step.degradation);
    config.transfer.registration_failure_prob = std::min(
        0.9, config.transfer.registration_failure_prob * step.degradation);

    std::cout << "Running '" << step.name << "' (degradation x"
              << step.degradation << ") ...\n";
    const auto result = scenario::run_campaign(config);
    const core::Matcher matcher(result.store);
    const auto rm2 = matcher.run(core::MatchOptions::rm2());
    const auto report = core::AnomalyDetector().scan(result.store, rm2);
    const auto redundancy =
        core::scan_global_redundancy(result.store, util::hours(6));

    Row row;
    row.name = step.name;
    std::size_t failed = 0;
    for (const auto& j : result.store.jobs()) failed += j.failed;
    row.job_failure_rate =
        result.store.jobs().empty()
            ? 0.0
            : static_cast<double>(failed) /
                  static_cast<double>(result.store.jobs().size());
    row.watchdog_releases = result.panda.stage_timeouts;
    row.transfer_failures = result.transfers.failed;
    row.anomaly_flag_rate =
        report.jobs_scanned > 0
            ? static_cast<double>(report.jobs_flagged) /
                  static_cast<double>(report.jobs_scanned)
            : 0.0;
    row.redundant_deliveries = redundancy.redundant_transfers;
    row.errors = analysis::error_distribution(result.store);
    rows.push_back(std::move(row));
  }

  std::cout << "\n";
  util::Table table({"Scenario", "Job failure", "Watchdog rel.",
                     "Xfer failures", "Anomaly flags", "Redundant dlv.",
                     "Error shift vs baseline"});
  for (std::size_t c = 1; c <= 6; ++c) table.set_align(c, util::Align::kRight);
  const analysis::ErrorDistribution& baseline = rows[1].errors;
  for (const Row& row : rows) {
    table.add_row({row.name, util::format_percent(row.job_failure_rate),
                   util::format_count(row.watchdog_releases),
                   util::format_count(row.transfer_failures),
                   util::format_percent(row.anomaly_flag_rate),
                   util::format_count(row.redundant_deliveries),
                   util::format_fixed(
                       analysis::error_shift(row.errors, baseline), 3)});
  }
  table.print(std::cout);

  std::cout << "\nError-code mix per scenario (share of failed jobs):\n";
  for (const Row& row : rows) {
    std::cout << "  " << row.name << ":";
    for (const auto& [code, count] : row.errors.by_code) {
      std::cout << "  " << code << "="
                << util::format_percent(row.errors.share(code), 0);
    }
    std::cout << "\n";
  }

  std::cout <<
      "\nReading: transfer-layer degradation surfaces as *compute-layer*\n"
      "failures — the error mix shifts from generic execution errors\n"
      "toward staging/overlay/heartbeat classes, watchdog releases and\n"
      "redundant deliveries climb, and the anomaly detector's flag rate\n"
      "tracks the degradation level.  This is the paper's §3.1 warning\n"
      "('shifting failure patterns from the network to the compute\n"
      "infrastructure') as a controlled experiment.\n";
  return 0;
}
