// The paper's full study as a configurable CLI: run an N-day campaign,
// link jobs to transfers with all three strategies, print every summary
// and export the telemetry + figure artefacts as CSV.
//
//   ./analysis_campaign [--days N] [--seed S] [--out PREFIX]
//                       [--no-corruption] [--export-telemetry]
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "pandarus.hpp"
#include "util/csv.hpp"

namespace {

void usage() {
  std::cout <<
      "analysis_campaign - run the paper's 8-day PanDA/Rucio study\n"
      "  --days N            observation window in days (default 8)\n"
      "  --seed S            campaign seed (default 20250401)\n"
      "  --out PREFIX        artefact file prefix (default 'campaign')\n"
      "  --no-corruption     skip metadata corruption injection\n"
      "  --export-telemetry  also write raw job/file/transfer CSVs\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pandarus;

  obs::install_env_hooks();

  scenario::ScenarioConfig config = scenario::ScenarioConfig::paper_scale();
  config.seed = 20250401;
  std::string prefix = "campaign";
  bool export_telemetry = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--days") {
      config.days = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      prefix = next();
    } else if (arg == "--no-corruption") {
      config.apply_corruption = false;
    } else if (arg == "--export-telemetry") {
      export_telemetry = true;
    } else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }

  std::cout << "Simulating " << config.days << " days (seed " << config.seed
            << ") ...\n";
  const scenario::ScenarioResult result = scenario::run_campaign(config);
  std::cout << "  " << result.workload.user_jobs << " user jobs, "
            << result.workload.prod_jobs << " production jobs, "
            << result.store.counts().transfers << " transfer events, "
            << result.events_processed << " simulation events\n";
  std::cout << "  corruption: "
            << result.corruption.transfers_destination_unknown
            << " unknown destinations, "
            << result.corruption.transfers_size_jittered
            << " jittered sizes, " << result.corruption.file_records_dropped
            << " file rows lost\n\n";

  const core::Matcher matcher(result.store);
  const core::TriMatchResult tri = core::run_all_methods(matcher);

  // -- Section 5.1 / Tables ---------------------------------------------
  analysis::print_overall(std::cout,
                          analysis::overall_summary(result.store, tri.exact));
  std::cout << "\nTable 1 (activity breakdown of exact matches):\n";
  analysis::print_table1(
      std::cout, analysis::activity_breakdown(result.store, tri.exact));
  std::cout << "\nTable 2 (methods comparison):\n";
  analysis::print_table2(std::cout,
                         analysis::compare_methods(result.store, tri));

  // -- figure artefacts ----------------------------------------------------
  const analysis::TransferHeatmap heatmap(result.store, result.topology);
  {
    std::ofstream os(prefix + "_fig3_heatmap.csv");
    heatmap.write_csv(os);
  }
  const auto rows = analysis::build_breakdown(result.store, tri.rm1);
  {
    std::ofstream os(prefix + "_fig5_top_local.csv");
    util::CsvWriter csv(os);
    csv.row("pandaid", "queuing_ms", "transfer_ms", "fraction", "bytes",
            "failed");
    for (const auto& row : analysis::top_by_queuing(
             rows, core::LocalityClass::kAllLocal, 0.10, 40)) {
      csv.row(row.pandaid, row.queuing_time, row.transfer_time_in_queue,
              row.queue_fraction, row.transferred_bytes,
              static_cast<int>(row.job_failed));
    }
  }
  {
    std::ofstream os(prefix + "_fig9_threshold.csv");
    util::CsvWriter csv(os);
    csv.row("threshold", "ok_ok", "fail_ok", "ok_fail", "fail_fail");
    const auto sweep = analysis::run_threshold_sweep(
        analysis::build_breakdown(result.store, tri.exact),
        analysis::default_thresholds());
    for (const auto& row : sweep.rows) {
      csv.row(row.threshold, row.counts[0], row.counts[1], row.counts[2],
              row.counts[3]);
    }
  }
  std::cout << "\nArtefacts written: " << prefix << "_fig3_heatmap.csv, "
            << prefix << "_fig5_top_local.csv, " << prefix
            << "_fig9_threshold.csv\n";

  if (export_telemetry) {
    if (telemetry::export_store(prefix, result.store)) {
      std::cout << "Raw telemetry written: " << prefix
                << "_{jobs,files,transfers}.csv\n";
    }
  }

  // -- full operator report ------------------------------------------------
  {
    std::ofstream report(prefix + "_report.txt");
    if (report) {
      analysis::write_campaign_report(report, result.store, result.topology,
                                      tri);
      std::cout << "Operator report written: " << prefix << "_report.txt\n";
    }
  }

  // -- case studies ----------------------------------------------------
  const analysis::CaseStudyExtractor extractor(result.store, tri);
  if (const auto cs = extractor.sequential_staging_case()) {
    std::cout << "\n--- Case study 1 (Fig. 10): dominant sequential local "
                 "staging ---\n"
              << analysis::render_timeline(result.store, cs->match);
  }
  if (const auto cs = extractor.failed_spanning_case()) {
    const auto& job = result.store.jobs()[cs->match.job_index];
    std::cout << "\n--- Case study 2 (Fig. 11): failed job, transfer spans "
                 "execution (error "
              << job.error_code << ") ---\n"
              << analysis::render_timeline(result.store, cs->match);
  }
  if (const auto cs = extractor.rm2_redundant_case()) {
    std::cout << "\n--- Case study 3 (Fig. 12): RM2 redundancy + UNKNOWN "
                 "inference ---\n"
              << analysis::render_transfer_table(result.store,
                                                 result.topology, cs->match);
  }
  return 0;
}
