// crash_harness: kill-based crash-injection for the telemetry sinks and
// checkpoint/resume path.
//
// One reference campaign runs to completion in-process; then, for each
// iteration, a forked child re-runs the same campaign with the durable
// NDJSON sink armed (periodic flush + fsync, per-day checkpoints) and
// is SIGKILLed once its events file grows past a seeded random byte
// threshold — progress-based, so the kill always lands mid-campaign no
// matter how fast the machine is.  Some iterations also arm the
// write-delay hook (PANDARUS_EVENTS_WRITE_DELAY_US's API twin) so the
// kill lands *mid-flush*, leaving a torn final line.  The parent then
// exercises the full recovery story:
//
//   1. obs::recover_ndjson_file salvages the longest valid prefix,
//   2. scenario::resume_campaign re-executes from the newest snapshot
//      (or from scratch when the kill predates the first day boundary),
//   3. the salvaged prefix must be a byte-exact prefix of the resumed
//      stream, and salvaged + suffix must equal the reference bytes.
//
// After all iterations the final spliced stream is replayed and matched
// (the paper's three methods); with the default --seed 7 --days 1 the
// counts are the pinned 115/250/274 that CI gates on.
//
//   crash_harness [--kills N] [--seed S] [--days D] [--dir PATH] [--keep]
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/events_replay.hpp"
#include "core/relaxed.hpp"
#include "obs/event_log.hpp"
#include "obs/recover.hpp"
#include "scenario/campaign.hpp"
#include "scenario/checkpoint.hpp"
#include "scenario/config.hpp"
#include "util/rng.hpp"

namespace {

using namespace pandarus;

struct Args {
  int kills = 5;
  std::uint64_t seed = 7;
  double days = 1.0;
  std::string dir = "/tmp/pandarus-crash-harness";
  bool keep = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: crash_harness [--kills N] [--seed S] [--days D]\n"
               "                     [--dir PATH] [--keep]\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char block[1 << 16];
  while (true) {
    const std::size_t got = std::fread(block, 1, sizeof block, f);
    out.append(block, got);
    if (got < sizeof block) break;
  }
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
  return std::fclose(f) == 0 && ok;
}

scenario::ScenarioConfig make_config(const Args& args) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.seed = args.seed;
  config.days = args.days;
  return config;
}

/// The child's whole life: durable sinks on, checkpoints on, run, exit.
/// Called only after fork() — threads started here never exist in the
/// parent, so fork stays async-signal-safe for the parent's part.
[[noreturn]] void run_child(const Args& args, const std::string& events_path,
                            const std::string& ckpt_dir, int write_delay_us) {
  scenario::ScenarioConfig config = make_config(args);
  config.checkpoint_dir = ckpt_dir;
  obs::EventLog log;
  obs::FsyncConfig fsync;
  fsync.policy = obs::FsyncPolicy::kFlush;
  log.set_fsync(fsync);
  log.set_flush_write_delay_us(write_delay_us);
  log.start_periodic_flush(events_path, /*interval_ms=*/2);
  log.install();
  (void)scenario::run_campaign(config);
  log.close();
  log.stop_periodic_flush();
  log.uninstall();
  // Skip atexit teardown: the parent's state must stay untouched.
  std::_Exit(0);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--kills") {
      const char* v = value();
      if (v == nullptr) return usage();
      args.kills = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage();
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--days") {
      const char* v = value();
      if (v == nullptr) return usage();
      args.days = std::atof(v);
    } else if (arg == "--dir") {
      const char* v = value();
      if (v == nullptr) return usage();
      args.dir = v;
    } else if (arg == "--keep") {
      args.keep = true;
    } else {
      return usage();
    }
  }
  ::mkdir(args.dir.c_str(), 0777);

  const scenario::ScenarioConfig config = make_config(args);

  // Reference stream, produced in-process with no file sink.  This (and
  // every other campaign below) must run before anything touches the
  // core::Matcher: its metric counters feed the sampler, so a campaign
  // run after a match would sample different counter values and break
  // byte parity.
  std::string reference;
  {
    obs::EventLog log;
    log.install();
    (void)scenario::run_campaign(config);
    log.close();
    reference = log.to_ndjson();
    log.uninstall();
  }
  std::fprintf(stderr, "reference: %zu bytes\n", reference.size());

  util::Rng rng(util::hash_mix(args.seed, 0xc4a54));
  int failures = 0;
  std::string final_stream;
  for (int iter = 0; iter < args.kills; ++iter) {
    const std::string iter_dir =
        args.dir + "/iter-" + std::to_string(iter);
    const std::string ckpt_dir = iter_dir + "/ckpt";
    const std::string events_path = iter_dir + "/events.ndjson";
    ::mkdir(iter_dir.c_str(), 0777);
    std::remove(events_path.c_str());

    // Kill points are drawn from the harness seed, so a CI run is
    // reproducible.  The threshold is a fraction of the reference size:
    // the parent polls the child's growing events file and kills the
    // moment it crosses, which pins the kill to a stream position on
    // any machine — a wall-clock delay would sometimes let a fast
    // child finish first.  Thresholds are stratified across iterations
    // (~10% … ~89%) so the run covers both regimes: early kills land
    // before the first snapshot is durable (resume from scratch), and
    // any threshold past the day-0 publish is *guaranteed* to find a
    // checkpoint — bytes beyond that publish only become visible after
    // the day-0 snapshot's rename, because both happen in the sim
    // thread in order.  Every other iteration arms the write-delay
    // hook, stretching each 4 KiB flush block long enough for the
    // SIGKILL to land mid-line.
    const std::uint64_t kill_pct =
        10 + static_cast<std::uint64_t>(iter % 5) * 18 +
        rng.uniform_index(8);
    const std::uint64_t kill_threshold = reference.size() * kill_pct / 100;
    const int write_delay_us =
        iter % 2 == 1 ? 150 + static_cast<int>(rng.uniform_index(400)) : 0;

    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) run_child(args, events_path, ckpt_dir, write_delay_us);

    std::uint64_t kill_at_bytes = 0;
    bool child_exited_early = false;
    int status = 0;
    struct timespec poll_delay;
    poll_delay.tv_sec = 0;
    poll_delay.tv_nsec = 1000000L;  // 1 ms
    while (true) {
      struct stat st;
      if (::stat(events_path.c_str(), &st) == 0 &&
          static_cast<std::uint64_t>(st.st_size) >= kill_threshold) {
        kill_at_bytes = static_cast<std::uint64_t>(st.st_size);
        break;
      }
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        child_exited_early = true;
        break;
      }
      ::nanosleep(&poll_delay, nullptr);
    }
    if (!child_exited_early) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
    }
    const bool killed = WIFSIGNALED(status);

    // --- salvage ------------------------------------------------------
    obs::RecoveryReport report;
    std::string salvaged;
    if (std::FILE* probe = std::fopen(events_path.c_str(), "rb")) {
      std::fclose(probe);
      report = obs::recover_ndjson_file(events_path, events_path);
      if (!report.ok) {
        std::fprintf(stderr, "iter %d: salvage failed: %s\n", iter,
                     report.detail.c_str());
        ++failures;
        continue;
      }
      read_file(events_path, salvaged);
    }

    // --- resume -------------------------------------------------------
    scenario::ResumeOutcome resume =
        scenario::resume_campaign(config, ckpt_dir);
    if (!resume.ok) {
      std::fprintf(stderr, "iter %d: resume failed: %s\n", iter,
                   resume.error.c_str());
      ++failures;
      continue;
    }

    // --- splice + parity ---------------------------------------------
    const bool prefix_ok =
        salvaged.size() <= resume.full_ndjson.size() &&
        resume.full_ndjson.compare(0, salvaged.size(), salvaged) == 0;
    std::string spliced = salvaged;
    if (prefix_ok) spliced += resume.full_ndjson.substr(salvaged.size());
    const bool parity = prefix_ok && spliced == reference;
    if (!parity) ++failures;
    std::printf(
        "{\"iter\":%d,\"kill_at_bytes\":%llu,\"write_delay_us\":%d,"
        "\"killed\":%s,\"salvaged_bytes\":%llu,\"dropped_bytes\":%llu,"
        "\"torn_tail\":%s,\"had_checkpoint\":%s,\"resumed_day\":%lld,"
        "\"prefix_ok\":%s,\"parity\":%s}\n",
        iter, static_cast<unsigned long long>(kill_at_bytes), write_delay_us,
        killed ? "true" : "false",
        static_cast<unsigned long long>(salvaged.size()),
        static_cast<unsigned long long>(report.dropped_bytes),
        report.truncated ? "true" : "false",
        resume.had_checkpoint ? "true" : "false",
        static_cast<long long>(resume.resumed_day),
        prefix_ok ? "true" : "false", parity ? "true" : "false");
    if (parity) final_stream = std::move(spliced);
    if (!args.keep) {
      std::remove(events_path.c_str());
    }
  }

  // The matched-counts gate: replay the last good spliced stream and
  // run the three matching methods.  Matcher counters may move freely
  // now — every campaign has already run.
  if (failures == 0 && !final_stream.empty()) {
    const std::string final_path = args.dir + "/final.ndjson";
    if (!write_file(final_path, final_stream)) {
      std::fprintf(stderr, "cannot write %s\n", final_path.c_str());
      return 1;
    }
    const analysis::ReplayResult replay =
        analysis::replay_events_file(final_path);
    const core::Matcher matcher(replay.store);
    const core::TriMatchResult tri = core::run_all_methods(matcher);
    std::printf(
        "{\"iterations\":%d,\"failures\":0,\"matched_jobs\":{"
        "\"exact\":%zu,\"rm1\":%zu,\"rm2\":%zu}}\n",
        args.kills, tri.exact.matched_job_count(),
        tri.rm1.matched_job_count(), tri.rm2.matched_job_count());
    if (!args.keep) std::remove(final_path.c_str());
  } else {
    std::printf("{\"iterations\":%d,\"failures\":%d}\n", args.kills,
                failures);
  }
  return failures == 0 ? 0 : 1;
}
