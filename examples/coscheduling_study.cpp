// Co-scheduling study: the paper's Section 7 direction made concrete.
//
// "Future efforts should focus on ... developing adaptive strategies
// where PanDA and Rucio share performance awareness to jointly balance
// load and data locality."  This example runs identical campaigns under
// the three brokerage policies and quantifies the trade surface:
// queuing delay and failure rate versus WAN traffic, plus where the
// transfer-time anomalies (the Fig. 9 tail) go under each policy.
//
//   ./coscheduling_study [seed]
#include <iostream>

#include "pandarus.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;

  std::uint64_t seed = 20250401;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  struct PolicyRun {
    wms::BrokeragePolicy policy;
    scenario::ScenarioResult result;
    core::TriMatchResult tri;
  };
  std::vector<PolicyRun> runs;

  for (auto policy :
       {wms::BrokeragePolicy::kDataLocality, wms::BrokeragePolicy::kLoadAware,
        wms::BrokeragePolicy::kHybrid}) {
    scenario::ScenarioConfig config = scenario::ScenarioConfig::paper_scale();
    config.days = 3.0;
    config.seed = seed;
    config.brokerage.policy = policy;
    std::cout << "Running 3-day campaign under " << wms::policy_name(policy)
              << " brokerage ...\n";
    PolicyRun run{policy, scenario::run_campaign(config), {}};
    const core::Matcher matcher(run.result.store);
    run.tri = core::run_all_methods(matcher);
    runs.push_back(std::move(run));
  }
  std::cout << "\n";

  util::Table table({"Metric", "data-locality", "load-aware", "hybrid"});
  for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, util::Align::kRight);

  auto add_metric = [&](const std::string& name, auto&& fn) {
    std::vector<std::string> cells{name};
    for (const auto& run : runs) cells.push_back(fn(run));
    table.add_row(std::move(cells));
  };

  add_metric("completed user jobs", [](const PolicyRun& r) {
    return util::format_count(std::uint64_t{r.result.store.jobs().size()});
  });
  add_metric("failed job share", [](const PolicyRun& r) {
    std::size_t failed = 0;
    for (const auto& j : r.result.store.jobs()) failed += j.failed;
    return util::format_percent(
        r.result.store.jobs().empty()
            ? 0.0
            : static_cast<double>(failed) /
                  static_cast<double>(r.result.store.jobs().size()));
  });
  add_metric("median queuing time", [](const PolicyRun& r) {
    std::vector<double> q;
    for (const auto& j : r.result.store.jobs()) {
      q.push_back(static_cast<double>(j.queuing_time()));
    }
    return util::format_duration(
        static_cast<util::SimDuration>(util::Quantiles(std::move(q)).median()));
  });
  add_metric("p95 queuing time", [](const PolicyRun& r) {
    std::vector<double> q;
    for (const auto& j : r.result.store.jobs()) {
      q.push_back(static_cast<double>(j.queuing_time()));
    }
    return util::format_duration(
        static_cast<util::SimDuration>(util::Quantiles(std::move(q))(0.95)));
  });
  add_metric("job-driven WAN bytes", [](const PolicyRun& r) {
    std::uint64_t wan = 0;
    for (const auto& t : r.result.store.transfers()) {
      if (t.success && t.has_jeditaskid() && !t.is_local()) {
        wan += t.file_size;
      }
    }
    return util::format_bytes(static_cast<double>(wan));
  });
  add_metric("stage-in + prefetch transfers", [](const PolicyRun& r) {
    return util::format_count(r.result.panda.stage_in_transfers +
                              r.result.panda.prefetch_transfers);
  });
  add_metric("staging watchdog releases", [](const PolicyRun& r) {
    return util::format_count(r.result.panda.stage_timeouts);
  });
  add_metric("matched jobs >75% transfer-time", [](const PolicyRun& r) {
    const auto rows = analysis::build_breakdown(r.result.store, r.tri.exact);
    const double thresholds[] = {0.75};
    const auto sweep = analysis::run_threshold_sweep(rows, thresholds);
    const auto above = sweep.above(0.75);
    std::size_t total = 0;
    for (auto n : above) total += n;
    return util::format_count(std::uint64_t{total});
  });
  add_metric("mean transfer-time % of queue", [](const PolicyRun& r) {
    const auto rows = analysis::build_breakdown(r.result.store, r.tri.exact);
    return util::format_percent(analysis::aggregate(rows).mean_queue_fraction);
  });

  table.print(std::cout);

  std::cout <<
      "\nReading: data-locality is the network's favourite policy and the\n"
      "queue's enemy — it concentrates jobs on data-hosting sites (the\n"
      "paper's §3.1 concern).  Load-aware flattens queues but multiplies\n"
      "WAN staging.  The hybrid exposes the co-optimization dial the\n"
      "paper's Section 7 asks PanDA and Rucio to share.\n";
  return 0;
}
