// pandarus-serve: the observability endpoint as a standalone binary.
//
// Live mode (default) runs a paper-scale campaign with the status
// server attached, then keeps serving the finished results:
//
//   pandarus-serve [--port N] [--days D] [--seed S] [--preset small|paper]
//                  [--once]
//
//   $ pandarus-serve --port 8717 &
//   $ curl -s localhost:8717/api/summary | python3 -m json.tool
//   $ curl -s localhost:8717/metrics | grep pandarus_build_info
//   $ curl -sN localhost:8717/events/stream   # SSE ticks
//
// Replay mode serves a finished NDJSON/colstore event file instead of
// running a simulation (bodies precomputed once at startup):
//
//   pandarus-serve --replay events.ndjson [--port N]
//
// The same endpoints are also available in *any* pandarus binary via
// PANDARUS_SERVE=<port> (obs::install_env_hooks); this binary exists so
// CI and humans can poke the API without composing env hooks by hand.
// --once exits right after the campaign instead of lingering, which
// keeps the smoke test self-terminating.
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "pandarus.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

void linger() {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--days D] [--seed S]"
               " [--preset small|paper] [--chaos I] [--once]\n"
            << "       " << argv0 << " --replay <events-file> [--port N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pandarus;

  std::uint16_t port = 0;
  double days = 0.0;  // 0: keep the preset's default
  std::uint64_t seed = 20250401;  // the benches' kDefaultSeed
  double chaos = 0.0;  // fault intensity; >0 also arms self-healing
  bool once = false;
  bool small = false;
  std::string replay_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--days" && i + 1 < argc) {
      days = std::strtod(argv[++i], nullptr);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--preset" && i + 1 < argc) {
      const std::string preset = argv[++i];
      if (preset == "small") {
        small = true;
      } else if (preset != "paper") {
        return usage(argv[0]);
      }
    } else if (arg == "--chaos" && i + 1 < argc) {
      chaos = std::strtod(argv[++i], nullptr);
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (arg == "--once") {
      once = true;
    } else {
      return usage(argv[0]);
    }
  }

  obs::install_env_hooks();

  if (!replay_path.empty()) {
    auto replay = std::make_shared<const analysis::ReplayResult>(
        analysis::replay_events_file(replay_path));
    if (replay->lines_parsed == 0) {
      std::cerr << "pandarus-serve: no events parsed from " << replay_path
                << "\n";
      return 1;
    }
    obs::StatusServer::Options options;
    options.port = port;
    obs::StatusServer server(options);
    obs::register_process_metrics();
    if (!server.start()) {
      std::cerr << "pandarus-serve: cannot bind 127.0.0.1:" << port << "\n";
      return 1;
    }
    // /api/alerts is derived by a second streaming pass through the
    // health detectors — the replay twin of a live PANDARUS_ALERTS run.
    std::shared_ptr<const std::string> alerts_json;
    if (auto health = analysis::derive_health_file(replay_path)) {
      alerts_json =
          std::make_shared<const std::string>(health->status_json());
    }
    analysis::attach_replay_status(server, replay, alerts_json);
    std::cout << "serving replay of " << replay_path << " ("
              << replay->lines_parsed << " lines) on http://127.0.0.1:"
              << server.port() << "/\n"
              << "replay ready\n"
              << std::flush;
    if (!once) linger();
    server.stop();
    return 0;
  }

  // Live mode.  The env hooks may already have armed a server + log
  // (PANDARUS_SERVE / PANDARUS_EVENTS); arm whatever is still missing
  // so the bare binary works without any environment.
  static obs::EventLog self_log;
  if (obs::EventLog::installed() == nullptr) self_log.install();
  static obs::FlowTracker self_tracker;
  if (obs::FlowTracker::installed() == nullptr) self_tracker.install();

  std::unique_ptr<obs::StatusServer> self_server;
  if (obs::StatusServer::installed() == nullptr) {
    obs::StatusServer::Options options;
    options.port = port;
    self_server = std::make_unique<obs::StatusServer>(options);
    obs::register_process_metrics();
    if (!self_server->start()) {
      std::cerr << "pandarus-serve: cannot bind 127.0.0.1:" << port << "\n";
      return 1;
    }
    self_server->install();
  }
  obs::StatusServer* server = obs::StatusServer::installed();
  std::cout << "listening on http://127.0.0.1:" << server->port() << "/\n"
            << std::flush;

  scenario::ScenarioConfig config = small
                                        ? scenario::ScenarioConfig::small()
                                        : scenario::ScenarioConfig::paper_scale();
  if (days > 0.0) config.days = days;
  config.seed = seed;
  if (chaos > 0.0) {
    // The chaos_sweep recipe: sampled infrastructure faults plus the
    // self-healing controls, so breakers open/close and the health
    // detectors have something real to fire on.
    config.faults.intensity = chaos;
    config.with_self_healing();
  }
  std::cout << "running a " << config.days << "-day campaign (seed "
            << config.seed << ") ...\n"
            << std::flush;
  const scenario::ScenarioResult result = scenario::run_campaign(config);

  const auto counts = result.store.counts();
  std::cout << "campaign complete: " << counts.jobs << " jobs, "
            << counts.transfers << " transfers harvested\n"
            << std::flush;
  if (!once) {
    std::cout << "serving until SIGINT/SIGTERM ...\n" << std::flush;
    linger();
  }
  if (self_server) {
    self_server->uninstall();
    self_server->stop();
  }
  return 0;
}
