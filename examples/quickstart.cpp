// Quickstart: run a small campaign, link jobs to transfers with all
// three matching strategies, and print the paper-style summaries.
//
//   ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "pandarus.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;

  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::cout << "Running a " << config.days
            << "-day campaign (seed " << config.seed << ") ...\n";
  const scenario::ScenarioResult result = scenario::run_campaign(config);

  std::cout << "Simulated " << result.workload.user_jobs << " user jobs, "
            << result.workload.prod_jobs << " production jobs, "
            << result.transfers.completed << " completed transfers ("
            << util::format_bytes(
                   static_cast<double>(result.transfers.bytes_moved))
            << " moved), " << result.events_processed << " events.\n";
  std::cout << "  stage-ins " << result.panda.stage_in_transfers
            << " (shared hits " << result.panda.shared_stage_hits
            << ", timeouts " << result.panda.stage_timeouts << "), uploads "
            << result.panda.upload_transfers << ", carousel "
            << result.rules.staged_from_tape << ", rule transfers "
            << result.rules.transfers_submitted << ", failed jobs "
            << result.panda.failed << "/"
            << (result.panda.finished + result.panda.failed) << "\n\n";

  // The paper's core step: link PanDA jobs to Rucio transfer events.
  const core::Matcher matcher(result.store);
  const core::TriMatchResult tri = core::run_all_methods(matcher);

  analysis::print_overall(std::cout,
                          analysis::overall_summary(result.store, tri.exact));
  std::cout << '\n';
  analysis::print_table1(std::cout,
                         analysis::activity_breakdown(result.store, tri.exact));
  std::cout << '\n';
  analysis::print_table2(std::cout,
                         analysis::compare_methods(result.store, tri));

  // One case study, if the campaign produced the pattern.
  const analysis::CaseStudyExtractor extractor(result.store, tri);
  if (const auto cs = extractor.sequential_staging_case()) {
    std::cout << "\nSequential-staging case study (Fig. 10 analogue):\n"
              << analysis::render_timeline(result.store, cs->match);
  }
  return 0;
}
