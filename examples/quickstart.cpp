// Quickstart: run a small campaign, link jobs to transfers with all
// three matching strategies, and print the paper-style summaries plus
// the pipeline's own observability funnel.
//
//   ./quickstart [seed]
//
// Set PANDARUS_METRICS=metrics.json / PANDARUS_TRACE=trace.json to also
// dump the full metrics snapshot and a Perfetto-loadable trace at exit.
#include <cstdlib>
#include <iostream>

#include "pandarus.hpp"

namespace {

/// Table-2-style coverage funnel, read back from the obs registry the
/// matchers instrument into (cumulative over all three methods).
void print_match_funnel(const pandarus::obs::Snapshot& snap) {
  using pandarus::obs::Snapshot;
  const auto c = [&snap](const char* name) {
    return snap.counter_value(name);
  };
  std::cout << "\nMatch funnel (all methods, from pandarus_match_* metrics):\n"
            << "  jobs examined            "
            << c("pandarus_match_jobs_examined_total") << "\n"
            << "    no file-table rows     "
            << c("pandarus_match_jobs_no_file_rows_total") << "\n"
            << "    no candidates          "
            << c("pandarus_match_jobs_no_candidates_total") << "\n"
            << "    size-sum gate failed   "
            << c("pandarus_match_reject_size_sum_total") << "\n"
            << "    site check eliminated  "
            << c("pandarus_match_jobs_site_eliminated_total") << "\n"
            << "    matched                "
            << c("pandarus_match_jobs_matched_total") << "\n"
            << "  candidates scanned       "
            << c("pandarus_match_candidates_scanned_total")
            << " (taskid -" << c("pandarus_match_reject_taskid_total")
            << ", attr-key -" << c("pandarus_match_reject_attr_key_total")
            << ", time -" << c("pandarus_match_reject_time_total")
            << ", site -" << c("pandarus_match_reject_site_total") << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pandarus;

  obs::install_env_hooks();

  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::cout << "Running a " << config.days
            << "-day campaign (seed " << config.seed << ") ...\n";
  const scenario::ScenarioResult result = scenario::run_campaign(config);

  std::cout << "Simulated " << result.workload.user_jobs << " user jobs, "
            << result.workload.prod_jobs << " production jobs, "
            << result.transfers.completed << " completed transfers ("
            << util::format_bytes(
                   static_cast<double>(result.transfers.bytes_moved))
            << " moved), " << result.events_processed << " events.\n";
  std::cout << "  stage-ins " << result.panda.stage_in_transfers
            << " (shared hits " << result.panda.shared_stage_hits
            << ", timeouts " << result.panda.stage_timeouts << "), uploads "
            << result.panda.upload_transfers << ", carousel "
            << result.rules.staged_from_tape << ", rule transfers "
            << result.rules.transfers_submitted << ", failed jobs "
            << result.panda.failed << "/"
            << (result.panda.finished + result.panda.failed) << "\n\n";

  // The paper's core step: link PanDA jobs to Rucio transfer events.
  const core::Matcher matcher(result.store);
  const core::TriMatchResult tri = core::run_all_methods(matcher);

  analysis::print_overall(std::cout,
                          analysis::overall_summary(result.store, tri.exact));
  std::cout << '\n';
  analysis::print_table1(std::cout,
                         analysis::activity_breakdown(result.store, tri.exact));
  std::cout << '\n';
  analysis::print_table2(std::cout,
                         analysis::compare_methods(result.store, tri));
  print_match_funnel(obs::Registry::global().snapshot());

  // One case study, if the campaign produced the pattern.
  const analysis::CaseStudyExtractor extractor(result.store, tri);
  if (const auto cs = extractor.sequential_staging_case()) {
    std::cout << "\nSequential-staging case study (Fig. 10 analogue):\n"
              << analysis::render_timeline(result.store, cs->match);
  }
  return 0;
}
