// pandarus-report: offline campaign report generator.
//
//   pandarus-report <events.ndjson> [report.html]
//
// Reads a PANDARUS_EVENTS stream (produced by any binary run with that
// environment variable set), replays it into a fresh metadata store,
// re-runs the matching methods, and writes a single self-contained HTML
// file with the paper-shaped tables, bandwidth/sampler sparklines, and
// the transfer heatmap.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/events_replay.hpp"
#include "analysis/health_replay.hpp"
#include "analysis/report_html.hpp"

int main(int argc, char** argv) {
  using namespace pandarus;

  if (argc < 2 || argc > 3) {
    std::cerr << "usage: pandarus-report <events.ndjson> [report.html]\n";
    return 2;
  }
  const std::string events_path = argv[1];
  const std::string html_path = argc == 3 ? argv[2] : "report.html";

  const analysis::ReplayResult replay =
      analysis::replay_events_file(events_path);
  if (replay.lines_parsed == 0) {
    std::cerr << "pandarus-report: no events parsed from " << events_path
              << '\n';
    return 1;
  }
  std::cout << "replayed " << replay.lines_parsed << " events ("
            << replay.lines_skipped << " skipped), "
            << replay.store.jobs().size() << " jobs, "
            << replay.store.transfers().size() << " transfers, "
            << replay.samples.size() << " sampler ticks\n";

  // Second streaming pass through the health detectors: the report's
  // alert timeline and SLO table come from the same engine /api/alerts
  // serves, derived out-of-core from the file.
  const std::unique_ptr<obs::HealthEngine> health =
      analysis::derive_health_file(events_path);

  std::ofstream out(html_path);
  if (!out) {
    std::cerr << "pandarus-report: cannot write " << html_path << '\n';
    return 1;
  }
  analysis::HtmlReportOptions options;
  options.health = health.get();
  analysis::write_html_report(out, replay, options);
  std::cout << "wrote " << html_path << '\n';
  return 0;
}
