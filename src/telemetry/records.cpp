#include "telemetry/records.hpp"

// Records are plain data; this TU anchors the module library.

namespace pandarus::telemetry {}  // namespace pandarus::telemetry
