// Post-hoc metadata corruption (paper challenge #3, §1: "metadata is
// often heterogeneous and incomplete, with issues such as missing site
// information, inconsistent file attributes, or incomplete records").
//
// The injector mutates a MetadataStore in place, deterministically under
// a seed, so the matching rates of Tables 1/2 become a controlled
// function of corruption intensity (examples/metadata_quality sweeps it).
#pragma once

#include "telemetry/store.hpp"
#include "util/rng.hpp"

namespace pandarus::telemetry {

struct CorruptionParams {
  /// P(drop the jeditaskid from a transfer record that had one).
  double p_drop_transfer_taskid = 0.04;
  /// P(source recorded as UNKNOWN) / P(destination recorded as UNKNOWN).
  double p_unknown_source = 0.015;
  double p_unknown_destination = 0.015;
  /// P(the recorded file size is off by up to size_jitter_frac) —
  /// breaks both attribute matching and the exact byte-sum check, the
  /// case RM1 is designed to recover (§4.3).
  double p_size_jitter = 0.01;
  double size_jitter_frac = 0.002;
  /// P(a PanDA file-table row is lost entirely).
  double p_drop_file_record = 0.08;
  /// P(a job record is lost).
  double p_drop_job_record = 0.005;

  // -- site-correlated quality ------------------------------------------
  // Metadata quality is a property of a site's storage middleware, not of
  // individual events: some endpoints systematically report imprecise
  // sizes or drop endpoint labels.  A deterministic per-site coin
  // (hashed from `site_quality_seed`) marks "bad-metadata" sites; events
  // touching them suffer elevated corruption.  This correlation is what
  // keeps overall match rates low without making RM1 explode.
  double bad_site_fraction = 0.50;
  double p_size_jitter_bad_site = 0.80;
  /// Unknown-endpoint rates at bad sites, split by provenance: events
  /// attributed to a task flow through the WMS-side reporting pipeline,
  /// which loses endpoint labels far more often than the bulk FTS
  /// stream (whose records the heatmap's "unknown" pseudo-site absorbs
  /// at only a few percent of volume in Fig. 3).
  double p_unknown_endpoint_bad_site_tasked = 0.30;
  double p_unknown_endpoint_bad_site_anonymous = 0.03;
  std::uint64_t site_quality_seed = 0x517e;
};

/// True when `site` is a bad-metadata site under these parameters.
[[nodiscard]] bool is_bad_metadata_site(const CorruptionParams& params,
                                        grid::SiteId site) noexcept;

struct CorruptionReport {
  std::uint64_t transfers_taskid_dropped = 0;
  std::uint64_t transfers_source_unknown = 0;
  std::uint64_t transfers_destination_unknown = 0;
  std::uint64_t transfers_size_jittered = 0;
  std::uint64_t file_records_dropped = 0;
  std::uint64_t job_records_dropped = 0;
};

/// Applies every corruption channel to the store, in place.
CorruptionReport inject_corruption(MetadataStore& store,
                                   const CorruptionParams& params,
                                   util::Rng rng);

}  // namespace pandarus::telemetry
