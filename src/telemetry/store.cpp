#include "telemetry/store.hpp"

namespace pandarus::telemetry {

void MetadataStore::record_job(JobRecord record) {
  jobs_by_task_[record.jeditaskid].push_back(jobs_.size());
  jobs_.push_back(std::move(record));
}

template <typename Record>
void MetadataStore::intern_attributes(Record& record) {
  record.lfn_sym = symbols_.intern(record.lfn);
  record.dataset_sym = symbols_.intern(record.dataset);
  record.proddblock_sym = symbols_.intern(record.proddblock);
  record.scope_sym = symbols_.intern(record.scope);
  const util::Symbol pair = attr_pairs_.intern(
      util::pack_symbols(record.dataset_sym, record.proddblock_sym));
  record.attr_sym =
      attr_triples_.intern(util::pack_symbols(pair, record.scope_sym));
}

void MetadataStore::record_file(FileRecord record) {
  intern_attributes(record);
  files_.push_back(std::move(record));
}

void MetadataStore::record_transfer(TransferRecord record) {
  intern_attributes(record);
  transfers_.push_back(std::move(record));
}

void MetadataStore::finalize_task(std::int64_t jeditaskid,
                                  wms::TaskStatus status) {
  auto it = jobs_by_task_.find(jeditaskid);
  if (it == jobs_by_task_.end()) return;
  for (std::size_t idx : it->second) jobs_[idx].task_status = status;
}

std::vector<std::size_t> MetadataStore::jobs_completed_in(
    util::SimTime t0, util::SimTime t1) const {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].end_time >= t0 && jobs_[i].end_time < t1) result.push_back(i);
  }
  return result;
}

std::vector<std::size_t> MetadataStore::transfers_started_in(
    util::SimTime t0, util::SimTime t1) const {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < transfers_.size(); ++i) {
    if (transfers_[i].started_at >= t0 && transfers_[i].started_at < t1) {
      result.push_back(i);
    }
  }
  return result;
}

MetadataStore::Counts MetadataStore::counts() const noexcept {
  Counts c;
  c.jobs = jobs_.size();
  c.files = files_.size();
  c.transfers = transfers_.size();
  for (const auto& t : transfers_) {
    if (t.has_jeditaskid()) ++c.transfers_with_taskid;
  }
  return c;
}

}  // namespace pandarus::telemetry
