#include "telemetry/recorder.hpp"

#include <algorithm>

namespace pandarus::telemetry {

Recorder::Recorder(MetadataStore& store, const dms::FileCatalog& catalog,
                   util::Rng rng, Params params)
    : store_(store), catalog_(catalog), rng_(rng), params_(params) {}

void Recorder::on_job_complete(const wms::Job& job) {
  if (job.kind == wms::JobKind::kProduction &&
      !params_.record_production_jobs) {
    return;
  }

  JobRecord record;
  record.pandaid = job.pandaid;
  record.jeditaskid = job.jeditaskid;
  record.computing_site = job.computing_site;
  record.creation_time = job.creation_time;
  record.start_time = job.start_time;
  record.end_time = job.end_time;
  record.ninputfilebytes = job.ninputfilebytes;
  record.noutputfilebytes = job.noutputfilebytes;
  record.failed = job.status == wms::JobStatus::kFailed;
  record.error_code = job.error_code;
  record.direct_io = job.direct_io;
  store_.record_job(std::move(record));

  record_file_rows(job);
}

void Recorder::record_file_rows(const wms::Job& job) {
  auto emit = [&](dms::FileId f, FileDirection direction) {
    FileRecord row;
    row.pandaid = job.pandaid;
    row.jeditaskid = job.jeditaskid;
    row.lfn = catalog_.lfn(f);
    row.dataset = catalog_.dataset_name(f);
    row.proddblock = catalog_.proddblock(f);
    row.scope = catalog_.scope(f);
    row.file_size = catalog_.file(f).size_bytes;
    row.direction = direction;
    store_.record_file(std::move(row));
  };
  for (dms::FileId f : job.input_files) emit(f, FileDirection::kInput);
  for (dms::FileId f : job.output_files) emit(f, FileDirection::kOutput);
}

void Recorder::on_task_complete(const wms::Task& task) {
  store_.finalize_task(task.jeditaskid, task.status);
}

void Recorder::on_transfer(const dms::TransferOutcome& outcome) {
  TransferRecord record;
  record.transfer_id = outcome.transfer_id;
  record.jeditaskid = outcome.jeditaskid;
  record.lfn = catalog_.lfn(outcome.file);
  record.dataset = catalog_.dataset_name(outcome.file);
  record.proddblock = catalog_.proddblock(outcome.file);
  record.scope = catalog_.scope(outcome.file);
  record.file_size = outcome.size_bytes;
  record.source_site = outcome.src;
  record.destination_site = outcome.dst;
  record.activity = outcome.activity;
  record.started_at = outcome.started_at;
  record.finished_at = outcome.finished_at;
  record.success = outcome.success;
  record.error = outcome.error;

  // Correlated corruption: a failed replica registration usually mangles
  // the recorded destination too (Fig. 12 / Table 3).
  if (outcome.success && !outcome.replica_registered &&
      outcome.activity != dms::Activity::kAnalysisDownloadDirectIO &&
      rng_.bernoulli(params_.p_unknown_dst_on_registration_failure)) {
    record.destination_site = grid::kUnknownSite;
  }

  // Direct-IO events record bytes read; whether the payload reads whole
  // files is decided once per job (see Params::p_partial_read_job).
  if (outcome.activity == dms::Activity::kAnalysisDownloadDirectIO &&
      outcome.pandaid >= 0) {
    const std::uint64_t h = util::hash_mix(
        0xd1c7'10f3ULL, static_cast<std::uint64_t>(outcome.pandaid));
    if (util::hash_unit(h) < params_.p_partial_read_job) {
      // Per-stream read fraction still varies within the dirty job.
      const double fraction = rng_.uniform(0.25, 0.95);
      record.file_size = std::max<std::uint64_t>(
          static_cast<std::uint64_t>(
              static_cast<double>(record.file_size) * fraction),
          1);
    }
  }

  store_.record_transfer(std::move(record));
}

}  // namespace pandarus::telemetry
