#include "telemetry/query.hpp"

namespace pandarus::telemetry {

std::vector<std::size_t> TransferQuery::indices() const {
  std::vector<std::size_t> out;
  for_each([&out](std::size_t i, const TransferRecord&) {
    out.push_back(i);
  });
  return out;
}

std::size_t TransferQuery::count() const {
  std::size_t n = 0;
  for_each([&n](std::size_t, const TransferRecord&) { ++n; });
  return n;
}

std::uint64_t TransferQuery::total_bytes() const {
  std::uint64_t total = 0;
  for_each([&total](std::size_t, const TransferRecord& t) {
    total += t.file_size;
  });
  return total;
}

std::vector<std::size_t> JobQuery::indices() const {
  std::vector<std::size_t> out;
  for_each([&out](std::size_t i, const JobRecord&) { out.push_back(i); });
  return out;
}

std::size_t JobQuery::count() const {
  std::size_t n = 0;
  for_each([&n](std::size_t, const JobRecord&) { ++n; });
  return n;
}

util::SimDuration JobQuery::total_queuing_time() const {
  util::SimDuration total = 0;
  for_each([&total](std::size_t, const JobRecord& j) {
    total += j.queuing_time();
  });
  return total;
}

}  // namespace pandarus::telemetry
