#include "telemetry/io.hpp"

#include <charconv>
#include <fstream>
#include <ostream>

#include "obs/event_log.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace pandarus::telemetry {
namespace {

template <typename T>
bool parse_num(const std::string& s, T& out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_site(const std::string& s, grid::SiteId& out) {
  if (s == "UNKNOWN") {
    out = grid::kUnknownSite;
    return true;
  }
  return parse_num(s, out);
}

std::string site_str(grid::SiteId site) {
  return site == grid::kUnknownSite ? "UNKNOWN" : std::to_string(site);
}

}  // namespace

void write_jobs_csv(std::ostream& os, const MetadataStore& store) {
  util::CsvWriter csv(os);
  csv.row("pandaid", "jeditaskid", "computing_site", "creation_time",
          "start_time", "end_time", "ninputfilebytes", "noutputfilebytes",
          "failed", "error_code", "direct_io", "task_status");
  for (const JobRecord& j : store.jobs()) {
    csv.row(j.pandaid, j.jeditaskid, site_str(j.computing_site),
            j.creation_time, j.start_time, j.end_time, j.ninputfilebytes,
            j.noutputfilebytes, static_cast<int>(j.failed), j.error_code,
            static_cast<int>(j.direct_io),
            static_cast<int>(j.task_status));
  }
}

void write_files_csv(std::ostream& os, const MetadataStore& store) {
  util::CsvWriter csv(os);
  csv.row("pandaid", "jeditaskid", "lfn", "dataset", "proddblock", "scope",
          "file_size", "direction");
  for (const FileRecord& f : store.files()) {
    csv.row(f.pandaid, f.jeditaskid, f.lfn, f.dataset, f.proddblock, f.scope,
            f.file_size, static_cast<int>(f.direction));
  }
}

void write_transfers_csv(std::ostream& os, const MetadataStore& store) {
  util::CsvWriter csv(os);
  csv.row("transfer_id", "jeditaskid", "lfn", "dataset", "proddblock",
          "scope", "file_size", "source_site", "destination_site",
          "activity", "started_at", "finished_at", "success", "error");
  for (const TransferRecord& t : store.transfers()) {
    csv.row(t.transfer_id, t.jeditaskid, t.lfn, t.dataset, t.proddblock,
            t.scope, t.file_size, site_str(t.source_site),
            site_str(t.destination_site), static_cast<int>(t.activity),
            t.started_at, t.finished_at, static_cast<int>(t.success),
            static_cast<int>(t.error));
  }
}

bool export_store(const std::string& prefix, const MetadataStore& store) {
  struct Target {
    const char* suffix;
    void (*writer)(std::ostream&, const MetadataStore&);
  };
  const Target targets[] = {{"_jobs.csv", write_jobs_csv},
                            {"_files.csv", write_files_csv},
                            {"_transfers.csv", write_transfers_csv}};
  for (const Target& t : targets) {
    std::ofstream out(prefix + t.suffix);
    if (!out) {
      util::log_warning() << "cannot open " << prefix << t.suffix
                          << " for writing";
      return false;
    }
    t.writer(out, store);
  }
  return true;
}

std::size_t read_jobs_csv(std::istream& is, MetadataStore& store) {
  std::size_t skipped = 0;
  bool header = true;
  for (const auto& row : util::read_csv(is)) {
    if (header) {
      header = false;
      continue;
    }
    JobRecord j;
    int failed = 0;
    int direct_io = 0;
    int task_status = 0;
    if (row.size() != 12 || !parse_num(row[0], j.pandaid) ||
        !parse_num(row[1], j.jeditaskid) ||
        !parse_site(row[2], j.computing_site) ||
        !parse_num(row[3], j.creation_time) ||
        !parse_num(row[4], j.start_time) ||
        !parse_num(row[5], j.end_time) ||
        !parse_num(row[6], j.ninputfilebytes) ||
        !parse_num(row[7], j.noutputfilebytes) ||
        !parse_num(row[8], failed) || !parse_num(row[9], j.error_code) ||
        !parse_num(row[10], direct_io) || !parse_num(row[11], task_status)) {
      ++skipped;
      continue;
    }
    j.failed = failed != 0;
    j.direct_io = direct_io != 0;
    j.task_status = static_cast<wms::TaskStatus>(task_status);
    store.record_job(std::move(j));
  }
  return skipped;
}

std::size_t read_files_csv(std::istream& is, MetadataStore& store) {
  std::size_t skipped = 0;
  bool header = true;
  for (const auto& row : util::read_csv(is)) {
    if (header) {
      header = false;
      continue;
    }
    FileRecord f;
    int direction = 0;
    if (row.size() != 8 || !parse_num(row[0], f.pandaid) ||
        !parse_num(row[1], f.jeditaskid) || !parse_num(row[6], f.file_size) ||
        !parse_num(row[7], direction)) {
      ++skipped;
      continue;
    }
    f.lfn = row[2];
    f.dataset = row[3];
    f.proddblock = row[4];
    f.scope = row[5];
    f.direction = static_cast<FileDirection>(direction);
    store.record_file(std::move(f));
  }
  return skipped;
}

std::size_t read_transfers_csv(std::istream& is, MetadataStore& store) {
  std::size_t skipped = 0;
  bool header = true;
  for (const auto& row : util::read_csv(is)) {
    if (header) {
      header = false;
      continue;
    }
    TransferRecord t;
    int activity = 0;
    int success = 0;
    int error = 0;
    // 13-column files predate the error column; keep reading them.
    const bool has_error = row.size() == 14;
    if ((row.size() != 13 && row.size() != 14) ||
        !parse_num(row[0], t.transfer_id) ||
        !parse_num(row[1], t.jeditaskid) || !parse_num(row[6], t.file_size) ||
        !parse_site(row[7], t.source_site) ||
        !parse_site(row[8], t.destination_site) ||
        !parse_num(row[9], activity) || !parse_num(row[10], t.started_at) ||
        !parse_num(row[11], t.finished_at) || !parse_num(row[12], success) ||
        (has_error && !parse_num(row[13], error))) {
      ++skipped;
      continue;
    }
    t.lfn = row[2];
    t.dataset = row[3];
    t.proddblock = row[4];
    t.scope = row[5];
    t.activity = static_cast<dms::Activity>(activity);
    t.success = success != 0;
    t.error = static_cast<dms::TransferError>(error);
    store.record_transfer(std::move(t));
  }
  return skipped;
}

std::size_t emit_store_events(const MetadataStore& store, util::SimTime ts) {
  obs::EventLog* log = obs::EventLog::installed();
  if (log == nullptr) return 0;
  std::size_t emitted = 0;
  for (const JobRecord& j : store.jobs()) {
    log->emit(obs::Event("job_record", ts, j.pandaid)
                  .field("task", j.jeditaskid)
                  .field("site", j.computing_site)
                  .field("created", j.creation_time)
                  .field("started", j.start_time)
                  .field("ended", j.end_time)
                  .field("in_bytes", j.ninputfilebytes)
                  .field("out_bytes", j.noutputfilebytes)
                  .field("failed", j.failed)
                  .field("error", j.error_code)
                  .field("direct_io", j.direct_io)
                  .field("task_status", static_cast<std::int32_t>(j.task_status)));
    ++emitted;
  }
  for (const FileRecord& f : store.files()) {
    log->emit(obs::Event("file_record", ts, f.pandaid)
                  .field("task", f.jeditaskid)
                  .field("lfn", f.lfn)
                  .field("dataset", f.dataset)
                  .field("proddblock", f.proddblock)
                  .field("scope", f.scope)
                  .field("size", f.file_size)
                  .field("dir", static_cast<std::int32_t>(f.direction)));
    ++emitted;
  }
  for (const TransferRecord& t : store.transfers()) {
    log->emit(obs::Event("transfer_record", ts,
                         static_cast<std::int64_t>(t.transfer_id))
                  .field("task", t.jeditaskid)
                  .field("lfn", t.lfn)
                  .field("dataset", t.dataset)
                  .field("proddblock", t.proddblock)
                  .field("scope", t.scope)
                  .field("size", t.file_size)
                  .field("src", t.source_site)
                  .field("dst", t.destination_site)
                  .field("activity", static_cast<std::int32_t>(t.activity))
                  .field("started", t.started_at)
                  .field("finished", t.finished_at)
                  .field("success", t.success)
                  .field("terr", static_cast<std::int32_t>(t.error)));
    ++emitted;
  }
  return emitted;
}

}  // namespace pandarus::telemetry
