// Composable queries over the MetadataStore — the ergonomic face of the
// OpenSearch stand-in (paper Fig. 4's "querying module").
//
//   auto bytes = TransferQuery(store)
//                    .activity(dms::Activity::kAnalysisDownload)
//                    .to_site(site)
//                    .started_in(t0, t1)
//                    .successful()
//                    .total_bytes();
//
// Filters AND together; terminals (`indices`, `count`, `total_bytes`,
// `for_each`) evaluate lazily in one pass over the store.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "telemetry/store.hpp"

namespace pandarus::telemetry {

class TransferQuery {
 public:
  explicit TransferQuery(const MetadataStore& store) : store_(&store) {}

  TransferQuery& started_in(util::SimTime t0, util::SimTime t1) {
    return where([t0, t1](const TransferRecord& t) {
      return t.started_at >= t0 && t.started_at < t1;
    });
  }
  TransferQuery& activity(dms::Activity a) {
    return where([a](const TransferRecord& t) { return t.activity == a; });
  }
  TransferQuery& from_site(grid::SiteId site) {
    return where(
        [site](const TransferRecord& t) { return t.source_site == site; });
  }
  TransferQuery& to_site(grid::SiteId site) {
    return where([site](const TransferRecord& t) {
      return t.destination_site == site;
    });
  }
  TransferQuery& successful(bool value = true) {
    return where(
        [value](const TransferRecord& t) { return t.success == value; });
  }
  TransferQuery& with_taskid(bool value = true) {
    return where([value](const TransferRecord& t) {
      return t.has_jeditaskid() == value;
    });
  }
  TransferQuery& local(bool value = true) {
    return where(
        [value](const TransferRecord& t) { return t.is_local() == value; });
  }
  TransferQuery& larger_than(std::uint64_t bytes) {
    return where(
        [bytes](const TransferRecord& t) { return t.file_size > bytes; });
  }
  /// Arbitrary predicate escape hatch.
  TransferQuery& where(std::function<bool(const TransferRecord&)> pred) {
    predicates_.push_back(std::move(pred));
    return *this;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    const auto transfers = store_->transfers();
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      if (passes(transfers[i])) fn(i, transfers[i]);
    }
  }
  [[nodiscard]] std::vector<std::size_t> indices() const;
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;

 private:
  [[nodiscard]] bool passes(const TransferRecord& t) const {
    for (const auto& pred : predicates_) {
      if (!pred(t)) return false;
    }
    return true;
  }

  const MetadataStore* store_;
  std::vector<std::function<bool(const TransferRecord&)>> predicates_;
};

class JobQuery {
 public:
  explicit JobQuery(const MetadataStore& store) : store_(&store) {}

  JobQuery& completed_in(util::SimTime t0, util::SimTime t1) {
    return where([t0, t1](const JobRecord& j) {
      return j.end_time >= t0 && j.end_time < t1;
    });
  }
  JobQuery& at_site(grid::SiteId site) {
    return where(
        [site](const JobRecord& j) { return j.computing_site == site; });
  }
  JobQuery& failed(bool value = true) {
    return where([value](const JobRecord& j) { return j.failed == value; });
  }
  JobQuery& with_error(std::int32_t code) {
    return where([code](const JobRecord& j) { return j.error_code == code; });
  }
  JobQuery& task_status(wms::TaskStatus status) {
    return where(
        [status](const JobRecord& j) { return j.task_status == status; });
  }
  JobQuery& direct_io(bool value = true) {
    return where(
        [value](const JobRecord& j) { return j.direct_io == value; });
  }
  JobQuery& where(std::function<bool(const JobRecord&)> pred) {
    predicates_.push_back(std::move(pred));
    return *this;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    const auto jobs = store_->jobs();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (passes(jobs[i])) fn(i, jobs[i]);
    }
  }
  [[nodiscard]] std::vector<std::size_t> indices() const;
  [[nodiscard]] std::size_t count() const;
  /// Sum of the selected jobs' queuing times (handy for per-site delay
  /// accounting).
  [[nodiscard]] util::SimDuration total_queuing_time() const;

 private:
  [[nodiscard]] bool passes(const JobRecord& j) const {
    for (const auto& pred : predicates_) {
      if (!pred(j)) return false;
    }
    return true;
  }

  const MetadataStore* store_;
  std::vector<std::function<bool(const JobRecord&)>> predicates_;
};

}  // namespace pandarus::telemetry
