// MetadataStore: the OpenSearch stand-in (paper §4.1).
//
// Append-only record streams with the time-window query semantics the
// paper relies on: the query module "only reports jobs that are completed
// before the end of the interval, excluding all jobs still running"
// (§4.2).  Indexes used by the matcher (file records by (pandaid,
// jeditaskid), transfers by lfn) are built on demand by the core module;
// the store itself stays a dumb, faithful record base — plus one piece
// of derived state: a shared symbol table.  record_file/record_transfer
// intern the string attributes (lfn, dataset, proddblock, scope) to
// dense ids and the (dataset, proddblock, scope) triple to one attr_sym,
// so the core's MatchIndex can group and compare records with integer
// keys only.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "telemetry/records.hpp"
#include "util/interner.hpp"

namespace pandarus::telemetry {

class MetadataStore {
 public:
  void record_job(JobRecord record);
  void record_file(FileRecord record);
  void record_transfer(TransferRecord record);

  /// Backfills the final task status on every job record of the task
  /// (job records are written at job completion, before their task
  /// reaches a terminal state).
  void finalize_task(std::int64_t jeditaskid, wms::TaskStatus status);

  [[nodiscard]] std::span<const JobRecord> jobs() const noexcept {
    return jobs_;
  }
  [[nodiscard]] std::span<const FileRecord> files() const noexcept {
    return files_;
  }
  [[nodiscard]] std::span<const TransferRecord> transfers() const noexcept {
    return transfers_;
  }

  /// Symbol table shared by all four string attributes of both record
  /// families: `files()[i].lfn_sym == transfers()[j].lfn_sym` iff the
  /// lfn strings are equal.
  [[nodiscard]] const util::StringInterner& symbols() const noexcept {
    return symbols_;
  }

  // Mutable access for the corruption injector only.  Invariant: the
  // string attributes of a record must not be edited in place (their
  // symbol ids would go stale) — re-record instead.  Numeric fields
  // (file_size, sites, task ids, times) may be edited freely; the
  // MatchIndex derives its composite keys from them at build time.
  [[nodiscard]] std::vector<JobRecord>& jobs_mutable() noexcept {
    return jobs_;
  }
  [[nodiscard]] std::vector<FileRecord>& files_mutable() noexcept {
    return files_;
  }
  [[nodiscard]] std::vector<TransferRecord>& transfers_mutable() noexcept {
    return transfers_;
  }

  /// Indices of jobs completed within [t0, t1) — the paper's window
  /// pre-selection: a job is visible only once it has completed.
  [[nodiscard]] std::vector<std::size_t> jobs_completed_in(
      util::SimTime t0, util::SimTime t1) const;

  /// Indices of transfers that started within [t0, t1).
  [[nodiscard]] std::vector<std::size_t> transfers_started_in(
      util::SimTime t0, util::SimTime t1) const;

  struct Counts {
    std::size_t jobs = 0;
    std::size_t files = 0;
    std::size_t transfers = 0;
    std::size_t transfers_with_taskid = 0;
  };
  [[nodiscard]] Counts counts() const noexcept;

 private:
  /// Overwrites the record's symbol fields from this store's interner
  /// (records copied from another store carry that store's ids).
  template <typename Record>
  void intern_attributes(Record& record);

  std::vector<JobRecord> jobs_;
  std::vector<FileRecord> files_;
  std::vector<TransferRecord> transfers_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> jobs_by_task_;
  util::StringInterner symbols_;
  /// (dataset_sym, proddblock_sym) -> pair id, (pair id, scope_sym) ->
  /// attr_sym: chained pair interning gives the triple an exact dense id.
  util::KeyInterner<std::uint64_t> attr_pairs_;
  util::KeyInterner<std::uint64_t> attr_triples_;
};

}  // namespace pandarus::telemetry
