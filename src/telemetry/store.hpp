// MetadataStore: the OpenSearch stand-in (paper §4.1).
//
// Append-only record streams with the time-window query semantics the
// paper relies on: the query module "only reports jobs that are completed
// before the end of the interval, excluding all jobs still running"
// (§4.2).  Indexes used by the matcher (file records by (pandaid,
// jeditaskid), transfers by lfn) are built on demand by the core module;
// the store itself stays a dumb, faithful record base.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "telemetry/records.hpp"

namespace pandarus::telemetry {

class MetadataStore {
 public:
  void record_job(JobRecord record);
  void record_file(FileRecord record);
  void record_transfer(TransferRecord record);

  /// Backfills the final task status on every job record of the task
  /// (job records are written at job completion, before their task
  /// reaches a terminal state).
  void finalize_task(std::int64_t jeditaskid, wms::TaskStatus status);

  [[nodiscard]] std::span<const JobRecord> jobs() const noexcept {
    return jobs_;
  }
  [[nodiscard]] std::span<const FileRecord> files() const noexcept {
    return files_;
  }
  [[nodiscard]] std::span<const TransferRecord> transfers() const noexcept {
    return transfers_;
  }

  // Mutable access for the corruption injector only.
  [[nodiscard]] std::vector<JobRecord>& jobs_mutable() noexcept {
    return jobs_;
  }
  [[nodiscard]] std::vector<FileRecord>& files_mutable() noexcept {
    return files_;
  }
  [[nodiscard]] std::vector<TransferRecord>& transfers_mutable() noexcept {
    return transfers_;
  }

  /// Indices of jobs completed within [t0, t1) — the paper's window
  /// pre-selection: a job is visible only once it has completed.
  [[nodiscard]] std::vector<std::size_t> jobs_completed_in(
      util::SimTime t0, util::SimTime t1) const;

  /// Indices of transfers that started within [t0, t1).
  [[nodiscard]] std::vector<std::size_t> transfers_started_in(
      util::SimTime t0, util::SimTime t1) const;

  struct Counts {
    std::size_t jobs = 0;
    std::size_t files = 0;
    std::size_t transfers = 0;
    std::size_t transfers_with_taskid = 0;
  };
  [[nodiscard]] Counts counts() const noexcept;

 private:
  std::vector<JobRecord> jobs_;
  std::vector<FileRecord> files_;
  std::vector<TransferRecord> transfers_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> jobs_by_task_;
};

}  // namespace pandarus::telemetry
