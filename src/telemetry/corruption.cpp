#include "telemetry/corruption.hpp"

#include <algorithm>

namespace pandarus::telemetry {

bool is_bad_metadata_site(const CorruptionParams& params,
                          grid::SiteId site) noexcept {
  if (site == grid::kUnknownSite) return false;
  return util::hash_unit(util::hash_mix(params.site_quality_seed, site)) <
         params.bad_site_fraction;
}

CorruptionReport inject_corruption(MetadataStore& store,
                                   const CorruptionParams& params,
                                   util::Rng rng) {
  CorruptionReport report;

  auto jitter_size = [&](TransferRecord& t) {
    const double factor =
        1.0 + rng.uniform(-params.size_jitter_frac, params.size_jitter_frac);
    const auto jittered =
        static_cast<std::uint64_t>(static_cast<double>(t.file_size) * factor);
    if (jittered != t.file_size) {
      t.file_size = std::max<std::uint64_t>(jittered, 1);
      ++report.transfers_size_jittered;
    }
  };

  for (TransferRecord& t : store.transfers_mutable()) {
    // Site-correlated channel first: bad-metadata endpoints mangle their
    // events far more often than the grid-wide baseline.
    const bool bad_src = is_bad_metadata_site(params, t.source_site);
    const bool bad_dst = is_bad_metadata_site(params, t.destination_site);
    if (bad_src || bad_dst) {
      // Stage-out (upload) events are recorded by the pilot that wrote
      // the file, so their sizes survive bad storage dumps — the reason
      // Analysis Upload still matches at ~95% in Table 1.
      if (!t.is_upload() && rng.bernoulli(params.p_size_jitter_bad_site)) {
        jitter_size(t);
      }
      // Pilot-recorded stage-outs also keep their endpoint labels; the
      // UNKNOWN-endpoint channel afflicts storage-side event streams,
      // and hits the task-attributed pipeline much harder than bulk
      // FTS traffic (see the header).
      if (!t.is_upload()) {
        const double p_unknown =
            t.has_jeditaskid()
                ? params.p_unknown_endpoint_bad_site_tasked
                : params.p_unknown_endpoint_bad_site_anonymous;
        if (bad_dst && rng.bernoulli(p_unknown)) {
          t.destination_site = grid::kUnknownSite;
          ++report.transfers_destination_unknown;
        }
        if (bad_src && rng.bernoulli(p_unknown)) {
          t.source_site = grid::kUnknownSite;
          ++report.transfers_source_unknown;
        }
      }
    }
    if (t.has_jeditaskid() && rng.bernoulli(params.p_drop_transfer_taskid)) {
      t.jeditaskid = -1;
      ++report.transfers_taskid_dropped;
    }
    if (t.source_site != grid::kUnknownSite &&
        rng.bernoulli(params.p_unknown_source)) {
      t.source_site = grid::kUnknownSite;
      ++report.transfers_source_unknown;
    }
    if (t.destination_site != grid::kUnknownSite &&
        rng.bernoulli(params.p_unknown_destination)) {
      t.destination_site = grid::kUnknownSite;
      ++report.transfers_destination_unknown;
    }
    if (rng.bernoulli(params.p_size_jitter)) jitter_size(t);
  }

  if (params.p_drop_file_record > 0.0) {
    auto& files = store.files_mutable();
    const auto before = files.size();
    std::erase_if(files, [&](const FileRecord&) {
      return rng.bernoulli(params.p_drop_file_record);
    });
    report.file_records_dropped =
        static_cast<std::uint64_t>(before - files.size());
  }

  if (params.p_drop_job_record > 0.0) {
    auto& jobs = store.jobs_mutable();
    const auto before = jobs.size();
    std::erase_if(jobs, [&](const JobRecord&) {
      return rng.bernoulli(params.p_drop_job_record);
    });
    report.job_records_dropped =
        static_cast<std::uint64_t>(before - jobs.size());
  }

  return report;
}

}  // namespace pandarus::telemetry
