// Telemetry records: the synthetic analogue of the PanDA/Rucio metadata
// the paper retrieves through OpenSearch (§4.1, Fig. 4).
//
// Three record families mirror the paper's inputs:
//  * JobRecord      — PanDA job metadata (pandaid, jeditaskid, site,
//                     creation/start/end, ninputfilebytes, ...);
//  * FileRecord     — PanDA file table rows carrying BOTH pandaid and
//                     jeditaskid, the bridge Algorithm 1 pivots on;
//  * TransferRecord — Rucio transfer events, which carry NO pandaid
//                     (the whole reason matching is nontrivial) and only
//                     sometimes a jeditaskid.
#pragma once

#include <cstdint>
#include <string>

#include "dms/did.hpp"
#include "grid/site.hpp"
#include "util/interner.hpp"
#include "util/time.hpp"
#include "wms/job.hpp"

namespace pandarus::telemetry {

enum class FileDirection : std::uint8_t { kInput = 0, kOutput = 1 };

struct JobRecord {
  std::int64_t pandaid = 0;
  std::int64_t jeditaskid = 0;
  grid::SiteId computing_site = grid::kUnknownSite;
  util::SimTime creation_time = 0;
  util::SimTime start_time = 0;
  util::SimTime end_time = 0;
  std::uint64_t ninputfilebytes = 0;
  std::uint64_t noutputfilebytes = 0;
  bool failed = false;
  std::int32_t error_code = 0;
  bool direct_io = false;
  /// Final status of the owning task; backfilled by finalize_task().
  wms::TaskStatus task_status = wms::TaskStatus::kRunning;

  [[nodiscard]] util::SimDuration queuing_time() const noexcept {
    return start_time - creation_time;
  }
  [[nodiscard]] util::SimDuration wall_time() const noexcept {
    return end_time - start_time;
  }
  [[nodiscard]] util::SimDuration lifetime() const noexcept {
    return end_time - creation_time;
  }
};

struct FileRecord {
  std::int64_t pandaid = 0;
  std::int64_t jeditaskid = 0;
  std::string lfn;
  std::string dataset;
  std::string proddblock;
  std::string scope;
  std::uint64_t file_size = 0;
  FileDirection direction = FileDirection::kInput;

  /// Dense symbol ids for the string attributes, assigned by
  /// MetadataStore at ingest (kNoSymbol on records that never passed
  /// through a store).  attr_sym is the interned (dataset, proddblock,
  /// scope) triple: equal attr_sym iff all three strings are equal.
  util::Symbol lfn_sym = util::kNoSymbol;
  util::Symbol dataset_sym = util::kNoSymbol;
  util::Symbol proddblock_sym = util::kNoSymbol;
  util::Symbol scope_sym = util::kNoSymbol;
  util::Symbol attr_sym = util::kNoSymbol;
};

struct TransferRecord {
  std::uint64_t transfer_id = 0;
  /// -1 when the event carries no task provenance (most rule-driven
  /// traffic; also corrupted records).
  std::int64_t jeditaskid = -1;
  std::string lfn;
  std::string dataset;
  std::string proddblock;
  std::string scope;
  std::uint64_t file_size = 0;
  grid::SiteId source_site = grid::kUnknownSite;
  grid::SiteId destination_site = grid::kUnknownSite;
  dms::Activity activity = dms::Activity::kDataRebalance;
  util::SimTime started_at = 0;
  util::SimTime finished_at = 0;
  bool success = true;
  /// Terminal-outcome attribution (dms::TransferError); kNone on clean
  /// success.  Never consulted by matching — analysis-only.
  dms::TransferError error = dms::TransferError::kNone;

  /// Interned attribute symbols; see FileRecord.  Symbols cover the
  /// string fields only — file_size is folded in at index-build time
  /// because the corruption injector jitters sizes in place.
  util::Symbol lfn_sym = util::kNoSymbol;
  util::Symbol dataset_sym = util::kNoSymbol;
  util::Symbol proddblock_sym = util::kNoSymbol;
  util::Symbol scope_sym = util::kNoSymbol;
  util::Symbol attr_sym = util::kNoSymbol;

  [[nodiscard]] bool has_jeditaskid() const noexcept {
    return jeditaskid >= 0;
  }
  [[nodiscard]] bool is_download() const noexcept {
    return dms::is_download(activity);
  }
  [[nodiscard]] bool is_upload() const noexcept {
    return dms::is_upload(activity);
  }
  /// A transfer is local when both endpoints are known and equal
  /// (unknown endpoints are conservatively treated as remote, matching
  /// how Fig. 3 routes them to the "unknown" pseudo-site).
  [[nodiscard]] bool is_local() const noexcept {
    return source_site != grid::kUnknownSite &&
           source_site == destination_site;
  }
  [[nodiscard]] double throughput_bps() const noexcept {
    const double secs = util::to_seconds(finished_at - started_at);
    return secs > 0.0 ? static_cast<double>(file_size) / secs : 0.0;
  }
};

}  // namespace pandarus::telemetry
