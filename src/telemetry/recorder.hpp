// Recorder: observes the running simulation and writes telemetry.
//
// It converts wms::Job completions into JobRecords + FileRecords (user
// jobs only — the paper's study population is user jobs, and production
// jobs do not contribute rows to the PanDA file table it pivots on) and
// dms::TransferOutcomes into TransferRecords.
//
// One *correlated* corruption lives here rather than in the post-hoc
// injector: when a transfer completed but its replica registration
// failed, the same metadata pipeline hiccup usually mangles the recorded
// destination site.  This is the paper's Fig. 12 / Table 3 pattern — a
// transfer set with destination "UNKNOWN" whose files later get
// re-transferred because the catalog never learned about the copy.
#pragma once

#include "dms/catalog.hpp"
#include "dms/transfer.hpp"
#include "telemetry/store.hpp"
#include "util/rng.hpp"
#include "wms/job.hpp"

namespace pandarus::telemetry {

class Recorder {
 public:
  struct Params {
    bool record_production_jobs = false;
    /// P(recorded destination = UNKNOWN | replica registration failed).
    double p_unknown_dst_on_registration_failure = 0.9;
    /// Direct-IO streams record bytes *read*, not file size.  Whether a
    /// payload reads whole files is a property of the *job* (its access
    /// pattern), so the corruption is job-correlated: a "partial-read"
    /// job mangles every one of its stream records, while a clean job
    /// mangles none.  This correlation is what keeps the paper's RM1
    /// barely above exact (Table 2) while Direct IO still matches at
    /// only ~2% (Table 1): dirty jobs produce no candidates at all
    /// instead of half-broken candidate sets.
    double p_partial_read_job = 0.97;
  };

  Recorder(MetadataStore& store, const dms::FileCatalog& catalog,
           util::Rng rng, Params params);

  /// Call on every terminal job (wire to PandaServer::Hooks).
  void on_job_complete(const wms::Job& job);
  /// Call on every terminal task.
  void on_task_complete(const wms::Task& task);
  /// Call on every transfer outcome (wire to TransferEngine::set_sink).
  void on_transfer(const dms::TransferOutcome& outcome);

 private:
  void record_file_rows(const wms::Job& job);

  MetadataStore& store_;
  const dms::FileCatalog& catalog_;
  util::Rng rng_;
  Params params_;
};

}  // namespace pandarus::telemetry
