// CSV export/import of a MetadataStore, so campaigns can be archived and
// re-analyzed without re-simulating (and so external tools can plot the
// figure artefacts).
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/store.hpp"

namespace pandarus::telemetry {

/// Writes one CSV per record family with a header row.
void write_jobs_csv(std::ostream& os, const MetadataStore& store);
void write_files_csv(std::ostream& os, const MetadataStore& store);
void write_transfers_csv(std::ostream& os, const MetadataStore& store);

/// Convenience: writes <prefix>_jobs.csv / _files.csv / _transfers.csv.
/// Returns false (with a warning log) if any file could not be opened.
bool export_store(const std::string& prefix, const MetadataStore& store);

/// Reads record streams back.  Rows that fail to parse are skipped and
/// counted in the returned value.
std::size_t read_jobs_csv(std::istream& is, MetadataStore& store);
std::size_t read_files_csv(std::istream& is, MetadataStore& store);
std::size_t read_transfers_csv(std::istream& is, MetadataStore& store);

/// Emits one job_record / file_record / transfer_record event per store
/// row to the installed obs::EventLog (no-op when none is installed),
/// all stamped `ts`.  Rows go out in store order, so a replay that
/// re-records them rebuilds an index-compatible store.  This is the
/// harvest step: it runs after any post-hoc corruption, so the event
/// stream reflects exactly what the analyses see.  Returns the number of
/// events emitted.
std::size_t emit_store_events(const MetadataStore& store, util::SimTime ts);

}  // namespace pandarus::telemetry
