#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "obs/event_log.hpp"

namespace pandarus::sim {

struct Scheduler::EventHandle::State {
  Callback callback;
  bool cancelled = false;
  bool fired = false;
};

bool Scheduler::EventHandle::cancel() noexcept {
  if (!state_ || state_->cancelled || state_->fired) return false;
  state_->cancelled = true;
  state_->callback = nullptr;  // release captures eagerly
  return true;
}

bool Scheduler::EventHandle::pending() const noexcept {
  return state_ && !state_->cancelled && !state_->fired;
}

Scheduler::Scheduler()
    : ev_scheduled_(&obs::Registry::global().counter(
          "pandarus_sim_events_scheduled_total",
          "Events pushed onto the simulation heap")),
      ev_fired_(&obs::Registry::global().counter(
          "pandarus_sim_events_fired_total",
          "Events whose callback actually ran")),
      ev_cancelled_(&obs::Registry::global().counter(
          "pandarus_sim_events_cancelled_total",
          "Cancelled events skipped when popped")),
      heap_size_(&obs::Registry::global().gauge(
          "pandarus_sim_heap_size",
          "Live size of the simulation event heap (last observed)")) {}

Scheduler::EventHandle Scheduler::schedule_at(SimTime t, Callback fn) {
  auto state = std::make_shared<EventHandle::State>();
  state->callback = std::move(fn);
  queue_.push(Entry{std::max(t, now_), next_seq_++, state});
  ev_scheduled_->inc();
  heap_size_->set(static_cast<std::int64_t>(queue_.size()));
  return EventHandle(std::move(state));
}

Scheduler::EventHandle Scheduler::schedule_after(SimDuration delay,
                                                 Callback fn) {
  return schedule_at(now_ + std::max<SimDuration>(delay, 0), std::move(fn));
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (entry.state->cancelled) {
      ev_cancelled_->inc();
      continue;
    }
    now_ = entry.time;
    entry.state->fired = true;
    Callback fn = std::move(entry.state->callback);
    entry.state->callback = nullptr;
    ++processed_;
    ev_fired_->inc();
    heap_size_->set(static_cast<std::int64_t>(queue_.size()));
    fn();
    return true;
  }
  heap_size_->set(0);
  return false;
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(SimTime t) {
  const std::uint64_t fired_before = processed_;
  while (!queue_.empty() && queue_.top().time <= t) {
    if (!step()) break;
  }
  now_ = std::max(now_, t);
  // One epoch per drained prefix: the campaign's day-segmented drain
  // loop shows up as a sched_epoch series in the event stream.
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("sched_epoch", now_,
                         static_cast<std::int64_t>(epoch_))
                  .field("fired", processed_ - fired_before)
                  .field("fired_total", processed_)
                  .field("heap", static_cast<std::uint64_t>(queue_.size())));
  }
  ++epoch_;
}

}  // namespace pandarus::sim
