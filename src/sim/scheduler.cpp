#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace pandarus::sim {

struct Scheduler::EventHandle::State {
  Callback callback;
  bool cancelled = false;
  bool fired = false;
};

bool Scheduler::EventHandle::cancel() noexcept {
  if (!state_ || state_->cancelled || state_->fired) return false;
  state_->cancelled = true;
  state_->callback = nullptr;  // release captures eagerly
  return true;
}

bool Scheduler::EventHandle::pending() const noexcept {
  return state_ && !state_->cancelled && !state_->fired;
}

Scheduler::EventHandle Scheduler::schedule_at(SimTime t, Callback fn) {
  auto state = std::make_shared<EventHandle::State>();
  state->callback = std::move(fn);
  queue_.push(Entry{std::max(t, now_), next_seq_++, state});
  return EventHandle(std::move(state));
}

Scheduler::EventHandle Scheduler::schedule_after(SimDuration delay,
                                                 Callback fn) {
  return schedule_at(now_ + std::max<SimDuration>(delay, 0), std::move(fn));
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (entry.state->cancelled) continue;
    now_ = entry.time;
    entry.state->fired = true;
    Callback fn = std::move(entry.state->callback);
    entry.state->callback = nullptr;
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    if (!step()) break;
  }
  now_ = std::max(now_, t);
}

}  // namespace pandarus::sim
