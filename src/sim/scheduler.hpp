// Discrete-event simulation core.
//
// A single-threaded scheduler with a monotonic clock and a min-heap of
// (time, sequence) ordered events.  Ties are broken by insertion order,
// which — together with the seeded RNG — makes every campaign run
// bit-for-bit deterministic.  Events may be cancelled (the transfer
// engine reschedules completion events whenever link sharing changes).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace pandarus::sim {

using util::SimDuration;
using util::SimTime;

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Cancellation token for a scheduled event.  Default-constructed
  /// handles refer to no event.
  class EventHandle {
   public:
    EventHandle() = default;

    /// Prevents the callback from running.  Returns true if the event was
    /// still pending (i.e. this call actually cancelled it).
    bool cancel() noexcept;
    /// True while the event is scheduled and not yet fired or cancelled.
    [[nodiscard]] bool pending() const noexcept;

   private:
    friend class Scheduler;
    struct State;
    explicit EventHandle(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t processed_count() const noexcept {
    return processed_;
  }
  /// Heap entries still queued (cancelled-but-unswept entries count;
  /// the pair (processed, queued) is a cheap deterministic fingerprint
  /// of scheduler progress used by scenario::Checkpoint).
  [[nodiscard]] std::uint64_t queued_count() const noexcept {
    return queue_.size();
  }

  /// Schedules `fn` at absolute time `t`; times in the past are clamped
  /// to now() so causality is never violated.
  EventHandle schedule_at(SimTime t, Callback fn);

  /// Schedules `fn` after `delay` (clamped to >= 0) from now().
  EventHandle schedule_after(SimDuration delay, Callback fn);

  /// Runs until the queue is empty.
  void run();

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  void run_until(SimTime t);

  /// Fires at most one event (skipping cancelled entries); returns false
  /// when the queue had no live events.
  bool step();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::State> state;
  };
  struct EntryCompare {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      // std::priority_queue is a max-heap; invert for earliest-first,
      // breaking ties by insertion sequence.
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t epoch_ = 0;  ///< run_until calls completed (event log)
  std::priority_queue<Entry, std::vector<Entry>, EntryCompare> queue_;
  // Process-wide simulator metrics; the heap gauge is last-writer-wins
  // when several schedulers coexist (e.g. benchmark iterations).
  obs::Counter* ev_scheduled_;
  obs::Counter* ev_fired_;
  obs::Counter* ev_cancelled_;
  obs::Gauge* heap_size_;
};

}  // namespace pandarus::sim
