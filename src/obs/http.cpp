#include "obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/log.hpp"

namespace pandarus::obs {
namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

/// Strips optional \r and surrounding spaces/tabs from a header value.
std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

// --- HttpRequest ------------------------------------------------------------

std::string_view HttpRequest::header(std::string_view name) const noexcept {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return {};
}

// --- HttpStream -------------------------------------------------------------

bool HttpStream::write(std::string_view chunk) noexcept {
  if (broken_ || server_.stopping_.load(std::memory_order_acquire)) {
    return false;
  }
  if (!server_.send_all(fd_, chunk)) {
    broken_ = true;
    return false;
  }
  return true;
}

bool HttpStream::sleep_ms(int ms) noexcept {
  if (broken_) return false;
  std::unique_lock lock(server_.stop_mutex_);
  server_.stop_cv_.wait_for(lock, std::chrono::milliseconds(ms), [this] {
    return server_.stopping_.load(std::memory_order_acquire);
  });
  return !server_.stopping_.load(std::memory_order_acquire);
}

// --- HttpServer -------------------------------------------------------------

HttpServer::HttpServer(Handler handler)
    : HttpServer(std::move(handler), Options()) {}

HttpServer::HttpServer(Handler handler, Options options)
    : handler_(std::move(handler)), options_(options) {}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: http server cannot create socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, options_.backlog) < 0) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: http server cannot bind 127.0.0.1:" +
                       std::to_string(options_.port) + " (" +
                       std::strerror(errno) + ")");
    ::close(listen_fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(listen_fd, std::memory_order_release);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  const int workers = std::max(1, options_.workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void HttpServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  {
    std::scoped_lock lock(stop_mutex_);
  }
  stop_cv_.notify_all();
  // Closing the listener unblocks accept(); shutting down active
  // connections unblocks workers mid-recv/mid-send.
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  {
    std::scoped_lock lock(conn_mutex_);
    for (const int fd : active_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Connections accepted but never claimed by a worker.
  std::scoped_lock lock(queue_mutex_);
  for (const int fd : pending_) ::close(fd);
  pending_.clear();
  running_.store(false, std::memory_order_release);
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed or fatal
    }
    std::unique_lock lock(queue_mutex_);
    if (pending_.size() >= options_.max_pending_connections) {
      lock.unlock();
      ::close(fd);  // overload shedding; client sees a reset
      continue;
    }
    pending_.push_back(fd);
    lock.unlock();
    queue_cv_.notify_one();
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping
      fd = pending_.front();
      pending_.pop_front();
    }
    {
      std::scoped_lock lock(conn_mutex_);
      active_.insert(fd);
    }
    handle_connection(fd);
    {
      std::scoped_lock lock(conn_mutex_);
      active_.erase(fd);
    }
    ::close(fd);
  }
}

bool HttpServer::send_all(int fd, std::string_view data) noexcept {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void HttpServer::send_simple(int fd, const HttpRequest* req,
                             HttpResponse response) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const bool head = req != nullptr && req->method == "HEAD";
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  const bool close = response.status >= 400 && response.status != 404;
  out += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "Cache-Control: no-store\r\n\r\n";
  if (!head) out += response.body;
  send_all(fd, out);
}

bool HttpServer::parse_request(std::string_view text, HttpRequest& out) {
  // Request line: METHOD SP TARGET SP VERSION (trailing \r tolerated,
  // as is a bare-LF client).
  const std::size_t line_end = text.find('\n');
  if (line_end == std::string_view::npos) return false;
  std::string_view line = trim(text.substr(0, line_end));
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return false;
  out.method = std::string(line.substr(0, sp1));
  out.target = std::string(trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
  out.version = std::string(line.substr(sp2 + 1));
  if (out.method.empty() || out.target.empty() ||
      out.version.rfind("HTTP/", 0) != 0) {
    return false;
  }
  const std::size_t q = out.target.find('?');
  out.path = out.target.substr(0, q);
  out.query = q == std::string::npos ? "" : out.target.substr(q + 1);

  std::size_t pos = line_end + 1;
  while (pos < text.size()) {
    const std::size_t next = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, next == std::string_view::npos ? std::string_view::npos
                                                        : next - pos);
    const std::string_view header_line = trim(raw);
    if (header_line.empty()) break;  // end of headers
    const std::size_t colon = header_line.find(':');
    if (colon == std::string_view::npos) return false;
    out.headers.emplace_back(std::string(header_line.substr(0, colon)),
                             std::string(trim(header_line.substr(colon + 1))));
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return true;
}

void HttpServer::handle_connection(int fd) {
  timeval tv{};
  tv.tv_sec = options_.recv_timeout_ms / 1000;
  tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  int served = 0;
  while (served < options_.max_requests_per_connection &&
         !stopping_.load(std::memory_order_acquire)) {
    // Assemble one request head; the terminator may arrive across any
    // number of reads (split-read clients) or already sit in the buffer
    // (pipelined clients).
    std::size_t head_end = std::string::npos;
    for (;;) {
      head_end = buffer.find("\r\n\r\n");
      std::size_t head_len = head_end + 4;
      if (head_end == std::string::npos) {
        head_end = buffer.find("\n\n");
        head_len = head_end + 2;
      }
      if (head_end != std::string::npos) {
        head_end = head_len;  // one past the blank line
        break;
      }
      if (buffer.size() > options_.max_request_bytes) {
        send_simple(fd, nullptr,
                    {431, "text/plain; charset=utf-8",
                     "request header too large\n", nullptr});
        return;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;  // EOF, abrupt close, or idle timeout
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    if (head_end > options_.max_request_bytes) {
      send_simple(fd, nullptr,
                  {431, "text/plain; charset=utf-8",
                   "request header too large\n", nullptr});
      return;
    }

    HttpRequest request;
    if (!parse_request(std::string_view(buffer).substr(0, head_end),
                       request)) {
      send_simple(fd, nullptr,
                  {400, "text/plain; charset=utf-8", "bad request\n",
                   nullptr});
      return;
    }
    buffer.erase(0, head_end);
    ++served;

    if (request.method != "GET" && request.method != "HEAD") {
      send_simple(fd, &request,
                  {405, "text/plain; charset=utf-8",
                   "only GET and HEAD are supported\n", nullptr});
      return;
    }
    if (!request.header("Content-Length").empty() ||
        !request.header("Transfer-Encoding").empty()) {
      send_simple(fd, &request,
                  {400, "text/plain; charset=utf-8",
                   "request bodies are not supported\n", nullptr});
      return;
    }

    HttpResponse response;
    try {
      response = handler_(request);
    } catch (...) {
      response = {500, "text/plain; charset=utf-8",
                  "internal server error\n", nullptr};
    }

    if (response.stream && request.method == "GET") {
      requests_.fetch_add(1, std::memory_order_relaxed);
      std::string head = "HTTP/1.1 " + std::to_string(response.status) +
                         " " + status_text(response.status) + "\r\n";
      head += "Content-Type: " + response.content_type + "\r\n";
      head += "Cache-Control: no-store\r\nConnection: close\r\n\r\n";
      if (!send_all(fd, head)) return;
      HttpStream stream(fd, *this);
      response.stream(stream);
      return;
    }
    response.stream = nullptr;
    const int status = response.status;
    send_simple(fd, &request, std::move(response));
    if (status >= 400 && status != 404) return;
    if (iequals(request.header("Connection"), "close") ||
        (request.version == "HTTP/1.0" &&
         !iequals(request.header("Connection"), "keep-alive"))) {
      return;
    }
  }
}

}  // namespace pandarus::obs
