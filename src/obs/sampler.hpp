// Simulated-clock periodic sampler: snapshots a fixed set of gauges,
// counters, and caller-supplied probes into a columnar time series,
// emitting one flat "sample" event per tick through the installed
// EventLog (plus any registered free-form emitters, e.g. per-link
// samples).
//
// The sampler itself knows nothing about the simulation scheduler —
// obs sits below sim in the module layering — so the owner registers
// the periodic ticks (scenario::run_campaign schedules one sample_at()
// call per interval, exactly like its pre-scheduled carousel waves).
// Probes must be read-only and must not consume simulation RNG, so a
// sampled run stays bit-identical to an unsampled one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pandarus::obs {

class Sampler {
 public:
  /// Reads one column value at sample time.
  using Probe = std::function<std::int64_t()>;
  /// Free-form per-tick emitter (receives the sample's simulated time);
  /// used for variable-arity outputs like per-link samples.
  using Emitter = std::function<void(std::int64_t ts)>;
  /// Observes the completed row (names parallel to values) right after
  /// the "sample" event is emitted and before the emitters run — the
  /// same position the row occupies in the NDJSON stream, so a consumer
  /// fed here (obs::HealthEngine) sees rows in stream order.
  using RowObserver = std::function<void(
      std::int64_t ts, const std::vector<std::string>& names,
      const std::vector<std::int64_t>& values)>;

  explicit Sampler(std::int64_t interval_ms) : interval_ms_(interval_ms) {}

  void add_column(std::string name, Probe probe);
  /// Column named after the counter, sampling its current total.
  void add_counter(const Counter& counter);
  /// Column named after the gauge, sampling its current value.
  void add_gauge(const Gauge& gauge);
  void add_emitter(Emitter emitter);
  void set_row_observer(RowObserver observer);

  /// Evaluates every probe at simulated time `ts`, retains the row,
  /// emits a "sample" event (entity = tick index, one field per column)
  /// through the installed EventLog, then runs the free-form emitters.
  void sample_at(std::int64_t ts);

  [[nodiscard]] std::int64_t interval_ms() const noexcept {
    return interval_ms_;
  }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return names_;
  }

  struct Row {
    std::int64_t ts = 0;
    std::vector<std::int64_t> values;
  };
  [[nodiscard]] const std::vector<Row>& rows() const noexcept {
    return rows_;
  }

 private:
  std::int64_t interval_ms_;
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
  std::vector<Emitter> emitters_;
  RowObserver row_observer_;
  std::vector<Row> rows_;
};

}  // namespace pandarus::obs
