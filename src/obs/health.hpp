// Streaming health engine: deterministic anomaly detectors and SLO
// burn-rate evaluation over the campaign's own event/sampler streams.
//
// The engine is fed twice, through two faces of the same interface:
//
//   * live — instrumented sites (sampler rows, per-link probes, breaker
//     transitions, terminal transfer outcomes) call the typed on_*()
//     feeds directly, guarded by `HealthEngine::installed()` exactly
//     like EventLog emit sites;
//   * replay — analysis::derive_health() streams a recorded NDJSON or
//     colstore file through observe_json(), which maps the canonical
//     event vocabulary ("sample", "link_sample", "breaker_state",
//     "transfer_done"/"transfer_fail") onto the *same* typed feeds.
//
// Because both paths drive identical detector state in identical order,
// and every input carries simulated time only, the engine's
// status_json() is bit-identical between a live run and a replay of the
// stream that run produced.  That is the contract the /api/alerts
// parity gate checks.
//
// Detectors hold bounded state (EWMA scalars and fixed-width bucket
// rings), so memory is O(active links + detectors), never O(events).
// Alert lifecycle is pending → firing → resolved; every transition
// emits one typed `alert` NDJSON event through the installed EventLog
// (when emission is enabled), so stripping `alert` lines from a
// health-on stream restores the health-off bytes exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace pandarus::obs {

enum class AlertPhase { kPending, kFiring, kResolved };
[[nodiscard]] std::string_view alert_phase_name(AlertPhase phase) noexcept;

/// One detector/entity alert, as surfaced by /api/alerts.
struct AlertState {
  std::string detector;
  std::string entity;    ///< e.g. "queue", "link:3->7"
  std::string severity;  ///< "warning" | "critical"
  AlertPhase phase = AlertPhase::kPending;
  std::int64_t first_ts = 0;  ///< when the pending phase began
  std::int64_t since_ts = 0;  ///< when the current phase began
  std::int64_t last_ts = 0;   ///< last observation that touched it
  double value = 0.0;         ///< most recent detector reading
  double threshold = 0.0;     ///< detector threshold at that reading
  std::uint32_t fire_count = 0;
};

/// One lifecycle transition, kept (bounded) for the report timeline.
struct AlertTransition {
  std::int64_t ts = 0;
  AlertPhase phase = AlertPhase::kPending;
  std::string detector;
  std::string entity;
  std::string severity;
  double value = 0.0;
  double threshold = 0.0;
};

/// One SLO objective's multi-window burn-rate snapshot.
struct SloStatus {
  std::string name;
  double target = 0.0;  ///< good-fraction objective, e.g. 0.95
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  double burn_fast = 0.0;  ///< bad_frac / error_budget over fast window
  double burn_slow = 0.0;
};

struct HealthConfig {
  // EWMA spike detection (queue depth, link utilization).
  double ewma_alpha = 0.2;
  double queue_z_threshold = 6.0;
  double queue_min_value = 64.0;  ///< absolute floor before z applies
  double link_util_floor = 0.92;  ///< utilization that always breaches
  double link_z_threshold = 4.0;
  // Lifecycle hysteresis (consecutive breaches / clears).
  int pending_ticks = 2;
  int clear_ticks = 2;
  // Transfer-stall window: terminal "stalled_terminal" failures.
  std::int64_t stall_window_ms = 2 * 3600 * 1000;
  std::uint64_t stall_threshold = 3;
  // Breaker flap escalation: open/close transitions per link.
  std::int64_t flap_window_ms = 6 * 3600 * 1000;
  std::uint64_t flap_threshold = 4;
  // Match-rate drop: candidates advancing while matches stay flat.
  int match_drop_ticks = 4;
  // SLO burn-rate evaluation.
  std::int64_t slo_bucket_ms = 5 * 60 * 1000;
  std::int64_t slo_fast_window_ms = 1 * 3600 * 1000;
  std::int64_t slo_slow_window_ms = 6 * 3600 * 1000;
  double slo_burn_threshold = 2.0;
  double transfer_latency_target = 0.95;      ///< fraction under bound
  std::int64_t transfer_latency_bound_ms = 4 * 3600 * 1000;
  double transfer_success_target = 0.90;
  double event_integrity_target = 0.999;      ///< fraction not dropped
  // Bounded histories.
  std::size_t max_transitions = 4096;
  std::size_t max_resolved = 512;
};

/// Fixed-width bucketed sliding-window counter: O(window/bucket) memory
/// regardless of event rate.  Monotone-time friendly; reset() on epoch
/// regression.
class BucketRing {
 public:
  BucketRing(std::int64_t bucket_ms, std::int64_t window_ms);
  void add(std::int64_t ts, std::uint64_t n = 1);
  /// Total count within [now - window, now]; expires old buckets.
  [[nodiscard]] std::uint64_t total(std::int64_t now);
  void reset();

 private:
  void expire(std::int64_t now);
  std::int64_t bucket_ms_;
  std::size_t capacity_;
  std::deque<std::pair<std::int64_t, std::uint64_t>> buckets_;
};

class HealthEngine {
 public:
  explicit HealthEngine(HealthConfig config = {});

  /// Makes this the process-wide engine the live feed sites report to.
  void install() noexcept;
  void uninstall() noexcept;
  [[nodiscard]] static HealthEngine* installed() noexcept {
    return g_installed.load(std::memory_order_acquire);
  }

  /// Alert lifecycle transitions mirror to the installed EventLog as
  /// `alert` events when enabled (the default).  derive_health()
  /// disables it so replaying a stream never re-emits its own alerts.
  void set_emit_events(bool emit) noexcept { emit_events_ = emit; }

  // --- typed feeds (live instrumentation sites) -----------------------------
  // All feeds are read-only observers of the simulation: they consume
  // no simulation RNG and schedule nothing, so an armed engine leaves
  // the non-alert event stream byte-identical.

  /// One sampler row (column names parallel to values).
  void on_sample(std::int64_t ts, const std::vector<std::string>& names,
                 const std::vector<std::int64_t>& values);
  /// One per-link load probe.
  void on_link_sample(std::int64_t ts, std::int64_t src, std::int64_t dst,
                      std::int64_t queued, double utilization);
  /// One terminal transfer outcome; `error` uses
  /// dms::transfer_error_name vocabulary ("none", "stalled_terminal",
  /// ...), passed as text because obs layers below dms.
  void on_transfer_terminal(std::int64_t ts, bool success,
                            std::string_view error,
                            std::int64_t duration_ms);
  /// One circuit-breaker state change.
  void on_breaker(std::int64_t ts, std::int64_t src, std::int64_t dst,
                  bool open);

  /// Canonical stream mapping: routes one parsed event object onto the
  /// typed feeds above.  Unknown kinds — including `alert` itself — are
  /// ignored, so feeding a health-on stream cannot self-amplify.
  void observe_json(const util::json::Value& event);

  // --- snapshots ------------------------------------------------------------

  struct Counts {
    std::uint64_t observations = 0;  ///< typed feed calls accepted
    std::uint64_t fired = 0;         ///< alerts that reached firing
    std::uint64_t resolved = 0;      ///< alerts that reached resolved
    std::uint64_t active_pending = 0;
    std::uint64_t active_firing = 0;
  };
  [[nodiscard]] Counts counts() const;

  /// Active (pending/firing) alerts sorted by (detector, entity), then
  /// resolved history in resolution order.
  [[nodiscard]] std::vector<AlertState> alerts() const;
  [[nodiscard]] std::vector<AlertTransition> transitions() const;
  [[nodiscard]] std::vector<SloStatus> slos() const;

  /// Deterministic JSON document {"counts":…,"alerts":…,"slos":…} — the
  /// /api/alerts body and the live-vs-replay parity artifact.  Contains
  /// no wall-clock, watermark, or pointer-derived content.
  [[nodiscard]] std::string status_json() const;

  [[nodiscard]] const HealthConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Lifecycle {
    AlertState state;
    int breach_streak = 0;
    int clear_streak = 0;
    bool active = false;  ///< pending or firing
  };

  /// Drives one detector/entity lifecycle step; mutex_ held.
  void step_locked(std::string_view detector, std::string_view entity,
                   std::string_view severity, std::int64_t ts, bool breach,
                   double value, double threshold, bool instant);
  void transition_locked(Lifecycle& lc, std::int64_t ts, AlertPhase phase);
  void evaluate_slos_locked(std::int64_t ts);
  void note_ts_locked(std::int64_t ts);
  void reset_locked();
  void export_gauges_locked();

  struct Ewma {
    bool primed = false;
    double mean = 0.0;
    double var = 0.0;
    void observe(double v, double alpha);
    [[nodiscard]] double zscore(double v) const;
  };

  struct LinkState {
    Ewma util;
    BucketRing flaps;
    bool breaker_open = false;
    explicit LinkState(const HealthConfig& c)
        : flaps(c.flap_window_ms / 8 > 0 ? c.flap_window_ms / 8 : 1,
                c.flap_window_ms) {}
  };

  struct Slo {
    std::string name;
    double target;
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
    BucketRing good_fast, bad_fast, good_slow, bad_slow;
    Slo(std::string n, double t, const HealthConfig& c)
        : name(std::move(n)),
          target(t),
          good_fast(c.slo_bucket_ms, c.slo_fast_window_ms),
          bad_fast(c.slo_bucket_ms, c.slo_fast_window_ms),
          good_slow(c.slo_bucket_ms, c.slo_slow_window_ms),
          bad_slow(c.slo_bucket_ms, c.slo_slow_window_ms) {}
    void add(std::int64_t ts, bool is_good, std::uint64_t n = 1);
    /// burn = bad_frac / (1 - target) over the window; 0 when empty.
    [[nodiscard]] double burn(std::int64_t now, bool fast);
  };

  static std::atomic<HealthEngine*> g_installed;

  const HealthConfig config_;
  bool emit_events_ = true;

  mutable std::mutex mutex_;
  std::int64_t last_ts_ = INT64_MIN;
  std::uint64_t observations_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t resolved_count_ = 0;

  // Detector state.
  Ewma queue_depth_;
  std::map<std::pair<std::int64_t, std::int64_t>, LinkState> links_;
  BucketRing stalls_;
  int match_flat_ticks_ = 0;
  bool have_prev_sample_ = false;
  std::int64_t prev_candidates_ = 0;
  std::int64_t prev_matched_ = 0;
  std::int64_t prev_dropped_ = 0;

  // SLOs (fixed order: latency, success, integrity).
  std::vector<Slo> slos_;

  // Alert state.
  std::map<std::pair<std::string, std::string>, Lifecycle> active_;
  std::vector<AlertState> resolved_;
  std::vector<AlertTransition> transitions_;
};

}  // namespace pandarus::obs
