// Environment-driven observability hooks shared by every bench/example:
//
//   PANDARUS_METRICS=<path>  dump a global-registry snapshot at exit
//                            (Prometheus text if <path> ends in .prom,
//                            JSON otherwise);
//   PANDARUS_TRACE=<path>    install a process-lifetime TraceRecorder
//                            now and write Chrome trace JSON at exit.
//
// One call near the start of main() is enough; binaries need no other
// per-binary wiring.
#pragma once

namespace pandarus::obs {

/// Reads both variables once and registers the atexit writer when
/// either is set.  Idempotent; returns true iff a hook is active.
bool install_env_hooks();

}  // namespace pandarus::obs
