// Environment-driven observability hooks shared by every bench/example:
//
//   PANDARUS_METRICS=<path>  dump a global-registry snapshot at exit
//                            (Prometheus text if <path> ends in .prom,
//                            JSON otherwise);
//   PANDARUS_TRACE=<path>    install a process-lifetime TraceRecorder
//                            now and write Chrome trace JSON at exit;
//   PANDARUS_EVENTS=<path>   install a process-lifetime EventLog now
//                            and write the NDJSON event stream at exit
//                            (consumed offline by pandarus-report and
//                            analysis::replay_events);
//   PANDARUS_EVENTS_COL=<path>
//                            same EventLog, written at exit as a
//                            chunk-compressed columnar .colstore file
//                            (obs::colstore; query with pandarus-events).
//                            Combine with PANDARUS_EVENTS to write both
//                            sinks from one stream; either alone also
//                            arms the log.  The exit dump closes the
//                            log first, appending a terminal log_stats
//                            event (events written/dropped/bytes);
//   PANDARUS_FLOWS=<path>    install a process-lifetime FlowTracker now
//                            (flow_* events appear in the EventLog
//                            stream, flow lanes in the Chrome trace) and
//                            write flamegraph collapsed stacks to <path>
//                            at exit (empty value: track, no dump);
//   PANDARUS_SERVE=<port>    install a process-lifetime StatusServer on
//                            127.0.0.1:<port> (0 picks an ephemeral
//                            port, logged at startup): GET /metrics
//                            Prometheus scrape, /healthz, /api/* JSON
//                            (attached by scenario::run_campaign),
//                            /events/stream SSE, and an HTML status
//                            page at /.  Also registers the
//                            pandarus_build_info and process gauges.
//                            The server stops before the exit dumps so
//                            in-flight scrapes quiesce first;
//   PANDARUS_EVENTS_FLUSH_MS=<ms>
//                            with PANDARUS_EVENTS: append newly
//                            *published* event lines to the NDJSON file
//                            every <ms> milliseconds, so tail -f and
//                            SSE consumers see data before close().
//                            Default off — without it the file is
//                            written once at exit.  The exit dump still
//                            rewrites the complete stream, so the final
//                            bytes are identical either way;
//   PANDARUS_EVENTS_FSYNC=off|flush|interval:<ms>
//                            durability policy for the event sinks.
//                            `flush` fsyncs after every flush pass and
//                            the final write; `interval:<ms>` fsyncs at
//                            most once per <ms> of wall time.  The
//                            default `off` issues no fsync and leaves
//                            every byte-identity guarantee untouched.
//                            `interval:<ms>` arms the periodic flusher
//                            at <ms> when PANDARUS_EVENTS_FLUSH_MS is
//                            unset (durability needs data on its way to
//                            the file);
//   PANDARUS_EVENTS_WRITE_DELAY_US=<us>
//                            crash-injection hook: the flush thread
//                            sleeps <us> after each 4 KiB block so a
//                            SIGKILL can land mid-flush (used by
//                            examples/crash_harness; not for production
//                            runs).
//
// One call near the start of main() is enough; binaries need no other
// per-binary wiring.
#pragma once

namespace pandarus::obs {

/// Reads the variables once and registers the atexit writer when any is
/// set.  Idempotent — repeated calls return the first call's result and
/// never register duplicate atexit dumps.  Returns true iff a hook is
/// active.
bool install_env_hooks();

}  // namespace pandarus::obs
