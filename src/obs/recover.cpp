#include "obs/recover.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "obs/colstore.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace pandarus::obs {
namespace {

bool read_file(const std::string& path, std::string& out,
               std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot open " + path;
    return false;
  }
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) error = "read failed on " + path;
  return ok;
}

/// Copies the first `prefix` bytes of `in_path` over `out_path` via a
/// temp file + rename, so a crash during recovery cannot destroy the
/// survivor (in_path == out_path repairs in place).
bool copy_prefix(const std::string& in_path, const std::string& out_path,
                 std::uint64_t prefix, std::string& error) {
  std::FILE* in = std::fopen(in_path.c_str(), "rb");
  if (in == nullptr) {
    error = "cannot open " + in_path;
    return false;
  }
  const std::string tmp_path = out_path + ".recover-tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    error = "cannot open " + tmp_path + " for writing";
    return false;
  }
  char buf[1 << 16];
  std::uint64_t left = prefix;
  bool ok = true;
  while (ok && left > 0) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(left, sizeof buf));
    const std::size_t got = std::fread(buf, 1, want, in);
    if (got == 0 || std::fwrite(buf, 1, got, out) != got) {
      ok = false;
      break;
    }
    left -= got;
  }
  std::fclose(in);
  ok = ok && std::fflush(out) == 0 && ::fsync(fileno(out)) == 0;
  std::fclose(out);
  if (!ok) {
    std::remove(tmp_path.c_str());
    error = "copy to " + tmp_path + " failed";
    return false;
  }
  if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    error = "rename " + tmp_path + " -> " + out_path + " failed";
    return false;
  }
  return true;
}

}  // namespace

RecoveryReport salvage_ndjson(std::string_view bytes) {
  RecoveryReport report;
  report.ok = true;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string_view::npos) {
      report.truncated = true;
      report.detail = "incomplete final line";
      break;
    }
    const std::string_view line = bytes.substr(pos, nl - pos);
    if (!line.empty()) {
      // A torn tail only ever damages the last line, but checking every
      // kept line costs one replay-equivalent parse and turns mid-file
      // corruption into a clean truncation instead of a poisoned file.
      const auto parsed = util::json::parse(line);
      if (!parsed || parsed->kind != util::json::Value::Kind::kObject) {
        report.truncated = true;
        report.detail = "unparseable line";
        break;
      }
      ++report.salvaged_events;
    }
    pos = nl + 1;
  }
  report.salvaged_bytes = pos;
  report.dropped_bytes = bytes.size() - pos;
  return report;
}

RecoveryReport recover_ndjson_file(const std::string& in_path,
                                   const std::string& out_path) {
  RecoveryReport report;
  std::string bytes;
  if (!read_file(in_path, bytes, report.detail)) return report;
  report = salvage_ndjson(bytes);
  std::string error;
  if (!copy_prefix(in_path, out_path, report.salvaged_bytes, error)) {
    report.ok = false;
    report.detail = error;
  }
  return report;
}

RecoveryReport recover_colstore_file(const std::string& in_path,
                                     const std::string& out_path) {
  RecoveryReport report;
  {
    // Scoped so the reader's handle is closed before the copy below
    // (in-place recovery renames over in_path).
    ColReader reader(in_path, ColFilter{}, ColReadOptions{.recover = true});
    DecodedEvent event;
    while (reader.next(event)) {
    }
    if (!reader.ok()) {
      report.detail = reader.error();
      return report;
    }
    report = reader.recovery();
  }
  std::string error;
  if (!copy_prefix(in_path, out_path, report.salvaged_bytes, error)) {
    report.ok = false;
    report.detail = error;
  }
  return report;
}

}  // namespace pandarus::obs
