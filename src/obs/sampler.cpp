#include "obs/sampler.hpp"

#include <utility>

#include "obs/event_log.hpp"

namespace pandarus::obs {

void Sampler::add_column(std::string name, Probe probe) {
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
}

void Sampler::add_counter(const Counter& counter) {
  add_column(counter.name(), [&counter] {
    return static_cast<std::int64_t>(counter.value());
  });
}

void Sampler::add_gauge(const Gauge& gauge) {
  add_column(gauge.name(), [&gauge] { return gauge.value(); });
}

void Sampler::add_emitter(Emitter emitter) {
  emitters_.push_back(std::move(emitter));
}

void Sampler::set_row_observer(RowObserver observer) {
  row_observer_ = std::move(observer);
}

void Sampler::sample_at(std::int64_t ts) {
  Row row;
  row.ts = ts;
  row.values.reserve(probes_.size());
  for (const Probe& probe : probes_) row.values.push_back(probe());

  if (EventLog* log = EventLog::installed()) {
    Event event("sample", ts, static_cast<std::int64_t>(rows_.size()));
    for (std::size_t i = 0; i < names_.size(); ++i) {
      // field() is &&-qualified (chained-temporary builder); it appends
      // in place, so the returned reference can be dropped here.
      static_cast<void>(std::move(event).field(names_[i], row.values[i]));
    }
    log->emit(std::move(event));
  }
  if (row_observer_) row_observer_(ts, names_, row.values);
  rows_.push_back(std::move(row));

  for (const Emitter& emitter : emitters_) emitter(ts);
}

}  // namespace pandarus::obs
