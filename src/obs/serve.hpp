// obs::serve — the live observability endpoint (ROADMAP item 3): one
// StatusServer wraps the embedded HttpServer (obs/http.hpp) with the
// route table every campaign binary shares:
//
//   GET /                  single-file HTML status page (polls the APIs)
//   GET /healthz           liveness JSON (uptime, requests served)
//   GET /metrics           Prometheus scrape of Registry::global(),
//                          process gauges refreshed per scrape
//   GET /events/stream     SSE: one `tick` frame per interval carrying
//                          the EventLog watermark/progress/log stats
//   GET /api/...           JSON endpoints registered by higher layers
//
// Layering: obs cannot see the matchers or replay machinery, so the
// /api/summary, /api/tables, /api/series and /api/critical-path bodies
// live in analysis::attach_live_status / attach_replay_status, which
// register providers through set_json_endpoint().  scenario::
// run_campaign attaches the live providers automatically when a
// StatusServer is installed, so `PANDARUS_SERVE=<port>` is all a binary
// needs.
//
// Snapshot discipline: providers must read only (a) the EventLog's
// published prefix via snapshot_ndjson()/watermark(), (b) mutex-guarded
// aggregates (FlowTracker::totals()/link_ranking()), and (c) metric
// snapshots — never staging buffers or live simulator state — so a
// scrape observes a consistent store without blocking the sim thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/http.hpp"

namespace pandarus::obs {

class StatusServer {
 public:
  struct Options {
    std::uint16_t port = 0;   ///< 0 picks an ephemeral port (see port())
    int workers = 2;
    int sse_interval_ms = 500;  ///< /events/stream tick period
  };

  /// Default options (separate overload: GCC 12 rejects `= {}` defaults
  /// for nested aggregates with member initializers).
  StatusServer();
  explicit StatusServer(Options options);
  ~StatusServer();
  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// Binds 127.0.0.1 and starts serving; false when the port is taken.
  bool start();
  /// Graceful shutdown: ends SSE streams, joins every server thread.
  void stop();

  [[nodiscard]] bool running() const noexcept { return http_.running(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return http_.port(); }

  /// Returns a complete JSON body for one GET.  Providers run on server
  /// worker threads — they must be thread-safe and snapshot-isolated.
  using JsonProvider = std::function<std::string()>;
  /// Registers (or replaces) `GET <path>` -> application/json.  Paths
  /// conventionally live under /api/.
  void set_json_endpoint(std::string path, JsonProvider provider);

  /// Makes this the process-wide server higher layers attach endpoints
  /// to (same single-slot discipline as EventLog/FlowTracker).
  void install() noexcept;
  void uninstall() noexcept;
  [[nodiscard]] static StatusServer* installed() noexcept {
    return g_installed.load(std::memory_order_acquire);
  }

 private:
  HttpResponse handle(const HttpRequest& request);
  HttpResponse events_stream() const;

  Options options_;
  HttpServer http_;
  mutable std::mutex routes_mutex_;
  std::map<std::string, JsonProvider> routes_;
  static std::atomic<StatusServer*> g_installed;
};

}  // namespace pandarus::obs
