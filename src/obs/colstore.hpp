// Chunk-compressed columnar event store: the binary sibling of the
// NDJSON stream, built for out-of-core analysis of campaign telemetry.
//
// The NDJSON `obs::EventLog` stream is the wire format the paper-style
// analyses replay; at the 10M-job scale the ROADMAP targets, slurping
// that text back through a JSON parser dominates every post-hoc tool.
// The colstore keeps the exact same event vocabulary but stores it
// column-per-field in fixed-size chunks (64k events by default):
//
//   * strings (kinds, field keys, site/lfn-style values) are
//     dictionary-encoded through a util::StringInterner, so each
//     occurrence is one varint symbol;
//   * each distinct (kind, entity-kind, [field key/type...]) signature
//     is interned as a "shape"; a row is its shape id plus packed
//     values, so field names are never repeated per event;
//   * int64 columns (timestamps, ids, byte counts) are delta-encoded
//     against the previous value in the same column and written as
//     zigzag varints — monotone sequences collapse to ~1 byte/value;
//   * every chunk's meta (dictionary/shape deltas) and data (columns)
//     sections are squeezed by a small LZ77 block compressor and
//     guarded by CRC32, so truncation or bit rot is detected, never
//     silently replayed; since format v2 the chunk *header* carries its
//     own CRC32 in the frame, so a torn tail is detectable before any
//     header field is trusted (the reader still accepts v1 files);
//   * each chunk header carries min/max simulated time and per-kind
//     row counts, so a reader can skip whole chunks for time-window or
//     event-type scans without decoding the column data.
//
// Round trip is exact: decoding a chunk and re-rendering each event
// with append_ndjson() reproduces the Event builder's NDJSON bytes
// (field order, escaping and %.17g doubles preserved), which is what
// the replay bit-parity tests and `pandarus-events convert` rely on.
//
// ColReader is an out-of-core cursor: it holds one chunk's decoded rows
// at a time (chunked fread, bounded memory) regardless of file size.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/recover.hpp"
#include "util/interner.hpp"
#include "util/json.hpp"

namespace pandarus::obs {

class EventLog;

/// One event decoded from a chunk.  string_views point into the
/// reader's dictionary and stay valid for the reader's lifetime.
struct DecodedEvent {
  enum class FieldType : std::uint8_t {
    kInt = 0,
    kDouble = 1,
    kBool = 2,
    kString = 3,
    kNull = 4,
  };
  struct Field {
    std::string_view key;
    FieldType type = FieldType::kInt;
    std::int64_t int_v = 0;
    double double_v = 0.0;
    bool bool_v = false;
    std::string_view string_v;
  };

  std::int64_t ts = 0;
  std::string_view kind;
  bool entity_is_string = false;
  std::int64_t entity_int = 0;
  std::string_view entity_string;
  std::vector<Field> fields;
};

/// Renders the event exactly as the obs::Event builder would have
/// (canonical ts/kind/entity prefix, same escaping, %.17g doubles) and
/// appends it to `out` without a trailing newline.
void append_ndjson(const DecodedEvent& event, std::string& out);

struct ColWriterOptions {
  /// Rows buffered per chunk; the flush granularity and the unit a
  /// reader decodes (and can skip) at a time.
  std::size_t rows_per_chunk = 65536;
  /// fsync before closing the file (armed by PANDARUS_EVENTS_FSYNC for
  /// the env sink); default off, matching the NDJSON sink.
  bool fsync_on_close = false;
};

/// Streaming encoder.  Accepts flat event objects (`ts` int, `kind`
/// string, `entity` int-or-string, remaining fields int/double/bool/
/// string/null); events with nested values are counted as rejected and
/// skipped — the Event builder never produces them.
class ColWriter {
 public:
  explicit ColWriter(const std::string& path, ColWriterOptions options = {});
  ~ColWriter();
  ColWriter(const ColWriter&) = delete;
  ColWriter& operator=(const ColWriter&) = delete;

  /// Appends one event; false (and ++stats().rejected) when the event
  /// does not fit the flat schema.  I/O failures latch error().
  bool append(const util::json::Value& event);
  /// Parses one NDJSON line and appends it; malformed lines are
  /// rejected, not fatal.
  bool append_ndjson_line(std::string_view line);

  /// Flushes the tail chunk and closes the file.  Idempotent; returns
  /// false when any write failed.
  bool close();

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  struct Stats {
    std::uint64_t rows = 0;      ///< events encoded
    std::uint64_t rejected = 0;  ///< events/lines that did not fit
    std::uint64_t chunks = 0;
    std::uint64_t bytes_written = 0;  ///< file bytes incl. headers
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct ShapeDef {
    util::Symbol kind = 0;
    std::uint8_t entity_kind = 0;  ///< 0 = int, 1 = string
    std::vector<std::pair<util::Symbol, std::uint8_t>> fields;
  };
  struct ColBuild {
    util::Symbol key = 0;
    std::uint8_t type = 0;
    std::uint64_t count = 0;
    std::int64_t prev_int = 0;  ///< delta base, resets per chunk
    std::string bytes;
  };

  bool flush_chunk();
  void fail(const std::string& message);

  std::FILE* out_ = nullptr;
  ColWriterOptions options_;
  Stats stats_;
  std::string error_;
  bool closed_ = false;

  util::StringInterner dict_;
  std::size_t dict_flushed_ = 0;
  std::unordered_map<std::string, std::uint32_t> shape_ids_;
  std::vector<ShapeDef> shapes_;
  std::size_t shapes_flushed_ = 0;

  // Per-chunk staging, cleared on flush.
  std::vector<std::uint32_t> row_shapes_;
  std::vector<std::int64_t> row_ts_;
  std::vector<std::int64_t> ent_ints_;
  std::vector<util::Symbol> ent_strs_;
  std::vector<ColBuild> cols_;
  std::unordered_map<std::uint64_t, std::size_t> col_index_;
  std::map<util::Symbol, std::uint64_t> kind_counts_;  ///< header order
  std::int64_t min_ts_ = 0;
  std::int64_t max_ts_ = 0;
};

/// Scan filter.  Kind and time-window predicates skip whole chunks via
/// the footer index; the site predicate filters decoded rows (an event
/// passes when any int field named site/src/dst equals `site`).
struct ColFilter {
  std::vector<std::string> kinds;         ///< empty = every kind
  std::optional<std::int64_t> ts_from;    ///< inclusive
  std::optional<std::int64_t> ts_to;      ///< inclusive
  std::optional<std::int64_t> site;
};

struct ColReadOptions {
  /// Salvage mode: a torn or corrupt chunk ends the scan *cleanly* at
  /// the last valid chunk boundary instead of latching error().  The
  /// damage is described by recovery() and ok() stays true, so a
  /// crashed writer's file yields its longest valid prefix.
  bool recover = false;
};

/// Out-of-core cursor over a colstore file: holds one decoded chunk at
/// a time.  A corrupt or truncated chunk stops the scan with ok() ==
/// false and a non-empty error() — or, with ColReadOptions::recover,
/// truncates cleanly — and rows decoded before the damage are still
/// delivered.
class ColReader {
 public:
  explicit ColReader(const std::string& path, ColFilter filter = {},
                     ColReadOptions options = {});
  ~ColReader();
  ColReader(const ColReader&) = delete;
  ColReader& operator=(const ColReader&) = delete;

  /// Advances to the next event passing the filter; false at end of
  /// stream or on error (check ok()).
  bool next(DecodedEvent& out);

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  struct Stats {
    std::uint64_t chunks_read = 0;     ///< chunks fully decoded
    std::uint64_t chunks_skipped = 0;  ///< skipped via the footer index
    std::uint64_t rows_decoded = 0;
    std::uint64_t rows_emitted = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Salvage outcome (meaningful with ColReadOptions::recover once the
  /// scan has ended): how much of the file survived, how much was cut.
  [[nodiscard]] const RecoveryReport& recovery() const noexcept {
    return recovery_;
  }

 private:
  friend std::optional<struct ColStats> colstore_stats(const std::string&,
                                                       std::string*);
  struct ShapeDef {
    util::Symbol kind = 0;
    std::uint8_t entity_kind = 0;
    std::vector<std::pair<util::Symbol, std::uint8_t>> fields;
  };
  struct RowRef {
    std::int64_t ts = 0;
    std::uint32_t shape = 0;
    std::uint64_t entity = 0;  ///< int64 bits or dict symbol
    std::size_t value_start = 0;
  };
  struct ChunkInfo {
    std::uint64_t rows = 0;
    std::int64_t min_ts = 0;
    std::int64_t max_ts = 0;
    std::vector<std::pair<util::Symbol, std::uint64_t>> kind_counts;
  };

  /// Reads the next chunk.  `stats_only` applies the dictionary delta
  /// and skips the data section unconditionally (used by
  /// colstore_stats).  Returns false at EOF or on error.
  bool load_chunk(bool stats_only, ChunkInfo* info);
  bool chunk_matches_filter(const ChunkInfo& info);
  bool row_passes_filter(const RowRef& row) const;
  [[nodiscard]] std::string_view view(util::Symbol sym) const {
    return dict_[sym];
  }
  void fail(const std::string& message);
  /// Chunk-level damage: fatal normally, a clean truncation (recorded
  /// in recovery_) under ColReadOptions::recover.
  void fail_chunk(const std::string& message);
  /// Marks the stream position as the end of the last valid chunk.
  void note_chunk_salvaged(std::uint64_t rows);

  std::FILE* in_ = nullptr;
  ColFilter filter_;
  ColReadOptions options_;
  RecoveryReport recovery_;
  std::string error_;
  bool eof_ = false;
  Stats stats_;
  std::uint8_t version_ = 0;  ///< file format version from the header

  std::deque<std::string> dict_;  ///< deque: views stay stable on growth
  std::unordered_map<std::string_view, util::Symbol> dict_lookup_;
  std::vector<ShapeDef> shapes_;
  std::vector<util::Symbol> filter_kind_syms_;
  util::Symbol site_sym_ = util::kNoSymbol;
  util::Symbol src_sym_ = util::kNoSymbol;
  util::Symbol dst_sym_ = util::kNoSymbol;

  // Current chunk.
  std::vector<RowRef> rows_;
  std::vector<std::uint64_t> values_;  ///< flat row-major field values
  std::size_t row_cursor_ = 0;
};

/// True when `path` starts with the colstore file magic.
[[nodiscard]] bool is_colstore_file(const std::string& path);

/// Footer-index-only summary: walks chunk headers and dictionary
/// deltas, never decodes column data.
struct ColStats {
  std::uint64_t events = 0;
  std::uint64_t chunks = 0;
  std::uint64_t file_bytes = 0;
  std::int64_t min_ts = 0;
  std::int64_t max_ts = 0;
  std::map<std::string, std::uint64_t> kind_counts;
  std::size_t dict_strings = 0;
  std::size_t shapes = 0;
};
[[nodiscard]] std::optional<ColStats> colstore_stats(
    const std::string& path, std::string* error = nullptr);

/// Drains an EventLog's ordered lines into a colstore file (the binary
/// sibling of EventLog::write_ndjson); false with a warning logged on
/// I/O failure.  Armed process-wide by PANDARUS_EVENTS_COL.
bool write_colstore(const EventLog& log, const std::string& path,
                    ColWriterOptions options = {});

}  // namespace pandarus::obs
