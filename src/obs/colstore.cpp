#include "obs/colstore.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "obs/event_log.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"

namespace pandarus::obs {
namespace {

using util::crc32;

// --- format constants -------------------------------------------------------

constexpr char kFileMagic[8] = {'P', 'C', 'O', 'L', 'S', 'T', 'R', '1'};
// v2 adds a CRC32 of the chunk header to the frame, so a torn tail is
// detected before any header field is trusted.  Readers accept both.
constexpr std::uint8_t kFormatVersion = 2;
constexpr std::uint8_t kMinFormatVersion = 1;
constexpr std::uint32_t kChunkMagic = 0x314B4350u;  // "PCK1" little-endian

// Sanity bounds: a reader must reject absurd sizes before allocating,
// so a corrupt or adversarial header cannot OOM the process.
constexpr std::uint64_t kMaxChunkHeader = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxSectionBytes = std::uint64_t{1} << 30;
constexpr std::uint64_t kMaxChunkRows = std::uint64_t{1} << 26;

constexpr std::uint8_t kEntityInt = 0;
constexpr std::uint8_t kEntityString = 1;

using FieldType = DecodedEvent::FieldType;

// --- varint / zigzag --------------------------------------------------------

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  out += static_cast<char>(v);
}

bool get_varint(std::string_view s, std::size_t& pos, std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= s.size()) return false;
    const auto b = static_cast<unsigned char>(s[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
  }
  return false;
}

constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Wrapping delta: exact mod 2^64, so extreme int64 jumps round-trip.
constexpr std::uint64_t delta_encode(std::int64_t value,
                                     std::int64_t prev) noexcept {
  return zigzag(static_cast<std::int64_t>(static_cast<std::uint64_t>(value) -
                                          static_cast<std::uint64_t>(prev)));
}

constexpr std::int64_t delta_decode(std::uint64_t encoded,
                                    std::int64_t prev) noexcept {
  return static_cast<std::int64_t>(
      static_cast<std::uint64_t>(prev) +
      static_cast<std::uint64_t>(unzigzag(encoded)));
}

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::uint64_t int_bits(std::int64_t v) noexcept {
  return static_cast<std::uint64_t>(v);
}

std::int64_t bits_int(std::uint64_t bits) noexcept {
  return static_cast<std::int64_t>(bits);
}

void put_u64_le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

bool get_u64_le(std::string_view s, std::size_t& pos, std::uint64_t& v) {
  if (pos + 8 > s.size()) return false;
  v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return true;
}

// --- LZ block compressor ----------------------------------------------------
//
// LZ4-shaped byte stream: token (literal-run nibble | match-len nibble),
// 255-run length extensions, raw literals, 2-byte little-endian match
// offset (max 64 KiB window — a chunk section is decoded as one block).
// Self-written so the container stays dependency-free; the decoder
// bounds-checks every access, which is what the corrupt-chunk tests
// lean on.

constexpr int kLzHashBits = 13;
constexpr std::size_t kLzMinMatch = 4;

std::uint32_t lz_read32(const char* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::size_t lz_hash(std::uint32_t v) noexcept {
  return (v * 2654435761u) >> (32 - kLzHashBits);
}

void lz_put_run(std::string& out, std::size_t len) {
  while (len >= 255) {
    out += static_cast<char>(static_cast<unsigned char>(255));
    len -= 255;
  }
  out += static_cast<char>(len);
}

std::string lz_compress(std::string_view src) {
  const std::size_t n = src.size();
  std::string out;
  out.reserve(n / 2 + 64);
  std::vector<std::int32_t> table(std::size_t{1} << kLzHashBits, -1);
  std::size_t anchor = 0;
  std::size_t i = 0;
  while (n >= kLzMinMatch && i + kLzMinMatch <= n) {
    const std::uint32_t v = lz_read32(src.data() + i);
    const std::size_t h = lz_hash(v);
    const std::int32_t cand = table[h];
    table[h] = static_cast<std::int32_t>(i);
    const auto cpos = static_cast<std::size_t>(cand);
    if (cand >= 0 && i - cpos <= 0xFFFF &&
        lz_read32(src.data() + cpos) == v) {
      std::size_t len = kLzMinMatch;
      while (i + len < n && src[cpos + len] == src[i + len]) ++len;
      const std::size_t literals = i - anchor;
      const std::size_t lnib = std::min<std::size_t>(literals, 15);
      const std::size_t mnib = std::min<std::size_t>(len - kLzMinMatch, 15);
      out += static_cast<char>((lnib << 4) | mnib);
      if (lnib == 15) lz_put_run(out, literals - 15);
      out.append(src.data() + anchor, literals);
      const std::size_t off = i - cpos;
      out += static_cast<char>(off & 0xFF);
      out += static_cast<char>((off >> 8) & 0xFF);
      if (mnib == 15) lz_put_run(out, len - kLzMinMatch - 15);
      i += len;
      anchor = i;
    } else {
      ++i;
    }
  }
  // Final literal-only token (match nibble unused: decoder stops at
  // end of input, like LZ4's last-sequence rule).
  const std::size_t literals = n - anchor;
  const std::size_t lnib = std::min<std::size_t>(literals, 15);
  out += static_cast<char>(lnib << 4);
  if (lnib == 15) lz_put_run(out, literals - 15);
  out.append(src.data() + anchor, literals);
  return out;
}

bool lz_decompress(std::string_view src, std::size_t raw_size,
                   std::string& out) {
  out.clear();
  out.reserve(raw_size);
  std::size_t i = 0;
  const std::size_t n = src.size();
  const auto read_run = [&](std::size_t base, std::size_t& len) -> bool {
    len = base;
    if (base != 15) return true;
    for (;;) {
      if (i >= n) return false;
      const auto b = static_cast<unsigned char>(src[i++]);
      len += b;
      if (b != 255) return true;
    }
  };
  while (i < n) {
    const auto token = static_cast<unsigned char>(src[i++]);
    std::size_t literals = 0;
    if (!read_run(token >> 4, literals)) return false;
    if (i + literals > n || out.size() + literals > raw_size) return false;
    out.append(src.data() + i, literals);
    i += literals;
    if (i >= n) break;  // literal-only tail
    if (i + 2 > n) return false;
    const std::size_t off =
        static_cast<unsigned char>(src[i]) |
        (static_cast<std::size_t>(static_cast<unsigned char>(src[i + 1]))
         << 8);
    i += 2;
    std::size_t mlen = 0;
    if (!read_run(token & 0xF, mlen)) return false;
    mlen += kLzMinMatch;
    if (off == 0 || off > out.size() || out.size() + mlen > raw_size) {
      return false;
    }
    // Byte-wise copy: overlapping matches (run-length shapes) are legal.
    const std::size_t pos = out.size() - off;
    for (std::size_t k = 0; k < mlen; ++k) out += out[pos + k];
  }
  return out.size() == raw_size;
}

// --- low-level file I/O -----------------------------------------------------

void put_u32_le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

bool read_exact(std::FILE* f, void* dst, std::size_t n) {
  return std::fread(dst, 1, n, f) == n;
}

std::uint32_t decode_u32_le(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

FieldType value_field_type(const util::json::Value& v) noexcept {
  using Kind = util::json::Value::Kind;
  switch (v.kind) {
    case Kind::kNumber: return v.is_int ? FieldType::kInt : FieldType::kDouble;
    case Kind::kBool: return FieldType::kBool;
    case Kind::kString: return FieldType::kString;
    case Kind::kNull: return FieldType::kNull;
    default: return FieldType::kNull;  // callers reject arrays/objects first
  }
}

bool is_core_key(std::string_view key) noexcept {
  return key == "ts" || key == "kind" || key == "entity";
}

constexpr std::uint64_t col_key(util::Symbol key, std::uint8_t type) noexcept {
  return (static_cast<std::uint64_t>(key) << 3) | type;
}

}  // namespace

// --- rendering --------------------------------------------------------------

void append_ndjson(const DecodedEvent& event, std::string& out) {
  out += "{\"ts\":";
  out += std::to_string(event.ts);
  out += ",\"kind\":\"";
  detail::append_json_escaped(out, event.kind);
  if (event.entity_is_string) {
    out += "\",\"entity\":\"";
    detail::append_json_escaped(out, event.entity_string);
    out += '"';
  } else {
    out += "\",\"entity\":";
    out += std::to_string(event.entity_int);
  }
  for (const DecodedEvent::Field& f : event.fields) {
    out += ",\"";
    detail::append_json_escaped(out, f.key);
    out += "\":";
    switch (f.type) {
      case FieldType::kInt: out += std::to_string(f.int_v); break;
      case FieldType::kDouble: detail::append_json_double(out, f.double_v); break;
      case FieldType::kBool: out += f.bool_v ? "true" : "false"; break;
      case FieldType::kString:
        out += '"';
        detail::append_json_escaped(out, f.string_v);
        out += '"';
        break;
      case FieldType::kNull: out += "null"; break;
    }
  }
  out += '}';
}

// --- ColWriter --------------------------------------------------------------

ColWriter::ColWriter(const std::string& path, ColWriterOptions options)
    : options_(options) {
  if (options_.rows_per_chunk == 0) options_.rows_per_chunk = 1;
  out_ = std::fopen(path.c_str(), "wb");
  if (out_ == nullptr) {
    fail("cannot open " + path + " for writing");
    closed_ = true;
    return;
  }
  std::string header(kFileMagic, sizeof kFileMagic);
  header += static_cast<char>(kFormatVersion);
  header.append(3, '\0');
  if (std::fwrite(header.data(), 1, header.size(), out_) != header.size()) {
    fail("short write on file header");
    return;
  }
  stats_.bytes_written += header.size();
}

ColWriter::~ColWriter() { close(); }

void ColWriter::fail(const std::string& message) {
  if (error_.empty()) error_ = message;
}

bool ColWriter::append(const util::json::Value& event) {
  using Kind = util::json::Value::Kind;
  if (!ok() || closed_) return false;

  // Validation pass: the event must fit the flat schema before any
  // column state is touched, so a rejected event leaves no residue.
  if (event.kind != Kind::kObject) {
    ++stats_.rejected;
    return false;
  }
  const util::json::Value* ts = event.find("ts");
  const util::json::Value* kind = event.find("kind");
  const util::json::Value* entity = event.find("entity");
  const bool entity_ok =
      entity != nullptr &&
      ((entity->kind == Kind::kNumber && entity->is_int) ||
       entity->kind == Kind::kString);
  if (ts == nullptr || ts->kind != Kind::kNumber || !ts->is_int ||
      kind == nullptr || kind->kind != Kind::kString || !entity_ok) {
    ++stats_.rejected;
    return false;
  }
  for (const auto& [key, value] : event.obj) {
    if (is_core_key(key)) continue;
    if (value.kind == Kind::kArray || value.kind == Kind::kObject) {
      ++stats_.rejected;
      return false;
    }
  }

  // Shape: kind + entity kind + ordered (key, type) list.
  const util::Symbol kind_sym = dict_.intern(kind->str_v);
  const std::uint8_t entity_kind =
      entity->kind == Kind::kString ? kEntityString : kEntityInt;
  ShapeDef def;
  def.kind = kind_sym;
  def.entity_kind = entity_kind;
  std::string sig;
  put_varint(sig, kind_sym);
  sig += static_cast<char>(entity_kind);
  for (const auto& [key, value] : event.obj) {
    if (is_core_key(key)) continue;
    const util::Symbol key_sym = dict_.intern(key);
    const auto type = static_cast<std::uint8_t>(value_field_type(value));
    def.fields.emplace_back(key_sym, type);
    put_varint(sig, key_sym);
    sig += static_cast<char>(type);
  }
  const auto [it, inserted] =
      shape_ids_.try_emplace(std::move(sig),
                             static_cast<std::uint32_t>(shapes_.size()));
  if (inserted) shapes_.push_back(std::move(def));
  const std::uint32_t shape_id = it->second;

  // Row core columns.
  const std::int64_t ts_v = ts->int_v;
  if (row_shapes_.empty()) {
    min_ts_ = max_ts_ = ts_v;
  } else {
    min_ts_ = std::min(min_ts_, ts_v);
    max_ts_ = std::max(max_ts_, ts_v);
  }
  row_shapes_.push_back(shape_id);
  row_ts_.push_back(ts_v);
  if (entity_kind == kEntityString) {
    ent_strs_.push_back(dict_.intern(entity->str_v));
  } else {
    ent_ints_.push_back(entity->int_v);
  }
  ++kind_counts_[kind_sym];

  // Field columns, keyed (key symbol, type); values packed in row order.
  const ShapeDef& shape = shapes_[shape_id];
  std::size_t field_index = 0;
  for (const auto& [key, value] : event.obj) {
    if (is_core_key(key)) continue;
    const auto [key_sym, type] = shape.fields[field_index++];
    const std::uint64_t ck = col_key(key_sym, type);
    const auto [col_it, col_inserted] =
        col_index_.try_emplace(ck, cols_.size());
    if (col_inserted) {
      ColBuild col;
      col.key = key_sym;
      col.type = type;
      cols_.push_back(std::move(col));
    }
    ColBuild& col = cols_[col_it->second];
    switch (static_cast<FieldType>(type)) {
      case FieldType::kInt:
        put_varint(col.bytes, delta_encode(value.int_v, col.prev_int));
        col.prev_int = value.int_v;
        break;
      case FieldType::kDouble:
        put_u64_le(col.bytes, double_bits(value.num_v));
        break;
      case FieldType::kBool:
        col.bytes += static_cast<char>(value.bool_v ? 1 : 0);
        break;
      case FieldType::kString:
        put_varint(col.bytes, dict_.intern(value.str_v));
        break;
      case FieldType::kNull:
        break;  // presence is carried by the shape
    }
    ++col.count;
  }

  ++stats_.rows;
  if (row_shapes_.size() >= options_.rows_per_chunk) return flush_chunk();
  return ok();
}

bool ColWriter::append_ndjson_line(std::string_view line) {
  if (line.empty()) return true;
  const auto parsed = util::json::parse(line);
  if (!parsed || parsed->kind != util::json::Value::Kind::kObject) {
    ++stats_.rejected;
    return false;
  }
  return append(*parsed);
}

bool ColWriter::flush_chunk() {
  if (!ok() || row_shapes_.empty()) return ok();
  const std::size_t rows = row_shapes_.size();

  // Meta section: dictionary and shape deltas since the last flush.
  std::string meta;
  put_varint(meta, dict_.size() - dict_flushed_);
  for (std::size_t i = dict_flushed_; i < dict_.size(); ++i) {
    const std::string_view s = dict_.view(static_cast<util::Symbol>(i));
    put_varint(meta, s.size());
    meta.append(s.data(), s.size());
  }
  put_varint(meta, shapes_.size() - shapes_flushed_);
  for (std::size_t i = shapes_flushed_; i < shapes_.size(); ++i) {
    const ShapeDef& shape = shapes_[i];
    put_varint(meta, shape.kind);
    meta += static_cast<char>(shape.entity_kind);
    put_varint(meta, shape.fields.size());
    for (const auto& [key, type] : shape.fields) {
      put_varint(meta, key);
      meta += static_cast<char>(type);
    }
  }

  // Data section: core columns, then the field-column directory.
  std::string data;
  for (const std::uint32_t shape : row_shapes_) put_varint(data, shape);
  std::int64_t prev_ts = 0;
  for (const std::int64_t ts : row_ts_) {
    put_varint(data, delta_encode(ts, prev_ts));
    prev_ts = ts;
  }
  put_varint(data, ent_ints_.size());
  std::int64_t prev_ent = 0;
  for (const std::int64_t e : ent_ints_) {
    put_varint(data, delta_encode(e, prev_ent));
    prev_ent = e;
  }
  put_varint(data, ent_strs_.size());
  for (const util::Symbol s : ent_strs_) put_varint(data, s);
  put_varint(data, cols_.size());
  for (const ColBuild& col : cols_) {
    put_varint(data, col.key);
    data += static_cast<char>(col.type);
    put_varint(data, col.count);
    put_varint(data, col.bytes.size());
    data += col.bytes;
  }

  // Compress; store raw when the block is incompressible.
  std::string meta_blob = lz_compress(meta);
  if (meta_blob.size() >= meta.size()) meta_blob = meta;
  std::string data_blob = lz_compress(data);
  if (data_blob.size() >= data.size()) data_blob = data;

  std::string header;
  put_varint(header, rows);
  put_varint(header, zigzag(min_ts_));
  put_varint(header, zigzag(max_ts_));
  put_varint(header, kind_counts_.size());
  for (const auto& [sym, count] : kind_counts_) {
    put_varint(header, sym);
    put_varint(header, count);
  }
  put_varint(header, meta.size());
  put_varint(header, meta_blob.size());
  put_varint(header, data.size());
  put_varint(header, data_blob.size());
  put_varint(header, crc32(meta_blob));
  put_varint(header, crc32(data_blob));

  std::string frame;
  frame.reserve(12 + header.size() + meta_blob.size() + data_blob.size());
  put_u32_le(frame, kChunkMagic);
  put_u32_le(frame, static_cast<std::uint32_t>(header.size()));
  put_u32_le(frame, crc32(header));  // v2: torn headers detectable
  frame += header;
  frame += meta_blob;
  frame += data_blob;
  if (std::fwrite(frame.data(), 1, frame.size(), out_) != frame.size()) {
    fail("short write on chunk");
    return false;
  }
  stats_.bytes_written += frame.size();
  ++stats_.chunks;

  dict_flushed_ = dict_.size();
  shapes_flushed_ = shapes_.size();
  row_shapes_.clear();
  row_ts_.clear();
  ent_ints_.clear();
  ent_strs_.clear();
  cols_.clear();
  col_index_.clear();
  kind_counts_.clear();
  return true;
}

bool ColWriter::close() {
  if (closed_) return ok();
  closed_ = true;
  flush_chunk();
  if (out_ != nullptr) {
    if (std::fflush(out_) != 0 || std::ferror(out_) != 0) {
      fail("flush failed on close");
    }
    if (options_.fsync_on_close && ok() &&
        ::fsync(fileno(out_)) != 0) {
      fail("fsync failed on close");
    }
    std::fclose(out_);
    out_ = nullptr;
  }
  return ok();
}

// --- ColReader --------------------------------------------------------------

ColReader::ColReader(const std::string& path, ColFilter filter,
                     ColReadOptions options)
    : filter_(std::move(filter)), options_(options) {
  in_ = std::fopen(path.c_str(), "rb");
  if (in_ == nullptr) {
    fail("cannot open " + path);
    eof_ = true;
    return;
  }
  unsigned char header[12];
  if (!read_exact(in_, header, sizeof header) ||
      std::memcmp(header, kFileMagic, sizeof kFileMagic) != 0) {
    fail("not a colstore file: " + path);
    eof_ = true;
    return;
  }
  if (header[8] < kMinFormatVersion || header[8] > kFormatVersion) {
    fail("unsupported colstore version " + std::to_string(header[8]));
    eof_ = true;
    return;
  }
  version_ = header[8];
  recovery_.ok = true;
  recovery_.salvaged_bytes = sizeof header;
}

ColReader::~ColReader() {
  if (in_ != nullptr) std::fclose(in_);
}

void ColReader::fail(const std::string& message) {
  if (error_.empty()) error_ = "colstore: " + message;
  recovery_.ok = false;
  eof_ = true;
}

void ColReader::fail_chunk(const std::string& message) {
  if (!options_.recover) {
    fail(message);
    return;
  }
  // Salvage mode: the damage ends the scan at the last intact chunk
  // boundary instead of latching an error.  Everything past the valid
  // prefix is accounted as dropped.
  eof_ = true;
  recovery_.truncated = true;
  if (recovery_.detail.empty()) recovery_.detail = message;
  if (in_ != nullptr && std::fseek(in_, 0, SEEK_END) == 0) {
    const long end = std::ftell(in_);
    if (end > 0 &&
        static_cast<std::uint64_t>(end) >= recovery_.salvaged_bytes) {
      recovery_.dropped_bytes =
          static_cast<std::uint64_t>(end) - recovery_.salvaged_bytes;
    }
  }
}

void ColReader::note_chunk_salvaged(std::uint64_t rows) {
  recovery_.salvaged_events += rows;
  if (in_ != nullptr) {
    const long at = std::ftell(in_);
    if (at > 0) recovery_.salvaged_bytes = static_cast<std::uint64_t>(at);
  }
}

bool ColReader::load_chunk(bool stats_only, ChunkInfo* info) {
  for (;;) {
    if (eof_ || !ok()) return false;
    unsigned char frame[8];
    const std::size_t got = std::fread(frame, 1, sizeof frame, in_);
    if (got == 0) {
      eof_ = true;  // clean end of stream
      return false;
    }
    if (got != sizeof frame || decode_u32_le(frame) != kChunkMagic) {
      fail_chunk("truncated or corrupt chunk frame");
      return false;
    }
    const std::uint32_t header_len = decode_u32_le(frame + 4);
    if (header_len == 0 || header_len > kMaxChunkHeader) {
      fail_chunk("implausible chunk header size");
      return false;
    }
    std::uint32_t header_crc = 0;
    if (version_ >= 2) {
      unsigned char crc_buf[4];
      if (!read_exact(in_, crc_buf, sizeof crc_buf)) {
        fail_chunk("truncated chunk header crc");
        return false;
      }
      header_crc = decode_u32_le(crc_buf);
    }
    std::string header(header_len, '\0');
    if (!read_exact(in_, header.data(), header.size())) {
      fail_chunk("truncated chunk header");
      return false;
    }
    if (version_ >= 2 && crc32(header) != header_crc) {
      fail_chunk("header checksum mismatch (torn or corrupt chunk)");
      return false;
    }

    ChunkInfo chunk;
    std::size_t pos = 0;
    std::uint64_t rows = 0;
    std::uint64_t min_zz = 0;
    std::uint64_t max_zz = 0;
    std::uint64_t kind_count = 0;
    bool header_ok = get_varint(header, pos, rows) &&
                     get_varint(header, pos, min_zz) &&
                     get_varint(header, pos, max_zz) &&
                     get_varint(header, pos, kind_count);
    if (header_ok && (rows == 0 || rows > kMaxChunkRows ||
                      kind_count > rows)) {
      header_ok = false;
    }
    std::uint64_t meta_raw = 0;
    std::uint64_t meta_comp = 0;
    std::uint64_t data_raw = 0;
    std::uint64_t data_comp = 0;
    std::uint64_t meta_crc = 0;
    std::uint64_t data_crc = 0;
    if (header_ok) {
      chunk.rows = rows;
      chunk.min_ts = unzigzag(min_zz);
      chunk.max_ts = unzigzag(max_zz);
      chunk.kind_counts.reserve(kind_count);
      for (std::uint64_t i = 0; header_ok && i < kind_count; ++i) {
        std::uint64_t sym = 0;
        std::uint64_t count = 0;
        header_ok = get_varint(header, pos, sym) &&
                    get_varint(header, pos, count);
        chunk.kind_counts.emplace_back(static_cast<util::Symbol>(sym), count);
      }
      header_ok = header_ok && get_varint(header, pos, meta_raw) &&
                  get_varint(header, pos, meta_comp) &&
                  get_varint(header, pos, data_raw) &&
                  get_varint(header, pos, data_comp) &&
                  get_varint(header, pos, meta_crc) &&
                  get_varint(header, pos, data_crc) && pos == header.size();
    }
    if (!header_ok || meta_raw > kMaxSectionBytes ||
        meta_comp > kMaxSectionBytes || data_raw > kMaxSectionBytes ||
        data_comp > kMaxSectionBytes) {
      fail_chunk("corrupt chunk header");
      return false;
    }

    // Meta must always be applied: later chunks reference this chunk's
    // dictionary delta even when its rows are skipped.
    std::string meta_blob(meta_comp, '\0');
    if (!read_exact(in_, meta_blob.data(), meta_blob.size())) {
      fail_chunk("truncated chunk meta");
      return false;
    }
    if (crc32(meta_blob) != meta_crc) {
      fail_chunk("meta checksum mismatch (corrupt chunk)");
      return false;
    }
    std::string meta;
    if (meta_blob.size() == meta_raw) {
      meta = std::move(meta_blob);
    } else if (!lz_decompress(meta_blob, meta_raw, meta)) {
      fail_chunk("meta decompression failed (corrupt chunk)");
      return false;
    }
    pos = 0;
    std::uint64_t new_strings = 0;
    if (!get_varint(meta, pos, new_strings) ||
        new_strings > kMaxSectionBytes) {
      fail_chunk("corrupt dictionary delta");
      return false;
    }
    for (std::uint64_t i = 0; i < new_strings; ++i) {
      std::uint64_t len = 0;
      if (!get_varint(meta, pos, len) || pos + len > meta.size()) {
        fail_chunk("corrupt dictionary entry");
        return false;
      }
      dict_.emplace_back(meta.data() + pos, len);
      dict_lookup_.emplace(std::string_view(dict_.back()),
                           static_cast<util::Symbol>(dict_.size() - 1));
      pos += len;
    }
    std::uint64_t new_shapes = 0;
    if (!get_varint(meta, pos, new_shapes) || new_shapes > kMaxChunkRows) {
      fail_chunk("corrupt shape delta");
      return false;
    }
    for (std::uint64_t i = 0; i < new_shapes; ++i) {
      ShapeDef shape;
      std::uint64_t kind_sym = 0;
      std::uint64_t nfields = 0;
      if (!get_varint(meta, pos, kind_sym) || pos >= meta.size()) {
        fail_chunk("corrupt shape entry");
        return false;
      }
      shape.kind = static_cast<util::Symbol>(kind_sym);
      shape.entity_kind = static_cast<std::uint8_t>(meta[pos++]);
      if (shape.kind >= dict_.size() || shape.entity_kind > kEntityString ||
          !get_varint(meta, pos, nfields) || nfields > meta.size()) {
        fail_chunk("corrupt shape entry");
        return false;
      }
      shape.fields.reserve(nfields);
      for (std::uint64_t f = 0; f < nfields; ++f) {
        std::uint64_t key_sym = 0;
        if (!get_varint(meta, pos, key_sym) || pos >= meta.size() ||
            key_sym >= dict_.size()) {
          fail_chunk("corrupt shape field");
          return false;
        }
        const auto type = static_cast<std::uint8_t>(meta[pos++]);
        if (type > static_cast<std::uint8_t>(FieldType::kNull)) {
          fail_chunk("corrupt shape field type");
          return false;
        }
        shape.fields.emplace_back(static_cast<util::Symbol>(key_sym), type);
      }
      shapes_.push_back(std::move(shape));
    }
    if (pos != meta.size()) {
      fail_chunk("trailing bytes in chunk meta");
      return false;
    }

    if (info != nullptr) *info = chunk;

    const bool want_rows = !stats_only && chunk_matches_filter(chunk);
    if (!want_rows) {
      if (std::fseek(in_, static_cast<long>(data_comp), SEEK_CUR) != 0) {
        fail_chunk("seek past skipped chunk failed");
        return false;
      }
      ++stats_.chunks_skipped;
      ++recovery_.salvaged_chunks;
      note_chunk_salvaged(chunk.rows);
      if (stats_only) return true;  // caller consumes header info
      continue;
    }

    std::string data_blob(data_comp, '\0');
    if (!read_exact(in_, data_blob.data(), data_blob.size())) {
      fail_chunk("truncated chunk data");
      return false;
    }
    if (crc32(data_blob) != data_crc) {
      fail_chunk("data checksum mismatch (corrupt chunk)");
      return false;
    }
    std::string data;
    if (data_blob.size() == data_raw) {
      data = std::move(data_blob);
    } else if (!lz_decompress(data_blob, data_raw, data)) {
      fail_chunk("data decompression failed (corrupt chunk)");
      return false;
    }

    // Decode core columns.
    pos = 0;
    std::vector<std::uint32_t> shape_ids(chunk.rows);
    for (std::uint64_t r = 0; r < chunk.rows; ++r) {
      std::uint64_t v = 0;
      if (!get_varint(data, pos, v) || v >= shapes_.size()) {
        fail_chunk("corrupt shape column");
        return false;
      }
      shape_ids[r] = static_cast<std::uint32_t>(v);
    }
    std::vector<std::int64_t> ts_col(chunk.rows);
    std::int64_t prev_ts = 0;
    for (std::uint64_t r = 0; r < chunk.rows; ++r) {
      std::uint64_t v = 0;
      if (!get_varint(data, pos, v)) {
        fail_chunk("corrupt ts column");
        return false;
      }
      prev_ts = delta_decode(v, prev_ts);
      ts_col[r] = prev_ts;
    }
    std::uint64_t n_ent_ints = 0;
    if (!get_varint(data, pos, n_ent_ints) || n_ent_ints > chunk.rows) {
      fail_chunk("corrupt entity column");
      return false;
    }
    std::vector<std::int64_t> ent_ints(n_ent_ints);
    std::int64_t prev_ent = 0;
    for (std::uint64_t r = 0; r < n_ent_ints; ++r) {
      std::uint64_t v = 0;
      if (!get_varint(data, pos, v)) {
        fail_chunk("corrupt entity column");
        return false;
      }
      prev_ent = delta_decode(v, prev_ent);
      ent_ints[r] = prev_ent;
    }
    std::uint64_t n_ent_strs = 0;
    if (!get_varint(data, pos, n_ent_strs) ||
        n_ent_strs > chunk.rows - n_ent_ints) {
      fail_chunk("corrupt entity column");
      return false;
    }
    std::vector<util::Symbol> ent_strs(n_ent_strs);
    for (std::uint64_t r = 0; r < n_ent_strs; ++r) {
      std::uint64_t v = 0;
      if (!get_varint(data, pos, v) || v >= dict_.size()) {
        fail_chunk("corrupt entity symbol");
        return false;
      }
      ent_strs[r] = static_cast<util::Symbol>(v);
    }

    // Field-column directory: decode each column's packed values.
    struct ColData {
      std::vector<std::uint64_t> values;
      std::size_t cursor = 0;
    };
    std::uint64_t n_cols = 0;
    if (!get_varint(data, pos, n_cols) || n_cols > kMaxChunkRows) {
      fail_chunk("corrupt column directory");
      return false;
    }
    std::unordered_map<std::uint64_t, ColData> columns;
    columns.reserve(n_cols);
    for (std::uint64_t c = 0; c < n_cols; ++c) {
      std::uint64_t key_sym = 0;
      std::uint64_t count = 0;
      std::uint64_t len = 0;
      if (!get_varint(data, pos, key_sym) || pos >= data.size() ||
          key_sym >= dict_.size()) {
        fail_chunk("corrupt column header");
        return false;
      }
      const auto type = static_cast<std::uint8_t>(data[pos++]);
      if (type > static_cast<std::uint8_t>(FieldType::kNull) ||
          !get_varint(data, pos, count) || !get_varint(data, pos, len) ||
          pos + len > data.size() || count > kMaxChunkRows) {
        fail_chunk("corrupt column header");
        return false;
      }
      const std::string_view bytes(data.data() + pos, len);
      pos += len;
      ColData col;
      col.values.reserve(count);
      std::size_t bpos = 0;
      switch (static_cast<FieldType>(type)) {
        case FieldType::kInt: {
          std::int64_t prev = 0;
          for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t v = 0;
            if (!get_varint(bytes, bpos, v)) {
              fail_chunk("corrupt int column");
              return false;
            }
            prev = delta_decode(v, prev);
            col.values.push_back(int_bits(prev));
          }
          break;
        }
        case FieldType::kDouble:
          for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t v = 0;
            if (!get_u64_le(bytes, bpos, v)) {
              fail_chunk("corrupt double column");
              return false;
            }
            col.values.push_back(v);
          }
          break;
        case FieldType::kBool:
          for (std::uint64_t i = 0; i < count; ++i) {
            if (bpos >= bytes.size()) {
              fail_chunk("corrupt bool column");
              return false;
            }
            col.values.push_back(bytes[bpos++] != 0 ? 1 : 0);
          }
          break;
        case FieldType::kString:
          for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t v = 0;
            if (!get_varint(bytes, bpos, v) || v >= dict_.size()) {
              fail_chunk("corrupt string column");
              return false;
            }
            col.values.push_back(v);
          }
          break;
        case FieldType::kNull:
          col.values.assign(count, 0);
          break;
      }
      if (bpos != bytes.size()) {
        fail_chunk("trailing bytes in column");
        return false;
      }
      columns[col_key(static_cast<util::Symbol>(key_sym), type)] =
          std::move(col);
    }
    if (pos != data.size()) {
      fail_chunk("trailing bytes in chunk data");
      return false;
    }

    // Assemble rows: shape order drives which column each value comes
    // from; values were packed in the same row-major traversal.
    rows_.clear();
    values_.clear();
    rows_.reserve(chunk.rows);
    std::size_t int_cursor = 0;
    std::size_t str_cursor = 0;
    for (std::uint64_t r = 0; r < chunk.rows; ++r) {
      const ShapeDef& shape = shapes_[shape_ids[r]];
      RowRef row;
      row.ts = ts_col[r];
      row.shape = shape_ids[r];
      if (shape.entity_kind == kEntityString) {
        if (str_cursor >= ent_strs.size()) {
          fail_chunk("entity column underrun");
          return false;
        }
        row.entity = ent_strs[str_cursor++];
      } else {
        if (int_cursor >= ent_ints.size()) {
          fail_chunk("entity column underrun");
          return false;
        }
        row.entity = int_bits(ent_ints[int_cursor++]);
      }
      row.value_start = values_.size();
      for (const auto& [key_sym, type] : shape.fields) {
        const auto it = columns.find(col_key(key_sym, type));
        if (it == columns.end() ||
            it->second.cursor >= it->second.values.size()) {
          fail_chunk("column underrun (corrupt chunk)");
          return false;
        }
        values_.push_back(it->second.values[it->second.cursor++]);
      }
      rows_.push_back(row);
    }
    for (const auto& [key, col] : columns) {
      if (col.cursor != col.values.size()) {
        fail_chunk("column overrun (corrupt chunk)");
        return false;
      }
    }

    row_cursor_ = 0;
    ++stats_.chunks_read;
    stats_.rows_decoded += chunk.rows;
    ++recovery_.salvaged_chunks;
    note_chunk_salvaged(chunk.rows);
    return true;
  }
}

bool ColReader::chunk_matches_filter(const ChunkInfo& info) {
  if (filter_.ts_from && info.max_ts < *filter_.ts_from) return false;
  if (filter_.ts_to && info.min_ts > *filter_.ts_to) return false;
  if (!filter_.kinds.empty()) {
    // Resolve filter kinds against the dictionary as it stands; a kind
    // not yet interned cannot label any row of this chunk.
    filter_kind_syms_.clear();
    for (const std::string& k : filter_.kinds) {
      const auto it = dict_lookup_.find(std::string_view(k));
      if (it != dict_lookup_.end()) filter_kind_syms_.push_back(it->second);
    }
    bool any = false;
    for (const auto& [sym, count] : info.kind_counts) {
      if (std::find(filter_kind_syms_.begin(), filter_kind_syms_.end(),
                    sym) != filter_kind_syms_.end()) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

bool ColReader::row_passes_filter(const RowRef& row) const {
  if (filter_.ts_from && row.ts < *filter_.ts_from) return false;
  if (filter_.ts_to && row.ts > *filter_.ts_to) return false;
  const ShapeDef& shape = shapes_[row.shape];
  if (!filter_.kinds.empty() &&
      std::find(filter_kind_syms_.begin(), filter_kind_syms_.end(),
                shape.kind) == filter_kind_syms_.end()) {
    return false;
  }
  if (filter_.site) {
    bool hit = false;
    std::size_t value_index = row.value_start;
    for (const auto& [key_sym, type] : shape.fields) {
      if (static_cast<FieldType>(type) == FieldType::kInt &&
          (key_sym == site_sym_ || key_sym == src_sym_ ||
           key_sym == dst_sym_) &&
          bits_int(values_[value_index]) == *filter_.site) {
        hit = true;
      }
      ++value_index;
    }
    if (!hit) return false;
  }
  return true;
}

bool ColReader::next(DecodedEvent& out) {
  for (;;) {
    if (row_cursor_ >= rows_.size()) {
      if (!load_chunk(/*stats_only=*/false, nullptr)) return false;
      if (filter_.site) {
        // Site/src/dst key symbols may appear in any chunk's dict delta.
        const auto resolve = [this](std::string_view key) {
          const auto it = dict_lookup_.find(key);
          return it != dict_lookup_.end() ? it->second : util::kNoSymbol;
        };
        site_sym_ = resolve("site");
        src_sym_ = resolve("src");
        dst_sym_ = resolve("dst");
      }
      continue;
    }
    const RowRef& row = rows_[row_cursor_++];
    if (!row_passes_filter(row)) continue;

    const ShapeDef& shape = shapes_[row.shape];
    out.ts = row.ts;
    out.kind = view(shape.kind);
    out.entity_is_string = shape.entity_kind == kEntityString;
    if (out.entity_is_string) {
      out.entity_string = view(static_cast<util::Symbol>(row.entity));
      out.entity_int = 0;
    } else {
      out.entity_int = bits_int(row.entity);
      out.entity_string = {};
    }
    out.fields.clear();
    out.fields.reserve(shape.fields.size());
    std::size_t value_index = row.value_start;
    for (const auto& [key_sym, type] : shape.fields) {
      DecodedEvent::Field f;
      f.key = view(key_sym);
      f.type = static_cast<FieldType>(type);
      const std::uint64_t bits = values_[value_index++];
      switch (f.type) {
        case FieldType::kInt: f.int_v = bits_int(bits); break;
        case FieldType::kDouble: f.double_v = bits_double(bits); break;
        case FieldType::kBool: f.bool_v = bits != 0; break;
        case FieldType::kString:
          f.string_v = view(static_cast<util::Symbol>(bits));
          break;
        case FieldType::kNull: break;
      }
      out.fields.push_back(f);
    }
    ++stats_.rows_emitted;
    return true;
  }
}

// --- free functions ---------------------------------------------------------

bool is_colstore_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[sizeof kFileMagic];
  const bool ok = read_exact(f, magic, sizeof magic) &&
                  std::memcmp(magic, kFileMagic, sizeof magic) == 0;
  std::fclose(f);
  return ok;
}

std::optional<ColStats> colstore_stats(const std::string& path,
                                       std::string* error) {
  ColReader reader(path);
  ColStats stats;
  ColReader::ChunkInfo info;
  bool first = true;
  while (reader.load_chunk(/*stats_only=*/true, &info)) {
    ++stats.chunks;
    stats.events += info.rows;
    if (first) {
      stats.min_ts = info.min_ts;
      stats.max_ts = info.max_ts;
      first = false;
    } else {
      stats.min_ts = std::min(stats.min_ts, info.min_ts);
      stats.max_ts = std::max(stats.max_ts, info.max_ts);
    }
    for (const auto& [sym, count] : info.kind_counts) {
      stats.kind_counts[std::string(reader.view(sym))] += count;
    }
  }
  if (!reader.ok()) {
    if (error != nullptr) *error = reader.error();
    return std::nullopt;
  }
  stats.dict_strings = reader.dict_.size();
  stats.shapes = reader.shapes_.size();
  if (reader.in_ != nullptr) {
    const long at = std::ftell(reader.in_);
    if (at > 0) stats.file_bytes = static_cast<std::uint64_t>(at);
  }
  return stats;
}

bool write_colstore(const EventLog& log, const std::string& path,
                    ColWriterOptions options) {
  // The log's durability policy covers both sinks: any non-off fsync
  // policy also syncs the colstore file before close.
  if (log.fsync_config().policy != FsyncPolicy::kOff) {
    options.fsync_on_close = true;
  }
  ColWriter writer(path, options);
  if (!writer.ok()) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: cannot open colstore output file " + path);
    return false;
  }
  log.for_each_line(
      [&writer](std::string_view line) { writer.append_ndjson_line(line); });
  if (!writer.close()) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: colstore write failed: " + writer.error());
    return false;
  }
  if (writer.stats().rejected != 0) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: colstore sink rejected " +
                       std::to_string(writer.stats().rejected) +
                       " event line(s)");
  }
  return true;
}

}  // namespace pandarus::obs
