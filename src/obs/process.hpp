// Process self-description for Prometheus scrapes (obs::serve): a
// pandarus_build_info gauge carrying version/compiler labels (value
// always 1, the node_exporter idiom) plus live process gauges — resident
// set size, open file descriptors, wall-clock uptime.  The gauges read
// /proc/self and are zero on non-Linux builds; none of them touch the
// event stream or simulation state, so arming them cannot perturb a
// deterministic campaign.
#pragma once

namespace pandarus::obs {

class Registry;

/// Version label baked in at build time (the PANDARUS_VERSION compile
/// definition; "dev" when absent).
[[nodiscard]] const char* build_version() noexcept;

/// Compiler label ("gcc 12.2.0" / clang's __VERSION__ string).
[[nodiscard]] const char* build_compiler() noexcept;

/// Registers pandarus_build_info{version,compiler} = 1 and the process
/// gauges (pandarus_process_resident_memory_bytes / _open_fds /
/// _uptime_seconds) in `registry`, sampling them once.  Idempotent per
/// registry; the process start reference is captured on first call.
void register_process_metrics(Registry& registry);
void register_process_metrics();  ///< same, on Registry::global()

/// Refreshes the process gauges (RSS, fds, uptime); call right before a
/// scrape or export so the values are current.  Registers them first if
/// register_process_metrics was never called.
void sample_process_metrics(Registry& registry);
void sample_process_metrics();  ///< same, on Registry::global()

}  // namespace pandarus::obs
