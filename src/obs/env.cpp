#include "obs/env.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "obs/colstore.hpp"
#include "obs/event_log.hpp"
#include "obs/flow.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/process.hpp"
#include "obs/serve.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace pandarus::obs {
namespace {

std::string g_metrics_path;
std::string g_trace_path;
std::string g_events_path;
std::string g_events_col_path;
std::string g_flows_path;
std::string g_alerts_path;
TraceRecorder* g_env_recorder = nullptr;
EventLog* g_env_event_log = nullptr;
FlowTracker* g_env_flow_tracker = nullptr;
StatusServer* g_env_status_server = nullptr;
HealthEngine* g_env_health_engine = nullptr;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: cannot open metrics output file " + path);
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

void dump_at_exit() {
  // The server goes first: once stopped, no scrape can race the close/
  // dump sequence below.
  if (g_env_status_server != nullptr) {
    g_env_status_server->stop();
    sample_process_metrics();  // final values for the metrics dump
  }
  if (!g_metrics_path.empty()) {
    write_text_file(g_metrics_path, ends_with(g_metrics_path, ".prom")
                                        ? export_prometheus()
                                        : export_json());
  }
  if (g_env_recorder != nullptr) {
    g_env_recorder->write_chrome_trace(g_trace_path);
  }
  if (g_env_event_log != nullptr) {
    // Terminal log_stats line first, so both sinks carry it.
    g_env_event_log->close();
    // The periodic flusher (if armed) has appended the published
    // prefix; the rewrite below produces identical bytes plus whatever
    // the final publish added, so both paths end at the same file.
    g_env_event_log->stop_periodic_flush();
    if (!g_events_path.empty()) {
      g_env_event_log->write_ndjson(g_events_path);
    }
    if (!g_events_col_path.empty()) {
      write_colstore(*g_env_event_log, g_events_col_path);
    }
  }
  if (g_env_flow_tracker != nullptr && !g_flows_path.empty()) {
    g_env_flow_tracker->write_collapsed(g_flows_path);
  }
  if (g_env_health_engine != nullptr && !g_alerts_path.empty()) {
    // After the log close above, detectors have quiesced; the dump is
    // the same document /api/alerts served.
    write_text_file(g_alerts_path, g_env_health_engine->status_json());
  }
}

bool install_once() {
  const char* metrics = std::getenv("PANDARUS_METRICS");
  const char* trace = std::getenv("PANDARUS_TRACE");
  const char* events = std::getenv("PANDARUS_EVENTS");
  const char* events_col = std::getenv("PANDARUS_EVENTS_COL");
  const char* flows = std::getenv("PANDARUS_FLOWS");
  const char* serve = std::getenv("PANDARUS_SERVE");
  const char* alerts = std::getenv("PANDARUS_ALERTS");
  if (metrics == nullptr && trace == nullptr && events == nullptr &&
      events_col == nullptr && flows == nullptr && serve == nullptr &&
      alerts == nullptr) {
    return false;
  }
  if (metrics != nullptr) g_metrics_path = metrics;
  if (trace != nullptr) {
    g_trace_path = trace;
    // Leaked on purpose: spans may close during static destruction,
    // after which the recorder must still be alive to receive them.
    g_env_recorder = new TraceRecorder();
    g_env_recorder->install();
  }
  if (events != nullptr) g_events_path = events;
  if (events_col != nullptr) g_events_col_path = events_col;
  if (events != nullptr || events_col != nullptr) {
    // One log feeds both sinks.  Leaked for the same reason as the
    // trace recorder.
    g_env_event_log = new EventLog();
    g_env_event_log->install();
    // Durability policy must be set before the flusher starts so the
    // very first flush pass already honours it.
    FsyncConfig fsync_config;
    if (const char* fsync = std::getenv("PANDARUS_EVENTS_FSYNC");
        fsync != nullptr && fsync[0] != '\0') {
      if (parse_fsync_policy(fsync, fsync_config)) {
        g_env_event_log->set_fsync(fsync_config);
      } else {
        util::log_line(util::LogLevel::kWarning,
                       std::string("obs: bad PANDARUS_EVENTS_FSYNC value "
                                   "(want off|flush|interval:<ms>): ") +
                           fsync);
      }
    }
    if (const char* delay = std::getenv("PANDARUS_EVENTS_WRITE_DELAY_US");
        delay != nullptr) {
      g_env_event_log->set_flush_write_delay_us(std::atoi(delay));
    }
    // Periodic incremental flush of the published prefix (default off;
    // needs an NDJSON path to flush into).  An interval fsync policy
    // arms it at its own cadence when FLUSH_MS is unset — durable
    // telemetry needs bytes in flight to the file.
    int interval = 0;
    if (const char* flush_ms = std::getenv("PANDARUS_EVENTS_FLUSH_MS");
        flush_ms != nullptr) {
      interval = std::atoi(flush_ms);
    }
    if (interval <= 0 &&
        fsync_config.policy == FsyncPolicy::kInterval) {
      interval = fsync_config.interval_ms;
    }
    if (interval > 0 && !g_events_path.empty()) {
      g_env_event_log->start_periodic_flush(g_events_path, interval);
    }
  }
  if (flows != nullptr) {
    // The value is the collapsed-stack dump path ("" arms the tracker
    // without a dump).  Leaked like the recorder: end_flow may fire
    // during static destruction.
    g_flows_path = flows;
    g_env_flow_tracker = new FlowTracker();
    g_env_flow_tracker->install();
  }
  if (alerts != nullptr) {
    // The value is the status_json dump path; "" or "1" arms the
    // detectors without a dump.  Leaked like the recorder: transfer
    // feeds may fire during static destruction of a campaign scope.
    if (alerts[0] != '\0' && std::string_view(alerts) != "1") {
      g_alerts_path = alerts;
    }
    g_env_health_engine = new HealthEngine();
    g_env_health_engine->install();
  }
  if (serve != nullptr) {
    // Leaked like the others; dump_at_exit stops it before any dump
    // runs.  Port 0 binds an ephemeral port (logged by start()).
    const int port = std::atoi(serve);
    StatusServer::Options options;
    options.port = static_cast<std::uint16_t>(
        port > 0 && port <= 65535 ? port : 0);
    g_env_status_server = new StatusServer(options);
    register_process_metrics();
    if (g_env_status_server->start()) {
      g_env_status_server->install();
    }
  }
  std::atexit(dump_at_exit);
  return true;
}

}  // namespace

bool install_env_hooks() {
  // The magic-static initializer runs install_once() exactly once per
  // process even under concurrent first calls, so repeated calls can
  // never register a second atexit dump or a second recorder/log.
  static const bool active = install_once();
  return active;
}

}  // namespace pandarus::obs
