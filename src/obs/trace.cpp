#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>

#include "util/log.hpp"

namespace pandarus::obs {
namespace {

std::uint64_t next_recorder_id() noexcept {
  // Ids start at 1 so the thread-local cache's 0 means "no recorder".
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::atomic<TraceRecorder*> TraceRecorder::g_installed{nullptr};

TraceRecorder::TraceRecorder(std::size_t max_events_per_thread)
    : id_(next_recorder_id()),
      max_events_per_thread_(max_events_per_thread) {}

TraceRecorder::~TraceRecorder() { uninstall(); }

void TraceRecorder::install() noexcept {
  g_installed.store(this, std::memory_order_release);
}

void TraceRecorder::uninstall() noexcept {
  TraceRecorder* self = this;
  g_installed.compare_exchange_strong(self, nullptr,
                                      std::memory_order_acq_rel);
}

std::int64_t TraceRecorder::now_us() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

TraceRecorder::Buffer& TraceRecorder::local_buffer() {
  // Cache keyed on the recorder's process-unique id: a stale cache from
  // a destroyed recorder can never collide with a live one.
  static thread_local std::uint64_t t_owner_id = 0;
  static thread_local Buffer* t_buffer = nullptr;
  if (t_owner_id != id_) {
    std::scoped_lock lock(mutex_);
    buffers_.push_back(std::make_unique<Buffer>());
    buffers_.back()->tid = static_cast<std::uint32_t>(buffers_.size());
    t_buffer = buffers_.back().get();
    t_owner_id = id_;
  }
  return *t_buffer;
}

void TraceRecorder::record(const char* name, const char* category,
                           std::int64_t start_us, std::int64_t dur_us,
                           std::int64_t arg) {
  record_event({name, category, start_us, dur_us, arg});
}

void TraceRecorder::record_event(const TraceEvent& event) {
  Buffer& buffer = local_buffer();
  if (buffer.events.size() >= max_events_per_thread_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (!warned_dropped_.exchange(true, std::memory_order_relaxed)) {
      util::log_line(util::LogLevel::kWarning,
                     "obs: trace buffer full, dropping events (raise "
                     "max_events_per_thread)");
    }
    return;
  }
  buffer.events.push_back(event);
}

std::size_t TraceRecorder::event_count() const {
  std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

std::string TraceRecorder::to_chrome_json() const {
  std::scoped_lock lock(mutex_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& buffer : buffers_) {
    for (const TraceEvent& e : buffer->events) {
      out += first ? "\n" : ",\n";
      first = false;
      if (e.ph == 'M') {
        // Process-name metadata: labels the sim flow/transfer lanes in
        // Perfetto; e.name carries the label.
        out += R"({"name": "process_name", "ph": "M", "pid": )";
        out += std::to_string(e.pid);
        out += R"(, "tid": 0, "args": {"name": ")";
        append_escaped(out, e.name);
        out += "\"}}";
        continue;
      }
      const std::int64_t tid =
          e.tid == TraceEvent::kThreadTid ? buffer->tid : e.tid;
      out += R"({"name": ")";
      append_escaped(out, e.name);
      out += R"(", "cat": ")";
      append_escaped(out, e.category);
      out += R"(", "ph": ")";
      out += e.ph;
      out += R"(", "pid": )";
      out += std::to_string(e.pid);
      out += ", \"tid\": ";
      out += std::to_string(tid);
      out += ", \"ts\": " + std::to_string(e.start_us);
      if (e.ph == 'X') {
        out += ", \"dur\": " + std::to_string(e.dur_us);
      } else if (e.ph == 's' || e.ph == 'f') {
        out += ", \"id\": " + std::to_string(e.flow_id);
        // Bind the arrow tail to the enclosing slice so Perfetto draws
        // it even when the 'f' timestamp sits inside the target span.
        if (e.ph == 'f') out += R"(, "bp": "e")";
      }
      if (e.arg != kNoArg) {
        out += ", \"args\": {\"v\": " + std::to_string(e.arg) + "}";
      }
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  const std::string json = to_chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: cannot open trace output file " + path);
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: short write to trace output file " + path);
    return false;
  }
  return true;
}

}  // namespace pandarus::obs
