#include "obs/event_log.hpp"

#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <thread>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace pandarus::obs {
namespace {

std::uint64_t next_log_id() noexcept {
  // Ids start at 1 so the thread-local cache's 0 means "no log".
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// The flush thread writes in blocks this size so the crash harness's
/// write-delay hook can stretch a flush across many kill opportunities.
constexpr std::size_t kFlushBlock = 4096;

}  // namespace

bool parse_fsync_policy(std::string_view spec, FsyncConfig& out) {
  if (spec == "off") {
    out = FsyncConfig{};
    return true;
  }
  if (spec == "flush") {
    out = FsyncConfig{FsyncPolicy::kFlush, 0};
    return true;
  }
  constexpr std::string_view kPrefix = "interval:";
  if (spec.substr(0, kPrefix.size()) == kPrefix) {
    const std::string_view ms = spec.substr(kPrefix.size());
    int value = 0;
    const auto [ptr, ec] =
        std::from_chars(ms.data(), ms.data() + ms.size(), value);
    if (ec == std::errc() && ptr == ms.data() + ms.size() && value > 0) {
      out = FsyncConfig{FsyncPolicy::kInterval, value};
      return true;
    }
  }
  return false;
}

void export_event_log_metrics() {
  EventLog* log = EventLog::installed();
  if (log == nullptr) return;
  Registry& registry = Registry::global();
  registry
      .gauge("pandarus_events_written",
             "Events accepted into the installed log")
      .set(static_cast<std::int64_t>(log->events_written()));
  registry
      .gauge("pandarus_events_dropped",
             "Events past the max_events bound (silently missing)")
      .set(static_cast<std::int64_t>(log->dropped()));
  registry
      .gauge("pandarus_events_bytes_written",
             "NDJSON bytes the accepted events serialize to")
      .set(static_cast<std::int64_t>(log->bytes_written()));
  registry
      .gauge("pandarus_events_io_errors",
             "Short writes / failed fsyncs seen by any sink path")
      .set(static_cast<std::int64_t>(log->io_errors()));
  registry
      .gauge("pandarus_events_fsyncs",
             "Successful fsyncs issued under the active policy")
      .set(static_cast<std::int64_t>(log->fsyncs()));
  registry
      .gauge("pandarus_events_watermark",
             "Publication watermark of the installed log")
      .set(static_cast<std::int64_t>(log->watermark()));
}

namespace detail {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += '0';
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace detail

namespace {
using detail::append_json_double;
using detail::append_json_escaped;
}  // namespace

// --- Event ------------------------------------------------------------------

Event::Event(std::string_view kind, std::int64_t ts, std::int64_t entity) {
  line_.reserve(96);
  line_ += "{\"ts\":";
  line_ += std::to_string(ts);
  line_ += ",\"kind\":\"";
  append_json_escaped(line_, kind);
  line_ += "\",\"entity\":";
  line_ += std::to_string(entity);
}

Event::Event(std::string_view kind, std::int64_t ts, std::string_view entity) {
  line_.reserve(96);
  line_ += "{\"ts\":";
  line_ += std::to_string(ts);
  line_ += ",\"kind\":\"";
  append_json_escaped(line_, kind);
  line_ += "\",\"entity\":\"";
  append_json_escaped(line_, entity);
  line_ += '"';
}

void Event::append_key(std::string_view key) {
  line_ += ",\"";
  append_json_escaped(line_, key);
  line_ += "\":";
}

Event&& Event::field(std::string_view key, std::int64_t v) && {
  append_key(key);
  line_ += std::to_string(v);
  return std::move(*this);
}

Event&& Event::field(std::string_view key, std::uint64_t v) && {
  append_key(key);
  line_ += std::to_string(v);
  return std::move(*this);
}

Event&& Event::field(std::string_view key, std::int32_t v) && {
  return std::move(*this).field(key, static_cast<std::int64_t>(v));
}

Event&& Event::field(std::string_view key, std::uint32_t v) && {
  return std::move(*this).field(key, static_cast<std::uint64_t>(v));
}

Event&& Event::field(std::string_view key, double v) && {
  append_key(key);
  append_json_double(line_, v);
  return std::move(*this);
}

Event&& Event::field(std::string_view key, bool v) && {
  append_key(key);
  line_ += v ? "true" : "false";
  return std::move(*this);
}

Event&& Event::field(std::string_view key, std::string_view v) && {
  append_key(key);
  line_ += '"';
  append_json_escaped(line_, v);
  line_ += '"';
  return std::move(*this);
}

Event&& Event::field(std::string_view key, const char* v) && {
  return std::move(*this).field(key, std::string_view(v));
}

// --- EventLog ---------------------------------------------------------------

std::atomic<EventLog*> EventLog::g_installed{nullptr};

EventLog::EventLog(std::size_t max_events)
    : id_(next_log_id()), max_events_(max_events) {}

EventLog::~EventLog() {
  stop_periodic_flush();
  uninstall();
}

void EventLog::install() noexcept {
  g_installed.store(this, std::memory_order_release);
}

void EventLog::uninstall() noexcept {
  EventLog* self = this;
  g_installed.compare_exchange_strong(self, nullptr,
                                      std::memory_order_acq_rel);
}

EventLog::Buffer& EventLog::local_buffer() {
  // Cache keyed on the log's process-unique id: a stale cache from a
  // destroyed log can never collide with a live one.
  static thread_local std::uint64_t t_owner_id = 0;
  static thread_local Buffer* t_buffer = nullptr;
  if (t_owner_id != id_) {
    std::scoped_lock lock(mutex_);
    buffers_.push_back(std::make_unique<Buffer>());
    t_buffer = buffers_.back().get();
    t_owner_id = id_;
  }
  return *t_buffer;
}

void EventLog::emit(Event event) {
  if (accepted_.fetch_add(1, std::memory_order_relaxed) >= max_events_) {
    accepted_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (!warned_dropped_.exchange(true, std::memory_order_relaxed)) {
      util::log_line(util::LogLevel::kWarning,
                     "obs: event log full, dropping events (raise "
                     "max_events)");
    }
    return;
  }
  event.line_ += '}';
  bytes_.fetch_add(event.line_.size() + 1, std::memory_order_relaxed);
  Buffer& buffer = local_buffer();
  buffer.staged.push_back(
      {next_seq_.fetch_add(1, std::memory_order_relaxed),
       std::move(event.line_)});
  if (buffer.staged.size() >= kDrainBatch) {
    std::scoped_lock lock(mutex_);
    drain_locked(buffer);
  }
}

void EventLog::emit_sideband(Event event) {
  event.line_ += '}';
  Buffer& buffer = local_buffer();
  buffer.staged.push_back(
      {next_seq_.fetch_add(1, std::memory_order_relaxed),
       std::move(event.line_)});
  if (buffer.staged.size() >= kDrainBatch) {
    std::scoped_lock lock(mutex_);
    drain_locked(buffer);
  }
}

void EventLog::note_drained_locked(std::uint64_t seq) {
  if (seq == watermark_) {
    ++watermark_;
    while (!ahead_.empty() && ahead_.front() == watermark_) {
      std::pop_heap(ahead_.begin(), ahead_.end(), std::greater<>());
      ahead_.pop_back();
      ++watermark_;
    }
  } else {
    ahead_.push_back(seq);
    std::push_heap(ahead_.begin(), ahead_.end(), std::greater<>());
  }
}

void EventLog::drain_locked(Buffer& buffer) {
  for (Line& line : buffer.staged) {
    note_drained_locked(line.seq);
    drained_.push_back(std::move(line));
  }
  buffer.staged.clear();
}

std::uint64_t EventLog::publish() {
  Buffer& buffer = local_buffer();
  std::scoped_lock lock(mutex_);
  drain_locked(buffer);
  return watermark_;
}

std::uint64_t EventLog::watermark() const {
  std::scoped_lock lock(mutex_);
  return watermark_;
}

std::uint64_t EventLog::snapshot_ndjson(std::string& out,
                                        std::uint64_t from_seq) const {
  std::scoped_lock lock(mutex_);
  if (from_seq >= watermark_) return watermark_;
  std::vector<const Line*> lines;
  lines.reserve(static_cast<std::size_t>(watermark_ - from_seq));
  for (const Line& l : drained_) {
    if (l.seq >= from_seq && l.seq < watermark_) lines.push_back(&l);
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line* a, const Line* b) { return a->seq < b->seq; });
  std::size_t total = 0;
  for (const Line* l : lines) total += l->text.size() + 1;
  out.reserve(out.size() + total);
  for (const Line* l : lines) {
    out += l->text;
    out += '\n';
  }
  return watermark_;
}

void EventLog::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  // Snapshot first: the stats line describes the stream before itself.
  const std::uint64_t events = events_written();
  const std::uint64_t drops = dropped();
  const std::uint64_t bytes = bytes_written();
  // The terminal line must survive max_events truncation (that is the
  // condition it exists to report), so it bypasses emit()'s bound and
  // goes straight into the central sink.  io_errors/fsyncs make sink
  // trouble (full disk, failed fsync) visible in replay; both are 0 in
  // the default configuration, keeping byte-identity across runs.
  Event event = Event("log_stats", 0, std::int64_t{0})
                    .field("events", events)
                    .field("dropped", drops)
                    .field("bytes", bytes)
                    .field("io_errors", io_errors())
                    .field("fsyncs", fsyncs());
  event.line_ += '}';
  bytes_.fetch_add(event.line_.size() + 1, std::memory_order_relaxed);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  std::scoped_lock lock(mutex_);
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  note_drained_locked(seq);
  drained_.push_back({seq, std::move(event.line_)});
  // Emitters have quiesced (close's contract), so every remaining
  // staged line can be drained here — the publication watermark then
  // covers the whole stream and snapshot readers see it all.
  for (const auto& buffer : buffers_) drain_locked(*buffer);
}

std::size_t EventLog::event_count() const {
  std::scoped_lock lock(mutex_);
  std::size_t n = drained_.size();
  for (const auto& buffer : buffers_) n += buffer->staged.size();
  return n;
}

std::string EventLog::to_ndjson() const {
  std::scoped_lock lock(mutex_);
  std::vector<const Line*> lines;
  lines.reserve(drained_.size());
  for (const Line& l : drained_) lines.push_back(&l);
  for (const auto& buffer : buffers_) {
    for (const Line& l : buffer->staged) lines.push_back(&l);
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line* a, const Line* b) { return a->seq < b->seq; });
  std::size_t total = 0;
  for (const Line* l : lines) total += l->text.size() + 1;
  std::string out;
  out.reserve(total);
  for (const Line* l : lines) {
    out += l->text;
    out += '\n';
  }
  return out;
}

void EventLog::for_each_line(
    const std::function<void(std::string_view)>& fn) const {
  std::scoped_lock lock(mutex_);
  std::vector<const Line*> lines;
  lines.reserve(drained_.size());
  for (const Line& l : drained_) lines.push_back(&l);
  for (const auto& buffer : buffers_) {
    for (const Line& l : buffer->staged) lines.push_back(&l);
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line* a, const Line* b) { return a->seq < b->seq; });
  for (const Line* l : lines) fn(l->text);
}

bool EventLog::start_periodic_flush(const std::string& path,
                                    int interval_ms) {
  if (interval_ms <= 0) return false;
  std::scoped_lock lock(flush_mutex_);
  if (flush_thread_.joinable()) return false;  // already running
  flush_file_ = std::fopen(path.c_str(), "w");
  if (flush_file_ == nullptr) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: cannot open event flush file " + path);
    return false;
  }
  flush_stop_ = false;
  flush_cursor_ = 0;
  flush_thread_ = std::thread([this, interval_ms] { flush_loop(interval_ms); });
  return true;
}

void EventLog::flush_once() {
  // flush_mutex_ held (serializes cursor/file against stop).
  std::string chunk;
  flush_cursor_ = snapshot_ndjson(chunk, flush_cursor_);
  if (chunk.empty()) return;
  // Blockwise so the crash harness's write-delay hook can hold the file
  // in a torn state between blocks; a plain run takes the loop in one
  // or a few full-size passes with no extra cost.
  std::size_t off = 0;
  while (off < chunk.size()) {
    const std::size_t want = std::min(chunk.size() - off, kFlushBlock);
    const std::size_t wrote =
        std::fwrite(chunk.data() + off, 1, want, flush_file_);
    if (wrote != want) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      if (!warned_io_error_.exchange(true, std::memory_order_relaxed)) {
        util::log_line(util::LogLevel::kWarning,
                       "obs: short write on event flush file");
      }
      // Skip the unwritable remainder but keep the cursor advanced:
      // the final write_ndjson() rewrites the full stream anyway, and
      // io_errors in log_stats records that this file is suspect.
      break;
    }
    off += wrote;
    if (flush_write_delay_us_ > 0) {
      std::fflush(flush_file_);
      std::this_thread::sleep_for(
          std::chrono::microseconds(flush_write_delay_us_));
    }
  }
  std::fflush(flush_file_);
  sync_flush_file_locked();
}

void EventLog::sync_flush_file_locked() {
  if (flush_file_ == nullptr) return;
  switch (fsync_.policy) {
    case FsyncPolicy::kOff:
      return;
    case FsyncPolicy::kFlush:
      break;
    case FsyncPolicy::kInterval: {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_fsync_ <
          std::chrono::milliseconds(fsync_.interval_ms)) {
        return;
      }
      last_fsync_ = now;
      break;
    }
  }
  if (::fsync(fileno(flush_file_)) == 0) {
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  } else {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    if (!warned_io_error_.exchange(true, std::memory_order_relaxed)) {
      util::log_line(util::LogLevel::kWarning,
                     "obs: fsync failed on event flush file");
    }
  }
}

void EventLog::flush_loop(int interval_ms) {
  std::unique_lock lock(flush_mutex_);
  while (!flush_stop_) {
    flush_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                       [this] { return flush_stop_; });
    flush_once();
  }
}

void EventLog::stop_periodic_flush() {
  {
    std::scoped_lock lock(flush_mutex_);
    if (!flush_thread_.joinable()) return;
    flush_stop_ = true;
  }
  flush_cv_.notify_all();
  flush_thread_.join();
  std::scoped_lock lock(flush_mutex_);
  flush_once();  // the thread's last pass may predate close()
  std::fclose(flush_file_);
  flush_file_ = nullptr;
}

bool EventLog::write_ndjson(const std::string& path) const {
  const std::string text = to_ndjson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: cannot open event log output file " + path);
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  if (written != text.size()) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    std::fclose(f);
    util::log_line(util::LogLevel::kWarning,
                   "obs: short write to event log output file " + path);
    return false;
  }
  if (fsync_.policy != FsyncPolicy::kOff) {
    std::fflush(f);
    if (::fsync(fileno(f)) == 0) {
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
    } else {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      util::log_line(util::LogLevel::kWarning,
                     "obs: fsync failed on event log output file " + path);
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace pandarus::obs
