// Minimal embedded HTTP/1.1 server for the live observability endpoint
// (obs::serve).  Deliberately dependency-free: blocking POSIX sockets, a
// fixed worker pool fed by an accept thread through a bounded queue,
// bounded request size, keep-alive with pipelining, and graceful
// shutdown (stop() closes the listener, shuts down in-flight
// connections, and joins every thread).
//
// Scope is an *instrumentation* server, not a web framework: GET/HEAD
// only, no request bodies, loopback bind only (127.0.0.1), and one
// handler callback for the whole route table.  Long-lived responses
// (SSE) run through HttpResponse::stream, which receives an HttpStream
// whose write()/sleep_ms() observe server shutdown so a graceful stop
// never waits on a subscriber.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

namespace pandarus::obs {

struct HttpRequest {
  std::string method;   ///< "GET" / "HEAD" (anything else is rejected)
  std::string target;   ///< raw request target, e.g. "/api/summary?x=1"
  std::string path;     ///< target up to '?'
  std::string query;    ///< after '?', may be empty
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;

  /// First header with this name (case-insensitive); empty when absent.
  [[nodiscard]] std::string_view header(std::string_view name) const noexcept;
};

/// Streaming sink handed to HttpResponse::stream callbacks.  Both calls
/// return false once the client is gone or the server is stopping; the
/// callback should return promptly when that happens.
class HttpStream {
 public:
  /// Writes one chunk to the socket (looping over partial sends).
  bool write(std::string_view chunk) noexcept;
  /// Sleeps up to `ms`, waking early on server shutdown.
  bool sleep_ms(int ms) noexcept;

 private:
  friend class HttpServer;
  HttpStream(int fd, class HttpServer& server) : fd_(fd), server_(server) {}
  int fd_;
  HttpServer& server_;
  bool broken_ = false;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// When set the worker sends the headers (no Content-Length,
  /// Connection: close) and hands the socket to the callback; `body` is
  /// ignored and the connection closes when the callback returns.
  std::function<void(HttpStream&)> stream;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    std::uint16_t port = 0;  ///< 0 picks an ephemeral port (see port())
    int workers = 2;
    /// Request line + headers larger than this draw 431 and a close.
    std::size_t max_request_bytes = 16 * 1024;
    /// Keep-alive/pipelining bound per connection.
    int max_requests_per_connection = 128;
    /// recv() timeout; an idle keep-alive connection is closed after it.
    int recv_timeout_ms = 5000;
    int backlog = 16;
    /// Accepted connections waiting for a worker beyond this are closed.
    std::size_t max_pending_connections = 64;
  };

  /// Default options (separate overload: GCC 12 rejects `= {}` defaults
  /// for nested aggregates with member initializers).
  explicit HttpServer(Handler handler);
  HttpServer(Handler handler, Options options);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:<port>, starts the accept thread and worker pool.
  /// False (with a warning logged) when the socket cannot be bound.
  bool start();
  /// Graceful shutdown: stops accepting, shuts down in-flight
  /// connections, joins every thread.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Actual bound port (resolves Options::port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Requests answered so far (any status).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  friend class HttpStream;

  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);
  /// Parses one request from buffer[0, header_end); false -> 400.
  static bool parse_request(std::string_view text, HttpRequest& out);
  bool send_all(int fd, std::string_view data) noexcept;
  void send_simple(int fd, const HttpRequest* req, HttpResponse response);

  Handler handler_;
  Options options_;
  std::uint16_t port_ = 0;
  std::atomic<int> listen_fd_{-1};  ///< stop() races the accept thread
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;

  std::mutex conn_mutex_;
  std::unordered_set<int> active_;  ///< fds being served (for shutdown)

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;  ///< wakes HttpStream::sleep_ms

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace pandarus::obs
