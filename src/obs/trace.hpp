// Phase tracing: RAII spans recorded into per-thread buffers and dumped
// as Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// The disabled path is the common one and must cost nothing: when no
// TraceRecorder is installed, ScopedSpan's constructor is a single
// relaxed atomic load and its destructor a null check — no clock reads,
// no allocation.  When a recorder is installed, each span costs two
// steady_clock reads and one push_back into this thread's buffer.
//
// Span names and categories must be string literals (or otherwise
// outlive the recorder): events store the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pandarus::obs {

// --- Timestamp unit contract ----------------------------------------------
//
// Two clock domains cross the obs layer, and they never mix implicitly:
//
//  * simulated time — util::SimTime milliseconds since campaign start.
//    obs::EventLog `ts` fields and obs::Sampler tick times live here.
//  * wall time — microseconds on the steady clock since the process
//    trace epoch (TraceRecorder::now_us()).  TraceRecorder events live
//    here because Chrome trace JSON `ts`/`dur` are microseconds by spec.
//
// Simulated-time spans rendered into a trace (flow lanes) are scaled
// ms -> us through to_micros so one simulated millisecond occupies one
// visual microsecond; wall-clock gauges derived from now_us() go back
// through to_millis.  All conversions use these helpers — a bare
// `* 1000` or `/ 1000` on a timestamp is a contract violation.
[[nodiscard]] inline constexpr std::int64_t to_micros(
    std::int64_t millis) noexcept {
  return millis * 1000;
}
[[nodiscard]] inline constexpr std::int64_t to_millis(
    std::int64_t micros) noexcept {
  return micros / 1000;
}
static_assert(to_micros(1) == 1000 && to_millis(to_micros(7)) == 7,
              "obs timestamp contract: 1 ms == 1000 us, lossless round-trip");

struct TraceEvent {
  /// Sentinel `tid`: use the recording thread's per-buffer track.
  static constexpr std::int64_t kThreadTid = -1;

  const char* name;
  const char* category;
  std::int64_t start_us;  ///< microseconds since process trace epoch
  std::int64_t dur_us;
  std::int64_t arg;  ///< kNoArg, or emitted as args:{"v": arg}
  // Flow-lane extensions; the defaults reproduce the classic wall-clock
  // "X" span on the recording thread's track, so record() callers are
  // unaffected.
  char ph = 'X';  ///< 'X' span, 's'/'f' flow arrow ends, 'M' process name
  std::int32_t pid = 1;            ///< see TraceRecorder::k*Pid
  std::int64_t tid = kThreadTid;   ///< explicit track id (flow/transfer lanes)
  std::uint64_t flow_id = 0;       ///< Chrome trace "id" binding 's' to 'f'
};

/// Collects spans from any thread; one buffer per (recorder, thread).
/// Install at most one recorder at a time; it must outlive every span
/// that observed it as installed, and snapshots (to_chrome_json) are
/// only safe once recording threads have quiesced.
class TraceRecorder {
 public:
  static constexpr std::int64_t kNoArg = INT64_MIN;
  /// Trace "process" lanes: wall-clock spans keep pid 1 (unchanged
  /// output); simulated-time flow and transfer lanes render under their
  /// own pids so the two clock domains never share a timeline.
  static constexpr std::int32_t kWallPid = 1;
  static constexpr std::int32_t kFlowPid = 2;
  static constexpr std::int32_t kTransferPid = 3;

  /// `max_events_per_thread` bounds each thread buffer; overflowing
  /// events are counted as dropped (and warned once via util::log_line).
  explicit TraceRecorder(std::size_t max_events_per_thread = 1 << 20);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Makes this the process-wide recorder new spans report to.
  void install() noexcept;
  /// Stops recording (no-op if another recorder was installed since).
  void uninstall() noexcept;
  [[nodiscard]] static TraceRecorder* installed() noexcept {
    return g_installed.load(std::memory_order_acquire);
  }

  void record(const char* name, const char* category, std::int64_t start_us,
              std::int64_t dur_us, std::int64_t arg = kNoArg);
  /// Fully-specified variant for flow lanes / flow arrows ('s'/'f'
  /// phases, explicit pid/tid, Chrome "id"); same buffering and
  /// overflow accounting as record().
  void record_event(const TraceEvent& event);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON ({"traceEvents": [...]}, "X" phase events).
  [[nodiscard]] std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; false (with a warning logged)
  /// on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Microseconds on the steady clock since the process trace epoch.
  [[nodiscard]] static std::int64_t now_us() noexcept;

 private:
  struct Buffer {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  Buffer& local_buffer();

  static std::atomic<TraceRecorder*> g_installed;

  const std::uint64_t id_;  ///< process-unique, never reused
  const std::size_t max_events_per_thread_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> warned_dropped_{false};
};

/// RAII span: captures the installed recorder at construction and
/// reports (name, category, start, duration) at destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "pandarus",
                      std::int64_t arg = TraceRecorder::kNoArg) noexcept
      : recorder_(TraceRecorder::installed()),
        name_(name),
        category_(category),
        arg_(arg) {
    if (recorder_ != nullptr) start_us_ = TraceRecorder::now_us();
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      recorder_->record(name_, category_, start_us_,
                        TraceRecorder::now_us() - start_us_, arg_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  std::int64_t arg_;
  std::int64_t start_us_ = 0;
};

}  // namespace pandarus::obs
