#include "obs/serve.hpp"

#include <string_view>

#include "obs/event_log.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/process.hpp"
#include "util/log.hpp"

namespace pandarus::obs {
namespace {

/// The whole UI in one file: no frameworks, no external fetches, so the
/// page works from a curl'd artifact or an air-gapped host.  It polls
/// the JSON APIs and subscribes to /events/stream for live progress.
constexpr std::string_view kStatusPage = R"html(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>pandarus status</title>
<style>
 body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #1b2733; }
 h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
 code, td.num { font-family: ui-monospace, monospace; }
 table { border-collapse: collapse; margin-top: .4rem; }
 th, td { border: 1px solid #cbd5e1; padding: .25rem .6rem; text-align: left; }
 td.num { text-align: right; }
 .pill { display: inline-block; padding: .05rem .55rem; border-radius: 1rem; background: #e2e8f0; margin-right: .5rem; }
 .ok { background: #bbf7d0; }
 #bar { height: .5rem; background: #e2e8f0; border-radius: .25rem; overflow: hidden; margin: .4rem 0; }
 #fill { height: 100%; width: 0; background: #3b82f6; transition: width .3s; }
 .err { color: #b91c1c; }
</style>
</head>
<body>
<h1>pandarus live status</h1>
<div>
 <span class="pill" id="health">connecting…</span>
 <span class="pill" id="watermark">watermark —</span>
 <span class="pill" id="events">events —</span>
 <span class="pill" id="alerts">alerts —</span>
</div>
<div id="bar"><div id="fill"></div></div>
<div id="progress"></div>
<h2>Health <small>(<code>/api/alerts</code>)</small></h2>
<table id="alerttbl"><tbody><tr><td>no health engine armed</td></tr></tbody></table>
<table id="slos"><tbody></tbody></table>
<h2>Campaign summary <small>(<code>/api/summary</code>)</small></h2>
<table id="summary"><tbody><tr><td>waiting for data…</td></tr></tbody></table>
<h2>Matched jobs by method</h2>
<table id="methods"><tbody></tbody></table>
<h2>Critical links <small>(<code>/api/critical-path</code>)</small></h2>
<table id="links"><tbody></tbody></table>
<script>
const fmt = n => typeof n === 'number' ? n.toLocaleString('en-US') : n;
function rows(el, data) {
  el.querySelector('tbody').innerHTML =
    data.map(r => '<tr>' + r.map((c, i) =>
      `<td class="${i && typeof c === 'number' ? 'num' : ''}">${fmt(c)}</td>`
    ).join('') + '</tr>').join('');
}
async function refresh() {
  try {
    const h = await (await fetch('/healthz')).json();
    document.getElementById('health').textContent = h.status;
    document.getElementById('health').classList.add('ok');
    const s = await (await fetch('/api/summary')).json();
    rows(document.getElementById('summary'), [
      ['seed', s.seed], ['days', s.days], ['jobs', s.jobs],
      ['transfers', s.transfers],
      ['transfers with jeditaskid', s.transfers_with_taskid],
      ['stream closed', String(s.closed)],
    ]);
    rows(document.getElementById('methods'),
      ['exact', 'rm1', 'rm2'].map(m =>
        [m, s[m].matched_jobs, s[m].matched_transfers]));
    const c = await (await fetch('/api/critical-path')).json();
    rows(document.getElementById('links'),
      [['link', 'critical ms', 'flows']].concat(
        c.links.slice(0, 10).map(l =>
          [`${l.src_name} → ${l.dst_name}`, l.critical_ms, l.flows])));
    const a = await (await fetch('/api/alerts')).json();
    if (a.enabled !== false) {
      const all = (a.alerts || []).concat((a.resolved || []).slice(-5));
      rows(document.getElementById('alerttbl'),
        [['detector', 'entity', 'phase', 'severity', 'value']].concat(
          all.map(x =>
            [x.detector, x.entity, x.phase, x.severity, x.value])));
      rows(document.getElementById('slos'),
        [['SLO', 'target', 'good', 'bad', 'burn fast', 'burn slow']].concat(
          (a.slos || []).map(s =>
            [s.name, s.target, s.good, s.bad, s.burn_fast, s.burn_slow])));
    }
  } catch (e) {
    document.getElementById('progress').innerHTML =
      `<span class="err">${e}</span>`;
  }
}
const es = new EventSource('/events/stream');
es.addEventListener('tick', ev => {
  const t = JSON.parse(ev.data);
  document.getElementById('watermark').textContent =
    'watermark ' + fmt(t.watermark);
  document.getElementById('events').textContent =
    'events ' + fmt(t.events_written) +
    (t.dropped ? ` (dropped ${fmt(t.dropped)})` : '');
  if ('alerts_firing' in t) {
    const el = document.getElementById('alerts');
    el.textContent = `alerts ${fmt(t.alerts_firing)} firing / ` +
      `${fmt(t.alerts_pending)} pending / ${fmt(t.alerts_resolved)} resolved`;
    el.style.background = t.alerts_firing ? '#fecaca' : '#bbf7d0';
  }
  if (t.window_end_ms > 0) {
    const pct = Math.min(100, 100 * t.sim_now_ms / t.window_end_ms);
    document.getElementById('fill').style.width = pct + '%';
    document.getElementById('progress').textContent =
      `sim time ${fmt(t.sim_now_ms)} / ${fmt(t.window_end_ms)} ms ` +
      `(${pct.toFixed(1)}%)` + (t.closed ? ' — stream closed' : '');
  }
});
refresh();
setInterval(refresh, 3000);
</script>
</body>
</html>
)html";

std::string json_error(std::string_view message) {
  std::string out = "{\"error\":\"";
  out += message;
  out += "\"}\n";
  return out;
}

}  // namespace

std::atomic<StatusServer*> StatusServer::g_installed{nullptr};

StatusServer::StatusServer() : StatusServer(Options()) {}

StatusServer::StatusServer(Options options)
    : options_(options),
      http_([this](const HttpRequest& r) { return handle(r); },
            HttpServer::Options{.port = options.port,
                                .workers = options.workers,
                                .max_request_bytes = 16 * 1024,
                                .max_requests_per_connection = 128,
                                .recv_timeout_ms = 5000,
                                .backlog = 16,
                                .max_pending_connections = 64}) {}

StatusServer::~StatusServer() {
  stop();
  uninstall();
}

bool StatusServer::start() {
  if (!http_.start()) return false;
  util::log_line(util::LogLevel::kInfo,
                 "obs: status server listening on http://127.0.0.1:" +
                     std::to_string(http_.port()));
  return true;
}

void StatusServer::stop() { http_.stop(); }

void StatusServer::install() noexcept {
  g_installed.store(this, std::memory_order_release);
}

void StatusServer::uninstall() noexcept {
  StatusServer* self = this;
  g_installed.compare_exchange_strong(self, nullptr,
                                      std::memory_order_acq_rel);
}

void StatusServer::set_json_endpoint(std::string path,
                                     JsonProvider provider) {
  std::scoped_lock lock(routes_mutex_);
  routes_[std::move(path)] = std::move(provider);
}

HttpResponse StatusServer::handle(const HttpRequest& request) {
  if (request.path == "/") {
    return {200, "text/html; charset=utf-8", std::string(kStatusPage),
            nullptr};
  }
  if (request.path == "/healthz") {
    const EventLog* health_log = EventLog::installed();
    const bool degraded =
        health_log != nullptr && health_log->io_errors() > 0;
    std::string body = degraded ? "{\"status\":\"degraded\""
                                : "{\"status\":\"ok\"";
    body += ",\"requests\":" + std::to_string(http_.requests_served());
    if (const EventLog* log = EventLog::installed()) {
      body += ",\"event_log\":true,\"watermark\":" +
              std::to_string(log->watermark());
      // Sink I/O failures flip the health verdict: the process is up,
      // but its durable record is suspect.
      body += ",\"io_errors\":" + std::to_string(log->io_errors());
      body += ",\"fsyncs\":" + std::to_string(log->fsyncs());
    } else {
      body += ",\"event_log\":false";
    }
    body += "}\n";
    return {200, "application/json", std::move(body), nullptr};
  }
  if (request.path == "/metrics") {
    // Refresh RSS/fds/uptime so every scrape self-describes the
    // process it came from, and mirror the event log's durability
    // counters (written/dropped/io_errors/fsyncs) into gauges so a
    // full disk is scrapeable, not just visible in /healthz.
    sample_process_metrics();
    export_event_log_metrics();
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            export_prometheus(), nullptr};
  }
  if (request.path == "/events/stream") return events_stream();
  JsonProvider provider;
  {
    std::scoped_lock lock(routes_mutex_);
    const auto it = routes_.find(request.path);
    if (it != routes_.end()) provider = it->second;
  }
  if (provider) {
    return {200, "application/json", provider(), nullptr};
  }
  return {404, "application/json", json_error("not found"), nullptr};
}

HttpResponse StatusServer::events_stream() const {
  HttpResponse response;
  response.content_type = "text/event-stream";
  const int interval_ms = options_.sse_interval_ms;
  response.stream = [interval_ms](HttpStream& stream) {
    if (!stream.write("retry: 2000\n\n")) return;
    std::uint64_t frame = 0;
    do {
      const Snapshot snap = Registry::global().snapshot();
      std::string data = "event: tick\ndata: {\"frame\":" +
                         std::to_string(frame++);
      if (const EventLog* log = EventLog::installed()) {
        data += ",\"watermark\":" + std::to_string(log->watermark());
        data += ",\"events_written\":" + std::to_string(log->events_written());
        data += ",\"dropped\":" + std::to_string(log->dropped());
        data += ",\"bytes\":" + std::to_string(log->bytes_written());
        data += log->closed() ? ",\"closed\":true" : ",\"closed\":false";
      } else {
        data += ",\"watermark\":0,\"events_written\":0,\"dropped\":0"
                ",\"bytes\":0,\"closed\":false";
      }
      data += ",\"sim_now_ms\":" + std::to_string(snap.gauge_value(
                                       "pandarus_campaign_sim_now_ms"));
      data += ",\"window_end_ms\":" + std::to_string(snap.gauge_value(
                                          "pandarus_campaign_window_end_ms"));
      if (const HealthEngine* health = HealthEngine::installed()) {
        const HealthEngine::Counts counts = health->counts();
        data += ",\"alerts_firing\":" + std::to_string(counts.active_firing);
        data += ",\"alerts_pending\":" + std::to_string(counts.active_pending);
        data += ",\"alerts_resolved\":" + std::to_string(counts.resolved);
      }
      data += "}\n\n";
      if (!stream.write(data)) return;
    } while (stream.sleep_ms(interval_ms));
  };
  return response;
}

}  // namespace pandarus::obs
