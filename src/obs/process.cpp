#include "obs/process.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#ifdef __linux__
#include <dirent.h>
#include <unistd.h>
#endif

#include "obs/metrics.hpp"

namespace pandarus::obs {
namespace {

#define PANDARUS_STR_INNER(x) #x
#define PANDARUS_STR(x) PANDARUS_STR_INNER(x)

std::chrono::steady_clock::time_point process_start() {
  // First caller pins the reference; register_process_metrics runs at
  // startup so this is process start for all practical purposes.
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

std::int64_t resident_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long total = 0;
  long long resident = 0;
  const int n = std::fscanf(f, "%lld %lld", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<std::int64_t>(resident) *
         static_cast<std::int64_t>(::sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

std::int64_t open_fds() {
#ifdef __linux__
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::int64_t count = 0;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
#else
  return 0;
#endif
}

/// Label values go inside double quotes in the metric name; escape per
/// the exposition format.
std::string label_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '\\' || *s == '"') out += '\\';
    if (*s == '\n') {
      out += "\\n";
      continue;
    }
    out += *s;
  }
  return out;
}

std::string build_info_name() {
  return std::string("pandarus_build_info{version=\"") +
         label_escape(build_version()) + "\",compiler=\"" +
         label_escape(build_compiler()) + "\"}";
}

}  // namespace

const char* build_version() noexcept {
#ifdef PANDARUS_VERSION
  return PANDARUS_STR(PANDARUS_VERSION);
#else
  return "dev";
#endif
}

const char* build_compiler() noexcept {
#if defined(__clang__)
  return __VERSION__;  // clang's string already names the compiler
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

void register_process_metrics(Registry& registry) {
  process_start();  // pin the uptime reference
  registry
      .gauge(build_info_name(),
             "Build metadata carried as labels (value is always 1)")
      .set(1);
  sample_process_metrics(registry);
}

void register_process_metrics() {
  register_process_metrics(Registry::global());
}

void sample_process_metrics(Registry& registry) {
  registry
      .gauge("pandarus_process_resident_memory_bytes",
             "Resident set size of this process")
      .set(resident_bytes());
  registry
      .gauge("pandarus_process_open_fds",
             "Open file descriptors of this process")
      .set(open_fds());
  const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - process_start());
  registry
      .gauge("pandarus_process_uptime_seconds",
             "Seconds since process metrics were first registered")
      .set(static_cast<std::int64_t>(uptime.count()));
}

void sample_process_metrics() { sample_process_metrics(Registry::global()); }

}  // namespace pandarus::obs
