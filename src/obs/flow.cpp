#include "obs/flow.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace pandarus::obs {
namespace {

/// Link key: (src, dst) packed for the aggregate maps.
std::uint64_t link_key(std::int64_t src, std::int64_t dst) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}
std::int64_t link_src(std::uint64_t key) noexcept {
  return static_cast<std::int32_t>(key >> 32);
}
std::int64_t link_dst(std::uint64_t key) noexcept {
  return static_cast<std::int32_t>(key & 0xFFFFFFFFu);
}

/// A transfer-attempt interval clipped to the stage-in window.
/// `finish` keeps the unclipped end: the covering attempt that finishes
/// last is the one the job is actually waiting for.
struct ClippedSpan {
  std::int64_t s = 0;
  std::int64_t e = 0;
  std::int64_t src = -1;
  std::int64_t dst = -1;
  std::int64_t finish = 0;
};

const std::vector<double>& phase_bounds_ms() {
  // 1 s .. 12 h in simulated ms; stage phases routinely span hours at
  // paper scale.
  static const std::vector<double> bounds = {1e3,   5e3,    15e3,  6e4,  3e5,
                                             9e5,   3.6e6,  1.44e7, 4.32e7};
  return bounds;
}

}  // namespace

struct FlowTracker::Metrics {
  Counter& flows;
  Counter& failed;
  Counter& sequential;
  Counter& redundant;
  Counter& watchdog;
  Counter& reroutes;
  Counter& critical_ms;
  Histogram& broker;
  Histogram& stage_in;
  Histogram& serialized;
  Histogram& queue;
  Histogram& run;
  Histogram& stage_out;
};

std::atomic<FlowTracker*> FlowTracker::g_installed{nullptr};

FlowTracker::FlowTracker(bool emit, std::size_t max_summaries)
    : emit_(emit), max_summaries_(max_summaries) {}

FlowTracker::~FlowTracker() {
  uninstall();
  delete metrics_;
}

void FlowTracker::install() noexcept {
  g_installed.store(this, std::memory_order_release);
}

void FlowTracker::uninstall() noexcept {
  FlowTracker* self = this;
  g_installed.compare_exchange_strong(self, nullptr,
                                      std::memory_order_acq_rel);
}

FlowTracker::Metrics& FlowTracker::metrics() {
  if (metrics_ == nullptr) {
    Registry& r = Registry::global();
    metrics_ = new Metrics{
        r.counter("pandarus_flow_flows_total", "flows finalized"),
        r.counter("pandarus_flow_failed_total", "flows ending in failure"),
        r.counter("pandarus_flow_sequential_staging_total",
                  "flows flagged with stage-in overlap ~ 0"),
        r.counter("pandarus_flow_redundant_transfers_total",
                  "transfers re-moving bytes already staged or in flight"),
        r.counter("pandarus_flow_watchdog_releases_total",
                  "flows released to the queue by the staging watchdog"),
        r.counter("pandarus_flow_reroutes_total",
                  "transfer reroutes observed on linked flows"),
        r.counter("pandarus_flow_critical_link_ms_total",
                  "critical-path stage-in ms attributed to links"),
        r.histogram("pandarus_flow_broker_wait_ms", phase_bounds_ms(),
                    "submission to staging begin, per flow"),
        r.histogram("pandarus_flow_stage_in_ms", phase_bounds_ms(),
                    "staging begin to queued, per flow"),
        r.histogram("pandarus_flow_stage_in_serialized_ms", phase_bounds_ms(),
                    "union of stage-in transfer activity, per flow"),
        r.histogram("pandarus_flow_queue_wait_ms", phase_bounds_ms(),
                    "queued to payload start, per flow"),
        r.histogram("pandarus_flow_run_ms", phase_bounds_ms(),
                    "payload start to payload end, per flow"),
        r.histogram("pandarus_flow_stage_out_ms", phase_bounds_ms(),
                    "payload end to finalized, per flow"),
    };
  }
  return *metrics_;
}

void FlowTracker::emit_sim_lane_metadata() {
  if (lane_metadata_emitted_) return;
  lane_metadata_emitted_ = true;
  if (TraceRecorder* rec = TraceRecorder::installed()) {
    TraceEvent flows{};
    flows.name = "pandarus flows (sim ms as us)";
    flows.category = "flow";
    flows.ph = 'M';
    flows.pid = TraceRecorder::kFlowPid;
    rec->record_event(flows);
    TraceEvent transfers{};
    transfers.name = "pandarus transfers (sim ms as us)";
    transfers.category = "flow";
    transfers.ph = 'M';
    transfers.pid = TraceRecorder::kTransferPid;
    rec->record_event(transfers);
  }
}

// --- job lifecycle --------------------------------------------------------

void FlowTracker::begin_flow(std::int64_t pandaid, std::int64_t taskid,
                             std::int32_t attempt, std::int64_t ts) {
  std::scoped_lock lock(mutex_);
  Flow flow;
  flow.pandaid = pandaid;
  flow.taskid = taskid;
  flow.attempt = attempt;
  flow.created_ms = ts;
  open_[pandaid] = std::move(flow);
  if (emit_) {
    if (EventLog* log = EventLog::installed()) {
      log->emit(Event("flow_begin", ts, pandaid)
                    .field("task", taskid)
                    .field("attempt", attempt));
    }
  }
}

void FlowTracker::broker_scored(std::int64_t pandaid,
                                std::int64_t candidates) {
  std::scoped_lock lock(mutex_);
  const auto it = open_.find(pandaid);
  if (it != open_.end()) it->second.candidates = candidates;
}

void FlowTracker::broker_decision(std::int64_t pandaid, std::int64_t site,
                                  std::int64_t ts) {
  std::scoped_lock lock(mutex_);
  const auto it = open_.find(pandaid);
  if (it == open_.end()) return;
  it->second.site = site;
  if (emit_) {
    if (EventLog* log = EventLog::installed()) {
      log->emit(Event("flow_broker", ts, pandaid)
                    .field("parent", pandaid)
                    .field("site", site)
                    .field("candidates", it->second.candidates));
    }
  }
}

void FlowTracker::stage_begin(std::int64_t pandaid, std::int64_t ts) {
  std::scoped_lock lock(mutex_);
  const auto it = open_.find(pandaid);
  if (it == open_.end()) return;
  it->second.stage_begin_ms = ts;
  if (emit_) {
    if (EventLog* log = EventLog::installed()) {
      log->emit(Event("flow_stage", ts, pandaid).field("parent", pandaid));
    }
  }
}

void FlowTracker::link_transfer(std::int64_t pandaid,
                                std::uint64_t transfer_id, std::int64_t ts,
                                bool shared) {
  std::scoped_lock lock(mutex_);
  const auto it = open_.find(pandaid);
  if (it == open_.end()) return;
  Flow& flow = it->second;
  const bool staging = flow.queued_ms < 0;
  (staging ? flow.stage_in : flow.post_stage).push_back(transfer_id);
  if (shared) ++flow.shared_hits;
  const auto tr = transfers_.find(transfer_id);
  if (tr != transfers_.end()) ++tr->second.refs;
  if (emit_) {
    if (EventLog* log = EventLog::installed()) {
      log->emit(Event("flow_link", ts, pandaid)
                    .field("parent", pandaid)
                    .field("transfer", transfer_id)
                    .field("shared", shared)
                    .field("phase", staging ? "stage_in" : "post_stage"));
    }
    if (TraceRecorder* rec = TraceRecorder::installed()) {
      emit_sim_lane_metadata();
      TraceEvent tail{};
      tail.name = staging ? "stage_in" : "post_stage";
      tail.category = "flow";
      tail.start_us = to_micros(ts);
      tail.arg = TraceRecorder::kNoArg;
      tail.ph = 's';
      tail.pid = TraceRecorder::kFlowPid;
      tail.tid = pandaid;
      tail.flow_id = transfer_id;
      rec->record_event(tail);
      TraceEvent head = tail;
      head.ph = 'f';
      head.pid = TraceRecorder::kTransferPid;
      head.tid = static_cast<std::int64_t>(transfer_id);
      rec->record_event(head);
    }
  }
}

void FlowTracker::queue_enter(std::int64_t pandaid, std::int64_t ts,
                              bool watchdog_release) {
  std::scoped_lock lock(mutex_);
  const auto it = open_.find(pandaid);
  if (it == open_.end()) return;
  it->second.queued_ms = ts;
  it->second.watchdog_release = watchdog_release;
  if (emit_) {
    if (EventLog* log = EventLog::installed()) {
      log->emit(Event("flow_queue", ts, pandaid)
                    .field("parent", pandaid)
                    .field("watchdog", watchdog_release));
    }
  }
}

void FlowTracker::run_begin(std::int64_t pandaid, std::int64_t ts) {
  std::scoped_lock lock(mutex_);
  const auto it = open_.find(pandaid);
  if (it == open_.end()) return;
  it->second.run_ms = ts;
  if (emit_) {
    if (EventLog* log = EventLog::installed()) {
      log->emit(Event("flow_run", ts, pandaid).field("parent", pandaid));
    }
  }
}

void FlowTracker::stage_out_begin(std::int64_t pandaid, std::int64_t ts) {
  std::scoped_lock lock(mutex_);
  const auto it = open_.find(pandaid);
  if (it == open_.end()) return;
  it->second.stage_out_ms = ts;
  if (emit_) {
    if (EventLog* log = EventLog::installed()) {
      log->emit(Event("flow_stage_out", ts, pandaid).field("parent", pandaid));
    }
  }
}

void FlowTracker::end_flow(std::int64_t pandaid, std::int64_t ts, bool failed,
                           std::int32_t error) {
  std::scoped_lock lock(mutex_);
  const auto it = open_.find(pandaid);
  if (it == open_.end()) return;
  Flow flow = std::move(it->second);
  open_.erase(it);

  // Boundary repair: a phase the job never reached (e.g. killed by a
  // site outage mid-run) collapses to zero width against the next known
  // boundary, keeping the partition exact.
  std::int64_t b[6] = {flow.created_ms, flow.stage_begin_ms, flow.queued_ms,
                       flow.run_ms,     flow.stage_out_ms,   ts};
  for (int i = 4; i >= 1; --i) {
    if (b[i] < 0) b[i] = b[i + 1];
  }
  for (int i = 1; i <= 5; ++i) {
    if (b[i] < b[i - 1]) b[i] = b[i - 1];
  }

  FlowSummary out;
  out.pandaid = flow.pandaid;
  out.taskid = flow.taskid;
  out.site = flow.site;
  out.attempt = flow.attempt;
  out.created_ms = b[0];
  out.end_ms = b[5];
  out.failed = failed;
  out.error = error;
  out.watchdog_release = flow.watchdog_release;
  out.shared_hits = flow.shared_hits;
  PhaseBreakdown& ph = out.phases;
  ph.broker_ms = b[1] - b[0];
  ph.stage_in_ms = b[2] - b[1];
  ph.queue_ms = b[3] - b[2];
  ph.run_ms = b[4] - b[3];
  ph.stage_out_ms = b[5] - b[4];
  ph.wall_ms = b[5] - b[0];

  // Clip every linked stage-in attempt to the stage-in window; an
  // attempt still in flight (watchdog release) is pessimistically
  // charged up to the window end — the job really did wait on it.
  std::vector<ClippedSpan> spans;
  for (const std::uint64_t id : flow.stage_in) {
    const auto tr = transfers_.find(id);
    if (tr == transfers_.end()) continue;
    const TransferTrace& trace = tr->second;
    ++ph.stage_in_transfers;
    ph.stage_in_attempts += static_cast<std::uint32_t>(trace.attempts.size());
    ph.reroutes += trace.reroutes;
    if (trace.redundant) ++ph.redundant_transfers;
    if (trace.done && trace.success && !trace.registered) ++ph.unregistered;
    for (const AttemptSpan& a : trace.attempts) {
      const std::int64_t finish = a.end_ms < 0 ? INT64_MAX : a.end_ms;
      const std::int64_t s = std::max(a.start_ms, b[1]);
      const std::int64_t e = std::min(finish, b[2]);
      if (e > s) spans.push_back({s, e, a.src, a.dst, finish});
    }
  }

  // Serialized time = union of the clipped intervals; each covered
  // segment is charged to the covering attempt that finishes last.
  std::unordered_map<std::uint64_t, std::int64_t> shares;
  if (!spans.empty()) {
    std::vector<std::int64_t> cuts;
    cuts.reserve(spans.size() * 2);
    for (const ClippedSpan& sp : spans) {
      cuts.push_back(sp.s);
      cuts.push_back(sp.e);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const std::int64_t x = cuts[i];
      const std::int64_t y = cuts[i + 1];
      const ClippedSpan* blocker = nullptr;
      for (const ClippedSpan& sp : spans) {
        if (sp.s > x || sp.e < y) continue;
        if (blocker == nullptr || sp.finish > blocker->finish ||
            (sp.finish == blocker->finish &&
             link_key(sp.src, sp.dst) <
                 link_key(blocker->src, blocker->dst))) {
          blocker = &sp;
        }
      }
      if (blocker == nullptr) continue;
      ph.stage_in_serialized_ms += y - x;
      shares[link_key(blocker->src, blocker->dst)] += y - x;
    }
    for (const ClippedSpan& sp : spans) ph.stage_in_busy_ms += sp.e - sp.s;
  }
  ph.stage_in_overlap =
      ph.stage_in_busy_ms > 0
          ? 1.0 - static_cast<double>(ph.stage_in_serialized_ms) /
                      static_cast<double>(ph.stage_in_busy_ms)
          : 0.0;
  ph.sequential_staging = ph.stage_in_transfers >= 2 &&
                          ph.stage_in_serialized_ms > 0 &&
                          ph.stage_in_overlap < 0.05;

  out.link_shares.reserve(shares.size());
  for (const auto& [key, ms] : shares) {
    out.link_shares.push_back({link_src(key), link_dst(key), ms});
  }
  std::sort(out.link_shares.begin(), out.link_shares.end(),
            [](const FlowSummary::LinkShare& lhs,
               const FlowSummary::LinkShare& rhs) {
              if (lhs.ms != rhs.ms) return lhs.ms > rhs.ms;
              if (lhs.src != rhs.src) return lhs.src < rhs.src;
              return lhs.dst < rhs.dst;
            });

  // Campaign-wide aggregates.
  ++totals_.flows;
  if (failed) ++totals_.failed;
  if (ph.sequential_staging) ++totals_.sequential_staging;
  if (flow.watchdog_release) ++totals_.watchdog_releases;
  totals_.reroutes += ph.reroutes;
  for (const auto& share : out.link_shares) {
    LinkAgg& agg = links_[link_key(share.src, share.dst)];
    agg.critical_ms += share.ms;
    ++agg.flows;
  }
  SiteAgg& site = sites_[flow.site];
  site.broker += ph.broker_ms;
  site.stage_in_active += ph.stage_in_serialized_ms;
  site.stage_in_idle += ph.stage_in_ms - ph.stage_in_serialized_ms;
  site.queue += ph.queue_ms;
  site.run += ph.run_ms;
  site.stage_out += ph.stage_out_ms;
  for (const auto& share : out.link_shares) {
    site.link_ms[link_key(share.src, share.dst)] += share.ms;
  }

  if (emit_) {
    Metrics& m = metrics();
    m.flows.inc();
    if (failed) m.failed.inc();
    if (ph.sequential_staging) m.sequential.inc();
    if (flow.watchdog_release) m.watchdog.inc();
    if (ph.reroutes > 0) m.reroutes.inc(ph.reroutes);
    m.critical_ms.inc(static_cast<std::uint64_t>(ph.stage_in_serialized_ms));
    m.broker.observe(static_cast<double>(ph.broker_ms));
    m.stage_in.observe(static_cast<double>(ph.stage_in_ms));
    m.serialized.observe(static_cast<double>(ph.stage_in_serialized_ms));
    m.queue.observe(static_cast<double>(ph.queue_ms));
    m.run.observe(static_cast<double>(ph.run_ms));
    m.stage_out.observe(static_cast<double>(ph.stage_out_ms));
    if (EventLog* log = EventLog::installed()) {
      log->emit(Event("flow_end", ts, pandaid)
                    .field("parent", pandaid)
                    .field("task", out.taskid)
                    .field("site", out.site)
                    .field("attempt", out.attempt)
                    .field("failed", failed)
                    .field("error", error)
                    .field("watchdog", flow.watchdog_release)
                    .field("shared_hits", out.shared_hits)
                    .field("broker_ms", ph.broker_ms)
                    .field("stage_in_ms", ph.stage_in_ms)
                    .field("queue_ms", ph.queue_ms)
                    .field("run_ms", ph.run_ms)
                    .field("stage_out_ms", ph.stage_out_ms)
                    .field("wall_ms", ph.wall_ms)
                    .field("serialized_ms", ph.stage_in_serialized_ms)
                    .field("busy_ms", ph.stage_in_busy_ms)
                    .field("overlap", ph.stage_in_overlap)
                    .field("sequential", ph.sequential_staging)
                    .field("transfers", ph.stage_in_transfers)
                    .field("attempts", ph.stage_in_attempts)
                    .field("reroutes", ph.reroutes)
                    .field("redundant", ph.redundant_transfers)
                    .field("unregistered", ph.unregistered)
                    .field("crit_src", out.critical_src())
                    .field("crit_dst", out.critical_dst())
                    .field("crit_ms", out.critical_ms()));
    }
    if (TraceRecorder* rec = TraceRecorder::installed()) {
      emit_sim_lane_metadata();
      static constexpr const char* kPhaseNames[5] = {
          "broker", "stage_in", "queue", "run", "stage_out"};
      for (int i = 0; i < 5; ++i) {
        if (b[i + 1] <= b[i]) continue;
        TraceEvent span{};
        span.name = kPhaseNames[i];
        span.category = "flow";
        span.start_us = to_micros(b[i]);
        span.dur_us = to_micros(b[i + 1] - b[i]);
        span.arg = flow.pandaid;
        span.ph = 'X';
        span.pid = TraceRecorder::kFlowPid;
        span.tid = flow.pandaid;
        rec->record_event(span);
      }
    }
  }

  for (const std::uint64_t id : flow.stage_in) release_transfer(id);
  for (const std::uint64_t id : flow.post_stage) release_transfer(id);
  if (completed_.size() < max_summaries_) completed_.push_back(std::move(out));
}

// --- transfer lifecycle ---------------------------------------------------

void FlowTracker::transfer_submitted(std::uint64_t id, std::int64_t file,
                                     std::int64_t src, std::int64_t dst,
                                     std::int64_t ts) {
  std::scoped_lock lock(mutex_);
  TransferTrace trace;
  trace.file = file;
  trace.dst = dst;
  trace.submit_ms = ts;
  FilePresence& presence =
      file_presence_[util::hash_mix(static_cast<std::uint64_t>(file),
                                    static_cast<std::uint64_t>(dst))];
  if (presence.in_flight > 0 || presence.unregistered_success) {
    trace.redundant = true;
    ++totals_.redundant_transfers;
    if (emit_) metrics().redundant.inc();
  }
  ++presence.in_flight;
  (void)src;  // attempt spans carry the per-attempt source
  transfers_[id] = std::move(trace);
}

void FlowTracker::attempt_start(std::uint64_t id, std::uint32_t attempt,
                                std::int64_t src, std::int64_t dst,
                                std::int64_t ts) {
  std::scoped_lock lock(mutex_);
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  AttemptSpan span;
  span.start_ms = ts;
  span.src = src;
  span.dst = dst;
  span.attempt = attempt;
  it->second.attempts.push_back(span);
}

void FlowTracker::transfer_rerouted(std::uint64_t id) {
  std::scoped_lock lock(mutex_);
  const auto it = transfers_.find(id);
  if (it != transfers_.end()) ++it->second.reroutes;
}

void FlowTracker::attempt_end(std::uint64_t id, std::int64_t ts, bool success,
                              bool terminal, bool registered) {
  std::scoped_lock lock(mutex_);
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  TransferTrace& trace = it->second;
  if (!trace.attempts.empty() && trace.attempts.back().end_ms < 0) {
    AttemptSpan& span = trace.attempts.back();
    span.end_ms = ts;
    span.success = success;
    if (emit_) {
      if (TraceRecorder* rec = TraceRecorder::installed()) {
        emit_sim_lane_metadata();
        TraceEvent ev{};
        ev.name = success ? "attempt" : "attempt_failed";
        ev.category = "transfer";
        ev.start_us = to_micros(span.start_ms);
        ev.dur_us = to_micros(span.end_ms - span.start_ms);
        ev.arg = static_cast<std::int64_t>(span.attempt);
        ev.ph = 'X';
        ev.pid = TraceRecorder::kTransferPid;
        ev.tid = static_cast<std::int64_t>(id);
        rec->record_event(ev);
      }
    }
  }
  if (!terminal) return;
  trace.done = true;
  trace.success = success;
  trace.registered = registered;
  const std::uint64_t presence_key = util::hash_mix(
      static_cast<std::uint64_t>(trace.file),
      static_cast<std::uint64_t>(trace.dst));
  const auto pit = file_presence_.find(presence_key);
  if (pit != file_presence_.end()) {
    FilePresence& presence = pit->second;
    if (presence.in_flight > 0) --presence.in_flight;
    if (success && !registered) presence.unregistered_success = true;
    if (success && registered) presence.unregistered_success = false;
    if (presence.in_flight <= 0 && !presence.unregistered_success) {
      // Bytes landed and the catalogue knows: a later transfer of this
      // (file, dst) is legitimate re-staging (e.g. after eviction).
      file_presence_.erase(pit);
    }
  }
  if (trace.refs <= 0) transfers_.erase(it);
}

void FlowTracker::release_transfer(std::uint64_t id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  if (--it->second.refs <= 0 && it->second.done) transfers_.erase(it);
}

// --- results --------------------------------------------------------------

FlowTotals FlowTracker::totals() const {
  std::scoped_lock lock(mutex_);
  return totals_;
}

std::size_t FlowTracker::open_flows() const {
  std::scoped_lock lock(mutex_);
  return open_.size();
}

std::uint64_t FlowTracker::state_digest() const {
  std::scoped_lock lock(mutex_);
  std::uint64_t h = util::hash_mix(totals_.flows, totals_.failed,
                                   totals_.sequential_staging);
  h = util::hash_mix(h, totals_.redundant_transfers,
                     totals_.watchdog_releases);
  h = util::hash_mix(h, totals_.reroutes, open_.size());
  h = util::hash_mix(h, transfers_.size(), completed_.size());
  // Sorted: unordered_map iteration order is rehash-history dependent.
  std::vector<const Flow*> flows;
  flows.reserve(open_.size());
  for (const auto& [id, flow] : open_) flows.push_back(&flow);
  std::sort(flows.begin(), flows.end(), [](const Flow* a, const Flow* b) {
    return a->pandaid < b->pandaid;
  });
  for (const Flow* f : flows) {
    h = util::hash_mix(h, static_cast<std::uint64_t>(f->pandaid),
                       static_cast<std::uint64_t>(f->site));
    h = util::hash_mix(h, static_cast<std::uint64_t>(f->created_ms),
                       static_cast<std::uint64_t>(f->stage_begin_ms));
    h = util::hash_mix(h, static_cast<std::uint64_t>(f->queued_ms),
                       static_cast<std::uint64_t>(f->run_ms));
    h = util::hash_mix(h, static_cast<std::uint64_t>(f->stage_out_ms),
                       f->stage_in.size());
    h = util::hash_mix(h, f->shared_hits);
  }
  return h;
}

std::vector<LinkCritical> FlowTracker::link_ranking() const {
  std::scoped_lock lock(mutex_);
  std::vector<LinkCritical> out;
  out.reserve(links_.size());
  for (const auto& [key, agg] : links_) {
    out.push_back({link_src(key), link_dst(key), agg.critical_ms, agg.flows});
  }
  std::sort(out.begin(), out.end(),
            [](const LinkCritical& a, const LinkCritical& b) {
              if (a.critical_ms != b.critical_ms) {
                return a.critical_ms > b.critical_ms;
              }
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  return out;
}

std::string FlowTracker::to_collapsed(
    const std::function<std::string(std::int64_t)>& site_name) const {
  std::scoped_lock lock(mutex_);
  const auto label = [&site_name](std::int64_t site) {
    std::string name =
        site_name ? site_name(site) : "site_" + std::to_string(site);
    if (name.empty()) name = "site_" + std::to_string(site);
    for (char& c : name) {
      if (c == ';' || c == ' ') c = '_';
    }
    return name;
  };
  std::vector<std::int64_t> site_ids;
  site_ids.reserve(sites_.size());
  for (const auto& [id, agg] : sites_) site_ids.push_back(id);
  std::sort(site_ids.begin(), site_ids.end());
  std::string out;
  for (const std::int64_t id : site_ids) {
    const SiteAgg& agg = sites_.at(id);
    const std::string prefix = "campaign;" + label(id) + ";";
    const auto line = [&out, &prefix](const std::string& frames,
                                      std::int64_t ms) {
      if (ms <= 0) return;
      out += prefix + frames + " " + std::to_string(ms) + "\n";
    };
    line("broker", agg.broker);
    std::vector<std::uint64_t> link_keys;
    link_keys.reserve(agg.link_ms.size());
    for (const auto& [key, ms] : agg.link_ms) link_keys.push_back(key);
    std::sort(link_keys.begin(), link_keys.end());
    for (const std::uint64_t key : link_keys) {
      line("stage_in;link_" + label(link_src(key)) + "->" +
               label(link_dst(key)),
           agg.link_ms.at(key));
    }
    line("stage_in;idle", agg.stage_in_idle);
    line("queue", agg.queue);
    line("run", agg.run);
    line("stage_out", agg.stage_out);
  }
  return out;
}

bool FlowTracker::write_collapsed(const std::string& path) const {
  const std::string text = to_collapsed();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: cannot open collapsed-stack output file " + path);
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    util::log_line(util::LogLevel::kWarning,
                   "obs: short write to collapsed-stack output file " + path);
    return false;
  }
  return true;
}

}  // namespace pandarus::obs
