// Metrics core: a registry of named counters, gauges and histograms.
//
// The paper's thesis is observability applied to production data
// infrastructure; this is the same idea applied to the reproduction
// pipeline itself.  Design constraints, in order:
//
//  * hot-path increments must be wait-free and cache-friendly — a
//    Counter is a bank of cache-line-padded per-thread cells and inc()
//    is one relaxed fetch_add on this thread's cell (no lock, no false
//    sharing); the true total is summed only at snapshot time;
//  * registration is rare and may lock — callers resolve a metric once
//    (by name, creating it on first use) and keep the returned
//    reference, whose address is stable for the registry's lifetime;
//  * snapshots are deterministic — metrics are exported sorted by name
//    so JSON/Prometheus dumps diff cleanly across runs.
//
// Naming convention: `pandarus_<subsystem>_<what>[_total]` (Prometheus
// style; `_total` marks monotonic counters).  See DESIGN.md §11.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pandarus::obs {

/// Monotonic counter, thread-sharded.  inc() is a relaxed atomic add on
/// a per-thread cache-line-padded cell; value() sums the cells (it may
/// lag concurrent writers, which is fine for telemetry).
class Counter {
 public:
  static constexpr std::size_t kShards = 64;  // power of two

  void inc(std::uint64_t delta = 1) noexcept {
    cells_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& help() const noexcept { return help_; }

 private:
  friend class Registry;
  Counter(std::string name, std::string help);
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  /// Zeroes every cell (Registry::reset_for_test only).
  void reset() noexcept;
  /// Threads are spread over the cell bank round-robin at first use;
  /// the assignment is per-thread for the whole process, so two
  /// counters never force one thread onto different cache lines.
  static std::size_t shard_index() noexcept;

  std::string name_;
  std::string help_;
  std::unique_ptr<Cell[]> cells_;
};

/// Last-write-wins signed gauge (queue depths, heap sizes, in-flight
/// totals).  set()/add() are single relaxed atomics.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& help() const noexcept { return help_; }

 private:
  friend class Registry;
  Gauge(std::string name, std::string help);
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::string help_;
  std::atomic<std::int64_t> v_{0};
};

/// Streaming quantile estimator for one fixed quantile `q` using the
/// P² (piecewise-parabolic) algorithm of Jain & Chlamtac (1985): five
/// markers track {min, q/2, q, (1+q)/2, max} in O(1) memory and O(1)
/// per observation.  Below five samples the estimate is exact (sorted
/// buffer with linear rank interpolation); with zero samples it is 0.
/// Not thread-safe on its own — Histogram serializes access.
class P2Quantile {
 public:
  explicit P2Quantile(double q) noexcept;

  void observe(double v) noexcept;
  [[nodiscard]] double estimate() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  void reset() noexcept;

 private:
  double q_;
  double h_[5] = {0, 0, 0, 0, 0};    ///< marker heights (raw samples while n_ < 5)
  double pos_[5] = {1, 2, 3, 4, 5};  ///< actual marker positions (1-based)
  double desired_[5] = {0, 0, 0, 0, 0};
  std::uint64_t n_ = 0;
};

/// Prometheus-style histogram: `bounds` are strictly increasing upper
/// bucket edges (a sample lands in the first bucket with value <=
/// bound; larger samples land in the implicit +Inf bucket).  Buckets
/// are plain atomics — histograms record per-task/per-job quantities,
/// not per-candidate hot-loop ones, so sharding isn't warranted.
/// Each histogram additionally feeds three P² sketches (p50/p95/p99)
/// behind a short spin lock, same per-job cost argument.
class Histogram {
 public:
  void observe(double v) noexcept;

  /// Streaming quantile estimate; `q` must be one of 0.5, 0.95, 0.99
  /// (the tracked sketches), anything else returns 0.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Non-cumulative count for bucket i; i == bounds().size() is +Inf.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& help() const noexcept { return help_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::string help, std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  void reset() noexcept;

  std::string name_;
  std::string help_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Quantile sketches share one spin lock: observe() is noexcept and
  // must not touch std::mutex (which may throw); contention is per-job.
  mutable std::atomic_flag sketch_lock_ = ATOMIC_FLAG_INIT;
  P2Quantile p50_{0.5};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
};

/// Point-in-time copy of every metric, sorted by name within each kind.
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::string help;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::string help;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::string help;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (+Inf last)
    std::uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;  ///< streaming P² estimates (exact below 5 samples)
    double p95 = 0.0;
    double p99 = 0.0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Counter value by exact name; 0 when absent (funnel printers don't
  /// want to care whether a stage ever fired).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept;
  /// Gauge value by exact name; 0 when absent.
  [[nodiscard]] std::int64_t gauge_value(std::string_view name) const noexcept;
};

/// Named-metric registry.  `global()` is the process-wide instance the
/// pipeline instruments into; tests construct private registries.
/// Lookup-or-create takes a mutex; returned references stay valid (and
/// lock-free to update) for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  /// `bounds` must be strictly increasing; it is fixed at first
  /// registration (later calls with the same name ignore it).
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view help = {});

  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes the value of every registered metric while keeping the
  /// registrations (names, help, bucket bounds) and metric addresses
  /// stable, so cached references stay valid.  For tests that assert on
  /// process-global counters without depending on what earlier tests
  /// incremented; not safe concurrently with value()/snapshot() readers
  /// that expect monotonicity.
  void reset_for_test();

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
};

/// Renders a snapshot as a JSON object (counters/gauges/histograms maps).
[[nodiscard]] std::string export_json(const Snapshot& snapshot);
/// Renders a snapshot in Prometheus text exposition format.
[[nodiscard]] std::string export_prometheus(const Snapshot& snapshot);
/// Convenience: snapshot of the global registry.
[[nodiscard]] std::string export_json();
[[nodiscard]] std::string export_prometheus();

}  // namespace pandarus::obs
