// Crash recovery for the event sinks: salvage the longest valid prefix
// of a torn NDJSON or colstore file instead of erroring out.
//
// Both sinks are append-only, so a SIGKILL (or power loss) can only
// damage the tail: the NDJSON file may end mid-line, the colstore file
// mid-chunk.  Recovery therefore means *truncation to the last intact
// record boundary* — whole JSON-parseable lines for NDJSON, CRC-valid
// chunks for colstore — plus an honest account of what was cut.  The
// recovered file is a byte-exact prefix of what an uninterrupted run
// would have produced, which is the invariant checkpoint/resume splices
// against (see scenario::resume_campaign and examples/crash_harness).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pandarus::obs {

/// Outcome of a salvage pass over one damaged (or intact) file.
struct RecoveryReport {
  bool ok = false;         ///< input was readable and salvage completed
  bool truncated = false;  ///< damage found; output is a proper prefix
  std::uint64_t salvaged_events = 0;  ///< whole lines / decoded rows kept
  std::uint64_t salvaged_chunks = 0;  ///< colstore only; 0 for NDJSON
  std::uint64_t salvaged_bytes = 0;   ///< valid prefix length
  std::uint64_t dropped_bytes = 0;    ///< bytes cut past the prefix
  std::string detail;                 ///< first damage observed, if any
};

/// Longest prefix of `bytes` made of whole, JSON-parseable NDJSON
/// lines.  Pure function of the bytes; never fails (an unreadable blob
/// salvages to an empty prefix).
[[nodiscard]] RecoveryReport salvage_ndjson(std::string_view bytes);

/// Rewrites the NDJSON file at `in_path` to `out_path` keeping only the
/// salvageable prefix.  `in_path == out_path` repairs in place (via a
/// temp file + rename, so a second crash cannot eat the survivor).
/// ok == false when the input cannot be read or the output written.
RecoveryReport recover_ndjson_file(const std::string& in_path,
                                   const std::string& out_path);

/// Same contract for a colstore file: every chunk of the kept prefix
/// has been fully decoded and CRC-verified.
RecoveryReport recover_colstore_file(const std::string& in_path,
                                     const std::string& out_path);

}  // namespace pandarus::obs
