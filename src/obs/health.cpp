#include "obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace pandarus::obs {

std::atomic<HealthEngine*> HealthEngine::g_installed{nullptr};

std::string_view alert_phase_name(AlertPhase phase) noexcept {
  switch (phase) {
    case AlertPhase::kPending:
      return "pending";
    case AlertPhase::kFiring:
      return "firing";
    case AlertPhase::kResolved:
      return "resolved";
  }
  return "unknown";
}

// --- BucketRing -------------------------------------------------------------

BucketRing::BucketRing(std::int64_t bucket_ms, std::int64_t window_ms)
    : bucket_ms_(bucket_ms > 0 ? bucket_ms : 1) {
  const std::int64_t n = (window_ms + bucket_ms_ - 1) / bucket_ms_;
  capacity_ = static_cast<std::size_t>(n > 0 ? n : 1);
}

void BucketRing::expire(std::int64_t now) {
  const std::int64_t current = now / bucket_ms_;
  while (!buckets_.empty() &&
         buckets_.front().first + static_cast<std::int64_t>(capacity_) <=
             current) {
    buckets_.pop_front();
  }
}

void BucketRing::add(std::int64_t ts, std::uint64_t n) {
  expire(ts);
  const std::int64_t bucket = ts / bucket_ms_;
  if (!buckets_.empty() && buckets_.back().first == bucket) {
    buckets_.back().second += n;
  } else {
    buckets_.emplace_back(bucket, n);
  }
}

std::uint64_t BucketRing::total(std::int64_t now) {
  expire(now);
  std::uint64_t sum = 0;
  for (const auto& [bucket, count] : buckets_) sum += count;
  return sum;
}

void BucketRing::reset() { buckets_.clear(); }

// --- Ewma -------------------------------------------------------------------

void HealthEngine::Ewma::observe(double v, double alpha) {
  if (!primed) {
    primed = true;
    mean = v;
    var = 0.0;
    return;
  }
  const double d = v - mean;
  // Exponentially weighted mean/variance (West 1979 incremental form).
  mean += alpha * d;
  var = (1.0 - alpha) * (var + alpha * d * d);
}

double HealthEngine::Ewma::zscore(double v) const {
  if (!primed) return 0.0;
  const double sd = std::sqrt(var);
  if (sd <= 1e-12) return v > mean ? 1e9 : 0.0;
  return (v - mean) / sd;
}

// --- Slo --------------------------------------------------------------------

void HealthEngine::Slo::add(std::int64_t ts, bool is_good, std::uint64_t n) {
  if (is_good) {
    good += n;
    good_fast.add(ts, n);
    good_slow.add(ts, n);
  } else {
    bad += n;
    bad_fast.add(ts, n);
    bad_slow.add(ts, n);
  }
}

double HealthEngine::Slo::burn(std::int64_t now, bool fast) {
  const std::uint64_t g = fast ? good_fast.total(now) : good_slow.total(now);
  const std::uint64_t b = fast ? bad_fast.total(now) : bad_slow.total(now);
  const std::uint64_t n = g + b;
  if (n == 0) return 0.0;
  const double budget = 1.0 - target;
  if (budget <= 0.0) return b > 0 ? 1e9 : 0.0;
  const double bad_frac =
      static_cast<double>(b) / static_cast<double>(n);
  return bad_frac / budget;
}

// --- HealthEngine -----------------------------------------------------------

HealthEngine::HealthEngine(HealthConfig config)
    : config_(config),
      stalls_(config_.stall_window_ms / 8 > 0 ? config_.stall_window_ms / 8
                                              : 1,
              config_.stall_window_ms) {
  slos_.emplace_back("transfer_latency", config_.transfer_latency_target,
                     config_);
  slos_.emplace_back("transfer_success", config_.transfer_success_target,
                     config_);
  slos_.emplace_back("event_integrity", config_.event_integrity_target,
                     config_);
}

void HealthEngine::install() noexcept {
  g_installed.store(this, std::memory_order_release);
}

void HealthEngine::uninstall() noexcept {
  HealthEngine* expected = this;
  g_installed.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel);
}

void HealthEngine::reset_locked() {
  last_ts_ = INT64_MIN;
  observations_ = 0;
  fired_ = 0;
  resolved_count_ = 0;
  queue_depth_ = Ewma{};
  links_.clear();
  stalls_.reset();
  match_flat_ticks_ = 0;
  have_prev_sample_ = false;
  prev_candidates_ = 0;
  prev_matched_ = 0;
  prev_dropped_ = 0;
  for (Slo& slo : slos_) {
    slo.good = slo.bad = 0;
    slo.good_fast.reset();
    slo.bad_fast.reset();
    slo.good_slow.reset();
    slo.bad_slow.reset();
  }
  active_.clear();
  resolved_.clear();
  transitions_.clear();
}

void HealthEngine::note_ts_locked(std::int64_t ts) {
  // Simulated time runs monotonically within one campaign; a regression
  // means a new campaign started in the same process (bench loops, test
  // suites).  Reset so each epoch's alerts are self-contained — the
  // replay path sees the same regression in the stream and resets at
  // the same observation, preserving parity.
  if (ts < last_ts_ && last_ts_ != INT64_MIN) reset_locked();
  last_ts_ = ts;
  ++observations_;
}

void HealthEngine::transition_locked(Lifecycle& lc, std::int64_t ts,
                                     AlertPhase phase) {
  lc.state.phase = phase;
  lc.state.since_ts = ts;
  if (phase == AlertPhase::kFiring) {
    ++lc.state.fire_count;
    ++fired_;
  }
  AlertTransition t;
  t.ts = ts;
  t.phase = phase;
  t.detector = lc.state.detector;
  t.entity = lc.state.entity;
  t.severity = lc.state.severity;
  t.value = lc.state.value;
  t.threshold = lc.state.threshold;
  if (transitions_.size() >= config_.max_transitions) {
    transitions_.erase(transitions_.begin());
  }
  transitions_.push_back(std::move(t));

  if (emit_events_) {
    if (EventLog* log = EventLog::installed()) {
      // Sideband: alert lines ride the stream but stay out of its
      // self-accounting, so health-on minus alert lines is bitwise
      // health-off (log_stats included).
      log->emit_sideband(
          Event("alert", ts, std::string_view(lc.state.entity))
                    .field("detector", lc.state.detector)
                    .field("phase", alert_phase_name(phase))
                    .field("severity", lc.state.severity)
                    .field("value", lc.state.value)
                    .field("threshold", lc.state.threshold)
                    .field("fire_count", lc.state.fire_count));
    }
  }
}

void HealthEngine::step_locked(std::string_view detector,
                               std::string_view entity,
                               std::string_view severity, std::int64_t ts,
                               bool breach, double value, double threshold,
                               bool instant) {
  const auto key = std::make_pair(std::string(detector), std::string(entity));
  auto it = active_.find(key);
  if (!breach) {
    if (it == active_.end()) return;
    Lifecycle& lc = it->second;
    lc.state.last_ts = ts;
    lc.state.value = value;
    lc.state.threshold = threshold;
    lc.breach_streak = 0;
    ++lc.clear_streak;
    if (instant || lc.clear_streak >= config_.clear_ticks) {
      transition_locked(lc, ts, AlertPhase::kResolved);
      ++resolved_count_;
      if (resolved_.size() < config_.max_resolved) {
        resolved_.push_back(lc.state);
      }
      active_.erase(it);
    }
    return;
  }
  if (it == active_.end()) {
    Lifecycle lc;
    lc.state.detector = std::string(detector);
    lc.state.entity = std::string(entity);
    lc.state.severity = std::string(severity);
    lc.state.first_ts = ts;
    lc.state.last_ts = ts;
    lc.state.value = value;
    lc.state.threshold = threshold;
    lc.active = true;
    lc.breach_streak = 1;
    auto [ins, inserted] = active_.emplace(key, std::move(lc));
    static_cast<void>(inserted);
    transition_locked(ins->second, ts, AlertPhase::kPending);
    if (instant || config_.pending_ticks <= 1) {
      transition_locked(ins->second, ts, AlertPhase::kFiring);
    }
    return;
  }
  Lifecycle& lc = it->second;
  lc.state.last_ts = ts;
  lc.state.value = value;
  lc.state.threshold = threshold;
  lc.clear_streak = 0;
  ++lc.breach_streak;
  if (lc.state.phase == AlertPhase::kPending &&
      (instant || lc.breach_streak >= config_.pending_ticks)) {
    transition_locked(lc, ts, AlertPhase::kFiring);
  }
}

void HealthEngine::on_sample(std::int64_t ts,
                             const std::vector<std::string>& names,
                             const std::vector<std::int64_t>& values) {
  const std::lock_guard<std::mutex> lock(mutex_);
  note_ts_locked(ts);

  std::int64_t jobs_queued = -1;
  std::int64_t candidates = -1;
  std::int64_t matched = -1;
  std::int64_t dropped = -1;
  const std::size_t n = std::min(names.size(), values.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name = names[i];
    if (name == "jobs_queued") {
      jobs_queued = values[i];
    } else if (name == "pandarus_match_candidates_scanned_total") {
      candidates = values[i];
    } else if (name == "pandarus_match_jobs_matched_total") {
      matched = values[i];
    } else if (name == "events_dropped") {
      dropped = values[i];
    }
  }

  // Queue-depth spike: z-score against the series' own EWMA baseline,
  // evaluated *before* the observation joins the baseline.
  if (jobs_queued >= 0) {
    const double v = static_cast<double>(jobs_queued);
    const double z = queue_depth_.zscore(v);
    const bool breach = queue_depth_.primed && v >= config_.queue_min_value &&
                        z >= config_.queue_z_threshold;
    step_locked("queue_depth_spike", "queue", "warning", ts, breach, v,
                queue_depth_.mean + config_.queue_z_threshold *
                                        std::sqrt(queue_depth_.var),
                /*instant=*/false);
    queue_depth_.observe(v, config_.ewma_alpha);
  }

  // Match-rate drop: the funnel's candidate counter advances while the
  // matched counter stays flat for too many consecutive samples.
  if (candidates >= 0 && matched >= 0) {
    if (have_prev_sample_) {
      const bool flat =
          candidates > prev_candidates_ && matched == prev_matched_;
      match_flat_ticks_ = flat ? match_flat_ticks_ + 1 : 0;
    }
    const bool breach = match_flat_ticks_ >= config_.match_drop_ticks;
    step_locked("match_rate_drop", "matcher", "critical", ts, breach,
                static_cast<double>(match_flat_ticks_),
                static_cast<double>(config_.match_drop_ticks),
                /*instant=*/true);
    prev_candidates_ = candidates;
    prev_matched_ = matched;
  }

  // Event-drop watchdog + integrity SLO: any dropped-event delta is an
  // immediate critical (telemetry is silently incomplete from then on).
  if (dropped >= 0) {
    const std::int64_t delta =
        have_prev_sample_ ? dropped - prev_dropped_ : dropped;
    const bool breach = delta > 0;
    step_locked("event_drop", "events", "critical", ts, breach,
                static_cast<double>(delta), 0.0, /*instant=*/true);
    slos_[2].add(ts, !breach);
    prev_dropped_ = dropped;
  }

  have_prev_sample_ = true;
  evaluate_slos_locked(ts);
  export_gauges_locked();
}

void HealthEngine::on_link_sample(std::int64_t ts, std::int64_t src,
                                  std::int64_t dst, std::int64_t queued,
                                  double utilization) {
  const std::lock_guard<std::mutex> lock(mutex_);
  note_ts_locked(ts);
  auto [it, inserted] =
      links_.try_emplace(std::make_pair(src, dst), config_);
  static_cast<void>(inserted);
  LinkState& link = it->second;
  const double z = link.util.zscore(utilization);
  const bool breach =
      utilization >= config_.link_util_floor ||
      (link.util.primed && utilization > 0.5 &&
       z >= config_.link_z_threshold && queued > 0);
  std::string entity = "link:";
  entity += std::to_string(src);
  entity += "->";
  entity += std::to_string(dst);
  // Instant: link samples arrive once per sampler interval, so a single
  // saturated reading already represents a sustained condition.
  step_locked("link_util_spike", entity, "warning", ts, breach, utilization,
              config_.link_util_floor, /*instant=*/true);
  link.util.observe(utilization, config_.ewma_alpha);
}

void HealthEngine::on_transfer_terminal(std::int64_t ts, bool success,
                                        std::string_view error,
                                        std::int64_t duration_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  note_ts_locked(ts);
  if (success) {
    slos_[0].add(ts, duration_ms <= config_.transfer_latency_bound_ms);
  }
  slos_[1].add(ts, success);
  if (!success && error == "stalled_terminal") {
    stalls_.add(ts);
  }
  const std::uint64_t stalled = stalls_.total(ts);
  step_locked("transfer_stall", "transfers", "critical", ts,
              stalled >= config_.stall_threshold,
              static_cast<double>(stalled),
              static_cast<double>(config_.stall_threshold),
              /*instant=*/true);
}

void HealthEngine::on_breaker(std::int64_t ts, std::int64_t src,
                              std::int64_t dst, bool open) {
  const std::lock_guard<std::mutex> lock(mutex_);
  note_ts_locked(ts);
  auto [it, inserted] =
      links_.try_emplace(std::make_pair(src, dst), config_);
  static_cast<void>(inserted);
  LinkState& link = it->second;
  if (link.breaker_open != open) link.flaps.add(ts);
  link.breaker_open = open;
  std::string entity = "link:";
  entity += std::to_string(src);
  entity += "->";
  entity += std::to_string(dst);
  step_locked("breaker_open", entity, "warning", ts, open, open ? 1.0 : 0.0,
              1.0, /*instant=*/true);
  const std::uint64_t flaps = link.flaps.total(ts);
  step_locked("breaker_flap", entity, "critical", ts,
              flaps >= config_.flap_threshold, static_cast<double>(flaps),
              static_cast<double>(config_.flap_threshold),
              /*instant=*/true);
}

void HealthEngine::evaluate_slos_locked(std::int64_t ts) {
  for (Slo& slo : slos_) {
    const double fast = slo.burn(ts, /*fast=*/true);
    const double slow = slo.burn(ts, /*fast=*/false);
    const bool breach = fast >= config_.slo_burn_threshold &&
                        slow >= config_.slo_burn_threshold;
    std::string entity = "slo:";
    entity += slo.name;
    step_locked("slo_burn", entity, "critical", ts, breach,
                std::min(fast, slow), config_.slo_burn_threshold,
                /*instant=*/false);
  }
}

void HealthEngine::export_gauges_locked() {
  // Gauges never touch the event stream, so exporting here is
  // determinism-neutral (same discipline as the campaign's progress
  // gauges).
  Registry& registry = Registry::global();
  std::uint64_t pending = 0;
  std::uint64_t firing = 0;
  for (const auto& [key, lc] : active_) {
    if (lc.state.phase == AlertPhase::kFiring) {
      ++firing;
    } else {
      ++pending;
    }
  }
  registry
      .gauge("pandarus_health_alerts_firing",
             "Alerts currently in the firing phase")
      .set(static_cast<std::int64_t>(firing));
  registry
      .gauge("pandarus_health_alerts_pending",
             "Alerts currently in the pending phase")
      .set(static_cast<std::int64_t>(pending));
  registry
      .gauge("pandarus_health_alerts_resolved_total",
             "Alerts resolved since the epoch began")
      .set(static_cast<std::int64_t>(resolved_count_));
  for (Slo& slo : slos_) {
    const double fast = slo.burn(last_ts_, /*fast=*/true);
    const double slow = slo.burn(last_ts_, /*fast=*/false);
    registry
        .gauge("pandarus_slo_" + slo.name + "_burn_fast",
               "Fast-window SLO burn rate")
        .set(static_cast<std::int64_t>(fast * 1000.0));
    registry
        .gauge("pandarus_slo_" + slo.name + "_burn_slow",
               "Slow-window SLO burn rate")
        .set(static_cast<std::int64_t>(slow * 1000.0));
  }
}

void HealthEngine::observe_json(const util::json::Value& event) {
  if (event.kind != util::json::Value::Kind::kObject) return;
  const std::string_view kind = event.get_string("kind");
  const std::int64_t ts = event.get_int("ts");
  if (kind == "sample") {
    // Every non-envelope member is a sampler column, in emission order.
    std::vector<std::string> names;
    std::vector<std::int64_t> values;
    names.reserve(event.obj.size());
    values.reserve(event.obj.size());
    for (const auto& [key, value] : event.obj) {
      if (key == "ts" || key == "kind" || key == "entity") continue;
      names.push_back(key);
      values.push_back(value.as_int());
    }
    on_sample(ts, names, values);
  } else if (kind == "link_sample") {
    on_link_sample(ts, event.get_int("src"), event.get_int("dst"),
                   event.get_int("queued"),
                   event.get_double("utilization"));
  } else if (kind == "breaker_state") {
    on_breaker(ts, event.get_int("src"), event.get_int("dst"),
               event.get_string("state") == "open");
  } else if (kind == "transfer_done" || kind == "transfer_fail") {
    const bool success = kind == "transfer_done";
    const std::int64_t submitted = event.get_int("submitted", ts);
    on_transfer_terminal(ts, success, event.get_string("error", "none"),
                         ts - submitted);
  }
  // All other kinds — including "alert" itself — are ignored, so
  // replaying a health-on stream drives exactly the state its live run
  // had, with no self-amplification.
}

HealthEngine::Counts HealthEngine::counts() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Counts c;
  c.observations = observations_;
  c.fired = fired_;
  c.resolved = resolved_count_;
  for (const auto& [key, lc] : active_) {
    if (lc.state.phase == AlertPhase::kFiring) {
      ++c.active_firing;
    } else {
      ++c.active_pending;
    }
  }
  return c;
}

std::vector<AlertState> HealthEngine::alerts() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AlertState> out;
  out.reserve(active_.size() + resolved_.size());
  for (const auto& [key, lc] : active_) out.push_back(lc.state);
  for (const AlertState& state : resolved_) out.push_back(state);
  return out;
}

std::vector<AlertTransition> HealthEngine::transitions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

std::vector<SloStatus> HealthEngine::slos() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SloStatus> out;
  out.reserve(slos_.size());
  for (const Slo& slo : slos_) {
    SloStatus s;
    s.name = slo.name;
    s.target = slo.target;
    s.good = slo.good;
    s.bad = slo.bad;
    // burn() expires buckets; evaluate on copies so a const snapshot
    // never mutates detector state.
    Slo probe = slo;
    s.burn_fast = probe.burn(last_ts_, /*fast=*/true);
    s.burn_slow = probe.burn(last_ts_, /*fast=*/false);
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

void append_alert_json(std::string& out, const AlertState& a) {
  out += "{\"detector\":\"";
  detail::append_json_escaped(out, a.detector);
  out += "\",\"entity\":\"";
  detail::append_json_escaped(out, a.entity);
  out += "\",\"severity\":\"";
  detail::append_json_escaped(out, a.severity);
  out += "\",\"phase\":\"";
  out += alert_phase_name(a.phase);
  out += "\",\"first_ts\":";
  out += std::to_string(a.first_ts);
  out += ",\"since_ts\":";
  out += std::to_string(a.since_ts);
  out += ",\"last_ts\":";
  out += std::to_string(a.last_ts);
  out += ",\"value\":";
  detail::append_json_double(out, a.value);
  out += ",\"threshold\":";
  detail::append_json_double(out, a.threshold);
  out += ",\"fire_count\":";
  out += std::to_string(a.fire_count);
  out += '}';
}

}  // namespace

std::string HealthEngine::status_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(1024);
  out += "{\"counts\":{\"observations\":";
  out += std::to_string(observations_);
  out += ",\"fired\":";
  out += std::to_string(fired_);
  out += ",\"resolved\":";
  out += std::to_string(resolved_count_);
  std::uint64_t pending = 0;
  std::uint64_t firing = 0;
  for (const auto& [key, lc] : active_) {
    if (lc.state.phase == AlertPhase::kFiring) {
      ++firing;
    } else {
      ++pending;
    }
  }
  out += ",\"active_pending\":";
  out += std::to_string(pending);
  out += ",\"active_firing\":";
  out += std::to_string(firing);
  out += "},\"alerts\":[";
  bool first = true;
  for (const auto& [key, lc] : active_) {
    if (!first) out += ',';
    first = false;
    append_alert_json(out, lc.state);
  }
  out += "],\"resolved\":[";
  first = true;
  for (const AlertState& state : resolved_) {
    if (!first) out += ',';
    first = false;
    append_alert_json(out, state);
  }
  out += "],\"slos\":[";
  first = true;
  for (const Slo& slo : slos_) {
    if (!first) out += ',';
    first = false;
    Slo probe = slo;
    out += "{\"name\":\"";
    detail::append_json_escaped(out, slo.name);
    out += "\",\"target\":";
    detail::append_json_double(out, slo.target);
    out += ",\"good\":";
    out += std::to_string(slo.good);
    out += ",\"bad\":";
    out += std::to_string(slo.bad);
    out += ",\"burn_fast\":";
    detail::append_json_double(out, probe.burn(last_ts_, /*fast=*/true));
    out += ",\"burn_slow\":";
    detail::append_json_double(out, probe.burn(last_ts_, /*fast=*/false));
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace pandarus::obs
