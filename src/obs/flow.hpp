// Causal flow tracing + online critical-path wait attribution.
//
// A *flow* is the causal tree rooted at one job submission: the broker
// decision, the staging request, every stage-in/stage-out transfer
// attempt (including retries and reroutes injected by pandarus::fault),
// the queue slot and the payload run are all child spans of that root,
// linked by explicit parent edges (`parent` = pandaid on every flow_*
// event, `transfer` ids on link edges).  The paper answers "where did
// this job's wall-clock go?" by re-joining records offline through the
// matchers; FlowTracker answers it online, at the moment the job
// finalizes.
//
// On end_flow the tracker decomposes wall-clock into a partition
//
//   broker-wait | stage-in | queue-wait | run | stage-out
//
// whose parts sum to the job's wall-clock exactly (missing boundaries —
// e.g. a job killed by a site outage mid-run — collapse onto the next
// known one).  Stage-in is further split into *serialized* time (the
// union of transfer-attempt intervals inside the stage-in window: time
// at least one transfer was actually moving bytes) and *overlapped*
// time (sum - union: bytes that moved concurrently and were therefore
// free), so the paper's sequential-staging and redundant-transfer case
// studies become live flags instead of forensic queries.  Critical-path
// transfer time is attributed to links: each serialized segment is
// charged to the covering attempt that finished last (the one the job
// was actually waiting for), producing a per-link "critical seconds"
// ranking.
//
// Cost discipline matches EventLog/TraceRecorder exactly: when no
// tracker is installed an instrumentation site is one relaxed-ish
// atomic load (FlowTracker::installed()) and nothing else, and a
// campaign's NDJSON event stream is byte-identical with flows on vs.
// off except for the added flow_* lines (observers consume no
// simulation RNG and carry simulated time only).  Flow spans rendered
// into a Chrome trace use dedicated sim-time lanes (TraceRecorder::
// kFlowPid / kTransferPid, 1 simulated ms == 1 trace us via
// obs::to_micros) plus 's'/'f' flow arrows from job lanes to transfer
// lanes.  See DESIGN.md §13.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace pandarus::obs {

class Counter;
class Histogram;

/// The wall-clock partition of one finished job, in simulated ms.
/// broker + stage_in + queue + run + stage_out == wall, always.
struct PhaseBreakdown {
  std::int64_t broker_ms = 0;    ///< submission -> staging begins
  std::int64_t stage_in_ms = 0;  ///< staging begins -> queued
  std::int64_t queue_ms = 0;     ///< queued -> payload starts
  std::int64_t run_ms = 0;       ///< payload starts -> payload ends
  std::int64_t stage_out_ms = 0; ///< payload ends -> finalized
  std::int64_t wall_ms = 0;

  // Stage-in structure: serialized = union of attempt intervals inside
  // the stage-in window (time >= 1 transfer was active); busy = sum of
  // those intervals; overlap = 1 - serialized/busy (0 when <= 1
  // transfer ran, 1-ish when everything moved concurrently).
  std::int64_t stage_in_serialized_ms = 0;
  std::int64_t stage_in_busy_ms = 0;
  double stage_in_overlap = 0.0;
  bool sequential_staging = false;  ///< >= 2 transfers, overlap ~ 0

  std::uint32_t stage_in_transfers = 0;
  std::uint32_t stage_in_attempts = 0;
  std::uint32_t reroutes = 0;
  std::uint32_t redundant_transfers = 0;
  std::uint32_t unregistered = 0;  ///< moved ok but never catalogued
};

/// One finished flow as retained by the tracker (and as rebuilt from an
/// event stream by analysis::critical_path).
struct FlowSummary {
  std::int64_t pandaid = 0;
  std::int64_t taskid = -1;
  std::int64_t site = -1;
  std::int32_t attempt = 1;
  std::int64_t created_ms = 0;
  std::int64_t end_ms = 0;
  bool failed = false;
  std::int32_t error = 0;
  bool watchdog_release = false;
  std::uint32_t shared_hits = 0;
  PhaseBreakdown phases;

  /// Critical-seconds attribution of this flow's stage-in window to
  /// links, sorted by ms descending; front() is the bottleneck link.
  struct LinkShare {
    std::int64_t src = -1;
    std::int64_t dst = -1;
    std::int64_t ms = 0;
  };
  std::vector<LinkShare> link_shares;

  [[nodiscard]] std::int64_t critical_src() const noexcept {
    return link_shares.empty() ? -1 : link_shares.front().src;
  }
  [[nodiscard]] std::int64_t critical_dst() const noexcept {
    return link_shares.empty() ? -1 : link_shares.front().dst;
  }
  [[nodiscard]] std::int64_t critical_ms() const noexcept {
    return link_shares.empty() ? 0 : link_shares.front().ms;
  }
};

/// Campaign-wide per-link critical-seconds aggregate.
struct LinkCritical {
  std::int64_t src = -1;
  std::int64_t dst = -1;
  std::int64_t critical_ms = 0;
  std::uint64_t flows = 0;  ///< flows this link appeared critical in
};

struct FlowTotals {
  std::uint64_t flows = 0;
  std::uint64_t failed = 0;
  std::uint64_t sequential_staging = 0;
  std::uint64_t redundant_transfers = 0;
  std::uint64_t watchdog_releases = 0;
  std::uint64_t reroutes = 0;
};

/// Online causal-flow tracker.  Hook methods are called from the
/// simulation thread via `if (auto* f = FlowTracker::installed())`
/// guards; a detached tracker (never installed) doubles as the offline
/// rebuild engine for analysis::critical_path, fed the same calls in
/// event-stream order.  All hooks take the tracker mutex; disabled
/// sites never reach it.
class FlowTracker {
 public:
  /// `emit` false builds a silent tracker (replay/rebuild): hooks still
  /// aggregate but never mirror to the installed EventLog /
  /// TraceRecorder.  `max_summaries` bounds retained FlowSummary
  /// records; aggregates keep counting past the bound.
  explicit FlowTracker(bool emit = true,
                       std::size_t max_summaries = std::size_t{1} << 20);

  FlowTracker(const FlowTracker&) = delete;
  FlowTracker& operator=(const FlowTracker&) = delete;
  ~FlowTracker();

  void install() noexcept;
  void uninstall() noexcept;
  [[nodiscard]] static FlowTracker* installed() noexcept {
    return g_installed.load(std::memory_order_acquire);
  }

  // --- job lifecycle hooks (wms::PandaServer) -----------------------------
  void begin_flow(std::int64_t pandaid, std::int64_t taskid,
                  std::int32_t attempt, std::int64_t ts);
  /// Brokerage detail (wms::Brokerage): candidate sites scored for this
  /// flow; merged into the flow_broker span.
  void broker_scored(std::int64_t pandaid, std::int64_t candidates);
  void broker_decision(std::int64_t pandaid, std::int64_t site,
                       std::int64_t ts);
  void stage_begin(std::int64_t pandaid, std::int64_t ts);
  /// Parent edge flow -> transfer.  `shared` marks a join onto a
  /// transfer another flow already started (shared-staging ledger hit).
  void link_transfer(std::int64_t pandaid, std::uint64_t transfer_id,
                     std::int64_t ts, bool shared);
  void queue_enter(std::int64_t pandaid, std::int64_t ts,
                   bool watchdog_release);
  void run_begin(std::int64_t pandaid, std::int64_t ts);
  void stage_out_begin(std::int64_t pandaid, std::int64_t ts);
  /// Finalization: runs the critical-path decomposition, emits
  /// flow_end, feeds quantile sketches and link aggregates, retires the
  /// flow.
  void end_flow(std::int64_t pandaid, std::int64_t ts, bool failed,
                std::int32_t error);

  // --- transfer lifecycle hooks (dms::TransferEngine) ---------------------
  void transfer_submitted(std::uint64_t id, std::int64_t file,
                          std::int64_t src, std::int64_t dst,
                          std::int64_t ts);
  void attempt_start(std::uint64_t id, std::uint32_t attempt,
                     std::int64_t src, std::int64_t dst, std::int64_t ts);
  void transfer_rerouted(std::uint64_t id);
  /// `terminal` true on transfer_done/transfer_fail, false on a retry;
  /// `registered` is the replica-catalogue outcome (terminal only).
  void attempt_end(std::uint64_t id, std::int64_t ts, bool success,
                   bool terminal, bool registered);

  // --- results ------------------------------------------------------------
  // Safe once the simulation has quiesced (same contract as
  // EventLog::to_ndjson).
  [[nodiscard]] const std::vector<FlowSummary>& completed() const {
    return completed_;
  }
  [[nodiscard]] FlowTotals totals() const;
  /// Campaign-wide link ranking, critical_ms descending (deterministic
  /// tie-break on (src, dst)).
  [[nodiscard]] std::vector<LinkCritical> link_ranking() const;
  [[nodiscard]] std::size_t open_flows() const;
  /// Deterministic fingerprint of the tracker's mutable state (open
  /// flows and their phase boundaries, campaign totals), hashed over
  /// flows sorted by pandaid; scenario::Checkpoint compares it across
  /// a checkpointed and a resumed run.
  [[nodiscard]] std::uint64_t state_digest() const;

  /// Flamegraph-style collapsed stacks:
  ///   campaign;<site>;stage_in;link_<src>-><dst> <ms>
  ///   campaign;<site>;queue <ms>              (etc. per phase)
  /// `site_name` maps a site id to a frame label (numeric `site_<id>`
  /// when empty); deterministic ordering.
  [[nodiscard]] std::string to_collapsed(
      const std::function<std::string(std::int64_t)>& site_name = {}) const;
  /// Writes to_collapsed() to `path`; false (warning logged) on I/O
  /// failure.
  bool write_collapsed(const std::string& path) const;

 private:
  struct AttemptSpan {
    std::int64_t start_ms = 0;
    std::int64_t end_ms = -1;  ///< -1 while in flight
    std::int64_t src = -1;
    std::int64_t dst = -1;
    std::uint32_t attempt = 1;
    bool success = false;
  };
  struct TransferTrace {
    std::int64_t file = -1;
    std::int64_t dst = -1;
    std::int64_t submit_ms = 0;
    bool done = false;
    bool success = false;
    bool registered = false;
    bool redundant = false;
    std::uint32_t reroutes = 0;
    std::int32_t refs = 0;  ///< live flows holding a parent edge
    std::vector<AttemptSpan> attempts;
  };
  struct Flow {
    std::int64_t pandaid = 0;
    std::int64_t taskid = -1;
    std::int32_t attempt = 1;
    std::int64_t site = -1;
    std::int64_t candidates = -1;
    std::int64_t created_ms = 0;
    std::int64_t stage_begin_ms = -1;
    std::int64_t queued_ms = -1;
    std::int64_t run_ms = -1;
    std::int64_t stage_out_ms = -1;
    bool watchdog_release = false;
    std::uint32_t shared_hits = 0;
    std::vector<std::uint64_t> stage_in;    ///< transfer ids
    std::vector<std::uint64_t> post_stage;  ///< direct-IO + upload ids
  };
  struct SiteAgg {
    std::int64_t broker = 0;
    std::int64_t stage_in_active = 0;
    std::int64_t stage_in_idle = 0;
    std::int64_t queue = 0;
    std::int64_t run = 0;
    std::int64_t stage_out = 0;
    std::unordered_map<std::uint64_t, std::int64_t> link_ms;
  };
  struct LinkAgg {
    std::int64_t critical_ms = 0;
    std::uint64_t flows = 0;
  };
  struct FilePresence {
    std::int32_t in_flight = 0;
    bool unregistered_success = false;
  };
  struct Metrics;  // lazy global-registry bindings

  void release_transfer(std::uint64_t id);
  Metrics& metrics();
  void emit_sim_lane_metadata();

  static std::atomic<FlowTracker*> g_installed;

  const bool emit_;
  const std::size_t max_summaries_;
  mutable std::mutex mutex_;
  std::unordered_map<std::int64_t, Flow> open_;
  std::unordered_map<std::uint64_t, TransferTrace> transfers_;
  std::unordered_map<std::uint64_t, FilePresence> file_presence_;
  std::unordered_map<std::uint64_t, LinkAgg> links_;
  std::unordered_map<std::int64_t, SiteAgg> sites_;
  std::vector<FlowSummary> completed_;
  FlowTotals totals_;
  Metrics* metrics_ = nullptr;
  bool lane_metadata_emitted_ = false;
};

}  // namespace pandarus::obs
