#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pandarus::obs {
namespace {

/// Doubles in exports must stay valid JSON: no inf/nan, round-trippable
/// precision.
std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

template <typename T>
void sort_by_name(std::vector<T>& values) {
  std::sort(values.begin(), values.end(),
            [](const T& a, const T& b) { return a.name < b.name; });
}

}  // namespace

// --- Counter --------------------------------------------------------------

Counter::Counter(std::string name, std::string help)
    : name_(std::move(name)),
      help_(std::move(help)),
      cells_(std::make_unique<Cell[]>(kShards)) {}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    total += cells_[i].v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (std::size_t i = 0; i < kShards; ++i) {
    cells_[i].v.store(0, std::memory_order_relaxed);
  }
}

std::size_t Counter::shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return idx;
}

// --- Gauge ----------------------------------------------------------------

Gauge::Gauge(std::string name, std::string help)
    : name_(std::move(name)), help_(std::move(help)) {}

// --- P2Quantile -----------------------------------------------------------

P2Quantile::P2Quantile(double q) noexcept : q_(q) {}

void P2Quantile::reset() noexcept {
  for (std::size_t i = 0; i < 5; ++i) {
    h_[i] = 0.0;
    pos_[i] = static_cast<double>(i + 1);
    desired_[i] = 0.0;
  }
  n_ = 0;
}

void P2Quantile::observe(double v) noexcept {
  if (!std::isfinite(v)) return;
  if (n_ < 5) {
    h_[n_++] = v;
    if (n_ == 5) {
      std::sort(h_, h_ + 5);
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * q_;
      desired_[2] = 1.0 + 4.0 * q_;
      desired_[3] = 3.0 + 2.0 * q_;
      desired_[4] = 5.0;
    }
    return;
  }
  // Locate the cell k such that h_[k] <= v < h_[k + 1], extending the
  // extreme markers when v falls outside the current range.
  std::size_t k = 0;
  if (v < h_[0]) {
    h_[0] = v;
    k = 0;
  } else if (v >= h_[4]) {
    h_[4] = v;
    k = 3;
  } else {
    while (k < 3 && v >= h_[k + 1]) ++k;
  }
  ++n_;
  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  desired_[1] += q_ / 2.0;
  desired_[2] += q_;
  desired_[3] += (1.0 + q_) / 2.0;
  desired_[4] += 1.0;
  // Nudge the three interior markers toward their desired positions,
  // preferring the parabolic (P²) height update and falling back to
  // linear when the parabola would break marker monotonicity.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double parabolic =
          h_[i] +
          s / (pos_[i + 1] - pos_[i - 1]) *
              ((pos_[i] - pos_[i - 1] + s) * (h_[i + 1] - h_[i]) /
                   (pos_[i + 1] - pos_[i]) +
               (pos_[i + 1] - pos_[i] - s) * (h_[i] - h_[i - 1]) /
                   (pos_[i] - pos_[i - 1]));
      if (h_[i - 1] < parabolic && parabolic < h_[i + 1]) {
        h_[i] = parabolic;
      } else {
        const std::size_t j = s > 0 ? i + 1 : i - 1;
        h_[i] = h_[i] + s * (h_[j] - h_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::estimate() const noexcept {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact path: sorted raw samples, linear interpolation at the
    // 0-based fractional rank q * (n - 1).
    double sorted[5];
    std::copy(h_, h_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    const double rank = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = lo + 1 < n_ ? lo + 1 : lo;
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }
  return h_[2];
}

// --- Histogram ------------------------------------------------------------

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> bounds)
    : name_(std::move(name)),
      help_(std::move(help)),
      bounds_(std::move(bounds)),
      buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() +
                                                              1)) {}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of atomic<double>::fetch_add for toolchain
  // portability; contention here is per-observation, not per-candidate.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  while (sketch_lock_.test_and_set(std::memory_order_acquire)) {
  }
  p50_.observe(v);
  p95_.observe(v);
  p99_.observe(v);
  sketch_lock_.clear(std::memory_order_release);
}

double Histogram::quantile(double q) const noexcept {
  while (sketch_lock_.test_and_set(std::memory_order_acquire)) {
  }
  double out = 0.0;
  if (q == 0.5) {
    out = p50_.estimate();
  } else if (q == 0.95) {
    out = p95_.estimate();
  } else if (q == 0.99) {
    out = p99_.estimate();
  }
  sketch_lock_.clear(std::memory_order_release);
  return out;
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  while (sketch_lock_.test_and_set(std::memory_order_acquire)) {
  }
  p50_.reset();
  p95_.reset();
  p99_.reset();
  sketch_lock_.clear(std::memory_order_release);
}

// --- Snapshot -------------------------------------------------------------

std::uint64_t Snapshot::counter_value(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t Snapshot::gauge_value(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

// --- Registry -------------------------------------------------------------

Registry& Registry::global() {
  // Leaked intentionally: instrumented code may run from atexit hooks
  // and static destructors, so the registry must never be torn down.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  std::scoped_lock lock(mutex_);
  const auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return *counters_[it->second];
  counters_.push_back(std::unique_ptr<Counter>(
      new Counter(std::string(name), std::string(help))));
  counter_index_.emplace(std::string(name), counters_.size() - 1);
  return *counters_.back();
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  std::scoped_lock lock(mutex_);
  const auto it = gauge_index_.find(std::string(name));
  if (it != gauge_index_.end()) return *gauges_[it->second];
  gauges_.push_back(
      std::unique_ptr<Gauge>(new Gauge(std::string(name), std::string(help))));
  gauge_index_.emplace(std::string(name), gauges_.size() - 1);
  return *gauges_.back();
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds,
                               std::string_view help) {
  std::scoped_lock lock(mutex_);
  const auto it = histogram_index_.find(std::string(name));
  if (it != histogram_index_.end()) return *histograms_[it->second];
  histograms_.push_back(std::unique_ptr<Histogram>(new Histogram(
      std::string(name), std::string(help), std::move(bounds))));
  histogram_index_.emplace(std::string(name), histograms_.size() - 1);
  return *histograms_.back();
}

void Registry::reset_for_test() {
  std::scoped_lock lock(mutex_);
  for (const auto& c : counters_) c->reset();
  for (const auto& g : gauges_) g->reset();
  for (const auto& h : histograms_) h->reset();
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  {
    std::scoped_lock lock(mutex_);
    out.counters.reserve(counters_.size());
    for (const auto& c : counters_) {
      out.counters.push_back({c->name(), c->help(), c->value()});
    }
    out.gauges.reserve(gauges_.size());
    for (const auto& g : gauges_) {
      out.gauges.push_back({g->name(), g->help(), g->value()});
    }
    out.histograms.reserve(histograms_.size());
    for (const auto& h : histograms_) {
      Snapshot::HistogramValue v;
      v.name = h->name();
      v.help = h->help();
      v.bounds = h->bounds();
      v.buckets.resize(v.bounds.size() + 1);
      for (std::size_t i = 0; i < v.buckets.size(); ++i) {
        v.buckets[i] = h->bucket(i);
      }
      v.count = h->count();
      v.sum = h->sum();
      v.p50 = h->quantile(0.5);
      v.p95 = h->quantile(0.95);
      v.p99 = h->quantile(0.99);
      out.histograms.push_back(std::move(v));
    }
  }
  sort_by_name(out.counters);
  sort_by_name(out.gauges);
  sort_by_name(out.histograms);
  return out;
}

// --- Exporters ------------------------------------------------------------

std::string export_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, c.name);
    out += ": " + std::to_string(c.value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& g : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, g.name);
    out += ": " + std::to_string(g.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& h : snapshot.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, h.name);
    out += ": {\"buckets\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += "[" + format_double(h.bounds[i]) + ", " +
             std::to_string(h.buckets[i]) + "]";
    }
    out += "], \"overflow\": " + std::to_string(h.buckets.back()) +
           ", \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + format_double(h.sum) +
           ", \"p50\": " + format_double(h.p50) +
           ", \"p95\": " + format_double(h.p95) +
           ", \"p99\": " + format_double(h.p99) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string export_prometheus(const Snapshot& snapshot) {
  // Exposition-format rules enforced here: a *family* is the metric
  // name up to the first '{' (labelled metrics like
  // pandarus_build_info{version="..."} register one gauge per label
  // set, all in the same family), and every family gets exactly one
  // # HELP and one # TYPE line, emitted before its first sample.
  // Snapshots are sorted by name, so samples of one family are
  // contiguous and a seen-set is enough to dedupe.
  std::string out;
  std::vector<std::string> seen;
  const auto header = [&out, &seen](const std::string& name,
                                    const std::string& help,
                                    const char* type) {
    const std::string family = name.substr(0, name.find('{'));
    if (std::find(seen.begin(), seen.end(), family) != seen.end()) return;
    seen.push_back(family);
    out += "# HELP " + family;
    if (!help.empty()) {
      out += ' ';
      // HELP docstrings escape backslash and newline per the format.
      for (const char c : help) {
        if (c == '\\') {
          out += "\\\\";
        } else if (c == '\n') {
          out += "\\n";
        } else {
          out += c;
        }
      }
    }
    out += "\n# TYPE " + family + " " + std::string(type) + "\n";
  };
  for (const auto& c : snapshot.counters) {
    header(c.name, c.help, "counter");
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    header(g.name, g.help, "gauge");
    out += g.name + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    header(h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += h.name + "_bucket{le=\"" + format_double(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += h.buckets.back();
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
           "\n";
    out += h.name + "_sum " + format_double(h.sum) + "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
    // Streaming quantile estimates ride along as separate gauge
    // families: a `{quantile=...}` label on the histogram family name
    // itself would collide with the histogram TYPE declaration under
    // strict exposition-format parsers.
    const auto quantile = [&](const char* suffix, double value) {
      header(h.name + suffix, "P2 streaming quantile of " + h.name, "gauge");
      out += h.name + suffix + " " + format_double(value) + "\n";
    };
    quantile("_p50", h.p50);
    quantile("_p95", h.p95);
    quantile("_p99", h.p99);
  }
  return out;
}

std::string export_json() { return export_json(Registry::global().snapshot()); }

std::string export_prometheus() {
  return export_prometheus(Registry::global().snapshot());
}

}  // namespace pandarus::obs
