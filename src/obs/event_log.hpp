// Structured event log: the durable, per-entity record stream the paper
// itself analyzes (its whole method runs off job/transfer records
// harvested into OpenSearch and reassembled offline).
//
// Events are typed NDJSON lines — one JSON object per line with `ts`
// (simulated milliseconds), `kind`, `entity`, and kind-specific fields —
// built with the Event builder and appended to per-thread staging
// buffers.  A full staging buffer drains under the log's mutex into one
// central sink (many producers, one consumer at serialization time),
// and the whole stream is bounded by `max_events`; overflow is counted,
// never blocking.
//
// The disabled path follows the same cost discipline as ScopedSpan:
// when no EventLog is installed, an emit site is one relaxed-ish atomic
// load (EventLog::installed()) and nothing else — no clock reads, no
// string building.  Guard every emit site with
//
//   if (obs::EventLog* log = obs::EventLog::installed()) {
//     log->emit(obs::Event("transfer_submit", now, id)
//                   .field("src", src)
//                   .field("bytes", bytes));
//   }
//
// Events carry simulated time only, so two runs of the same seeded
// campaign produce byte-identical NDJSON whether or not a TraceRecorder
// (wall-clock tracing) is also installed.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace pandarus::obs {

namespace detail {
/// JSON string escaping exactly as the Event builder renders it; shared
/// with the colstore re-renderer so both sinks produce identical bytes.
void append_json_escaped(std::string& out, std::string_view s);
/// Finite, round-trippable double rendering (%.17g; non-finite → 0).
void append_json_double(std::string& out, double v);
}  // namespace detail

/// Durability level for the file sinks (the PANDARUS_EVENTS_FSYNC
/// knob).  kOff is the default and leaves every existing byte-identity
/// guarantee untouched; kFlush fsyncs after each flush pass; kInterval
/// fsyncs at most once per `interval_ms` of wall time.
enum class FsyncPolicy { kOff, kFlush, kInterval };

struct FsyncConfig {
  FsyncPolicy policy = FsyncPolicy::kOff;
  int interval_ms = 0;  ///< kInterval only
};

/// Parses "off" | "flush" | "interval:<ms>" (case-sensitive); false on
/// a malformed spec, leaving `out` unchanged.
bool parse_fsync_policy(std::string_view spec, FsyncConfig& out);

/// Mirrors the installed log's durability counters (events written /
/// dropped / bytes, io_errors, fsyncs, watermark) into
/// `pandarus_events_*` registry gauges so /metrics scrapes and metric
/// dumps carry them; no-op without an installed log.  Gauges never
/// touch the event stream, so this is determinism-neutral.
void export_event_log_metrics();

/// Builder for one event line.  The constructor writes the common
/// prefix (`ts`, `kind`, `entity`); field() appends one key/value pair
/// per call.  Strings are JSON-escaped; doubles are rendered finite and
/// round-trippable (like the metrics exporters).
class Event {
 public:
  Event(std::string_view kind, std::int64_t ts, std::int64_t entity);
  Event(std::string_view kind, std::int64_t ts, std::string_view entity);

  Event&& field(std::string_view key, std::int64_t v) &&;
  Event&& field(std::string_view key, std::uint64_t v) &&;
  Event&& field(std::string_view key, std::int32_t v) &&;
  Event&& field(std::string_view key, std::uint32_t v) &&;
  Event&& field(std::string_view key, double v) &&;
  Event&& field(std::string_view key, bool v) &&;
  Event&& field(std::string_view key, std::string_view v) &&;
  Event&& field(std::string_view key, const char* v) &&;

 private:
  friend class EventLog;
  void append_key(std::string_view key);
  std::string line_;  ///< open JSON object; emit() appends the '}'
};

/// Collects events from any thread; install at most one log at a time.
/// The log must outlive every thread that observed it as installed, and
/// to_ndjson()/write_ndjson() are only safe once emitters have
/// quiesced (same contract as TraceRecorder).
class EventLog {
 public:
  /// `max_events` bounds the whole stream across all threads; events
  /// past the bound are counted as dropped (warned once).
  explicit EventLog(std::size_t max_events = std::size_t{1} << 22);
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Makes this the process-wide log emit sites report to.
  void install() noexcept;
  /// Stops recording (no-op if another log was installed since).
  void uninstall() noexcept;
  [[nodiscard]] static EventLog* installed() noexcept {
    return g_installed.load(std::memory_order_acquire);
  }

  /// Finalizes the event's line and appends it to this thread's staging
  /// buffer (draining to the central sink when the buffer fills).
  void emit(Event event);

  /// Sideband emit: the line rides the stream (same ordering, same
  /// sinks) but bypasses the max_events bound and the accepted/bytes
  /// accounting, exactly like the terminal log_stats line.  Used for
  /// derived annotations (HealthEngine `alert` events) so a run with
  /// them armed keeps every self-describing counter — including the
  /// log_stats line itself — byte-identical to a run without.
  void emit_sideband(Event event);

  /// Finalizes the stream: appends one terminal `log_stats` event
  /// (events written, dropped, bytes — describing the stream *before*
  /// this line) so silent max_events truncation is visible in replay
  /// and reports.  The stats line bypasses the max_events bound.
  /// Also drains every staging buffer into the central sink (emitters
  /// have quiesced by contract), so the publication watermark reaches
  /// the end of the stream.  Idempotent; call once emitters have
  /// quiesced.
  void close();
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  // --- snapshot isolation ---------------------------------------------------
  // Concurrent readers (obs::serve) must never touch staging buffers —
  // those are owned by their emitting threads.  Instead they read the
  // *published prefix*: the set of lines whose sequence numbers form a
  // contiguous range [0, watermark()) inside the central sink.  Owning
  // threads move their staged lines into the sink by filling a batch
  // (kDrainBatch) or by calling publish() at a quiescent point (the
  // campaign loop publishes at every simulated-day boundary and after
  // the harvest).  A reader holding a watermark therefore sees a
  // consistent, gap-free prefix of the stream without ever blocking an
  // emitter for more than the sink mutex.

  /// Drains the calling thread's staging buffer into the central sink
  /// and returns the new publication watermark.  Cheap when the buffer
  /// is empty; call from the emitting thread only.
  std::uint64_t publish();

  /// One past the highest sequence number of the contiguous published
  /// prefix.  Every line with seq < watermark() is in the central sink
  /// and immutable; snapshot readers key their memoization off this.
  [[nodiscard]] std::uint64_t watermark() const;

  /// Appends the published lines with seq in [from_seq, watermark())
  /// to `out` as NDJSON in sequence order and returns the watermark
  /// used as the exclusive bound.  Safe concurrently with emitters —
  /// only the central sink is read.  Pass the returned value back as
  /// `from_seq` to stream the log incrementally.
  std::uint64_t snapshot_ndjson(std::string& out,
                                std::uint64_t from_seq = 0) const;

  /// Starts a background thread appending newly published lines to
  /// `path` every `interval_ms` (the PANDARUS_EVENTS_FLUSH_MS knob), so
  /// `tail -f` and SSE consumers see events before close().  The file
  /// is truncated on start; only *published* lines are flushed, so the
  /// producer must publish() (or fill drain batches) for data to
  /// appear.  Default-off: without this call nothing is written until
  /// the final write_ndjson().  False when the file cannot be opened or
  /// a flusher is already running.
  bool start_periodic_flush(const std::string& path, int interval_ms);
  /// Stops the flush thread after one final flush (call after close()
  /// and the file holds the complete stream).  Idempotent.
  void stop_periodic_flush();

  /// Sets the durability policy for the flush thread and
  /// write_ndjson().  Call before start_periodic_flush(); with kOff
  /// (the default) no fsync is ever issued.
  void set_fsync(FsyncConfig config) noexcept { fsync_ = config; }
  [[nodiscard]] FsyncConfig fsync_config() const noexcept { return fsync_; }

  /// Crash-injection hook (PANDARUS_EVENTS_WRITE_DELAY_US): the flush
  /// thread sleeps this long after every 4 KiB block it writes, holding
  /// the file in a torn, partially flushed state long enough for a
  /// SIGKILL to land mid-flush deterministically.  Zero disables.
  void set_flush_write_delay_us(int us) noexcept {
    flush_write_delay_us_ = us < 0 ? 0 : us;
  }

  /// Short writes and failed fsyncs observed by any sink path.  These
  /// are surfaced in the terminal log_stats line and by /healthz, so a
  /// full disk is visible in replay instead of silently truncating.
  [[nodiscard]] std::uint64_t io_errors() const noexcept {
    return io_errors_.load(std::memory_order_relaxed);
  }
  /// Successful fsync calls issued under the active FsyncPolicy.
  [[nodiscard]] std::uint64_t fsyncs() const noexcept {
    return fsyncs_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Events accepted into the stream so far (excludes dropped).
  [[nodiscard]] std::uint64_t events_written() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// NDJSON bytes the accepted events serialize to (incl. newlines).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// The full stream as NDJSON, lines ordered by emission sequence
  /// (deterministic for single-threaded emitters), '\n' after each line.
  [[nodiscard]] std::string to_ndjson() const;
  /// Writes to_ndjson() to `path`; false (with a warning logged) on I/O
  /// failure.
  bool write_ndjson(const std::string& path) const;

  /// Visits every line (without trailing '\n') in emission-sequence
  /// order under the log's lock — the streaming sibling of to_ndjson()
  /// used by the colstore sink.  Same quiescence contract.
  void for_each_line(
      const std::function<void(std::string_view)>& fn) const;

 private:
  struct Line {
    std::uint64_t seq = 0;
    std::string text;
  };
  struct Buffer {
    std::vector<Line> staged;
  };
  /// Staging buffers drain in batches of this many lines.
  static constexpr std::size_t kDrainBatch = 1024;

  Buffer& local_buffer();
  /// Moves `buffer`'s staged lines into drained_; mutex_ held.
  void drain_locked(Buffer& buffer);
  /// Accounts one drained seq into the watermark; mutex_ held.
  void note_drained_locked(std::uint64_t seq);
  void flush_loop(int interval_ms);
  void flush_once();
  /// fsyncs flush_file_ per fsync_ policy; flush_mutex_ held.
  void sync_flush_file_locked();

  static std::atomic<EventLog*> g_installed;

  const std::uint64_t id_;  ///< process-unique, never reused
  const std::size_t max_events_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> bytes_{0};
  // mutable: write_ndjson() is logically const but must account I/O
  // failures it observes.
  mutable std::atomic<std::uint64_t> io_errors_{0};
  mutable std::atomic<std::uint64_t> fsyncs_{0};
  mutable std::atomic<bool> warned_io_error_{false};
  std::atomic<bool> warned_dropped_{false};
  std::atomic<bool> closed_{false};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::vector<Line> drained_;  ///< MPSC sink fed by full staging buffers

  // Publication watermark (guarded by mutex_): drained lines with seq
  // >= watermark_ wait in ahead_ (a min-heap) until the gap below them
  // is drained too.
  std::uint64_t watermark_ = 0;
  std::vector<std::uint64_t> ahead_;

  // Periodic flusher (PANDARUS_EVENTS_FLUSH_MS).
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  std::thread flush_thread_;
  std::FILE* flush_file_ = nullptr;
  std::uint64_t flush_cursor_ = 0;
  bool flush_stop_ = false;

  // Durability (PANDARUS_EVENTS_FSYNC) + crash-window hook.
  FsyncConfig fsync_;
  int flush_write_delay_us_ = 0;
  std::chrono::steady_clock::time_point last_fsync_{};
};

}  // namespace pandarus::obs
