// Directional network links between sites.
#pragma once

#include <cstdint>
#include <functional>

#include "grid/load_model.hpp"
#include "grid/site.hpp"
#include "util/time.hpp"

namespace pandarus::grid {

/// Directional (source, destination) pair identifying a link.  A link
/// with src == dst models the site's LAN / storage frontend and carries
/// the paper's "local transfers" (diagonal cells in Fig. 3).
struct LinkKey {
  SiteId src = kUnknownSite;
  SiteId dst = kUnknownSite;

  [[nodiscard]] bool is_local() const noexcept { return src == dst; }
  friend bool operator==(const LinkKey&, const LinkKey&) = default;
};

struct LinkKeyHash {
  std::size_t operator()(const LinkKey& key) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(key.src) << 32) | key.dst);
  }
};

struct NetworkLink {
  LinkKey key;
  double capacity_bps = 1e9;  ///< nominal capacity, bytes/s
  double latency_ms = 20.0;   ///< per-transfer setup latency
  /// Concurrent foreground transfers allowed; excess requests queue.
  std::uint32_t max_active = 8;
  LoadModel load;

  /// Capacity available to foreground transfers at time t.
  [[nodiscard]] double effective_capacity(util::SimTime t) const noexcept {
    return capacity_bps * load.available_fraction(t);
  }

  /// Same, with an externally imposed multiplier (fault-window
  /// brownouts) composed on top of the background-load model.
  [[nodiscard]] double effective_capacity(util::SimTime t,
                                          double multiplier) const noexcept {
    return effective_capacity(t) * multiplier;
  }
};

}  // namespace pandarus::grid
