#include "grid/load_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace pandarus::grid {

double LoadModel::utilization(util::SimTime t) const noexcept {
  const double hour = util::to_hours(t);
  double u = params_.mean_util +
             params_.diurnal_amplitude *
                 std::sin(2.0 * std::numbers::pi *
                          (hour + params_.phase_hours) / 24.0);

  // Deterministic burst: hash the (link seed, time bin) pair; a bin is
  // congested when the hash falls below burst_prob.
  if (params_.burst_prob > 0.0 && params_.burst_bin > 0) {
    const auto bin = static_cast<std::uint64_t>(
        t >= 0 ? t / params_.burst_bin : 0);
    const std::uint64_t h = util::hash_mix(params_.seed, bin, 0x9d2c5680u);
    if (util::hash_unit(h) < params_.burst_prob) {
      // Burst intensity also derives from the hash so repeated bins vary.
      const double intensity = util::hash_unit(util::hash_mix(h, bin + 1));
      u += params_.burst_util * (0.5 + 0.5 * intensity);
    }
  }
  return std::clamp(u, 0.0, params_.max_util);
}

}  // namespace pandarus::grid
