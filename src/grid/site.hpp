// Computing sites and the WLCG tier taxonomy (paper §2.1).
#pragma once

#include <cstdint>
#include <string>

namespace pandarus::grid {

/// Dense site index assigned by the topology.  The sentinel
/// `kUnknownSite` mirrors the paper's "unknown" pseudo-site that
/// aggregates transfers whose source or destination failed to record
/// (§3.2: the 102nd site in the Fig. 3 heatmap).
using SiteId = std::uint32_t;
inline constexpr SiteId kUnknownSite = 0xFFFFFFFFu;

/// WLCG tiers: Tier-0 at CERN records and first-processes raw data,
/// Tier-1s are national labs with tape, Tier-2s are universities/labs,
/// Tier-3s are small local resources (§2.1).
enum class Tier : std::uint8_t { kT0 = 0, kT1 = 1, kT2 = 2, kT3 = 3 };

[[nodiscard]] const char* tier_name(Tier tier) noexcept;

struct Site {
  SiteId id = kUnknownSite;
  std::string name;     ///< e.g. "CERN-PROD", "BNL-T1"
  std::string country;  ///< display only
  Tier tier = Tier::kT2;

  std::uint32_t cpu_slots = 100;   ///< concurrent payload jobs
  double cpu_speed = 1.0;          ///< relative per-slot speed
  std::uint64_t storage_bytes = 0; ///< capacity of the site disk RSE

  /// LAN bandwidth for intra-site (local) transfers, bytes/s.
  double lan_bandwidth_bps = 1e9;

  /// Stage-in streams a single pilot may open at this site.  Sites with
  /// 1 stream make pilots download their input files *sequentially* —
  /// the paper's Fig. 10 observation that "the underlying file transfer
  /// mechanism doesn't enable parallel file transfers at every site".
  /// (The site's storage frontend itself still serves several concurrent
  /// transfers; see the local NetworkLink's max_active.)
  std::uint32_t max_parallel_streams = 4;

  /// Base probability that a payload job fails for site-local reasons.
  double base_failure_prob = 0.03;

  /// Mean extra scheduling delay of the local batch system, ms.  Heavily
  /// loaded sites produce the long local queuing tails of Fig. 5.
  double batch_delay_mean_ms = 30'000.0;
};

}  // namespace pandarus::grid
