// Topology: the set of sites plus the directional link graph.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "grid/link.hpp"
#include "grid/site.hpp"

namespace pandarus::grid {

class Topology {
 public:
  /// Adds a site; its `id` field is overwritten with the assigned index.
  SiteId add_site(Site site);

  /// Adds or replaces the link for `link.key`.
  void add_link(NetworkLink link);

  [[nodiscard]] std::size_t site_count() const noexcept {
    return sites_.size();
  }
  [[nodiscard]] const Site& site(SiteId id) const { return sites_.at(id); }
  [[nodiscard]] Site& site_mutable(SiteId id) { return sites_.at(id); }
  [[nodiscard]] std::span<const Site> sites() const noexcept {
    return sites_;
  }

  /// Case-sensitive lookup by name; nullopt when absent.
  [[nodiscard]] std::optional<SiteId> find_site(std::string_view name) const;

  /// Display name, mapping kUnknownSite to "UNKNOWN".
  [[nodiscard]] std::string_view site_name(SiteId id) const;

  /// Link for (src, dst).  Falls back to a synthesized default when the
  /// pair has no explicit link: the local LAN pseudo-link for src == dst,
  /// otherwise a conservative 100 MB/s WAN path.  The returned reference
  /// is owned by the topology and stable until the next add_link call.
  [[nodiscard]] const NetworkLink& link(SiteId src, SiteId dst) const;

  [[nodiscard]] bool has_link(SiteId src, SiteId dst) const;
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }

  /// All sites of a given tier.
  [[nodiscard]] std::vector<SiteId> sites_of_tier(Tier tier) const;

 private:
  std::vector<Site> sites_;
  std::unordered_map<std::string, SiteId> by_name_;
  mutable std::unordered_map<LinkKey, NetworkLink, LinkKeyHash> links_;
};

}  // namespace pandarus::grid
