// Background-load model for network links.
//
// The paper's Figs. 7/8 show strongly fluctuating effective bandwidth at
// both remote links and local sites: diurnal swings plus transient
// congestion bursts.  We model background utilization as
//
//   u(t) = clamp(mean + amplitude * sin(2*pi*(hour(t) + phase)/24)
//                + burst(t), 0, max_util)
//
// where burst(t) is a deterministic hash-driven square pulse per time
// bin.  The model is stateless: utilization at any time is a pure
// function of (params, t), which keeps the transfer engine's rate
// re-evaluation cheap and the simulation reproducible.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace pandarus::grid {

class LoadModel {
 public:
  struct Params {
    double mean_util = 0.3;       ///< long-run average utilization
    double diurnal_amplitude = 0.2;
    double phase_hours = 0.0;     ///< per-link phase shift
    double burst_prob = 0.15;     ///< probability a bin is congested
    double burst_util = 0.45;     ///< extra utilization during a burst
    util::SimDuration burst_bin = util::minutes(10);
    double max_util = 0.95;       ///< never fully starve a link
    std::uint64_t seed = 0;       ///< per-link stream
  };

  LoadModel() = default;
  explicit LoadModel(const Params& params) : params_(params) {}

  /// Background utilization in [0, max_util] at simulation time t.
  [[nodiscard]] double utilization(util::SimTime t) const noexcept;

  /// Fraction of nominal capacity available to foreground transfers.
  [[nodiscard]] double available_fraction(util::SimTime t) const noexcept {
    return 1.0 - utilization(t);
  }

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace pandarus::grid
