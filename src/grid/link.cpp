#include "grid/link.hpp"

// NetworkLink is currently header-only; this translation unit anchors the
// module library and keeps a stable home for future out-of-line logic.

namespace pandarus::grid {}  // namespace pandarus::grid
