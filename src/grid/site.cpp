#include "grid/site.hpp"

namespace pandarus::grid {

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kT0: return "Tier-0";
    case Tier::kT1: return "Tier-1";
    case Tier::kT2: return "Tier-2";
    case Tier::kT3: return "Tier-3";
  }
  return "Tier-?";
}

}  // namespace pandarus::grid
