#include "grid/builder.hpp"

#include <algorithm>
#include <cmath>
#include <array>
#include <cstdio>
#include <string>

namespace pandarus::grid {
namespace {

constexpr std::array<const char*, 20> kT1Countries = {
    "USA",     "UK",     "France",  "Germany", "Italy",
    "Canada",  "Spain",  "Netherlands", "NorthEurope", "Taiwan",
    "Russia",  "Korea",  "Japan",   "Brazil",  "Poland",
    "Czechia", "Sweden", "Norway",  "Israel",  "Australia"};

constexpr std::array<const char*, 24> kT2Countries = {
    "USA",      "UK",      "France",   "Germany",  "Italy",   "Switzerland",
    "Spain",    "Portugal","Greece",   "Austria",  "Romania", "Slovenia",
    "Japan",    "China",   "India",    "SouthAfrica", "Chile", "Mexico",
    "Turkey",   "Denmark", "Finland",  "Belgium",  "Ireland", "Hungary"};

double lognormal_factor(util::Rng& rng, double sigma) {
  return rng.lognormal_median(1.0, sigma);
}

Site make_site(std::string name, std::string country, Tier tier,
               util::Rng& rng) {
  Site s;
  s.name = std::move(name);
  s.country = std::move(country);
  s.tier = tier;
  switch (tier) {
    case Tier::kT0:
      s.cpu_slots = 30'000;
      s.storage_bytes = 400'000'000'000'000'000ULL;  // 400 PB
      s.lan_bandwidth_bps = 20e9;
      s.max_parallel_streams = 16;
      s.base_failure_prob = 0.05;
      s.batch_delay_mean_ms = 150'000.0;
      break;
    case Tier::kT1:
      s.cpu_slots = static_cast<std::uint32_t>(
          6'000 * lognormal_factor(rng, 0.4));
      s.storage_bytes = 80'000'000'000'000'000ULL;  // 80 PB
      s.lan_bandwidth_bps = 8e9 * lognormal_factor(rng, 0.3);
      s.max_parallel_streams = 8;
      s.base_failure_prob = 0.07;
      s.batch_delay_mean_ms = 140'000.0 * lognormal_factor(rng, 0.5);
      break;
    case Tier::kT2:
      s.cpu_slots = static_cast<std::uint32_t>(
          1'200 * lognormal_factor(rng, 0.6));
      s.storage_bytes = 8'000'000'000'000'000ULL;  // 8 PB
      s.lan_bandwidth_bps = 2e9 * lognormal_factor(rng, 0.5);
      s.max_parallel_streams = 4;
      s.base_failure_prob = 0.11;
      s.batch_delay_mean_ms = 200'000.0 * lognormal_factor(rng, 0.7);
      break;
    case Tier::kT3:
      s.cpu_slots = static_cast<std::uint32_t>(
          150 * lognormal_factor(rng, 0.5));
      s.storage_bytes = 500'000'000'000'000ULL;  // 0.5 PB
      s.lan_bandwidth_bps = 500e6 * lognormal_factor(rng, 0.5);
      s.max_parallel_streams = 2;
      s.base_failure_prob = 0.15;
      s.batch_delay_mean_ms = 300'000.0 * lognormal_factor(rng, 0.7);
      break;
  }
  s.cpu_slots = std::max<std::uint32_t>(s.cpu_slots, 8);
  return s;
}

double wan_capacity(const TopologyParams& params, Tier a, Tier b) {
  const auto lo = static_cast<int>(a) < static_cast<int>(b) ? a : b;
  const auto hi = static_cast<int>(a) < static_cast<int>(b) ? b : a;
  if (hi == Tier::kT3) return params.t3_bps;
  if (lo == Tier::kT0) return params.t0_t1_bps;  // T0 peers at T1 speed
  if (lo == Tier::kT1 && hi == Tier::kT1) return params.t1_t1_bps;
  if (lo == Tier::kT1) return params.t1_t2_bps;
  return params.t2_t2_bps;
}

}  // namespace

Topology build_wlcg_like(const TopologyParams& params) {
  util::Rng rng(params.seed);
  util::Rng site_rng = rng.fork(0x5174e5);
  util::Rng link_rng = rng.fork(0x11171c);

  Topology topo;

  topo.add_site(make_site("CERN-PROD", "Switzerland", Tier::kT0, site_rng));

  char buf[64];
  for (std::uint32_t i = 0; i < params.n_tier1; ++i) {
    const char* country = kT1Countries[i % kT1Countries.size()];
    std::snprintf(buf, sizeof buf, "%s-T1-%02u", country, i);
    topo.add_site(make_site(buf, country, Tier::kT1, site_rng));
  }
  for (std::uint32_t i = 0; i < params.n_tier2; ++i) {
    const char* country = kT2Countries[i % kT2Countries.size()];
    std::snprintf(buf, sizeof buf, "%s-T2-%02u", country, i);
    topo.add_site(make_site(buf, country, Tier::kT2, site_rng));
  }
  for (std::uint32_t i = 0; i < params.n_tier3; ++i) {
    const char* country = kT2Countries[(i * 5) % kT2Countries.size()];
    std::snprintf(buf, sizeof buf, "%s-T3-%02u", country, i);
    topo.add_site(make_site(buf, country, Tier::kT3, site_rng));
  }

  // Site-quality pathologies: sequential staging frontends and congested
  // batch systems are assigned to a deterministic random subset of
  // non-T0 sites.
  for (const Site& s : topo.sites()) {
    if (s.tier == Tier::kT0) continue;
    Site& mut = topo.site_mutable(s.id);
    if (site_rng.bernoulli(params.sequential_site_fraction)) {
      mut.max_parallel_streams = 1;
    }
    if (site_rng.bernoulli(params.congested_site_fraction)) {
      mut.batch_delay_mean_ms *= 12.0;
      mut.base_failure_prob *= 1.8;
    }
  }
  // Guarantee the expected number of sequential-frontend Tier-1s:
  // tape-heavy T1s with single-stream pilots are the population behind
  // the paper's Fig. 10 case study, and an unlucky seed must not erase
  // them.
  if (params.sequential_site_fraction > 0.0 && params.n_tier1 > 0) {
    const auto t1s = topo.sites_of_tier(Tier::kT1);
    const auto want = static_cast<std::size_t>(std::max(
        1.0, std::ceil(static_cast<double>(t1s.size()) *
                       params.sequential_site_fraction)));
    std::size_t have = 0;
    for (SiteId id : t1s) {
      have += topo.site(id).max_parallel_streams == 1;
    }
    for (std::size_t i = 0; have < want && i < t1s.size(); ++i) {
      // Deterministic fill order spread across the list.
      const SiteId id = t1s[(i * 7 + t1s.size() / 2) % t1s.size()];
      if (topo.site(id).max_parallel_streams != 1) {
        topo.site_mutable(id).max_parallel_streams = 1;
        ++have;
      }
    }
  }

  // Explicit directional links for every ordered pair.  Local (i, i)
  // pseudo-links take the site's LAN parameters; WAN links get a
  // tier-pair capacity with lognormal heterogeneity and an independent
  // background-load stream per direction (Fig. 7 shows asymmetric usage
  // across opposite directions of the same pair).
  const auto n = static_cast<SiteId>(topo.site_count());
  for (SiteId i = 0; i < n; ++i) {
    for (SiteId j = 0; j < n; ++j) {
      NetworkLink link;
      link.key = {i, j};
      const std::uint64_t link_seed =
          util::hash_mix(params.seed, (static_cast<std::uint64_t>(i) << 32) | j);
      LoadModel::Params load;
      load.seed = link_seed;
      load.phase_hours = util::hash_unit(util::hash_mix(link_seed, 1)) * 24.0;
      if (i == j) {
        const Site& s = topo.site(i);
        link.capacity_bps = s.lan_bandwidth_bps;
        link.latency_ms = 1.0;
        // The storage frontend's admission limit is independent of the
        // per-pilot stream limit: even "sequential pilot" sites serve
        // several concurrent transfers.
        switch (s.tier) {
          case Tier::kT0: link.max_active = 16; break;
          case Tier::kT1: link.max_active = 10; break;
          case Tier::kT2: link.max_active = 6; break;
          case Tier::kT3: link.max_active = 4; break;
        }
        load.mean_util = 0.25;
        load.diurnal_amplitude = 0.2;
        load.burst_prob = 0.2;
        load.burst_util = 0.55;
      } else {
        const Tier ta = topo.site(i).tier;
        const Tier tb = topo.site(j).tier;
        link.capacity_bps = wan_capacity(params, ta, tb) *
                            link_rng.lognormal_median(1.0, 0.6);
        link.latency_ms = 20.0 + 160.0 * link_rng.next_double();
        link.max_active = 6;
        load.mean_util = 0.35;
        load.diurnal_amplitude = 0.25;
        load.burst_prob = 0.15;
        load.burst_util = 0.45;
      }
      link.load = LoadModel(load);
      topo.add_link(std::move(link));
    }
  }
  return topo;
}

}  // namespace pandarus::grid
