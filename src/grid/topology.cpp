#include "grid/topology.hpp"

#include <cassert>

namespace pandarus::grid {

SiteId Topology::add_site(Site site) {
  const auto id = static_cast<SiteId>(sites_.size());
  site.id = id;
  by_name_.emplace(site.name, id);
  sites_.push_back(std::move(site));
  return id;
}

void Topology::add_link(NetworkLink link) {
  links_[link.key] = std::move(link);
}

std::optional<SiteId> Topology::find_site(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::string_view Topology::site_name(SiteId id) const {
  if (id == kUnknownSite) return "UNKNOWN";
  return sites_.at(id).name;
}

const NetworkLink& Topology::link(SiteId src, SiteId dst) const {
  const LinkKey key{src, dst};
  auto it = links_.find(key);
  if (it != links_.end()) return it->second;

  // Synthesize a sensible default so callers never dereference a missing
  // link.  Local pseudo-links use the site's LAN parameters.
  NetworkLink fallback;
  fallback.key = key;
  if (key.is_local() && src < sites_.size()) {
    const Site& s = sites_[src];
    fallback.capacity_bps = s.lan_bandwidth_bps;
    fallback.latency_ms = 1.0;
    fallback.max_active = std::max(4u, s.max_parallel_streams);
  } else {
    fallback.capacity_bps = 100e6;
    fallback.latency_ms = 100.0;
    fallback.max_active = 4;
  }
  auto [inserted, _] = links_.emplace(key, fallback);
  return inserted->second;
}

bool Topology::has_link(SiteId src, SiteId dst) const {
  return links_.contains(LinkKey{src, dst});
}

std::vector<SiteId> Topology::sites_of_tier(Tier tier) const {
  std::vector<SiteId> result;
  for (const Site& s : sites_) {
    if (s.tier == tier) result.push_back(s.id);
  }
  return result;
}

}  // namespace pandarus::grid
