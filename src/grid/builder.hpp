// WLCG-like topology generation.
//
// The real grid spans ~200 centers in 40+ countries organized in four
// tiers (§2).  The builder synthesizes a topology with the same
// structure: one CERN-like Tier-0, a handful of fat national Tier-1s, a
// long tail of Tier-2s and small Tier-3s, heterogeneous link capacities
// (fat T0<->T1 mesh, thinner edges elsewhere) and heterogeneous site
// quality (batch delays, stream limits, reliability).
#pragma once

#include <cstdint>

#include "grid/topology.hpp"
#include "util/rng.hpp"

namespace pandarus::grid {

struct TopologyParams {
  std::uint32_t n_tier1 = 10;
  std::uint32_t n_tier2 = 28;
  std::uint32_t n_tier3 = 8;
  std::uint64_t seed = 42;

  // Nominal WAN capacities by tier pair (bytes/s).  Individual links get
  // a lognormal multiplier so the grid is heterogeneous.
  double t0_t1_bps = 8e9;
  double t1_t1_bps = 4e9;
  double t1_t2_bps = 1.2e9;
  double t2_t2_bps = 400e6;
  double t3_bps = 120e6;

  /// Fraction of sites whose storage frontend admits only one staging
  /// stream at a time (sequential staging, Fig. 10).
  double sequential_site_fraction = 0.25;

  /// Fraction of sites with a pathologically slow batch system (the
  /// local-queueing outliers of Fig. 5).
  double congested_site_fraction = 0.15;
};

/// Builds the full topology: sites plus an explicit directional link for
/// every ordered site pair (including the local (i, i) pseudo-links).
[[nodiscard]] Topology build_wlcg_like(const TopologyParams& params);

}  // namespace pandarus::grid
