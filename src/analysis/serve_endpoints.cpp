#include "analysis/serve_endpoints.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/critical_path.hpp"
#include "analysis/events_replay.hpp"
#include "analysis/summary.hpp"
#include "core/relaxed.hpp"
#include "obs/event_log.hpp"
#include "obs/flow.hpp"
#include "obs/health.hpp"
#include "obs/serve.hpp"

namespace pandarus::analysis {
namespace {

using obs::detail::append_json_double;
using obs::detail::append_json_escaped;

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  append_json_escaped(out, s);
  out += '"';
}

std::string site_label(const std::map<std::int64_t, std::string>& names,
                       std::int64_t site) {
  const auto it = names.find(site);
  if (it != names.end()) return it->second;
  return "site_" + std::to_string(site);
}

void append_method(std::string& out, const char* name,
                   const core::MatchResult& r) {
  out += '"';
  out += name;
  out += "\":{\"matched_jobs\":";
  out += std::to_string(r.matched_job_count());
  out += ",\"matched_transfers\":";
  out += std::to_string(r.matched_transfer_count());
  out += '}';
}

std::string summary_json(const ReplayResult& replay,
                         const core::TriMatchResult& tri,
                         std::uint64_t watermark, bool closed) {
  const OverallSummary s = overall_summary(replay.store, tri.exact);
  std::string out = "{\"watermark\":" + std::to_string(watermark);
  out += closed ? ",\"closed\":true" : ",\"closed\":false";
  out += ",\"lines_parsed\":" + std::to_string(replay.lines_parsed);
  out += ",\"seed\":" + std::to_string(replay.seed);
  out += ",\"days\":";
  append_json_double(out, replay.days);
  out += ",\"window_begin\":" + std::to_string(replay.window_begin);
  out += ",\"window_end\":" + std::to_string(replay.window_end);
  out += ",\"jobs\":" + std::to_string(s.total_jobs);
  out += ",\"transfers\":" + std::to_string(s.total_transfers);
  out += ",\"transfers_with_taskid\":" +
         std::to_string(s.transfers_with_taskid);
  out += ',';
  append_method(out, "exact", tri.exact);
  out += ',';
  append_method(out, "rm1", tri.rm1);
  out += ',';
  append_method(out, "rm2", tri.rm2);
  out += ",\"matched_transfer_pct\":";
  append_json_double(out, s.matched_transfer_pct);
  out += ",\"matched_job_pct\":";
  append_json_double(out, s.matched_job_pct);
  out += ",\"mean_queue_fraction\":";
  append_json_double(out, s.mean_queue_fraction);
  out += ",\"geomean_queue_fraction\":";
  append_json_double(out, s.geomean_queue_fraction);
  out += "}\n";
  return out;
}

std::string tables_json(const ReplayResult& replay,
                        const core::TriMatchResult& tri,
                        std::uint64_t watermark) {
  const ActivityBreakdown t1 = activity_breakdown(replay.store, tri.exact);
  const MethodComparison t2 = compare_methods(replay.store, tri);
  std::string out = "{\"watermark\":" + std::to_string(watermark);
  out += ",\"table1\":{\"rows\":[";
  for (std::size_t i = 0; i < t1.rows.size(); ++i) {
    const ActivityRow& row = t1.rows[i];
    if (i != 0) out += ',';
    out += "{\"activity\":";
    append_quoted(out, dms::activity_name(row.activity));
    out += ",\"matched\":" + std::to_string(row.matched);
    out += ",\"total\":" + std::to_string(row.total);
    out += ",\"fraction\":";
    append_json_double(out, row.percentage());
    out += '}';
  }
  out += "],\"matched_total\":" + std::to_string(t1.matched_total);
  out += ",\"taskid_total\":" + std::to_string(t1.taskid_total);
  out += "},\"table2a\":[";
  for (std::size_t i = 0; i < t2.transfers.size(); ++i) {
    const MethodTransferRow& row = t2.transfers[i];
    if (i != 0) out += ',';
    out += "{\"method\":";
    append_quoted(out, core::method_name(row.method));
    out += ",\"local\":" + std::to_string(row.local);
    out += ",\"remote\":" + std::to_string(row.remote);
    out += ",\"matched_pct\":";
    append_json_double(out, row.matched_pct);
    out += '}';
  }
  out += "],\"table2b\":[";
  for (std::size_t i = 0; i < t2.jobs.size(); ++i) {
    const MethodJobRow& row = t2.jobs[i];
    if (i != 0) out += ',';
    out += "{\"method\":";
    append_quoted(out, core::method_name(row.method));
    out += ",\"all_local\":" + std::to_string(row.all_local);
    out += ",\"all_remote\":" + std::to_string(row.all_remote);
    out += ",\"mixed\":" + std::to_string(row.mixed);
    out += ",\"matched_pct\":";
    append_json_double(out, row.matched_pct);
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string series_json(const ReplayResult& replay, std::uint64_t watermark) {
  std::string out = "{\"watermark\":" + std::to_string(watermark);
  out += ",\"interval_ms\":" + std::to_string(replay.sample_interval_ms);
  out += ",\"columns\":[\"ts\"";
  for (const std::string& column : replay.sample_columns) {
    out += ',';
    append_quoted(out, column);
  }
  out += "],\"rows\":[";
  for (std::size_t i = 0; i < replay.samples.size(); ++i) {
    const ReplayResult::Sample& sample = replay.samples[i];
    if (i != 0) out += ',';
    out += '[' + std::to_string(sample.ts);
    for (const std::int64_t v : sample.values) {
      out += ',' + std::to_string(v);
    }
    out += ']';
  }
  out += "]}\n";
  return out;
}

std::string critical_path_json(
    const obs::FlowTotals& totals,
    const std::vector<obs::LinkCritical>& ranking,
    const std::map<std::int64_t, std::string>& site_names,
    std::uint64_t watermark, bool tracker) {
  std::string out = "{\"watermark\":" + std::to_string(watermark);
  out += tracker ? ",\"tracker\":true" : ",\"tracker\":false";
  out += ",\"flows\":" + std::to_string(totals.flows);
  out += ",\"failed\":" + std::to_string(totals.failed);
  out += ",\"sequential_staging\":" +
         std::to_string(totals.sequential_staging);
  out += ",\"redundant_transfers\":" +
         std::to_string(totals.redundant_transfers);
  out += ",\"watchdog_releases\":" + std::to_string(totals.watchdog_releases);
  out += ",\"reroutes\":" + std::to_string(totals.reroutes);
  out += ",\"links\":[";
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    const obs::LinkCritical& link = ranking[i];
    if (i != 0) out += ',';
    out += "{\"src\":" + std::to_string(link.src);
    out += ",\"dst\":" + std::to_string(link.dst);
    out += ",\"src_name\":";
    append_quoted(out, site_label(site_names, link.src));
    out += ",\"dst_name\":";
    append_quoted(out, site_label(site_names, link.dst));
    out += ",\"critical_ms\":" + std::to_string(link.critical_ms);
    out += ",\"flows\":" + std::to_string(link.flows);
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::map<std::int64_t, std::string> wide_site_names(
    const ReplayResult& replay) {
  std::map<std::int64_t, std::string> names;
  for (const auto& [id, name] : replay.site_names) {
    names.emplace(static_cast<std::int64_t>(id), name);
  }
  return names;
}

/// Memoized live snapshot: every /api body except critical-path is
/// rebuilt only when the EventLog publication watermark moves.
struct LiveCache {
  std::mutex mutex;
  bool valid = false;
  std::uint64_t watermark = 0;
  std::string summary;
  std::string tables;
  std::string series;
  std::map<std::int64_t, std::string> site_names;

  /// mutex held.  Replays the published prefix and rebuilds the bodies
  /// when the watermark moved; no-op otherwise.
  void refresh() {
    obs::EventLog* log = obs::EventLog::installed();
    if (log == nullptr) {
      if (!valid) {
        const ReplayResult empty;
        const core::TriMatchResult tri;
        summary = summary_json(empty, tri, 0, false);
        tables = tables_json(empty, tri, 0);
        series = series_json(empty, 0);
        valid = true;
      }
      return;
    }
    if (valid && log->watermark() == watermark) return;
    std::string ndjson;
    const std::uint64_t wm = log->snapshot_ndjson(ndjson);
    std::istringstream in(std::move(ndjson));
    const ReplayResult replay = replay_events(in);
    // Match only once harvest records exist: the store is empty until
    // the campaign's closing harvest, and skipping the matcher before
    // that keeps mid-campaign scrapes from advancing the global match
    // counters the Sampler records (NDJSON byte-identity, server on or
    // off).
    core::TriMatchResult tri;
    const auto counts = replay.store.counts();
    if (counts.jobs > 0 || counts.transfers > 0) {
      const core::Matcher matcher(replay.store);
      tri = core::run_all_methods(matcher);
    }
    const bool closed = log->closed();
    summary = summary_json(replay, tri, wm, closed);
    tables = tables_json(replay, tri, wm);
    series = series_json(replay, wm);
    site_names = wide_site_names(replay);
    watermark = wm;
    valid = true;
  }
};

}  // namespace

void attach_live_status(obs::StatusServer& server) {
  auto cache = std::make_shared<LiveCache>();
  server.set_json_endpoint("/api/summary", [cache] {
    std::scoped_lock lock(cache->mutex);
    cache->refresh();
    return cache->summary;
  });
  server.set_json_endpoint("/api/tables", [cache] {
    std::scoped_lock lock(cache->mutex);
    cache->refresh();
    return cache->tables;
  });
  server.set_json_endpoint("/api/series", [cache] {
    std::scoped_lock lock(cache->mutex);
    cache->refresh();
    return cache->series;
  });
  server.set_json_endpoint("/api/critical-path", [cache] {
    // Totals and ranking come mutex-guarded from the live tracker, so
    // this endpoint is always current; only the site-name resolution
    // rides on the memoized replay.
    obs::FlowTotals totals;
    std::vector<obs::LinkCritical> ranking;
    const bool tracker = obs::FlowTracker::installed() != nullptr;
    if (tracker) {
      totals = obs::FlowTracker::installed()->totals();
      ranking = obs::FlowTracker::installed()->link_ranking();
    }
    std::scoped_lock lock(cache->mutex);
    cache->refresh();
    return critical_path_json(totals, ranking, cache->site_names,
                              cache->watermark, tracker);
  });
  server.set_json_endpoint("/api/alerts", [] {
    // Straight from the installed engine's mutex-guarded state — the
    // same document a replay of the published stream derives, which is
    // exactly what the CI parity gate compares.
    if (obs::HealthEngine* health = obs::HealthEngine::installed()) {
      return health->status_json();
    }
    return std::string("{\"enabled\":false}");
  });
}

void attach_replay_status(obs::StatusServer& server,
                          std::shared_ptr<const ReplayResult> replay,
                          std::shared_ptr<const std::string> alerts_json) {
  core::TriMatchResult tri;
  const auto counts = replay->store.counts();
  if (counts.jobs > 0 || counts.transfers > 0) {
    const core::Matcher matcher(replay->store);
    tri = core::run_all_methods(matcher);
  }
  const auto watermark =
      static_cast<std::uint64_t>(replay->lines_parsed);
  const bool closed = replay->log_stats.present;
  const FlowAnalysis flows = rebuild_flows(*replay);
  auto summary = std::make_shared<const std::string>(
      summary_json(*replay, tri, watermark, closed));
  auto tables = std::make_shared<const std::string>(
      tables_json(*replay, tri, watermark));
  auto series = std::make_shared<const std::string>(
      series_json(*replay, watermark));
  auto critical = std::make_shared<const std::string>(critical_path_json(
      flows.totals, flows.link_ranking, wide_site_names(*replay), watermark,
      true));
  server.set_json_endpoint("/api/summary", [summary] { return *summary; });
  server.set_json_endpoint("/api/tables", [tables] { return *tables; });
  server.set_json_endpoint("/api/series", [series] { return *series; });
  server.set_json_endpoint("/api/critical-path",
                           [critical] { return *critical; });
  server.set_json_endpoint("/api/alerts", [alerts_json] {
    if (alerts_json != nullptr) return *alerts_json;
    return std::string("{\"enabled\":false}");
  });
}

}  // namespace pandarus::analysis
