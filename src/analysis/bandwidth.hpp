// Bandwidth-usage time series (paper Figs. 7 and 8).
//
// The paper plots "accumulated bandwidth usage of matched transfers"
// over time at selected remote site pairs and local sites.  Each
// transfer's bytes are spread uniformly over its [start, finish)
// interval and accumulated into fixed-width bins; the resulting MBps
// series exhibits the fluctuation and asymmetry the paper reports.
#pragma once

#include <span>
#include <vector>

#include "core/match_types.hpp"
#include "grid/topology.hpp"

namespace pandarus::analysis {

struct SeriesPoint {
  util::SimTime bin_start = 0;
  double mbps = 0.0;
};

struct PairVolume {
  grid::SiteId src = grid::kUnknownSite;
  grid::SiteId dst = grid::kUnknownSite;
  std::uint64_t bytes = 0;
  std::size_t transfers = 0;
};

/// Bandwidth series for transfers between (src, dst), restricted to the
/// matched transfer set when `matched` is non-null (pass nullptr for all
/// successful transfers).  Bins of width `bin` cover the span of the
/// contributing transfers; empty leading/trailing bins are trimmed.
[[nodiscard]] std::vector<SeriesPoint> bandwidth_series(
    const telemetry::MetadataStore& store, const core::MatchResult* matched,
    grid::SiteId src, grid::SiteId dst, util::SimDuration bin);

/// The k (src, dst) pairs with the most matched bytes; `local` selects
/// diagonal (src == dst) or off-diagonal pairs.  Used to pick the six
/// links shown in each of Figs. 7/8.
[[nodiscard]] std::vector<PairVolume> top_matched_pairs(
    const telemetry::MetadataStore& store, const core::MatchResult& matched,
    bool local, std::size_t k);

struct SeriesStats {
  double peak_mbps = 0.0;
  double mean_mbps = 0.0;  ///< over non-empty bins
  std::size_t active_bins = 0;
  /// Peak over mean: the fluctuation measure the figures illustrate.
  [[nodiscard]] double burstiness() const noexcept {
    return mean_mbps > 0.0 ? peak_mbps / mean_mbps : 0.0;
  }
};
[[nodiscard]] SeriesStats series_stats(std::span<const SeriesPoint> series);

}  // namespace pandarus::analysis
