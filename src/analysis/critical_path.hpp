// Offline critical-path analysis over causal flows (obs::flow).
//
// Two entry points produce the same FlowAnalysis:
//
//   * analyze_flows(tracker)  — read a live obs::FlowTracker after a
//     campaign (the online path already ran the decomposition; this
//     just harvests and ranks);
//   * rebuild_flows(replay)   — feed the flow/transfer lifecycle rows
//     captured by analysis::replay_events, in stream order, to a
//     detached (silent) FlowTracker.  Because the rebuild engine *is*
//     the live analyzer, a replayed stream — NDJSON text or a binary
//     colstore file, both arrive through analysis::EventSource — yields
//     bit-identical phase breakdowns, flags and link attributions; the
//     cross-check test in tests/events_replay_test.cpp asserts exactly
//     that.
//
// On top of the per-flow summaries this module computes exact per-phase
// quantiles (the offline path can afford to sort; the online path uses
// P² sketches in obs::Registry), renders the wait-attribution table
// used by examples/pandarus-flow and analysis::report_html, and
// re-exports flamegraph collapsed stacks with site names resolved.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/events_replay.hpp"
#include "obs/flow.hpp"

namespace pandarus::analysis {

/// Exact quantiles of one phase over all completed flows, in ms.
struct PhaseQuantiles {
  std::string phase;
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;
  std::int64_t p99 = 0;
  std::int64_t max = 0;
  std::int64_t total_ms = 0;  ///< sum over flows
};

struct FlowAnalysis {
  std::vector<obs::FlowSummary> flows;
  obs::FlowTotals totals{};
  /// Campaign-wide links by critical stage-in ms, descending.
  std::vector<obs::LinkCritical> link_ranking;
  /// broker, stage_in, stage_in_serialized, queue, run, stage_out, wall.
  std::vector<PhaseQuantiles> quantiles;
  std::map<std::int64_t, std::string> site_names;
  /// Flamegraph collapsed stacks with site names resolved (same format
  /// as obs::FlowTracker::to_collapsed).
  std::string collapsed;

  [[nodiscard]] std::string site_label(std::int64_t site) const;
};

/// Exact per-phase quantiles (nearest-rank on sorted values).
[[nodiscard]] std::vector<PhaseQuantiles> flow_phase_quantiles(
    const std::vector<obs::FlowSummary>& flows);

/// Harvests a tracker the simulation populated.  `site_names` labels
/// sites in the collapsed stacks and rendered tables (numeric fallback).
[[nodiscard]] FlowAnalysis analyze_flows(
    const obs::FlowTracker& tracker,
    std::map<std::int64_t, std::string> site_names = {});

/// Rebuilds flows from a replayed event stream via a detached
/// FlowTracker fed replay.flow_events in stream order.
[[nodiscard]] FlowAnalysis rebuild_flows(const ReplayResult& replay);

/// Fixed-width wait-attribution report: phase quantiles, campaign
/// totals, the top-offending links, and the flagged sequential-staging
/// case-study flows with their bottleneck link.
[[nodiscard]] std::string render_attribution(const FlowAnalysis& analysis,
                                             std::size_t top_links = 10);

}  // namespace pandarus::analysis
