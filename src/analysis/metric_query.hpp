// Out-of-core metric query engine: filter / time-bucket / group-by /
// aggregate over an event stream, streaming one event at a time through
// analysis::EventSource so a 10M-event campaign never has to fit in
// memory.  Working state is one accumulator per (bucket, group) cell —
// quantiles use the registry's P² sketches, so each cell is O(1) bytes
// regardless of how many events land in it.
//
// Both container formats run through the same accumulators in stream
// order, and the colstore round-trip is exact, so a query over a
// campaign's NDJSON and its colstore encoding produces byte-identical
// JSON — the property the CI parity gate checks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "analysis/event_source.hpp"

namespace pandarus::analysis {

enum class MetricAggregate {
  kCount,
  kSum,
  kMin,
  kMax,
  kMean,
  kP50,
  kP95,
  kP99,
};

/// "count" | "sum" | "min" | "max" | "mean" | "p50" | "p95" | "p99";
/// false on anything else.
bool parse_metric_aggregate(std::string_view name, MetricAggregate& out);
[[nodiscard]] std::string_view metric_aggregate_name(MetricAggregate agg);

struct MetricQuerySpec {
  /// Event kinds to keep; empty keeps everything.
  std::vector<std::string> kinds;
  std::int64_t ts_from = std::numeric_limits<std::int64_t>::min();
  std::int64_t ts_to = std::numeric_limits<std::int64_t>::max();
  /// Bucket width in simulated ms; 0 = one bucket spanning the stream.
  std::int64_t bucket_ms = 0;
  /// Field names whose values form the group key ("kind" selects the
  /// event kind; missing fields group under "").
  std::vector<std::string> group_by;
  /// Field the value aggregates read; count works without one.
  std::string value_field;
  std::vector<MetricAggregate> aggregates = {MetricAggregate::kCount};
};

struct MetricQueryRow {
  std::int64_t bucket_start = 0;  ///< inclusive; 0 when bucket_ms == 0
  std::vector<std::string> group;
  std::vector<double> values;  ///< parallel to spec.aggregates
  std::uint64_t events = 0;    ///< events that landed in this cell
};

struct MetricQueryResult {
  std::vector<MetricQueryRow> rows;  ///< sorted by (bucket, group)
  std::uint64_t events_scanned = 0;  ///< events read from the source
  std::uint64_t events_matched = 0;  ///< events past the filters
  std::size_t source_skipped = 0;
  std::string source_error;
};

/// Streams `source` to exhaustion through the spec's filters and
/// accumulators.
MetricQueryResult run_metric_query(EventSource& source,
                                   const MetricQuerySpec& spec);

/// Deterministic JSON document (spec echo + rows); doubles rendered
/// with the shared %.17g writer so NDJSON/colstore outputs are
/// byte-comparable.
void write_metric_query_json(std::ostream& out, const MetricQuerySpec& spec,
                             const MetricQueryResult& result);

}  // namespace pandarus::analysis
