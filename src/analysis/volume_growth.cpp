#include "analysis/volume_growth.hpp"

namespace pandarus::analysis {

bool is_shutdown_year(int year) noexcept {
  return year == 2013 || year == 2014 ||  // LS1
         (year >= 2019 && year <= 2021);  // LS2 (+ extended restart)
}

std::vector<YearVolume> simulate_volume_growth(
    const VolumeGrowthParams& params) {
  std::vector<YearVolume> out;
  double total = 0.0;
  double run_ingest = params.initial_ingest_pb;
  for (int year = params.first_year; year <= params.last_year; ++year) {
    double ingest;
    if (is_shutdown_year(year)) {
      // Shutdowns still ingest simulation/reprocessing output, at a
      // fraction of the running rate; the run rate does not compound.
      ingest = run_ingest * params.shutdown_ingest_factor;
    } else {
      ingest = run_ingest;
      run_ingest *= params.run_growth;
    }
    const double deleted = ingest * params.deletion_fraction;
    total += ingest - deleted;
    out.push_back({year, ingest, deleted, total});
  }
  return out;
}

}  // namespace pandarus::analysis
