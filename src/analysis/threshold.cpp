#include "analysis/threshold.hpp"

namespace pandarus::analysis {

const char* status_class_name(StatusClass c) noexcept {
  switch (c) {
    case StatusClass::kJobOkTaskOk: return "job ok / task ok";
    case StatusClass::kJobFailTaskOk: return "job fail / task ok";
    case StatusClass::kJobOkTaskFail: return "job ok / task fail";
    case StatusClass::kJobFailTaskFail: return "job fail / task fail";
  }
  return "?";
}

StatusClass classify(bool job_failed, bool task_failed) noexcept {
  if (!job_failed && !task_failed) return StatusClass::kJobOkTaskOk;
  if (job_failed && !task_failed) return StatusClass::kJobFailTaskOk;
  if (!job_failed && task_failed) return StatusClass::kJobOkTaskFail;
  return StatusClass::kJobFailTaskFail;
}

std::array<std::size_t, kStatusClassCount> ThresholdSweep::above(
    double threshold) const {
  std::array<std::size_t, kStatusClassCount> out{};
  // Find the row at this threshold (or the closest below) and subtract
  // its cumulative counts from the class totals.
  const ThresholdRow* best = nullptr;
  for (const ThresholdRow& row : rows) {
    if (row.threshold <= threshold &&
        (best == nullptr || row.threshold > best->threshold)) {
      best = &row;
    }
  }
  for (std::size_t c = 0; c < kStatusClassCount; ++c) {
    out[c] = class_totals[c] - (best != nullptr ? best->counts[c] : 0);
  }
  return out;
}

ThresholdSweep run_threshold_sweep(std::span<const BreakdownRow> rows,
                                   std::span<const double> thresholds) {
  ThresholdSweep sweep;
  sweep.total_jobs = rows.size();
  for (const BreakdownRow& row : rows) {
    ++sweep.class_totals[static_cast<std::size_t>(
        classify(row.job_failed, row.task_failed))];
  }
  for (double t : thresholds) {
    ThresholdRow out;
    out.threshold = t;
    for (const BreakdownRow& row : rows) {
      if (row.queue_fraction <= t) {
        ++out.counts[static_cast<std::size_t>(
            classify(row.job_failed, row.task_failed))];
      }
    }
    sweep.rows.push_back(out);
  }
  return sweep;
}

std::vector<double> default_thresholds() {
  std::vector<double> out;
  out.reserve(100);
  for (int pct = 1; pct <= 100; ++pct) {
    out.push_back(static_cast<double>(pct) / 100.0);
  }
  return out;
}

}  // namespace pandarus::analysis
