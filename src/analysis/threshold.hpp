// Transfer-time-percentage threshold sweep (paper Fig. 9).
//
// Matched jobs fall into four job-status x task-status classes; for each
// threshold T the sweep counts, per class, the jobs whose transfer time
// is at most T percent of their queuing time (the cumulative reading of
// Fig. 9: "among jobs where both the job and its task were successful,
// 913 jobs had a transfer-time percentage below 1%...").
#pragma once

#include <array>
#include <span>
#include <vector>

#include "analysis/breakdown.hpp"

namespace pandarus::analysis {

/// Order matches the paper's legend.
enum class StatusClass : std::uint8_t {
  kJobOkTaskOk = 0,
  kJobFailTaskOk = 1,
  kJobOkTaskFail = 2,
  kJobFailTaskFail = 3,
};
inline constexpr std::size_t kStatusClassCount = 4;

[[nodiscard]] const char* status_class_name(StatusClass c) noexcept;
[[nodiscard]] StatusClass classify(bool job_failed, bool task_failed) noexcept;

struct ThresholdRow {
  double threshold = 0.0;  ///< fraction in [0, 1]
  /// Cumulative job counts with queue_fraction <= threshold, per class.
  std::array<std::size_t, kStatusClassCount> counts{};
  [[nodiscard]] std::size_t total() const noexcept {
    std::size_t n = 0;
    for (auto c : counts) n += c;
    return n;
  }
};

struct ThresholdSweep {
  std::vector<ThresholdRow> rows;
  std::array<std::size_t, kStatusClassCount> class_totals{};
  std::size_t total_jobs = 0;

  [[nodiscard]] std::size_t successful_jobs() const noexcept {
    return class_totals[0] + class_totals[2];
  }
  /// Jobs with fraction strictly above `threshold` (the paper's "72 jobs
  /// with transfer-time percentage greater than 75%"), per class.
  [[nodiscard]] std::array<std::size_t, kStatusClassCount> above(
      double threshold) const;
};

/// Runs the sweep over the given thresholds (fractions in [0, 1]).
[[nodiscard]] ThresholdSweep run_threshold_sweep(
    std::span<const BreakdownRow> rows, std::span<const double> thresholds);

/// The paper's x-axis: 1%..100% in 1% steps.
[[nodiscard]] std::vector<double> default_thresholds();

}  // namespace pandarus::analysis
