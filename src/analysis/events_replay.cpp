#include "analysis/events_replay.hpp"

#include <istream>
#include <string>

#include "analysis/event_source.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace pandarus::analysis {
namespace {

grid::SiteId site_of(const util::json::Value& v, std::string_view key) {
  return static_cast<grid::SiteId>(
      v.get_int(key, static_cast<std::int64_t>(grid::kUnknownSite)));
}

void replay_job_record(const util::json::Value& v, std::int64_t entity,
                       telemetry::MetadataStore& store) {
  telemetry::JobRecord j;
  j.pandaid = entity;
  j.jeditaskid = v.get_int("task");
  j.computing_site = site_of(v, "site");
  j.creation_time = v.get_int("created");
  j.start_time = v.get_int("started");
  j.end_time = v.get_int("ended");
  j.ninputfilebytes = static_cast<std::uint64_t>(v.get_int("in_bytes"));
  j.noutputfilebytes = static_cast<std::uint64_t>(v.get_int("out_bytes"));
  j.failed = v.get_bool("failed");
  j.error_code = static_cast<std::int32_t>(v.get_int("error"));
  j.direct_io = v.get_bool("direct_io");
  j.task_status = static_cast<wms::TaskStatus>(v.get_int("task_status"));
  store.record_job(std::move(j));
}

void replay_file_record(const util::json::Value& v, std::int64_t entity,
                        telemetry::MetadataStore& store) {
  telemetry::FileRecord f;
  f.pandaid = entity;
  f.jeditaskid = v.get_int("task");
  f.lfn = std::string(v.get_string("lfn"));
  f.dataset = std::string(v.get_string("dataset"));
  f.proddblock = std::string(v.get_string("proddblock"));
  f.scope = std::string(v.get_string("scope"));
  f.file_size = static_cast<std::uint64_t>(v.get_int("size"));
  f.direction = static_cast<telemetry::FileDirection>(v.get_int("dir"));
  store.record_file(std::move(f));
}

void replay_transfer_record(const util::json::Value& v, std::int64_t entity,
                            telemetry::MetadataStore& store) {
  telemetry::TransferRecord t;
  t.transfer_id = static_cast<std::uint64_t>(entity);
  t.jeditaskid = v.get_int("task", -1);
  t.lfn = std::string(v.get_string("lfn"));
  t.dataset = std::string(v.get_string("dataset"));
  t.proddblock = std::string(v.get_string("proddblock"));
  t.scope = std::string(v.get_string("scope"));
  t.file_size = static_cast<std::uint64_t>(v.get_int("size"));
  t.source_site = site_of(v, "src");
  t.destination_site = site_of(v, "dst");
  t.activity = static_cast<dms::Activity>(v.get_int("activity"));
  t.started_at = v.get_int("started");
  t.finished_at = v.get_int("finished");
  t.success = v.get_bool("success");
  t.error = static_cast<dms::TransferError>(v.get_int("terr"));
  store.record_transfer(std::move(t));
}

using FlowOp = ReplayResult::FlowEventRow::Op;

/// Captures one flow/transfer lifecycle line as a FlowEventRow; returns
/// false for kinds that are not part of the flow-rebuild vocabulary.
bool capture_flow_event(std::string_view kind, const util::json::Value& v,
                        std::int64_t ts, std::int64_t entity,
                        std::vector<ReplayResult::FlowEventRow>& rows) {
  ReplayResult::FlowEventRow row;
  row.ts = ts;
  row.entity = entity;
  if (kind == "flow_begin") {
    row.op = FlowOp::kFlowBegin;
    row.task = v.get_int("task", -1);
    row.attempt = static_cast<std::int32_t>(v.get_int("attempt", 1));
  } else if (kind == "flow_broker") {
    row.op = FlowOp::kFlowBroker;
    row.site = v.get_int("site", -1);
    row.candidates = v.get_int("candidates", -1);
  } else if (kind == "flow_stage") {
    row.op = FlowOp::kFlowStage;
  } else if (kind == "flow_link") {
    row.op = FlowOp::kFlowLink;
    row.transfer = static_cast<std::uint64_t>(v.get_int("transfer"));
    row.flag = v.get_bool("shared");
  } else if (kind == "flow_queue") {
    row.op = FlowOp::kFlowQueue;
    row.flag = v.get_bool("watchdog");
  } else if (kind == "flow_run") {
    row.op = FlowOp::kFlowRun;
  } else if (kind == "flow_stage_out") {
    row.op = FlowOp::kFlowStageOut;
  } else if (kind == "flow_end") {
    row.op = FlowOp::kFlowEnd;
    row.flag = v.get_bool("failed");
    row.error = static_cast<std::int32_t>(v.get_int("error"));
  } else if (kind == "transfer_submit") {
    row.op = FlowOp::kTransferSubmit;
    row.file = v.get_int("file", -1);
    row.src = v.get_int("src", -1);
    row.dst = v.get_int("dst", -1);
  } else if (kind == "transfer_start") {
    row.op = FlowOp::kTransferStart;
    row.src = v.get_int("src", -1);
    row.dst = v.get_int("dst", -1);
    row.attempt = static_cast<std::int32_t>(v.get_int("attempt", 1));
  } else if (kind == "transfer_reroute") {
    row.op = FlowOp::kTransferReroute;
  } else if (kind == "transfer_retry") {
    row.op = FlowOp::kTransferRetry;
  } else if (kind == "transfer_done" || kind == "transfer_fail") {
    row.op = FlowOp::kTransferTerminal;
    row.flag = kind == "transfer_done";
    row.registered = v.get_bool("registered");
  } else {
    return false;
  }
  rows.push_back(row);
  return true;
}

}  // namespace

std::string ReplayResult::site_name(grid::SiteId id) const {
  if (id == grid::kUnknownSite) return "UNKNOWN";
  const auto it = site_names.find(id);
  return it != site_names.end() ? it->second
                                : "site-" + std::to_string(id);
}

ReplayResult replay_events(EventSource& source) {
  ReplayResult result;
  while (const util::json::Value* event = source.next()) {
    const util::json::Value& v = *event;
    const std::string_view kind = v.get_string("kind");
    const util::json::Value* ts_field = v.find("ts");
    if (kind.empty() || ts_field == nullptr) {
      ++result.lines_skipped;
      continue;
    }
    ++result.lines_parsed;
    ++result.kind_counts[std::string(kind)];
    const std::int64_t ts = ts_field->as_int();
    const std::int64_t entity = v.get_int("entity");

    if (kind == "job_record") {
      replay_job_record(v, entity, result.store);
    } else if (kind == "file_record") {
      replay_file_record(v, entity, result.store);
    } else if (kind == "transfer_record") {
      replay_transfer_record(v, entity, result.store);
      const std::int32_t terr =
          static_cast<std::int32_t>(v.get_int("terr"));
      if (terr != 0) ++result.failure_causes[terr];
    } else if (kind == "fault_window") {
      ReplayResult::FaultWindowEvent fw;
      fw.ts = ts;
      fw.fault_kind = std::string(v.get_string("fault"));
      fw.begin = v.get_string("phase") == "begin";
      fw.site = site_of(v, "site");
      fw.src = site_of(v, "src");
      fw.dst = site_of(v, "dst");
      fw.window_begin = v.get_int("begin");
      fw.window_end = v.get_int("end");
      result.fault_windows.push_back(std::move(fw));
    } else if (kind == "site_record") {
      const auto id = static_cast<grid::SiteId>(entity);
      result.site_names[id] = std::string(v.get_string("name"));
      result.site_tiers[id] = static_cast<std::int32_t>(v.get_int("tier"));
    } else if (kind == "log_stats") {
      result.log_stats.present = true;
      result.log_stats.events = static_cast<std::uint64_t>(
          v.get_int("events"));
      result.log_stats.dropped = static_cast<std::uint64_t>(
          v.get_int("dropped"));
      result.log_stats.bytes = static_cast<std::uint64_t>(
          v.get_int("bytes"));
    } else if (kind == "campaign_meta") {
      result.seed = static_cast<std::uint64_t>(v.get_int("seed"));
      result.days = v.get_double("days");
      result.window_begin = v.get_int("window_begin");
      result.window_end = v.get_int("window_end");
      result.sample_interval_ms = v.get_int("sample_interval_ms");
    } else if (kind == "sample") {
      // Column order comes from the first sample; later samples are
      // matched by name so a mixed stream still lines up.
      if (result.sample_columns.empty()) {
        for (const auto& [key, value] : v.obj) {
          if (key == "ts" || key == "kind" || key == "entity") continue;
          result.sample_columns.push_back(key);
        }
      }
      ReplayResult::Sample row;
      row.ts = ts;
      row.values.reserve(result.sample_columns.size());
      for (const std::string& col : result.sample_columns) {
        row.values.push_back(v.get_int(col));
      }
      result.samples.push_back(std::move(row));
    } else if (kind == "link_sample") {
      ReplayResult::LinkSample ls;
      ls.ts = ts;
      ls.src = site_of(v, "src");
      ls.dst = site_of(v, "dst");
      ls.active = v.get_int("active");
      ls.queued = v.get_int("queued");
      ls.bytes_in_flight = v.get_int("bytes_in_flight");
      ls.rate_bps = v.get_double("rate_bps");
      ls.utilization = v.get_double("utilization");
      result.link_samples.push_back(ls);
    } else {
      // Flow/transfer lifecycle lines become rebuild rows; the rest
      // (job_state, rule_*, sched_epoch, ...) are lifecycle telemetry:
      // counted above, not re-simulated.
      capture_flow_event(kind, v, ts, entity, result.flow_events);
    }
  }
  result.lines_skipped += source.skipped();
  if (const std::string err = source.error(); !err.empty()) {
    util::log_warning() << "events replay: source stopped early: " << err;
  }
  return result;
}

ReplayResult replay_events(std::istream& in) {
  const auto source = make_ndjson_source(in);
  return replay_events(*source);
}

ReplayResult replay_events_file(const std::string& path) {
  const auto source = open_event_source(path);
  if (!source) {
    util::log_warning() << "events replay: cannot open " << path;
    return {};
  }
  return replay_events(*source);
}

}  // namespace pandarus::analysis
