#include "analysis/bandwidth.hpp"

#include <algorithm>
#include <map>

namespace pandarus::analysis {
namespace {

/// Iterates the transfer indices of interest: either the matched set or
/// every successful transfer in the store.
template <typename Fn>
void for_each_transfer(const telemetry::MetadataStore& store,
                       const core::MatchResult* matched, Fn&& fn) {
  if (matched != nullptr) {
    for (const core::MatchedJob& m : matched->jobs) {
      for (std::size_t ti : m.transfer_indices) fn(ti);
    }
  } else {
    for (std::size_t ti = 0; ti < store.transfers().size(); ++ti) fn(ti);
  }
}

}  // namespace

std::vector<SeriesPoint> bandwidth_series(
    const telemetry::MetadataStore& store, const core::MatchResult* matched,
    grid::SiteId src, grid::SiteId dst, util::SimDuration bin) {
  util::SimTime lo = util::kNever;
  util::SimTime hi = 0;
  std::vector<std::size_t> selected;
  // Matched sets can contain one transfer under several jobs; dedupe so
  // a shared staging transfer is not double-counted.
  for_each_transfer(store, matched, [&](std::size_t ti) {
    const telemetry::TransferRecord& t = store.transfers()[ti];
    if (!t.success || t.source_site != src || t.destination_site != dst) {
      return;
    }
    selected.push_back(ti);
  });
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());
  for (std::size_t ti : selected) {
    const telemetry::TransferRecord& t = store.transfers()[ti];
    lo = std::min(lo, t.started_at);
    hi = std::max(hi, t.finished_at);
  }
  if (selected.empty() || hi <= lo || bin <= 0) return {};

  const util::SimTime start = (lo / bin) * bin;
  const auto n_bins =
      static_cast<std::size_t>((hi - start + bin - 1) / bin);
  std::vector<double> bytes(n_bins, 0.0);
  for (std::size_t ti : selected) {
    const telemetry::TransferRecord& t = store.transfers()[ti];
    const util::SimDuration dur = t.finished_at - t.started_at;
    if (dur <= 0) continue;
    const double rate =
        static_cast<double>(t.file_size) / static_cast<double>(dur);
    for (util::SimTime at = t.started_at; at < t.finished_at;) {
      const auto b = static_cast<std::size_t>((at - start) / bin);
      const util::SimTime bin_end = start + static_cast<util::SimTime>(b + 1) * bin;
      const util::SimTime seg_end = std::min(bin_end, t.finished_at);
      bytes[b] += rate * static_cast<double>(seg_end - at);
      at = seg_end;
    }
  }

  std::vector<SeriesPoint> series;
  series.reserve(n_bins);
  const double bin_secs = util::to_seconds(bin);
  for (std::size_t b = 0; b < n_bins; ++b) {
    series.push_back({start + static_cast<util::SimTime>(b) * bin,
                      bytes[b] / bin_secs / 1e6});
  }
  // Trim empty edges for readable plots.
  while (!series.empty() && series.front().mbps == 0.0) {
    series.erase(series.begin());
  }
  while (!series.empty() && series.back().mbps == 0.0) series.pop_back();
  return series;
}

std::vector<PairVolume> top_matched_pairs(const telemetry::MetadataStore& store,
                                          const core::MatchResult& matched,
                                          bool local, std::size_t k) {
  std::map<std::pair<grid::SiteId, grid::SiteId>, PairVolume> acc;
  std::vector<std::size_t> seen;
  for_each_transfer(store, &matched, [&](std::size_t ti) {
    seen.push_back(ti);
  });
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());

  for (std::size_t ti : seen) {
    const telemetry::TransferRecord& t = store.transfers()[ti];
    if (!t.success) continue;
    if (t.source_site == grid::kUnknownSite ||
        t.destination_site == grid::kUnknownSite) {
      continue;
    }
    const bool is_local = t.source_site == t.destination_site;
    if (is_local != local) continue;
    PairVolume& pv = acc[{t.source_site, t.destination_site}];
    pv.src = t.source_site;
    pv.dst = t.destination_site;
    pv.bytes += t.file_size;
    ++pv.transfers;
  }

  std::vector<PairVolume> out;
  out.reserve(acc.size());
  for (const auto& [key, pv] : acc) out.push_back(pv);
  std::sort(out.begin(), out.end(), [](const PairVolume& a,
                                       const PairVolume& b) {
    return a.bytes > b.bytes;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

SeriesStats series_stats(std::span<const SeriesPoint> series) {
  SeriesStats s;
  double sum = 0.0;
  for (const SeriesPoint& p : series) {
    if (p.mbps <= 0.0) continue;
    ++s.active_bins;
    sum += p.mbps;
    s.peak_mbps = std::max(s.peak_mbps, p.mbps);
  }
  s.mean_mbps = s.active_bins > 0 ? sum / static_cast<double>(s.active_bins)
                                  : 0.0;
  return s;
}

}  // namespace pandarus::analysis
