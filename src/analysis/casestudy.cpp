#include "analysis/casestudy.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace pandarus::analysis {

CaseStudy CaseStudyExtractor::build(const core::MatchedJob& match,
                                    core::MatchMethod method) const {
  CaseStudy cs;
  cs.match = match;
  cs.method = method;
  cs.metrics = core::compute_metrics(*store_, match);
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t ti : match.transfer_indices) {
    const double bps = store_->transfers()[ti].throughput_bps();
    if (bps <= 0.0) continue;
    if (lo == 0.0 || bps < lo) lo = bps;
    hi = std::max(hi, bps);
  }
  cs.throughput_spread = lo > 0.0 ? hi / lo : 0.0;
  cs.redundant = core::find_redundant_transfers(*store_, match);
  cs.inferred_sites = core::infer_unknown_sites(*store_, match);
  return cs;
}

std::optional<CaseStudy> CaseStudyExtractor::sequential_staging_case() const {
  // Rank candidates by (sequential staging first, then transfer share of
  // queuing): the paper's example is distinguished precisely by its
  // back-to-back transfers.
  auto is_sequential = [this](const core::MatchedJob& match) {
    const auto& transfers = store_->transfers();
    for (std::size_t a = 0; a < match.transfer_indices.size(); ++a) {
      for (std::size_t b = a + 1; b < match.transfer_indices.size(); ++b) {
        const auto& x = transfers[match.transfer_indices[a]];
        const auto& y = transfers[match.transfer_indices[b]];
        if (x.started_at < y.finished_at && y.started_at < x.finished_at) {
          return false;
        }
      }
    }
    return true;
  };

  auto spread_of = [this](const core::MatchedJob& match) {
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t ti : match.transfer_indices) {
      const double bps = store_->transfers()[ti].throughput_bps();
      if (bps <= 0.0) continue;
      if (lo == 0.0 || bps < lo) lo = bps;
      hi = std::max(hi, bps);
    }
    return lo > 0.0 ? hi / lo : 0.0;
  };

  // Tiered preference mirroring the paper's example, per method:
  // (1) sequential AND a multi-x throughput spread with >=10% of queuing
  // in transfer, (2) any sequential case above 10%, then the same tiers
  // over the RM1 population (eviction-driven re-staging pollutes the
  // exact byte-sum gate at exactly the slow sites that stage
  // sequentially), and finally (3) the highest-fraction exact case.
  const core::MatchedJob* best_any = nullptr;
  double best_any_fraction = 0.0;

  auto scan = [&](const core::MatchResult& result,
                  bool track_any) -> std::optional<CaseStudy> {
    const core::MatchedJob* best_sequential = nullptr;
    const core::MatchedJob* best_spread = nullptr;
    double best_sequential_fraction = 0.0;
    double best_spread_fraction = 0.0;
    for (const core::MatchedJob& match : result.jobs) {
      if (match.transfer_indices.size() < 2) continue;
      if (match.locality() != core::LocalityClass::kAllLocal) continue;
      const telemetry::JobRecord& job = store_->jobs()[match.job_index];
      if (job.failed) continue;
      const auto metrics = core::compute_metrics(*store_, match);
      const double fraction = metrics.queue_fraction();
      if (fraction <= 0.0) continue;
      if (track_any && fraction > best_any_fraction) {
        best_any_fraction = fraction;
        best_any = &match;
      }
      if (is_sequential(match)) {
        if (fraction > best_sequential_fraction) {
          best_sequential_fraction = fraction;
          best_sequential = &match;
        }
        if (spread_of(match) >= 3.0 && fraction > best_spread_fraction) {
          best_spread_fraction = fraction;
          best_spread = &match;
        }
      }
    }
    if (best_spread != nullptr && best_spread_fraction >= 0.10) {
      return build(*best_spread, result.method);
    }
    if (best_sequential != nullptr && best_sequential_fraction >= 0.10) {
      return build(*best_sequential, result.method);
    }
    return std::nullopt;
  };

  if (auto exact_case = scan(tri_->exact, /*track_any=*/true)) {
    return exact_case;
  }
  if (auto rm1_case = scan(tri_->rm1, /*track_any=*/false)) {
    return rm1_case;
  }
  if (best_any == nullptr) return std::nullopt;
  return build(*best_any, core::MatchMethod::kExact);
}

std::optional<CaseStudy> CaseStudyExtractor::failed_spanning_case() const {
  const core::MatchedJob* best = nullptr;
  util::SimDuration best_wall_overlap = 0;
  // RM1 widens the candidate pool beyond exact without admitting the
  // unknown-site noise of RM2.
  for (const core::MatchedJob& match : tri_->rm1.jobs) {
    const telemetry::JobRecord& job = store_->jobs()[match.job_index];
    if (!job.failed) continue;
    const auto metrics = core::compute_metrics(*store_, match);
    if (!metrics.transfer_spans_execution) continue;
    if (metrics.transfer_time_in_wall > best_wall_overlap) {
      best_wall_overlap = metrics.transfer_time_in_wall;
      best = &match;
    }
  }
  if (best == nullptr) return std::nullopt;
  return build(*best, core::MatchMethod::kRM1);
}

std::optional<CaseStudy> CaseStudyExtractor::rm2_redundant_case() const {
  std::optional<CaseStudy> best;
  std::uint64_t best_waste = 0;
  for (const core::MatchedJob& match : tri_->rm2.jobs) {
    // Must contain at least one UNKNOWN-destination transfer (i.e. be an
    // RM2-specific match) ...
    bool has_unknown = false;
    for (std::size_t ti : match.transfer_indices) {
      if (store_->transfers()[ti].destination_site == grid::kUnknownSite) {
        has_unknown = true;
        break;
      }
    }
    if (!has_unknown) continue;
    CaseStudy cs = build(match, core::MatchMethod::kRM2);
    // ... whose destination is inferable and whose files were moved twice.
    if (cs.inferred_sites.empty() || cs.redundant.empty()) continue;
    std::uint64_t waste = 0;
    for (const auto& group : cs.redundant) waste += group.wasted_bytes();
    if (waste > best_waste) {
      best_waste = waste;
      best = std::move(cs);
    }
  }
  return best;
}

std::string render_timeline(const telemetry::MetadataStore& store,
                            const core::MatchedJob& match,
                            std::size_t width) {
  const telemetry::JobRecord& job = store.jobs()[match.job_index];
  util::SimTime lo = job.creation_time;
  util::SimTime hi = job.end_time;
  for (std::size_t ti : match.transfer_indices) {
    const auto& t = store.transfers()[ti];
    lo = std::min(lo, t.started_at);
    hi = std::max(hi, t.finished_at);
  }
  if (hi <= lo) hi = lo + 1;
  const double span = static_cast<double>(hi - lo);
  auto col = [&](util::SimTime t) {
    const double frac = static_cast<double>(t - lo) / span;
    return static_cast<std::size_t>(frac * static_cast<double>(width - 1));
  };
  auto bar = [&](util::SimTime begin, util::SimTime end, char glyph) {
    std::string row(width, ' ');
    std::size_t b = col(begin);
    std::size_t e = std::max(col(end), b + 1);
    for (std::size_t i = b; i < e && i < width; ++i) row[i] = glyph;
    return row;
  };

  std::ostringstream os;
  os << "pandaid " << job.pandaid << " (" << (job.failed ? "FAILED" : "ok")
     << ", error " << job.error_code << "), window "
     << util::format_time(lo) << " .. " << util::format_time(hi) << "\n";
  os << bar(job.creation_time, job.start_time, 'Q') << "  queuing  ("
     << util::format_duration(job.queuing_time()) << ")\n";
  os << bar(job.start_time, job.end_time, 'R') << "  running  ("
     << util::format_duration(job.wall_time()) << ")\n";
  std::size_t idx = 0;
  for (std::size_t ti : match.transfer_indices) {
    const auto& t = store.transfers()[ti];
    os << bar(t.started_at, t.finished_at, '#') << "  transfer " << idx++
       << "  (" << util::format_bytes(static_cast<double>(t.file_size))
       << " @ " << util::format_rate(t.throughput_bps()) << ")\n";
  }
  return os.str();
}

std::string render_transfer_table(const telemetry::MetadataStore& store,
                                  const grid::Topology& topology,
                                  const core::MatchedJob& match) {
  util::Table t({"#", "Source Site", "Destination Site", "File Size (Byte)",
                 "Activity", "Throughput (Byte/s)"});
  t.set_align(3, util::Align::kRight);
  t.set_align(5, util::Align::kRight);
  std::size_t idx = 0;
  for (std::size_t ti : match.transfer_indices) {
    const auto& tr = store.transfers()[ti];
    t.add_row({std::to_string(idx++),
               std::string(topology.site_name(tr.source_site)),
               std::string(topology.site_name(tr.destination_site)),
               util::format_count(std::uint64_t{tr.file_size}),
               dms::activity_name(tr.activity),
               util::format_fixed(tr.throughput_bps(), 1)});
  }
  return t.to_string();
}

}  // namespace pandarus::analysis
