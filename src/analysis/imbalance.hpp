// Spatial/temporal imbalance and error-distribution analysis (paper
// §3.2 and abstract): "the WLCG supports massive data movement across
// the grid, but with significant spatial and temporal imbalance", and
// uncoordinated optimization produces "underutilized resources,
// redundant or unnecessary transfers, and altered error distributions".
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "grid/topology.hpp"
#include "telemetry/store.hpp"

namespace pandarus::analysis {

/// Gini coefficient of a non-negative sample: 0 = perfectly even,
/// -> 1 = all mass on one element.  Returns 0 for empty/zero input.
[[nodiscard]] double gini_coefficient(std::span<const double> values);

struct SiteActivity {
  grid::SiteId site = grid::kUnknownSite;
  std::uint64_t bytes_in = 0;    ///< successful transfers arriving
  std::uint64_t bytes_out = 0;   ///< successful transfers leaving
  std::uint64_t transfers = 0;   ///< either endpoint
  std::uint64_t jobs = 0;        ///< user jobs computed here
  std::uint64_t failed_jobs = 0;

  [[nodiscard]] double failure_rate() const noexcept {
    return jobs > 0 ? static_cast<double>(failed_jobs) /
                          static_cast<double>(jobs)
                    : 0.0;
  }
};

struct SpatialImbalance {
  std::vector<SiteActivity> sites;  ///< ordered by total bytes, desc
  double gini_bytes = 0.0;          ///< over per-site (in+out) volume
  double gini_jobs = 0.0;           ///< over per-site job counts
  double top1_byte_share = 0.0;
  double top5_byte_share = 0.0;
};
[[nodiscard]] SpatialImbalance spatial_imbalance(
    const telemetry::MetadataStore& store, const grid::Topology& topology);

struct TemporalPoint {
  util::SimTime bin_start = 0;
  double bytes = 0.0;
  std::uint64_t transfers = 0;
};
struct TemporalImbalance {
  std::vector<TemporalPoint> series;
  double peak_bytes = 0.0;
  double mean_bytes = 0.0;  ///< over non-empty bins
  [[nodiscard]] double peak_to_mean() const noexcept {
    return mean_bytes > 0.0 ? peak_bytes / mean_bytes : 0.0;
  }
};
/// Transferred volume per time bin (started_at attribution).
[[nodiscard]] TemporalImbalance temporal_imbalance(
    const telemetry::MetadataStore& store,
    util::SimDuration bin = util::hours(6));

/// Job failure counts by error code; optionally restricted to one site.
struct ErrorDistribution {
  std::map<std::int32_t, std::uint64_t> by_code;
  std::uint64_t total_failed = 0;
  std::uint64_t total_jobs = 0;

  [[nodiscard]] double share(std::int32_t code) const {
    auto it = by_code.find(code);
    return total_failed > 0 && it != by_code.end()
               ? static_cast<double>(it->second) /
                     static_cast<double>(total_failed)
               : 0.0;
  }
};
[[nodiscard]] ErrorDistribution error_distribution(
    const telemetry::MetadataStore& store,
    grid::SiteId site = grid::kUnknownSite /* = all sites */);

/// L1 distance between two error distributions' code shares in [0, 2]:
/// the "altered error distributions" measure used to compare brokerage
/// policies or site populations.
[[nodiscard]] double error_shift(const ErrorDistribution& a,
                                 const ErrorDistribution& b);

}  // namespace pandarus::analysis
