#include "analysis/report_html.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>
#include <vector>

#include "analysis/bandwidth.hpp"
#include "analysis/breakdown.hpp"
#include "analysis/casestudy.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/summary.hpp"
#include "core/exact.hpp"
#include "core/relaxed.hpp"
#include "dms/did.hpp"
#include "obs/health.hpp"
#include "util/format.hpp"

namespace pandarus::analysis {
namespace {

std::string esc(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

const char* locality_label(core::LocalityClass c) {
  switch (c) {
    case core::LocalityClass::kAllLocal: return "all-local";
    case core::LocalityClass::kAllRemote: return "all-remote";
    case core::LocalityClass::kMixed: return "mixed";
  }
  return "?";
}

/// Inline SVG polyline sparkline, min-max normalized.
std::string sparkline(const std::vector<double>& values, int width = 260,
                      int height = 48) {
  if (values.empty()) return "<svg class=\"spark\"></svg>";
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  std::ostringstream os;
  os << "<svg class=\"spark\" width=\"" << width << "\" height=\"" << height
     << "\" viewBox=\"0 0 " << width << ' ' << height << "\">"
     << "<polyline fill=\"none\" stroke=\"#2266aa\" stroke-width=\"1.2\" "
        "points=\"";
  const double dx =
      values.size() > 1
          ? static_cast<double>(width - 2) /
                static_cast<double>(values.size() - 1)
          : 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x = 1.0 + dx * static_cast<double>(i);
    const double y = 1.0 + (height - 2) * (1.0 - (values[i] - lo) / span);
    if (i != 0) os << ' ';
    os << util::format_fixed(x, 1) << ',' << util::format_fixed(y, 1);
  }
  os << "\"/></svg>";
  return os.str();
}

void write_meta_section(std::ostream& os, const ReplayResult& replay) {
  const auto counts = replay.store.counts();
  os << "<h2>Campaign</h2><table>"
     << "<tr><th>seed</th><td>" << replay.seed << "</td></tr>"
     << "<tr><th>days</th><td>" << util::format_fixed(replay.days, 2)
     << "</td></tr>"
     << "<tr><th>window</th><td>[" << replay.window_begin << ", "
     << replay.window_end << ") ms</td></tr>"
     << "<tr><th>sites</th><td>" << replay.site_names.size() << "</td></tr>"
     << "<tr><th>records</th><td>" << counts.jobs << " jobs, "
     << counts.files << " file rows, " << counts.transfers << " transfers ("
     << counts.transfers_with_taskid << " with taskid)</td></tr>"
     << "<tr><th>event lines</th><td>" << replay.lines_parsed << " parsed, "
     << replay.lines_skipped << " skipped</td></tr>";
  if (replay.log_stats.present) {
    os << "<tr><th>event log</th><td>" << replay.log_stats.events
       << " events, " << replay.log_stats.bytes << " bytes";
    if (replay.log_stats.dropped > 0) {
      os << " <span style=\"color:#b00;font-weight:bold\">("
         << replay.log_stats.dropped
         << " events dropped — stream truncated by max_events; every "
            "count below is a floor)</span>";
    } else {
      os << ", 0 dropped";
    }
    os << "</td></tr>";
  }
  os << "</table>";

  os << "<h3>Event kinds</h3><table><tr><th>kind</th><th>events</th></tr>";
  for (const auto& [kind, n] : replay.kind_counts) {
    os << "<tr><td>" << esc(kind) << "</td><td>" << n << "</td></tr>";
  }
  os << "</table>";
}

void write_summary_section(std::ostream& os, const ReplayResult& replay,
                           const core::TriMatchResult& tri) {
  const OverallSummary s = overall_summary(replay.store, tri.exact);
  os << "<h2>Matching summary</h2><table>"
     << "<tr><th>matched transfers (exact)</th><td>" << s.matched_transfers
     << " (" << util::format_percent(s.matched_transfer_pct)
     << " of taskid transfers)</td></tr>"
     << "<tr><th>matched jobs (exact)</th><td>" << s.matched_jobs << " ("
     << util::format_percent(s.matched_job_pct) << " of jobs)</td></tr>"
     << "<tr><th>mean queue fraction</th><td>"
     << util::format_percent(s.mean_queue_fraction) << "</td></tr>"
     << "<tr><th>geomean queue fraction</th><td>"
     << util::format_percent(s.geomean_queue_fraction) << "</td></tr></table>";

  const ActivityBreakdown t1 = activity_breakdown(replay.store, tri.exact);
  os << "<h3>Table 1 &mdash; matched transfers by activity</h3>"
     << "<table><tr><th>activity</th><th>matched</th><th>total</th>"
     << "<th>%</th></tr>";
  for (const ActivityRow& row : t1.rows) {
    os << "<tr><td>" << esc(dms::activity_name(row.activity)) << "</td><td>"
       << row.matched << "</td><td>" << row.total << "</td><td>"
       << util::format_percent(row.percentage()) << "</td></tr>";
  }
  os << "<tr><th>total</th><th>" << t1.matched_total << "</th><th>"
     << t1.taskid_total << "</th><th></th></tr></table>";

  const MethodComparison t2 = compare_methods(replay.store, tri);
  os << "<h3>Table 2a &mdash; matched transfers by method</h3>"
     << "<table><tr><th>method</th><th>local</th><th>remote</th>"
     << "<th>total</th><th>%</th></tr>";
  for (const MethodTransferRow& row : t2.transfers) {
    os << "<tr><td>" << core::method_name(row.method) << "</td><td>"
       << row.local << "</td><td>" << row.remote << "</td><td>"
       << row.total() << "</td><td>" << util::format_percent(row.matched_pct)
       << "</td></tr>";
  }
  os << "</table><h3>Table 2b &mdash; matched jobs by method</h3>"
     << "<table><tr><th>method</th><th>all-local</th><th>all-remote</th>"
     << "<th>mixed</th><th>total</th><th>%</th></tr>";
  for (const MethodJobRow& row : t2.jobs) {
    os << "<tr><td>" << core::method_name(row.method) << "</td><td>"
       << row.all_local << "</td><td>" << row.all_remote << "</td><td>"
       << row.mixed << "</td><td>" << row.total() << "</td><td>"
       << util::format_percent(row.matched_pct) << "</td></tr>";
  }
  os << "</table>";
}

void write_bandwidth_section(std::ostream& os, const ReplayResult& replay,
                             const core::TriMatchResult& tri,
                             const HtmlReportOptions& options) {
  os << "<h2>Bandwidth of matched transfers (Figs. 7/8)</h2>";
  for (const bool local : {false, true}) {
    os << "<h3>" << (local ? "Local sites" : "Remote pairs") << "</h3>"
       << "<table><tr><th>link</th><th>bytes</th><th>transfers</th>"
       << "<th>peak</th><th>mean</th><th>burstiness</th><th>series</th></tr>";
    for (const PairVolume& pair : top_matched_pairs(
             replay.store, tri.exact, local, options.top_pairs)) {
      const auto series =
          bandwidth_series(replay.store, &tri.exact, pair.src, pair.dst,
                           options.bandwidth_bin);
      const SeriesStats stats = series_stats(series);
      std::vector<double> values;
      values.reserve(series.size());
      for (const SeriesPoint& p : series) values.push_back(p.mbps);
      os << "<tr><td>" << esc(replay.site_name(pair.src));
      if (!local) os << " &rarr; " << esc(replay.site_name(pair.dst));
      os << "</td><td>" << util::format_bytes(static_cast<double>(pair.bytes))
         << "</td><td>" << pair.transfers << "</td><td>"
         << util::format_fixed(stats.peak_mbps, 1) << " MBps</td><td>"
         << util::format_fixed(stats.mean_mbps, 1) << " MBps</td><td>"
         << util::format_fixed(stats.burstiness(), 1) << "x</td><td>"
         << sparkline(values) << "</td></tr>";
    }
    os << "</table>";
  }
}

void write_breakdown_section(std::ostream& os, const ReplayResult& replay,
                             const core::TriMatchResult& tri,
                             const HtmlReportOptions& options) {
  const std::vector<BreakdownRow> rows =
      build_breakdown(replay.store, tri.exact);
  const BreakdownAggregates agg = aggregate(rows);
  os << "<h2>Queuing-time breakdown (Figs. 5/6)</h2><table>"
     << "<tr><th>mean queue fraction</th><td>"
     << util::format_percent(agg.mean_queue_fraction) << "</td></tr>"
     << "<tr><th>geomean queue fraction</th><td>"
     << util::format_percent(agg.geomean_queue_fraction) << "</td></tr>"
     << "<tr><th>zero-fraction jobs</th><td>" << agg.zero_fraction_jobs
     << "</td></tr>"
     << "<tr><th>size &harr; queuing correlation</th><td>"
     << util::format_fixed(agg.size_queue_correlation, 3) << "</td></tr>"
     << "<tr><th>size &harr; transfer-time correlation</th><td>"
     << util::format_fixed(agg.size_transfer_time_correlation, 3)
     << "</td></tr></table>";

  for (const auto locality :
       {core::LocalityClass::kAllRemote, core::LocalityClass::kAllLocal}) {
    os << "<h3>Top jobs by queuing time &mdash; "
       << locality_label(locality) << "</h3>"
       << "<table><tr><th>pandaid</th><th>queuing</th>"
       << "<th>transfer-in-queue</th><th>fraction</th><th>bytes</th>"
       << "<th>transfers</th><th>spans exec</th></tr>";
    for (const BreakdownRow& row :
         top_by_queuing(rows, locality, options.breakdown_min_fraction,
                        options.breakdown_top_n)) {
      os << "<tr><td>" << row.pandaid << "</td><td>"
         << util::format_duration(row.queuing_time) << "</td><td>"
         << util::format_duration(row.transfer_time_in_queue) << "</td><td>"
         << util::format_percent(row.queue_fraction) << "</td><td>"
         << util::format_bytes(static_cast<double>(row.transferred_bytes))
         << "</td><td>" << row.transfer_count << "</td><td>"
         << (row.transfer_spans_execution ? "yes" : "no") << "</td></tr>";
    }
    os << "</table>";
  }
}

void write_casestudy_section(std::ostream& os, const ReplayResult& replay,
                             const core::TriMatchResult& tri) {
  os << "<h2>Case studies (Figs. 10&ndash;12)</h2>";
  const CaseStudyExtractor extractor(replay.store, tri);
  struct Entry {
    const char* title;
    std::optional<CaseStudy> cs;
  };
  const Entry entries[] = {
      {"Sequential staging (Fig. 10)", extractor.sequential_staging_case()},
      {"Failed job with spanning transfer (Fig. 11)",
       extractor.failed_spanning_case()},
      {"RM2 redundant transfer set (Fig. 12)",
       extractor.rm2_redundant_case()},
  };
  for (const Entry& e : entries) {
    os << "<h3>" << e.title << "</h3>";
    if (!e.cs) {
      os << "<p>no qualifying job in this campaign</p>";
      continue;
    }
    const telemetry::JobRecord& job =
        replay.store.jobs()[e.cs->match.job_index];
    os << "<p>pandaid " << job.pandaid << " at "
       << esc(replay.site_name(job.computing_site)) << ", method "
       << core::method_name(e.cs->method) << ", "
       << e.cs->match.transfer_indices.size()
       << " matched transfers, throughput spread "
       << util::format_fixed(e.cs->throughput_spread, 1) << "x";
    if (!e.cs->redundant.empty()) {
      os << ", " << e.cs->redundant.size() << " redundant group(s)";
    }
    os << "</p><pre>" << esc(render_timeline(replay.store, e.cs->match))
       << "</pre>";
  }
}

void write_fault_section(std::ostream& os, const ReplayResult& replay) {
  if (replay.fault_windows.empty() && replay.failure_causes.empty()) return;
  os << "<h2>Infrastructure faults</h2>";

  if (!replay.failure_causes.empty()) {
    os << "<h3>Terminal transfer failures by cause</h3>"
       << "<table><tr><th>cause</th><th>transfers</th></tr>";
    for (const auto& [code, n] : replay.failure_causes) {
      const auto err = static_cast<dms::TransferError>(code);
      os << "<tr><td>" << esc(dms::transfer_error_name(err)) << "</td><td>"
         << n << "</td></tr>";
    }
    os << "</table>";
  }

  if (!replay.fault_windows.empty()) {
    // One row per window (the begin transition carries the full span);
    // an inline bar places it within the campaign window.
    os << "<h3>Fault-window timeline</h3>"
       << "<table><tr><th>fault</th><th>target</th><th>window</th>"
       << "<th>timeline</th></tr>";
    const double span = replay.window_end > replay.window_begin
                            ? static_cast<double>(replay.window_end -
                                                  replay.window_begin)
                            : 1.0;
    for (const ReplayResult::FaultWindowEvent& fw : replay.fault_windows) {
      if (!fw.begin) continue;
      std::string target;
      if (fw.site != grid::kUnknownSite) {
        target = replay.site_name(fw.site);
      } else if (fw.src != grid::kUnknownSite) {
        target = replay.site_name(fw.src) + " → " + replay.site_name(fw.dst);
      } else {
        target = "grid-wide";
      }
      const double x0 =
          std::clamp(static_cast<double>(fw.window_begin) / span, 0.0, 1.0);
      const double x1 =
          std::clamp(static_cast<double>(fw.window_end) / span, x0, 1.0);
      os << "<tr><td>" << esc(fw.fault_kind) << "</td><td>" << esc(target)
         << "</td><td>[" << fw.window_begin << ", " << fw.window_end
         << ") ms</td><td><svg width=\"260\" height=\"12\">"
         << "<rect x=\"0\" y=\"4\" width=\"260\" height=\"4\" "
            "fill=\"#eee\"/>"
         << "<rect x=\"" << util::format_fixed(x0 * 260.0, 1)
         << "\" y=\"2\" width=\""
         << util::format_fixed(std::max((x1 - x0) * 260.0, 1.5), 1)
         << "\" height=\"8\" fill=\"#c33\"/></svg></td></tr>";
    }
    os << "</table>";
  }
}

void write_health_section(std::ostream& os, const ReplayResult& replay,
                          const obs::HealthEngine& health) {
  const std::vector<obs::AlertTransition> transitions = health.transitions();
  const std::vector<obs::SloStatus> slos = health.slos();
  const obs::HealthEngine::Counts counts = health.counts();
  os << "<h2>Health (replay-derived detectors)</h2>"
     << "<p>" << counts.observations << " observations, " << counts.fired
     << " alert(s) fired, " << counts.resolved << " resolved, "
     << counts.active_firing << " still firing</p>";

  if (!slos.empty()) {
    os << "<h3>SLO burn rates</h3>"
       << "<table><tr><th>objective</th><th>target</th><th>good</th>"
       << "<th>bad</th><th>burn (fast)</th><th>burn (slow)</th></tr>";
    for (const obs::SloStatus& slo : slos) {
      os << "<tr><td>" << esc(slo.name) << "</td><td>"
         << util::format_fixed(slo.target, 3) << "</td><td>" << slo.good
         << "</td><td>" << slo.bad << "</td><td>"
         << util::format_fixed(slo.burn_fast, 2) << "</td><td>"
         << util::format_fixed(slo.burn_slow, 2) << "</td></tr>";
    }
    os << "</table>";
  }

  if (transitions.empty()) {
    os << "<p>no alert transitions in this stream</p>";
    return;
  }

  // Timeline: one row per (detector, entity); each firing span becomes
  // a bar between the firing and resolved transitions (an unresolved
  // firing extends to the window end).
  struct Span {
    std::int64_t begin = 0;
    std::int64_t end = -1;
    bool critical = false;
  };
  std::map<std::pair<std::string, std::string>, std::vector<Span>> rows;
  for (const obs::AlertTransition& t : transitions) {
    auto& spans = rows[{t.detector, t.entity}];
    if (t.phase == obs::AlertPhase::kFiring) {
      spans.push_back({t.ts, -1, t.severity == "critical"});
    } else if (t.phase == obs::AlertPhase::kResolved && !spans.empty() &&
               spans.back().end < 0) {
      spans.back().end = t.ts;
    }
  }
  const std::int64_t begin = replay.window_begin;
  const std::int64_t end =
      std::max(replay.window_end, begin + 1);
  const double span_ms = static_cast<double>(end - begin);
  os << "<h3>Alert timeline (" << transitions.size() << " transitions)</h3>"
     << "<table><tr><th>detector</th><th>entity</th><th>fires</th>"
     << "<th>timeline</th></tr>";
  for (const auto& [key, spans] : rows) {
    os << "<tr><td>" << esc(key.first) << "</td><td>" << esc(key.second)
       << "</td><td>" << spans.size()
       << "</td><td><svg width=\"260\" height=\"12\">"
       << "<rect x=\"0\" y=\"4\" width=\"260\" height=\"4\" fill=\"#eee\"/>";
    for (const Span& s : spans) {
      const double x0 = std::clamp(
          static_cast<double>(s.begin - begin) / span_ms, 0.0, 1.0);
      const double x1 = std::clamp(
          static_cast<double>((s.end < 0 ? end : s.end) - begin) / span_ms,
          x0, 1.0);
      os << "<rect x=\"" << util::format_fixed(x0 * 260.0, 1)
         << "\" y=\"2\" width=\""
         << util::format_fixed(std::max((x1 - x0) * 260.0, 1.5), 1)
         << "\" height=\"8\" fill=\"" << (s.critical ? "#c33" : "#e90")
         << "\"/>";
    }
    os << "</svg></td></tr>";
  }
  os << "</table>";
}

void write_sampler_section(std::ostream& os, const ReplayResult& replay) {
  if (replay.samples.empty()) return;
  os << "<h2>Sampled time series (" << replay.samples.size() << " ticks, "
     << replay.sample_interval_ms << " ms interval)</h2>"
     << "<table><tr><th>column</th><th>last</th><th>max</th>"
     << "<th>series</th></tr>";
  for (std::size_t c = 0; c < replay.sample_columns.size(); ++c) {
    std::vector<double> values;
    values.reserve(replay.samples.size());
    std::int64_t last = 0;
    std::int64_t max = 0;
    for (const ReplayResult::Sample& row : replay.samples) {
      if (c >= row.values.size()) continue;
      values.push_back(static_cast<double>(row.values[c]));
      last = row.values[c];
      max = std::max(max, row.values[c]);
    }
    os << "<tr><td>" << esc(replay.sample_columns[c]) << "</td><td>"
       << last << "</td><td>" << max << "</td><td>" << sparkline(values)
       << "</td></tr>";
  }
  os << "</table>";
}

void write_flow_section(std::ostream& os, const ReplayResult& replay) {
  // Only meaningful when the stream was recorded with flows armed
  // (PANDARUS_FLOWS): without flow_begin rows the rebuild yields no
  // completed flows and the section is skipped.
  using Op = ReplayResult::FlowEventRow::Op;
  const bool has_flows =
      std::any_of(replay.flow_events.begin(), replay.flow_events.end(),
                  [](const ReplayResult::FlowEventRow& r) {
                    return r.op == Op::kFlowBegin;
                  });
  if (!has_flows) return;
  const FlowAnalysis flows = rebuild_flows(replay);
  if (flows.flows.empty()) return;

  os << "<h2>Critical-path wait attribution (causal flows)</h2>"
     << "<p>" << flows.flows.size() << " flows rebuilt from flow_* events; "
     << "per-job wall-clock decomposed into broker | stage-in | queue | "
        "run | stage-out (parts sum to wall exactly)</p>"
     << "<h3>Phase breakdown</h3>"
     << "<table><tr><th>phase</th><th>p50 ms</th><th>p95 ms</th>"
     << "<th>p99 ms</th><th>max ms</th><th>total ms</th></tr>";
  for (const PhaseQuantiles& q : flows.quantiles) {
    os << "<tr><td>" << esc(q.phase) << "</td><td>"
       << util::format_count(q.p50) << "</td><td>"
       << util::format_count(q.p95) << "</td><td>"
       << util::format_count(q.p99) << "</td><td>"
       << util::format_count(q.max) << "</td><td>"
       << util::format_count(q.total_ms) << "</td></tr>";
  }
  os << "</table>";

  os << "<p>failed " << flows.totals.failed << ", sequential staging "
     << flows.totals.sequential_staging << ", redundant transfers "
     << flows.totals.redundant_transfers << ", watchdog releases "
     << flows.totals.watchdog_releases << ", reroutes "
     << flows.totals.reroutes << "</p>";

  if (!flows.link_ranking.empty()) {
    os << "<h3>Top offending links (critical stage-in time)</h3>"
       << "<table><tr><th>rank</th><th>link</th><th>critical ms</th>"
       << "<th>flows</th></tr>";
    const std::size_t n = std::min<std::size_t>(10, flows.link_ranking.size());
    for (std::size_t i = 0; i < n; ++i) {
      const obs::LinkCritical& lc = flows.link_ranking[i];
      os << "<tr><td>" << i + 1 << "</td><td>" << esc(flows.site_label(lc.src))
         << " &rarr; " << esc(flows.site_label(lc.dst)) << "</td><td>"
         << util::format_count(lc.critical_ms) << "</td><td>" << lc.flows
         << "</td></tr>";
    }
    os << "</table>";
  }
}

void write_heatmap_section(std::ostream& os, const ReplayResult& replay) {
  // Site-by-site successful transfer volume, log-scaled (the Fig. 3
  // shape); built straight from the replayed transfer records.
  std::map<std::pair<grid::SiteId, grid::SiteId>, double> volume;
  std::set<grid::SiteId> active;
  for (const telemetry::TransferRecord& t : replay.store.transfers()) {
    if (!t.success) continue;
    volume[{t.source_site, t.destination_site}] +=
        static_cast<double>(t.file_size);
    active.insert(t.source_site);
    active.insert(t.destination_site);
  }
  if (volume.empty()) return;
  const std::vector<grid::SiteId> sites(active.begin(), active.end());
  double log_max = 0.0;
  for (const auto& [key, bytes] : volume) {
    log_max = std::max(log_max, std::log10(bytes + 1.0));
  }
  const std::size_t cell = 12;
  const std::size_t label = 110;
  const std::size_t n = sites.size();
  os << "<h2>Transfer volume heatmap (Fig. 3)</h2>"
     << "<p>source rows &rarr; destination columns, log-scaled bytes; "
        "the dark diagonal is local traffic</p>"
     << "<svg width=\"" << label + n * cell << "\" height=\""
     << n * cell + 8 << "\">";
  for (std::size_t r = 0; r < n; ++r) {
    os << "<text x=\"0\" y=\"" << r * cell + cell - 2
       << "\" font-size=\"9\">" << esc(replay.site_name(sites[r]))
       << "</text>";
    for (std::size_t c = 0; c < n; ++c) {
      const auto it = volume.find({sites[r], sites[c]});
      if (it == volume.end()) continue;
      const double intensity =
          log_max > 0.0 ? std::log10(it->second + 1.0) / log_max : 0.0;
      const int shade = 255 - static_cast<int>(intensity * 215.0);
      os << "<rect x=\"" << label + c * cell << "\" y=\"" << r * cell
         << "\" width=\"" << cell - 1 << "\" height=\"" << cell - 1
         << "\" fill=\"rgb(" << shade << ',' << shade << ",255)\"/>";
    }
  }
  os << "</svg>";
}

}  // namespace

void write_html_report(std::ostream& os, const ReplayResult& replay,
                       const HtmlReportOptions& options) {
  os << "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>"
     << esc(options.title) << "</title><style>"
     << "body{font-family:sans-serif;margin:2em;max-width:70em}"
     << "table{border-collapse:collapse;margin:0.6em 0}"
     << "th,td{border:1px solid #bbb;padding:2px 8px;text-align:left;"
        "font-size:13px}"
     << "th{background:#eef}pre{background:#f6f6f6;padding:8px;"
        "overflow-x:auto;font-size:12px}"
     << "svg.spark{vertical-align:middle}"
     << "</style></head><body><h1>" << esc(options.title) << "</h1>";

  write_meta_section(os, replay);

  if (!replay.store.jobs().empty() || !replay.store.transfers().empty()) {
    const core::Matcher matcher(replay.store);
    const core::TriMatchResult tri = core::run_all_methods(matcher);
    write_summary_section(os, replay, tri);
    write_bandwidth_section(os, replay, tri, options);
    write_breakdown_section(os, replay, tri, options);
    write_casestudy_section(os, replay, tri);
  } else {
    os << "<p>stream carried no harvest records; matching skipped</p>";
  }

  write_flow_section(os, replay);
  write_fault_section(os, replay);
  if (options.health != nullptr) {
    write_health_section(os, replay, *options.health);
  }
  write_sampler_section(os, replay);
  write_heatmap_section(os, replay);

  os << "</body></html>\n";
}

}  // namespace pandarus::analysis
