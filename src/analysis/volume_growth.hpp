// Cumulative managed-volume model (paper Fig. 2): total ATLAS data under
// Rucio management from 2009 to 2024, crossing ~1 EB in mid-2024 and
// "more than doubling since 2018".
//
// The model is deterministic: yearly ingest follows the LHC schedule
// (Run 1 / LS1 / Run 2 / LS2 / Run 3) with a compounding growth factor
// within runs and a deletion fraction that trims a share of each year's
// retained volume.
#pragma once

#include <vector>

namespace pandarus::analysis {

struct YearVolume {
  int year = 0;
  double added_pb = 0.0;
  double deleted_pb = 0.0;
  double total_pb = 0.0;  ///< cumulative managed volume at year end
};

struct VolumeGrowthParams {
  int first_year = 2009;
  int last_year = 2024;
  double initial_ingest_pb = 23.0;   ///< Run-1 startup ingest per year
  double run_growth = 1.25;          ///< year-over-year ingest growth in runs
  double shutdown_ingest_factor = 0.3;  ///< LS ingest vs preceding year
  double deletion_fraction = 0.12;   ///< of the year's ingest later deleted
};

/// Year-end cumulative volumes.  The defaults land at ~1 EB (1000 PB) by
/// 2024 with the 2018 value near half of it, matching Fig. 2's shape.
[[nodiscard]] std::vector<YearVolume> simulate_volume_growth(
    const VolumeGrowthParams& params = VolumeGrowthParams{});

/// True for LHC shutdown years (LS1: 2013-2014, LS2: 2019-2021 in this
/// model's granularity).
[[nodiscard]] bool is_shutdown_year(int year) noexcept;

}  // namespace pandarus::analysis
