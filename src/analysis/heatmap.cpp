#include "analysis/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "util/csv.hpp"
#include "util/stats.hpp"

namespace pandarus::analysis {

TransferHeatmap::TransferHeatmap(const telemetry::MetadataStore& store,
                                 const grid::Topology& topology)
    : topology_(&topology), n_(topology.site_count() + 1) {
  cells_.assign(n_ * n_, 0.0);
  const std::size_t unknown = unknown_index();
  for (const telemetry::TransferRecord& t : store.transfers()) {
    if (!t.success) continue;
    const std::size_t src =
        t.source_site == grid::kUnknownSite ? unknown : t.source_site;
    const std::size_t dst = t.destination_site == grid::kUnknownSite
                                ? unknown
                                : t.destination_site;
    cells_[src * n_ + dst] += static_cast<double>(t.file_size);
  }
}

TransferHeatmap::Summary TransferHeatmap::summary() const {
  Summary s;
  util::GeometricMean geomean;
  std::unordered_set<std::size_t> active;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      const double v = cells_[i * n_ + j];
      if (v <= 0.0) continue;
      s.total_bytes += v;
      ++s.nonzero_pairs;
      geomean.add(v);
      active.insert(i);
      active.insert(j);
      const bool unknown = i == unknown_index() || j == unknown_index();
      if (unknown) {
        s.unknown_bytes += v;
      } else if (i == j) {
        s.local_bytes += v;
      }
    }
  }
  s.active_sites = active.size();
  const auto n_pairs = static_cast<double>(n_ * n_);
  s.mean_pair_bytes = n_pairs > 0 ? s.total_bytes / n_pairs : 0.0;
  s.geomean_pair_bytes = geomean.value();
  return s;
}

std::vector<TransferHeatmap::Outlier> TransferHeatmap::top_cells(
    std::size_t k) const {
  std::vector<Outlier> all;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      const double v = cells_[i * n_ + j];
      if (v <= 0.0) continue;
      all.push_back({i, j, v, name_of(i), name_of(j),
                     i == j && i != unknown_index()});
    }
  }
  std::sort(all.begin(), all.end(), [](const Outlier& a, const Outlier& b) {
    return a.bytes > b.bytes;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::string TransferHeatmap::name_of(std::size_t index) const {
  if (index == unknown_index()) return "unknown";
  return std::string(topology_->site_name(static_cast<grid::SiteId>(index)));
}

void TransferHeatmap::write_csv(std::ostream& os) const {
  util::CsvWriter csv(os);
  std::vector<std::string> header{"src\\dst"};
  for (std::size_t j = 0; j < n_; ++j) header.push_back(name_of(j));
  csv.write_row(header);
  for (std::size_t i = 0; i < n_; ++i) {
    std::vector<std::string> row{name_of(i)};
    for (std::size_t j = 0; j < n_; ++j) {
      row.push_back(std::to_string(cells_[i * n_ + j]));
    }
    csv.write_row(row);
  }
}

std::string TransferHeatmap::to_ascii(std::size_t max_sites) const {
  // Log-scale glyph ramp; '.' = empty cell.
  static constexpr char kRamp[] = " .:-=+*#%@";
  const std::size_t shown = std::min(n_, max_sites);
  double peak = 0.0;
  for (double v : cells_) peak = std::max(peak, v);
  std::ostringstream os;
  os << "transfer volume heatmap (" << shown << "/" << n_
     << " sites, '@' = " << peak << " bytes, log scale)\n";
  for (std::size_t i = 0; i < shown; ++i) {
    for (std::size_t j = 0; j < shown; ++j) {
      const double v = cells_[i * n_ + j];
      if (v <= 0.0 || peak <= 0.0) {
        os << ' ';
        continue;
      }
      // Map log(v)/log(peak) in (0,1] onto the ramp.
      const double frac =
          std::max(0.0, 1.0 + (std::log10(v / peak)) / 12.0);
      const auto idx = static_cast<std::size_t>(
          std::min(frac, 1.0) * (sizeof kRamp - 2));
      os << kRamp[idx];
    }
    os << "  " << name_of(i) << '\n';
  }
  return os.str();
}

}  // namespace pandarus::analysis
