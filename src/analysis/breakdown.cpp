#include "analysis/breakdown.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace pandarus::analysis {

std::vector<BreakdownRow> build_breakdown(
    const telemetry::MetadataStore& store, const core::MatchResult& result) {
  std::vector<BreakdownRow> rows;
  rows.reserve(result.jobs.size());
  for (const core::MatchedJob& match : result.jobs) {
    const telemetry::JobRecord& job = store.jobs()[match.job_index];
    const core::JobTransferMetrics metrics =
        core::compute_metrics(store, match);
    BreakdownRow row;
    row.job_index = match.job_index;
    row.pandaid = job.pandaid;
    row.locality = match.locality();
    row.queuing_time = metrics.queuing_time;
    row.transfer_time_in_queue = metrics.transfer_time_in_queue;
    row.queue_fraction = metrics.queue_fraction();
    row.transferred_bytes = metrics.transferred_bytes;
    row.transfer_count = match.transfer_indices.size();
    row.job_failed = job.failed;
    row.task_failed = job.task_status == wms::TaskStatus::kFailed;
    row.transfer_spans_execution = metrics.transfer_spans_execution;
    rows.push_back(row);
  }
  return rows;
}

std::vector<BreakdownRow> top_by_queuing(std::span<const BreakdownRow> rows,
                                         core::LocalityClass locality,
                                         double min_fraction,
                                         std::size_t top_n) {
  std::vector<BreakdownRow> selected;
  for (const BreakdownRow& row : rows) {
    if (row.locality == locality && row.queue_fraction >= min_fraction) {
      selected.push_back(row);
    }
  }
  std::sort(selected.begin(), selected.end(),
            [](const BreakdownRow& a, const BreakdownRow& b) {
              return a.queuing_time > b.queuing_time;
            });
  if (selected.size() > top_n) selected.resize(top_n);
  return selected;
}

BreakdownAggregates aggregate(std::span<const BreakdownRow> rows) {
  BreakdownAggregates out;
  util::OnlineStats mean_fraction;
  util::GeometricMean geo_fraction;
  std::vector<double> bytes;
  std::vector<double> queue_ms;
  std::vector<double> transfer_ms;
  for (const BreakdownRow& row : rows) {
    if (row.queue_fraction > 0.0) {
      mean_fraction.add(row.queue_fraction);
      geo_fraction.add(row.queue_fraction);
    } else {
      ++out.zero_fraction_jobs;
    }
    bytes.push_back(static_cast<double>(row.transferred_bytes));
    queue_ms.push_back(static_cast<double>(row.queuing_time));
    transfer_ms.push_back(static_cast<double>(row.transfer_time_in_queue));
  }
  out.mean_queue_fraction = mean_fraction.mean();
  out.geomean_queue_fraction = geo_fraction.value();
  out.size_queue_correlation = util::pearson_correlation(bytes, queue_ms);
  out.size_transfer_time_correlation =
      util::pearson_correlation(bytes, transfer_ms);
  return out;
}

}  // namespace pandarus::analysis
