// Queuing-time breakdowns of matched jobs (paper Figs. 5 and 6).
//
// For every matched job: queuing time, transfer time inside the queue
// phase, their ratio, transferred bytes, and job/task outcome.  The
// figure selections ("top 40 jobs with local/remote transfers that last
// for more than 10% of the job queuing time, ordered by queuing time")
// are provided directly.
#pragma once

#include <span>
#include <vector>

#include "core/metrics.hpp"
#include "core/relaxed.hpp"

namespace pandarus::analysis {

struct BreakdownRow {
  std::size_t job_index = 0;
  std::int64_t pandaid = 0;
  core::LocalityClass locality = core::LocalityClass::kAllLocal;
  util::SimDuration queuing_time = 0;
  util::SimDuration transfer_time_in_queue = 0;
  double queue_fraction = 0.0;
  std::uint64_t transferred_bytes = 0;
  std::size_t transfer_count = 0;
  bool job_failed = false;
  bool task_failed = false;
  bool transfer_spans_execution = false;
};

/// One row per matched job.
[[nodiscard]] std::vector<BreakdownRow> build_breakdown(
    const telemetry::MetadataStore& store, const core::MatchResult& result);

/// The Fig. 5/6 selection: rows of the given locality class whose
/// transfer time exceeds `min_fraction` of queuing time, sorted by
/// queuing time descending, truncated to `top_n`.
[[nodiscard]] std::vector<BreakdownRow> top_by_queuing(
    std::span<const BreakdownRow> rows, core::LocalityClass locality,
    double min_fraction, std::size_t top_n);

struct BreakdownAggregates {
  /// Mean/geomean of the transfer-time share of queuing, over matched
  /// jobs with a nonzero share (jobs whose matched transfers never
  /// overlap their queue phase — e.g. pure Direct-IO sets — are counted
  /// in `zero_fraction_jobs` instead of diluting the average).
  double mean_queue_fraction = 0.0;     ///< §5.1: 8.43% in the paper
  double geomean_queue_fraction = 0.0;  ///< §5.1: 1.942%
  std::size_t zero_fraction_jobs = 0;
  /// Pearson correlation between transferred bytes and queuing time
  /// (§5.3 reports "no significant correlation").
  double size_queue_correlation = 0.0;
  double size_transfer_time_correlation = 0.0;
};
[[nodiscard]] BreakdownAggregates aggregate(
    std::span<const BreakdownRow> rows);

}  // namespace pandarus::analysis
