// Case-study extraction and timeline rendering (paper §5.4, Figs. 10-12
// and Table 3).
//
// The paper presents three hand-picked jobs; the extractor finds their
// programmatic analogues in any campaign:
//  1. a *successful* job with only local transfers whose transfer time
//     dominates its queuing time (Fig. 10; the paper's example spent 83%
//     of queuing on three sequential transfers with a 17.7x throughput
//     spread);
//  2. a *failed* job with a matched transfer spanning both queuing and
//     execution (Fig. 11; error 1305, "Non-zero return code from
//     Overlay (1)");
//  3. an RM2-matched job whose matched set contains the same files twice,
//     with the duplicate set's destination recorded UNKNOWN and
//     recoverable by size pairing (Fig. 12 / Table 3).
#pragma once

#include <optional>
#include <string>

#include "core/inference.hpp"
#include "core/metrics.hpp"
#include "core/relaxed.hpp"
#include "grid/topology.hpp"

namespace pandarus::analysis {

struct CaseStudy {
  core::MatchedJob match;
  core::JobTransferMetrics metrics;
  /// Matching method the set came from (the Fig. 10 extractor prefers
  /// exact but falls back to RM1 when eviction/re-staging pollution has
  /// pushed every sequential candidate out of the exact population).
  core::MatchMethod method = core::MatchMethod::kExact;
  /// Max/min throughput across the matched transfers (the paper's
  /// "throughput differed by a factor of approximately 17.7x").
  double throughput_spread = 0.0;
  std::vector<core::RedundantGroup> redundant;       ///< case 3 only
  std::vector<core::InferredSite> inferred_sites;    ///< case 3 only
};

class CaseStudyExtractor {
 public:
  CaseStudyExtractor(const telemetry::MetadataStore& store,
                     const core::TriMatchResult& tri)
      : store_(&store), tri_(&tri) {}

  /// Fig. 10: successful all-local exact-matched job maximizing the
  /// transfer-time share of queuing (requires >= 2 transfers so a
  /// throughput spread exists).
  [[nodiscard]] std::optional<CaseStudy> sequential_staging_case() const;

  /// Fig. 11: failed job whose matched transfer set spans its start time,
  /// maximizing transfer time inside the wall clock.
  [[nodiscard]] std::optional<CaseStudy> failed_spanning_case() const;

  /// Fig. 12: RM2-matched job with a redundant duplicate transfer set
  /// and at least one inferable UNKNOWN destination.
  [[nodiscard]] std::optional<CaseStudy> rm2_redundant_case() const;

 private:
  [[nodiscard]] CaseStudy build(const core::MatchedJob& match,
                                core::MatchMethod method) const;

  const telemetry::MetadataStore* store_;
  const core::TriMatchResult* tri_;
};

/// ASCII Gantt chart of a job and its matched transfers: one row for the
/// queuing and running phases, one per transfer, a `width`-column scale.
[[nodiscard]] std::string render_timeline(const telemetry::MetadataStore& store,
                                          const core::MatchedJob& match,
                                          std::size_t width = 72);

/// Table-3-style per-transfer metadata dump for a matched job.
[[nodiscard]] std::string render_transfer_table(
    const telemetry::MetadataStore& store, const grid::Topology& topology,
    const core::MatchedJob& match);

}  // namespace pandarus::analysis
