// Site-to-site transfer volume heatmap (paper Fig. 3).
//
// Cell (i, j) holds the total bytes transferred from site i to site j in
// the window.  A pseudo-site (the last row/column) aggregates transfers
// with an unidentified endpoint, exactly like the paper's 102nd
// "unknown" site.  The summary reproduces the figure's headline
// statistics: total volume, local (diagonal) share, per-pair arithmetic
// vs geometric mean, and the >N-bytes outlier cells.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "grid/topology.hpp"
#include "telemetry/store.hpp"

namespace pandarus::analysis {

class TransferHeatmap {
 public:
  /// Builds from every *successful* transfer in the store.
  TransferHeatmap(const telemetry::MetadataStore& store,
                  const grid::Topology& topology);

  [[nodiscard]] std::size_t dimension() const noexcept { return n_; }
  /// Index of the "unknown" pseudo-site (== dimension() - 1).
  [[nodiscard]] std::size_t unknown_index() const noexcept { return n_ - 1; }
  [[nodiscard]] double cell(std::size_t src, std::size_t dst) const {
    return cells_.at(src * n_ + dst);
  }

  struct Summary {
    double total_bytes = 0.0;
    double local_bytes = 0.0;          ///< diagonal, known sites only
    double unknown_bytes = 0.0;        ///< any unknown endpoint
    std::size_t active_sites = 0;      ///< sites with any transfer
    std::size_t nonzero_pairs = 0;
    double mean_pair_bytes = 0.0;      ///< over all site pairs (incl. zero)
    double geomean_pair_bytes = 0.0;   ///< over nonzero pairs
    [[nodiscard]] double local_fraction() const noexcept {
      return total_bytes > 0 ? local_bytes / total_bytes : 0.0;
    }
  };
  [[nodiscard]] Summary summary() const;

  struct Outlier {
    std::size_t src = 0;
    std::size_t dst = 0;
    double bytes = 0.0;
    std::string src_name;
    std::string dst_name;
    bool local = false;
  };
  /// The k largest cells, descending.
  [[nodiscard]] std::vector<Outlier> top_cells(std::size_t k) const;

  /// Writes the full matrix as CSV (header row/column of site names).
  void write_csv(std::ostream& os) const;

  /// Compact ASCII rendering: log-scaled glyph per cell, for small grids.
  [[nodiscard]] std::string to_ascii(std::size_t max_sites = 48) const;

 private:
  [[nodiscard]] std::string name_of(std::size_t index) const;

  const grid::Topology* topology_;
  std::size_t n_ = 0;  ///< site_count + 1 (unknown pseudo-site)
  std::vector<double> cells_;
};

}  // namespace pandarus::analysis
