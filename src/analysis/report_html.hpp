// Single-file HTML campaign report, generated offline from a replayed
// event stream (no live simulator state).  Everything is inline — plain
// tables, SVG sparklines for the bandwidth and sampler series, an SVG
// site-by-site transfer heatmap — so the file can be archived or
// attached to CI runs as one artifact.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "analysis/events_replay.hpp"
#include "util/time.hpp"

namespace pandarus::obs {
class HealthEngine;
}

namespace pandarus::analysis {

struct HtmlReportOptions {
  std::string title = "pandarus campaign report";
  /// Bandwidth sparklines: top-k matched (src, dst) pairs per locality.
  std::size_t top_pairs = 4;
  util::SimDuration bandwidth_bin = util::hours(1);
  /// Rows in each Fig. 5/6-style queuing table.
  std::size_t breakdown_top_n = 10;
  /// Transfer time must exceed this share of queuing time to qualify.
  double breakdown_min_fraction = 0.1;
  /// Replay-derived health engine (analysis::derive_health) for the
  /// alert-timeline and SLO sections; both are skipped when null.
  const obs::HealthEngine* health = nullptr;
};

/// Re-runs the three matching methods on the replayed store and writes
/// the full report.  A replay with no harvest records still produces a
/// valid (mostly empty) document.
void write_html_report(std::ostream& os, const ReplayResult& replay,
                       const HtmlReportOptions& options = {});

}  // namespace pandarus::analysis
