// Streaming event-source abstraction: one interface over the NDJSON
// text stream and the binary colstore, so replay / critical-path /
// report tooling runs out-of-core against either format.
//
// A source yields parsed `util::json::Value` objects one event at a
// time.  The NDJSON source assembles lines from fixed-size read chunks
// (bounded buffer — no whole-file slurp); the colstore source decodes
// one chunk of columns at a time.  Both construct Values with identical
// semantics (int/double duality, member order), so every consumer sees
// the same objects regardless of the container format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

#include "util/json.hpp"

namespace pandarus::analysis {

/// Longest NDJSON line a streaming source will assemble; longer lines
/// are discarded and counted as skipped (a corrupt line must not force
/// unbounded buffering).  The Event builder never comes close.
inline constexpr std::size_t kMaxNdjsonLine = std::size_t{1} << 20;

/// Pull cursor over an event stream.  The pointer returned by next()
/// stays valid until the following next() call.
class EventSource {
 public:
  virtual ~EventSource() = default;
  /// Next well-formed event object, or nullptr at end of stream.
  /// Malformed input is counted in skipped(), never fatal.
  virtual const util::json::Value* next() = 0;
  /// Lines/events dropped so far (unparsable, overlong, non-object).
  [[nodiscard]] virtual std::size_t skipped() const noexcept = 0;
  /// Non-empty when the underlying stream stopped on damage (e.g. a
  /// corrupt colstore chunk); end-of-input is not an error.
  [[nodiscard]] virtual std::string error() const = 0;
};

/// Line-streaming NDJSON source over an open stream (not owned; must
/// outlive the source).
std::unique_ptr<EventSource> make_ndjson_source(std::istream& in);

struct EventSourceOptions {
  /// Salvage mode for a damaged file (crash-truncated flush): a
  /// colstore source stops cleanly at the first torn or corrupt chunk
  /// instead of reporting an error, yielding the longest valid prefix;
  /// NDJSON sources already skip damage line by line.
  bool recover = false;
};

/// Opens `path` and sniffs the format: colstore magic selects the
/// columnar reader, anything else streams as NDJSON.  nullptr (with a
/// warning logged) when the file cannot be opened.
std::unique_ptr<EventSource> open_event_source(
    const std::string& path, const EventSourceOptions& options = {});

}  // namespace pandarus::analysis
