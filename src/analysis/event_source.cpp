#include "analysis/event_source.hpp"

#include <cstdio>
#include <functional>
#include <istream>
#include <optional>
#include <utility>

#include "obs/colstore.hpp"
#include "util/log.hpp"

namespace pandarus::analysis {
namespace {

using util::json::Value;

/// Bytes pulled from the underlying stream per refill.
constexpr std::size_t kReadChunk = std::size_t{1} << 16;

/// Assembles NDJSON lines from fixed-size reads and parses them one at
/// a time; memory is bounded by kMaxNdjsonLine + kReadChunk no matter
/// how large the input is.
class NdjsonSource final : public EventSource {
 public:
  using ReadFn = std::function<std::size_t(char*, std::size_t)>;

  NdjsonSource(ReadFn read, std::FILE* owned)
      : read_(std::move(read)), owned_(owned) {}
  ~NdjsonSource() override {
    if (owned_ != nullptr) std::fclose(owned_);
  }

  const util::json::Value* next() override {
    std::string line;
    while (next_line(line)) {
      if (line.empty()) continue;
      value_ = util::json::parse(line);
      if (!value_ || value_->kind != Value::Kind::kObject) {
        ++skipped_;
        continue;
      }
      return &*value_;
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t skipped() const noexcept override {
    return skipped_;
  }
  [[nodiscard]] std::string error() const override { return {}; }

 private:
  bool next_line(std::string& line) {
    for (;;) {
      const auto nl = buffer_.find('\n', pos_);
      if (nl != std::string::npos) {
        if (discarding_) {
          // Tail of an overlong line (already counted); resume after it.
          discarding_ = false;
          pos_ = nl + 1;
          continue;
        }
        line.assign(buffer_, pos_, nl - pos_);
        pos_ = nl + 1;
        if (pos_ >= kReadChunk) {
          buffer_.erase(0, pos_);
          pos_ = 0;
        }
        return true;
      }
      if (!discarding_ && buffer_.size() - pos_ > kMaxNdjsonLine) {
        ++skipped_;
        discarding_ = true;
      }
      if (discarding_) {
        buffer_.clear();
      } else {
        buffer_.erase(0, pos_);
      }
      pos_ = 0;
      if (eof_) {
        if (!discarding_ && !buffer_.empty()) {
          line = std::move(buffer_);  // final line without newline
          buffer_.clear();
          return true;
        }
        return false;
      }
      char chunk[kReadChunk];
      const std::size_t got = read_(chunk, sizeof chunk);
      if (got == 0) {
        eof_ = true;
        continue;
      }
      buffer_.append(chunk, got);
    }
  }

  ReadFn read_;
  std::FILE* owned_ = nullptr;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool eof_ = false;
  bool discarding_ = false;
  std::size_t skipped_ = 0;
  std::optional<Value> value_;
};

/// Builds Values from decoded colstore rows with exactly the semantics
/// util::json::parse would have produced from the NDJSON rendering —
/// same member order, same int/double duality — so replay results are
/// indistinguishable across formats.
class ColstoreSource final : public EventSource {
 public:
  ColstoreSource(const std::string& path, bool recover)
      : reader_(path, obs::ColFilter{}, obs::ColReadOptions{recover}) {}

  const util::json::Value* next() override {
    obs::DecodedEvent e;
    if (!reader_.next(e)) {
      if (!reader_.ok() && !warned_) {
        warned_ = true;
        util::log_warning() << "event source: " << reader_.error();
      }
      return nullptr;
    }
    value_.emplace();
    Value& v = *value_;
    v.kind = Value::Kind::kObject;
    v.obj.reserve(3 + e.fields.size());
    v.obj.emplace_back("ts", int_value(e.ts));
    v.obj.emplace_back("kind", string_value(e.kind));
    if (e.entity_is_string) {
      v.obj.emplace_back("entity", string_value(e.entity_string));
    } else {
      v.obj.emplace_back("entity", int_value(e.entity_int));
    }
    for (const obs::DecodedEvent::Field& f : e.fields) {
      Value fv;
      switch (f.type) {
        case obs::DecodedEvent::FieldType::kInt:
          fv = int_value(f.int_v);
          break;
        case obs::DecodedEvent::FieldType::kDouble:
          fv.kind = Value::Kind::kNumber;
          fv.num_v = f.double_v;
          fv.int_v = static_cast<std::int64_t>(f.double_v);
          fv.is_int = false;
          break;
        case obs::DecodedEvent::FieldType::kBool:
          fv.kind = Value::Kind::kBool;
          fv.bool_v = f.bool_v;
          break;
        case obs::DecodedEvent::FieldType::kString:
          fv = string_value(f.string_v);
          break;
        case obs::DecodedEvent::FieldType::kNull:
          break;  // default-constructed Value is null
      }
      v.obj.emplace_back(std::string(f.key), std::move(fv));
    }
    return &v;
  }

  [[nodiscard]] std::size_t skipped() const noexcept override {
    // A damaged chunk stops the scan; the rows lost are unknowable, so
    // the error() channel reports it instead of a count.
    return 0;
  }
  [[nodiscard]] std::string error() const override {
    return reader_.error();
  }

 private:
  static Value int_value(std::int64_t v) {
    Value out;
    out.kind = Value::Kind::kNumber;
    out.int_v = v;
    out.num_v = static_cast<double>(v);
    out.is_int = true;
    return out;
  }
  static Value string_value(std::string_view s) {
    Value out;
    out.kind = Value::Kind::kString;
    out.str_v = std::string(s);
    return out;
  }

  obs::ColReader reader_;
  bool warned_ = false;
  std::optional<Value> value_;
};

}  // namespace

std::unique_ptr<EventSource> make_ndjson_source(std::istream& in) {
  return std::make_unique<NdjsonSource>(
      [&in](char* dst, std::size_t n) -> std::size_t {
        in.read(dst, static_cast<std::streamsize>(n));
        return static_cast<std::size_t>(in.gcount());
      },
      nullptr);
}

std::unique_ptr<EventSource> open_event_source(
    const std::string& path, const EventSourceOptions& options) {
  if (obs::is_colstore_file(path)) {
    return std::make_unique<ColstoreSource>(path, options.recover);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    util::log_warning() << "event source: cannot open " << path;
    return nullptr;
  }
  return std::make_unique<NdjsonSource>(
      [f](char* dst, std::size_t n) { return std::fread(dst, 1, n, f); }, f);
}

}  // namespace pandarus::analysis
