#include "analysis/imbalance.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace pandarus::analysis {

double gini_coefficient(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::erase_if(sorted, [](double v) { return v < 0.0; });
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  double cumulative = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cumulative += sorted[i];
    weighted += sorted[i] * static_cast<double>(i + 1);
  }
  if (cumulative <= 0.0) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  return (2.0 * weighted) / (n * cumulative) - (n + 1.0) / n;
}

SpatialImbalance spatial_imbalance(const telemetry::MetadataStore& store,
                                   const grid::Topology& topology) {
  std::vector<SiteActivity> sites(topology.site_count());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    sites[i].site = static_cast<grid::SiteId>(i);
  }
  for (const telemetry::TransferRecord& t : store.transfers()) {
    if (!t.success) continue;
    if (t.source_site != grid::kUnknownSite &&
        t.source_site < sites.size()) {
      sites[t.source_site].bytes_out += t.file_size;
      ++sites[t.source_site].transfers;
    }
    if (t.destination_site != grid::kUnknownSite &&
        t.destination_site < sites.size()) {
      sites[t.destination_site].bytes_in += t.file_size;
      if (t.destination_site != t.source_site) {
        ++sites[t.destination_site].transfers;
      }
    }
  }
  for (const telemetry::JobRecord& j : store.jobs()) {
    if (j.computing_site == grid::kUnknownSite ||
        j.computing_site >= sites.size()) {
      continue;
    }
    ++sites[j.computing_site].jobs;
    if (j.failed) ++sites[j.computing_site].failed_jobs;
  }

  SpatialImbalance out;
  std::vector<double> byte_volumes;
  std::vector<double> job_counts;
  double total_bytes = 0.0;
  for (const SiteActivity& s : sites) {
    const double volume = static_cast<double>(s.bytes_in + s.bytes_out);
    byte_volumes.push_back(volume);
    job_counts.push_back(static_cast<double>(s.jobs));
    total_bytes += volume;
  }
  out.gini_bytes = gini_coefficient(byte_volumes);
  out.gini_jobs = gini_coefficient(job_counts);

  out.sites = std::move(sites);
  std::sort(out.sites.begin(), out.sites.end(),
            [](const SiteActivity& a, const SiteActivity& b) {
              return a.bytes_in + a.bytes_out > b.bytes_in + b.bytes_out;
            });
  if (total_bytes > 0.0 && !out.sites.empty()) {
    out.top1_byte_share = static_cast<double>(out.sites[0].bytes_in +
                                              out.sites[0].bytes_out) /
                          total_bytes;
    double top5 = 0.0;
    for (std::size_t i = 0; i < std::min<std::size_t>(5, out.sites.size());
         ++i) {
      top5 += static_cast<double>(out.sites[i].bytes_in +
                                  out.sites[i].bytes_out);
    }
    out.top5_byte_share = top5 / total_bytes;
  }
  return out;
}

TemporalImbalance temporal_imbalance(const telemetry::MetadataStore& store,
                                     util::SimDuration bin) {
  TemporalImbalance out;
  if (bin <= 0) return out;
  std::map<util::SimTime, TemporalPoint> bins;
  for (const telemetry::TransferRecord& t : store.transfers()) {
    if (!t.success) continue;
    const util::SimTime start = (t.started_at / bin) * bin;
    TemporalPoint& p = bins[start];
    p.bin_start = start;
    p.bytes += static_cast<double>(t.file_size);
    ++p.transfers;
  }
  double total = 0.0;
  for (const auto& [when, p] : bins) {
    out.series.push_back(p);
    out.peak_bytes = std::max(out.peak_bytes, p.bytes);
    total += p.bytes;
  }
  out.mean_bytes =
      out.series.empty() ? 0.0 : total / static_cast<double>(out.series.size());
  return out;
}

ErrorDistribution error_distribution(const telemetry::MetadataStore& store,
                                     grid::SiteId site) {
  ErrorDistribution out;
  for (const telemetry::JobRecord& j : store.jobs()) {
    if (site != grid::kUnknownSite && j.computing_site != site) continue;
    ++out.total_jobs;
    if (!j.failed) continue;
    ++out.total_failed;
    ++out.by_code[j.error_code];
  }
  return out;
}

double error_shift(const ErrorDistribution& a, const ErrorDistribution& b) {
  std::set<std::int32_t> codes;
  for (const auto& [code, n] : a.by_code) codes.insert(code);
  for (const auto& [code, n] : b.by_code) codes.insert(code);
  double distance = 0.0;
  for (std::int32_t code : codes) {
    distance += std::abs(a.share(code) - b.share(code));
  }
  return distance;
}

}  // namespace pandarus::analysis
