// Match-result summaries: the paper's §5.1 headline numbers, Table 1
// (activity breakdown of exact-matched transfers) and Tables 2a/2b
// (matched transfer/job counts by method).
#pragma once

#include <array>
#include <iosfwd>

#include "analysis/breakdown.hpp"
#include "core/relaxed.hpp"

namespace pandarus::analysis {

/// §5.1 overall statistics.
struct OverallSummary {
  std::size_t total_jobs = 0;
  std::size_t total_transfers = 0;
  std::size_t transfers_with_taskid = 0;
  std::size_t matched_transfers = 0;  ///< exact method
  std::size_t matched_jobs = 0;
  double matched_transfer_pct = 0.0;  ///< of transfers with jeditaskid
  double matched_job_pct = 0.0;
  double mean_queue_fraction = 0.0;
  double geomean_queue_fraction = 0.0;
};
[[nodiscard]] OverallSummary overall_summary(
    const telemetry::MetadataStore& store, const core::MatchResult& exact);

/// Table 1: per-activity matched/total counts over transfers that carry
/// a jeditaskid.
struct ActivityRow {
  dms::Activity activity = dms::Activity::kAnalysisDownload;
  std::size_t matched = 0;
  std::size_t total = 0;
  [[nodiscard]] double percentage() const noexcept {
    return total > 0 ? static_cast<double>(matched) /
                           static_cast<double>(total)
                     : 0.0;
  }
};
struct ActivityBreakdown {
  std::array<ActivityRow, dms::kActivityCount> rows{};
  std::size_t matched_total = 0;
  std::size_t taskid_total = 0;
};
[[nodiscard]] ActivityBreakdown activity_breakdown(
    const telemetry::MetadataStore& store, const core::MatchResult& result);

/// Table 2a: matched transfer counts (local/remote) per method.
struct MethodTransferRow {
  core::MatchMethod method = core::MatchMethod::kExact;
  std::size_t local = 0;
  std::size_t remote = 0;
  double matched_pct = 0.0;  ///< of transfers with jeditaskid
  [[nodiscard]] std::size_t total() const noexcept { return local + remote; }
};

/// Table 2b: matched job counts by locality class per method.
struct MethodJobRow {
  core::MatchMethod method = core::MatchMethod::kExact;
  std::size_t all_local = 0;
  std::size_t all_remote = 0;
  std::size_t mixed = 0;
  double matched_pct = 0.0;  ///< of all jobs
  [[nodiscard]] std::size_t total() const noexcept {
    return all_local + all_remote + mixed;
  }
};

struct MethodComparison {
  std::array<MethodTransferRow, 3> transfers{};
  std::array<MethodJobRow, 3> jobs{};
};
[[nodiscard]] MethodComparison compare_methods(
    const telemetry::MetadataStore& store, const core::TriMatchResult& tri);

/// Pretty-printers producing the paper-shaped tables.
void print_overall(std::ostream& os, const OverallSummary& s);
void print_table1(std::ostream& os, const ActivityBreakdown& b);
void print_table2(std::ostream& os, const MethodComparison& c);

}  // namespace pandarus::analysis
