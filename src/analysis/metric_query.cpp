#include "analysis/metric_query.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace pandarus::analysis {
namespace {

struct Accumulator {
  std::uint64_t events = 0;
  std::uint64_t count = 0;  ///< events that carried the value field
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // Sketches are allocated lazily per requested quantile; one P² state
  // is five markers, so a cell stays O(1) no matter the event volume.
  std::vector<std::pair<double, obs::P2Quantile>> quantiles;

  void observe(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    ++count;
    sum += v;
    for (auto& [q, sketch] : quantiles) sketch.observe(v);
  }
};

double quantile_for(MetricAggregate agg) {
  switch (agg) {
    case MetricAggregate::kP50:
      return 0.50;
    case MetricAggregate::kP95:
      return 0.95;
    case MetricAggregate::kP99:
      return 0.99;
    default:
      return -1.0;
  }
}

}  // namespace

bool parse_metric_aggregate(std::string_view name, MetricAggregate& out) {
  if (name == "count") {
    out = MetricAggregate::kCount;
  } else if (name == "sum") {
    out = MetricAggregate::kSum;
  } else if (name == "min") {
    out = MetricAggregate::kMin;
  } else if (name == "max") {
    out = MetricAggregate::kMax;
  } else if (name == "mean") {
    out = MetricAggregate::kMean;
  } else if (name == "p50") {
    out = MetricAggregate::kP50;
  } else if (name == "p95") {
    out = MetricAggregate::kP95;
  } else if (name == "p99") {
    out = MetricAggregate::kP99;
  } else {
    return false;
  }
  return true;
}

std::string_view metric_aggregate_name(MetricAggregate agg) {
  switch (agg) {
    case MetricAggregate::kCount:
      return "count";
    case MetricAggregate::kSum:
      return "sum";
    case MetricAggregate::kMin:
      return "min";
    case MetricAggregate::kMax:
      return "max";
    case MetricAggregate::kMean:
      return "mean";
    case MetricAggregate::kP50:
      return "p50";
    case MetricAggregate::kP95:
      return "p95";
    case MetricAggregate::kP99:
      return "p99";
  }
  return "count";
}

MetricQueryResult run_metric_query(EventSource& source,
                                   const MetricQuerySpec& spec) {
  MetricQueryResult result;

  std::vector<double> wanted_quantiles;
  for (const MetricAggregate agg : spec.aggregates) {
    const double q = quantile_for(agg);
    if (q >= 0.0 &&
        std::find(wanted_quantiles.begin(), wanted_quantiles.end(), q) ==
            wanted_quantiles.end()) {
      wanted_quantiles.push_back(q);
    }
  }

  // std::map keeps cells sorted by (bucket, group), so the output order
  // is a pure function of the matched events — identical across
  // container formats.
  using Key = std::pair<std::int64_t, std::vector<std::string>>;
  std::map<Key, Accumulator> cells;

  while (const util::json::Value* event = source.next()) {
    ++result.events_scanned;
    const std::int64_t ts = event->get_int("ts");
    if (ts < spec.ts_from || ts > spec.ts_to) continue;
    const std::string_view kind = event->get_string("kind");
    if (!spec.kinds.empty() &&
        std::find(spec.kinds.begin(), spec.kinds.end(), kind) ==
            spec.kinds.end()) {
      continue;
    }
    ++result.events_matched;

    Key key;
    key.first = spec.bucket_ms > 0 ? (ts / spec.bucket_ms) * spec.bucket_ms
                                   : 0;
    key.second.reserve(spec.group_by.size());
    for (const std::string& field : spec.group_by) {
      if (field == "kind") {
        key.second.emplace_back(kind);
        continue;
      }
      const util::json::Value* member = event->find(field);
      if (member == nullptr) {
        key.second.emplace_back();
      } else if (member->kind == util::json::Value::Kind::kString) {
        key.second.emplace_back(member->str_v);
      } else if (member->kind == util::json::Value::Kind::kNumber &&
                 member->is_int) {
        key.second.emplace_back(std::to_string(member->int_v));
      } else if (member->kind == util::json::Value::Kind::kNumber) {
        std::string text;
        obs::detail::append_json_double(text, member->num_v);
        key.second.emplace_back(std::move(text));
      } else if (member->kind == util::json::Value::Kind::kBool) {
        key.second.emplace_back(member->bool_v ? "true" : "false");
      } else {
        key.second.emplace_back();
      }
    }

    auto it = cells.find(key);
    if (it == cells.end()) {
      Accumulator acc;
      for (const double q : wanted_quantiles) {
        acc.quantiles.emplace_back(q, obs::P2Quantile(q));
      }
      it = cells.emplace(std::move(key), std::move(acc)).first;
    }
    Accumulator& acc = it->second;
    ++acc.events;
    if (!spec.value_field.empty()) {
      if (const util::json::Value* member = event->find(spec.value_field);
          member != nullptr &&
          member->kind == util::json::Value::Kind::kNumber) {
        acc.observe(member->is_int ? static_cast<double>(member->int_v)
                                   : member->num_v);
      }
    }
  }

  result.rows.reserve(cells.size());
  for (auto& [key, acc] : cells) {
    MetricQueryRow row;
    row.bucket_start = key.first;
    row.group = key.second;
    row.events = acc.events;
    row.values.reserve(spec.aggregates.size());
    for (const MetricAggregate agg : spec.aggregates) {
      double v = 0.0;
      switch (agg) {
        case MetricAggregate::kCount:
          v = spec.value_field.empty() ? static_cast<double>(acc.events)
                                       : static_cast<double>(acc.count);
          break;
        case MetricAggregate::kSum:
          v = acc.sum;
          break;
        case MetricAggregate::kMin:
          v = acc.count > 0 ? acc.min : 0.0;
          break;
        case MetricAggregate::kMax:
          v = acc.count > 0 ? acc.max : 0.0;
          break;
        case MetricAggregate::kMean:
          v = acc.count > 0
                  ? acc.sum / static_cast<double>(acc.count)
                  : 0.0;
          break;
        case MetricAggregate::kP50:
        case MetricAggregate::kP95:
        case MetricAggregate::kP99: {
          const double q = quantile_for(agg);
          for (auto& [cq, sketch] : acc.quantiles) {
            if (cq == q) {
              v = sketch.count() > 0 ? sketch.estimate() : 0.0;
              break;
            }
          }
          break;
        }
      }
      row.values.push_back(v);
    }
    result.rows.push_back(std::move(row));
  }
  result.source_skipped = source.skipped();
  result.source_error = source.error();
  return result;
}

void write_metric_query_json(std::ostream& out, const MetricQuerySpec& spec,
                             const MetricQueryResult& result) {
  std::string text;
  text.reserve(4096);
  text += "{\"query\":{\"kinds\":[";
  for (std::size_t i = 0; i < spec.kinds.size(); ++i) {
    if (i != 0) text += ',';
    text += '"';
    obs::detail::append_json_escaped(text, spec.kinds[i]);
    text += '"';
  }
  text += "],\"bucket_ms\":";
  text += std::to_string(spec.bucket_ms);
  text += ",\"group_by\":[";
  for (std::size_t i = 0; i < spec.group_by.size(); ++i) {
    if (i != 0) text += ',';
    text += '"';
    obs::detail::append_json_escaped(text, spec.group_by[i]);
    text += '"';
  }
  text += "],\"value_field\":\"";
  obs::detail::append_json_escaped(text, spec.value_field);
  text += "\",\"aggregates\":[";
  for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
    if (i != 0) text += ',';
    text += '"';
    text += metric_aggregate_name(spec.aggregates[i]);
    text += '"';
  }
  text += "]},\"events_scanned\":";
  text += std::to_string(result.events_scanned);
  text += ",\"events_matched\":";
  text += std::to_string(result.events_matched);
  text += ",\"skipped\":";
  text += std::to_string(result.source_skipped);
  text += ",\"rows\":[";
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const MetricQueryRow& row = result.rows[i];
    if (i != 0) text += ',';
    text += "{\"bucket\":";
    text += std::to_string(row.bucket_start);
    text += ",\"group\":[";
    for (std::size_t g = 0; g < row.group.size(); ++g) {
      if (g != 0) text += ',';
      text += '"';
      obs::detail::append_json_escaped(text, row.group[g]);
      text += '"';
    }
    text += "],\"events\":";
    text += std::to_string(row.events);
    for (std::size_t a = 0; a < spec.aggregates.size(); ++a) {
      text += ",\"";
      text += metric_aggregate_name(spec.aggregates[a]);
      text += "\":";
      obs::detail::append_json_double(text, row.values[a]);
    }
    text += '}';
  }
  text += "]}";
  out << text << '\n';
}

}  // namespace pandarus::analysis
