// Offline event replay: rebuilds an analyzable MetadataStore — plus the
// sampled time series — from a PANDARUS_EVENTS NDJSON stream, without
// touching any live simulator state.
//
// The campaign closes its event stream with a harvest (campaign_meta,
// site_record, then one job_record / file_record / transfer_record per
// store row, in store order).  Replaying those records through a fresh
// MetadataStore re-interns every string attribute, and because per-family
// order is preserved the rebuilt store is index-compatible with the
// in-memory one: matching and every downstream analysis produce
// identical numbers.  The replay cross-check test asserts exactly that.
//
// Live lifecycle events (job_state, transfer_submit, sample, ...) are
// tallied by kind and — for sample / link_sample — decoded into columnar
// series for the report generator.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "grid/site.hpp"
#include "telemetry/store.hpp"
#include "util/time.hpp"

namespace pandarus::analysis {

class EventSource;

struct ReplayResult {
  /// Rebuilt from the harvest events; empty if the stream held none.
  telemetry::MetadataStore store;

  /// From site_record events: id -> display name / tier.
  std::map<grid::SiteId, std::string> site_names;
  std::map<grid::SiteId, std::int32_t> site_tiers;

  /// From the campaign_meta event (zeros when absent).
  std::uint64_t seed = 0;
  double days = 0.0;
  util::SimTime window_begin = 0;
  util::SimTime window_end = 0;
  std::int64_t sample_interval_ms = 0;

  /// Columnar "sample" series: one row per tick, columns in emission
  /// order (taken from the first sample event seen).
  std::vector<std::string> sample_columns;
  struct Sample {
    std::int64_t ts = 0;
    std::vector<std::int64_t> values;
  };
  std::vector<Sample> samples;

  /// Per-link load samples, in stream order.
  struct LinkSample {
    std::int64_t ts = 0;
    grid::SiteId src = grid::kUnknownSite;
    grid::SiteId dst = grid::kUnknownSite;
    std::int64_t active = 0;
    std::int64_t queued = 0;
    std::int64_t bytes_in_flight = 0;
    double rate_bps = 0.0;
    double utilization = 0.0;
  };
  std::vector<LinkSample> link_samples;

  /// Fault-window transitions (kind == "fault_window"), in stream order.
  struct FaultWindowEvent {
    std::int64_t ts = 0;
    std::string fault_kind;  ///< site_outage, link_blackout, ...
    bool begin = true;
    grid::SiteId site = grid::kUnknownSite;
    grid::SiteId src = grid::kUnknownSite;
    grid::SiteId dst = grid::kUnknownSite;
    std::int64_t window_begin = 0;
    std::int64_t window_end = 0;
  };
  std::vector<FaultWindowEvent> fault_windows;

  /// Terminal-failure attribution from transfer_record events, indexed
  /// by dms::TransferError value (aborted, stalled_terminal, ...).
  std::map<std::int32_t, std::size_t> failure_causes;

  /// Flow/transfer lifecycle hooks captured in stream order: exactly
  /// the obs::FlowTracker calls the live simulation made, so
  /// analysis::rebuild_flows can feed them to a detached tracker and
  /// reproduce the online critical-path analysis verbatim.  flow_* rows
  /// only exist when the stream was recorded with flows armed;
  /// transfer_* rows are always present.
  struct FlowEventRow {
    enum class Op : std::uint8_t {
      kFlowBegin,
      kFlowBroker,
      kFlowStage,
      kFlowLink,
      kFlowQueue,
      kFlowRun,
      kFlowStageOut,
      kFlowEnd,
      kTransferSubmit,
      kTransferStart,
      kTransferReroute,
      kTransferRetry,
      kTransferTerminal,
    };
    Op op = Op::kFlowBegin;
    std::int64_t ts = 0;
    std::int64_t entity = 0;       ///< pandaid (flow ops) / transfer id
    std::int64_t task = -1;        ///< kFlowBegin
    std::int64_t site = -1;        ///< kFlowBroker
    std::int64_t candidates = -1;  ///< kFlowBroker
    std::uint64_t transfer = 0;    ///< kFlowLink
    std::int64_t file = -1;        ///< kTransferSubmit
    std::int64_t src = -1;         ///< kTransferSubmit / kTransferStart
    std::int64_t dst = -1;
    std::int32_t attempt = 1;      ///< kFlowBegin / kTransferStart
    std::int32_t error = 0;        ///< kFlowEnd
    bool flag = false;  ///< shared / watchdog / failed / success
    bool registered = false;  ///< kTransferTerminal
  };
  std::vector<FlowEventRow> flow_events;

  /// The terminal log_stats event the EventLog appends on close():
  /// what the producing process actually wrote and dropped.  A nonzero
  /// `dropped` means the stream is truncated by max_events and every
  /// downstream count is a floor, not a total.
  struct LogStats {
    bool present = false;
    std::uint64_t events = 0;
    std::uint64_t dropped = 0;
    std::uint64_t bytes = 0;
  };
  LogStats log_stats;

  /// Every event kind seen, with its line count (sorted by kind).
  std::map<std::string, std::size_t> kind_counts;
  std::size_t lines_parsed = 0;
  std::size_t lines_skipped = 0;  ///< unparsable or missing kind/ts

  [[nodiscard]] std::string site_name(grid::SiteId id) const;
};

/// Replays any event source (NDJSON or colstore) with bounded memory;
/// malformed events are counted and skipped, never fatal (a truncated
/// tail must not lose the whole stream).
ReplayResult replay_events(EventSource& source);

/// Line-streaming NDJSON convenience wrapper over the same replay.
ReplayResult replay_events(std::istream& in);

/// Opens `path` via open_event_source (format sniffed: colstore magic
/// or NDJSON text) and replays it; returns a result with lines_parsed
/// == 0 and a warning log when the file cannot be opened.
ReplayResult replay_events_file(const std::string& path);

}  // namespace pandarus::analysis
