// Replay face of the health engine: streams a recorded campaign (NDJSON
// or colstore, via analysis::EventSource) through
// obs::HealthEngine::observe_json, producing the exact detector / SLO /
// alert state the live run held when it emitted those events.  This is
// the detectors' out-of-core path — the file is never loaded whole —
// and the source of truth for the live-vs-replay /api/alerts parity
// gate.
#pragma once

#include <memory>
#include <string>

#include "analysis/event_source.hpp"
#include "obs/health.hpp"

namespace pandarus::analysis {

/// Streams `source` to exhaustion into a fresh engine.  Event emission
/// is disabled on the returned engine, so deriving health from a stream
/// never re-emits that stream's own alerts into an installed EventLog.
std::unique_ptr<obs::HealthEngine> derive_health(
    EventSource& source, obs::HealthConfig config = {});

/// Convenience: open_event_source(path) + derive_health; nullptr when
/// the file cannot be opened.
std::unique_ptr<obs::HealthEngine> derive_health_file(
    const std::string& path, obs::HealthConfig config = {});

}  // namespace pandarus::analysis
