// JSON bodies for the obs::serve /api/* endpoints.  The server itself
// (obs::StatusServer) sits below analysis in the module layering and
// cannot see matchers or replay — this module closes the loop by
// registering providers through StatusServer::set_json_endpoint:
//
//   /api/summary        §5.1 headline numbers + matched counts for all
//                       three methods (the CI gate reads exact/rm1/rm2
//                       matched_jobs here)
//   /api/tables         Table 1 (activity breakdown) and Tables 2a/2b
//   /api/series         the obs::Sampler columnar time series
//   /api/critical-path  per-link critical-seconds ranking
//
// Live mode reads the installed EventLog's *published prefix* only
// (EventLog::snapshot_ndjson), replays it into a fresh store, runs the
// matchers, and memoizes all bodies keyed by the publication watermark
// — a scrape never blocks the sim thread and two scrapes at one
// watermark cost one replay.  Matching runs only once harvest records
// exist (the store stays empty mid-campaign), so scrapes during the
// simulation cannot perturb the sampled matcher counters and the
// campaign NDJSON stays byte-identical server on or off.
#pragma once

#include <memory>

namespace pandarus::obs {
class StatusServer;
}

namespace pandarus::analysis {

struct ReplayResult;

/// Registers the live /api endpoints on `server`, computing from the
/// installed EventLog and FlowTracker.  scenario::run_campaign calls
/// this automatically when a StatusServer is installed.
void attach_live_status(obs::StatusServer& server);

/// Registers the same endpoints precomputed from a finished replay
/// (`pandarus-serve --replay <file>`): bodies are built once here.
/// `alerts_json` — a HealthEngine::status_json() document derived from
/// the same stream (analysis::derive_health) — backs /api/alerts when
/// provided; without it the endpoint reports {"enabled":false}.
void attach_replay_status(obs::StatusServer& server,
                          std::shared_ptr<const ReplayResult> replay,
                          std::shared_ptr<const std::string> alerts_json =
                              nullptr);

}  // namespace pandarus::analysis
