#include "analysis/critical_path.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"
#include "util/table.hpp"

namespace pandarus::analysis {
namespace {

std::int64_t nearest_rank(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(sorted.size() - 1)));
  return sorted[std::min(idx, sorted.size() - 1)];
}

PhaseQuantiles quantiles_of(std::string phase,
                            std::vector<std::int64_t> values) {
  PhaseQuantiles out;
  out.phase = std::move(phase);
  for (const std::int64_t v : values) out.total_ms += v;
  std::sort(values.begin(), values.end());
  out.p50 = nearest_rank(values, 0.50);
  out.p95 = nearest_rank(values, 0.95);
  out.p99 = nearest_rank(values, 0.99);
  out.max = values.empty() ? 0 : values.back();
  return out;
}

}  // namespace

std::string FlowAnalysis::site_label(std::int64_t site) const {
  const auto it = site_names.find(site);
  if (it != site_names.end() && !it->second.empty()) return it->second;
  return "site_" + std::to_string(site);
}

std::vector<PhaseQuantiles> flow_phase_quantiles(
    const std::vector<obs::FlowSummary>& flows) {
  std::vector<std::int64_t> broker, stage_in, serialized, queue, run,
      stage_out, wall;
  broker.reserve(flows.size());
  for (const obs::FlowSummary& f : flows) {
    broker.push_back(f.phases.broker_ms);
    stage_in.push_back(f.phases.stage_in_ms);
    serialized.push_back(f.phases.stage_in_serialized_ms);
    queue.push_back(f.phases.queue_ms);
    run.push_back(f.phases.run_ms);
    stage_out.push_back(f.phases.stage_out_ms);
    wall.push_back(f.phases.wall_ms);
  }
  std::vector<PhaseQuantiles> out;
  out.push_back(quantiles_of("broker", std::move(broker)));
  out.push_back(quantiles_of("stage_in", std::move(stage_in)));
  out.push_back(quantiles_of("stage_in_serialized", std::move(serialized)));
  out.push_back(quantiles_of("queue", std::move(queue)));
  out.push_back(quantiles_of("run", std::move(run)));
  out.push_back(quantiles_of("stage_out", std::move(stage_out)));
  out.push_back(quantiles_of("wall", std::move(wall)));
  return out;
}

FlowAnalysis analyze_flows(const obs::FlowTracker& tracker,
                           std::map<std::int64_t, std::string> site_names) {
  FlowAnalysis out;
  out.flows = tracker.completed();
  out.totals = tracker.totals();
  out.link_ranking = tracker.link_ranking();
  out.quantiles = flow_phase_quantiles(out.flows);
  out.site_names = std::move(site_names);
  out.collapsed = tracker.to_collapsed(
      [&out](std::int64_t site) { return out.site_label(site); });
  return out;
}

FlowAnalysis rebuild_flows(const ReplayResult& replay) {
  using Op = ReplayResult::FlowEventRow::Op;
  obs::FlowTracker tracker(/*emit=*/false);
  for (const ReplayResult::FlowEventRow& row : replay.flow_events) {
    const auto tid = static_cast<std::uint64_t>(row.entity);
    switch (row.op) {
      case Op::kFlowBegin:
        tracker.begin_flow(row.entity, row.task, row.attempt, row.ts);
        break;
      case Op::kFlowBroker:
        // Live order is broker_scored (inside choose_site) then
        // broker_decision; the flow_broker line carries both.
        tracker.broker_scored(row.entity, row.candidates);
        tracker.broker_decision(row.entity, row.site, row.ts);
        break;
      case Op::kFlowStage:
        tracker.stage_begin(row.entity, row.ts);
        break;
      case Op::kFlowLink:
        tracker.link_transfer(row.entity, row.transfer, row.ts, row.flag);
        break;
      case Op::kFlowQueue:
        tracker.queue_enter(row.entity, row.ts, row.flag);
        break;
      case Op::kFlowRun:
        tracker.run_begin(row.entity, row.ts);
        break;
      case Op::kFlowStageOut:
        tracker.stage_out_begin(row.entity, row.ts);
        break;
      case Op::kFlowEnd:
        tracker.end_flow(row.entity, row.ts, row.flag, row.error);
        break;
      case Op::kTransferSubmit:
        tracker.transfer_submitted(tid, row.file, row.src, row.dst, row.ts);
        break;
      case Op::kTransferStart:
        tracker.attempt_start(tid, static_cast<std::uint32_t>(row.attempt),
                              row.src, row.dst, row.ts);
        break;
      case Op::kTransferReroute:
        tracker.transfer_rerouted(tid);
        break;
      case Op::kTransferRetry:
        tracker.attempt_end(tid, row.ts, /*success=*/false,
                            /*terminal=*/false, /*registered=*/false);
        break;
      case Op::kTransferTerminal:
        tracker.attempt_end(tid, row.ts, row.flag, /*terminal=*/true,
                            row.registered);
        break;
    }
  }
  std::map<std::int64_t, std::string> names;
  for (const auto& [id, name] : replay.site_names) {
    names[static_cast<std::int64_t>(id)] = name;
  }
  return analyze_flows(tracker, std::move(names));
}

std::string render_attribution(const FlowAnalysis& analysis,
                               std::size_t top_links) {
  std::string out;
  out += "critical-path wait attribution (" +
         util::format_count(static_cast<std::uint64_t>(analysis.flows.size())) +
         " flows)\n\n";

  util::Table phases({"phase", "p50 ms", "p95 ms", "p99 ms", "max ms",
                      "total ms"});
  for (std::size_t c = 1; c <= 5; ++c) phases.set_align(c, util::Align::kRight);
  for (const PhaseQuantiles& q : analysis.quantiles) {
    phases.add_row({q.phase, util::format_count(q.p50),
                    util::format_count(q.p95), util::format_count(q.p99),
                    util::format_count(q.max), util::format_count(q.total_ms)});
  }
  out += phases.to_string() + "\n";

  const obs::FlowTotals& t = analysis.totals;
  out += "flows " + util::format_count(t.flows) + ", failed " +
         util::format_count(t.failed) + ", sequential staging " +
         util::format_count(t.sequential_staging) + ", redundant transfers " +
         util::format_count(t.redundant_transfers) + ", watchdog releases " +
         util::format_count(t.watchdog_releases) + ", reroutes " +
         util::format_count(t.reroutes) + "\n\n";

  if (!analysis.link_ranking.empty()) {
    out += "top links by critical stage-in time\n";
    util::Table links({"rank", "link", "critical ms", "flows"});
    links.set_align(0, util::Align::kRight);
    links.set_align(2, util::Align::kRight);
    links.set_align(3, util::Align::kRight);
    const std::size_t n = std::min(top_links, analysis.link_ranking.size());
    for (std::size_t i = 0; i < n; ++i) {
      const obs::LinkCritical& lc = analysis.link_ranking[i];
      links.add_row({std::to_string(i + 1),
                     analysis.site_label(lc.src) + " -> " +
                         analysis.site_label(lc.dst),
                     util::format_count(lc.critical_ms),
                     util::format_count(lc.flows)});
    }
    out += links.to_string() + "\n";
  }

  std::vector<const obs::FlowSummary*> sequential;
  for (const obs::FlowSummary& f : analysis.flows) {
    if (f.phases.sequential_staging) sequential.push_back(&f);
  }
  if (!sequential.empty()) {
    std::sort(sequential.begin(), sequential.end(),
              [](const obs::FlowSummary* a, const obs::FlowSummary* b) {
                if (a->phases.stage_in_ms != b->phases.stage_in_ms) {
                  return a->phases.stage_in_ms > b->phases.stage_in_ms;
                }
                return a->pandaid < b->pandaid;
              });
    out += "sequential-staging case studies (overlap ~ 0)\n";
    util::Table cases({"pandaid", "site", "transfers", "stage_in ms",
                       "overlap", "bottleneck link", "critical ms"});
    cases.set_align(2, util::Align::kRight);
    cases.set_align(3, util::Align::kRight);
    cases.set_align(4, util::Align::kRight);
    cases.set_align(6, util::Align::kRight);
    const std::size_t n = std::min<std::size_t>(5, sequential.size());
    for (std::size_t i = 0; i < n; ++i) {
      const obs::FlowSummary& f = *sequential[i];
      cases.add_row({std::to_string(f.pandaid), analysis.site_label(f.site),
                     std::to_string(f.phases.stage_in_transfers),
                     util::format_count(f.phases.stage_in_ms),
                     util::format_fixed(f.phases.stage_in_overlap, 3),
                     analysis.site_label(f.critical_src()) + " -> " +
                         analysis.site_label(f.critical_dst()),
                     util::format_count(f.critical_ms())});
    }
    out += cases.to_string() + "\n";
  }
  return out;
}

}  // namespace pandarus::analysis
