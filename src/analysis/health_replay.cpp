#include "analysis/health_replay.hpp"

namespace pandarus::analysis {

std::unique_ptr<obs::HealthEngine> derive_health(EventSource& source,
                                                 obs::HealthConfig config) {
  auto engine = std::make_unique<obs::HealthEngine>(config);
  engine->set_emit_events(false);
  while (const util::json::Value* event = source.next()) {
    engine->observe_json(*event);
  }
  return engine;
}

std::unique_ptr<obs::HealthEngine> derive_health_file(
    const std::string& path, obs::HealthConfig config) {
  std::unique_ptr<EventSource> source = open_event_source(path);
  if (source == nullptr) return nullptr;
  return derive_health(*source, config);
}

}  // namespace pandarus::analysis
