#include "analysis/report.hpp"

#include <ostream>

#include "analysis/bandwidth.hpp"
#include "analysis/breakdown.hpp"
#include "analysis/imbalance.hpp"
#include "analysis/threshold.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace pandarus::analysis {
namespace {

void heading(std::ostream& os, const char* title) {
  os << "\n== " << title << " "
     << std::string(72 - std::min<std::size_t>(70, 4 + std::char_traits<char>::length(title)), '=')
     << "\n\n";
}

void top_jobs_section(std::ostream& os, const telemetry::MetadataStore& store,
                      const core::TriMatchResult& tri,
                      core::LocalityClass locality, std::size_t top_n) {
  const auto rows = build_breakdown(store, tri.rm1);
  const auto top = top_by_queuing(rows, locality, 0.10, top_n);
  if (top.empty()) {
    os << "(no jobs above the 10% transfer-time threshold)\n";
    return;
  }
  util::Table table({"pandaid", "Status", "Queue", "In transfer", "Share",
                     "Bytes"});
  for (std::size_t c = 2; c <= 5; ++c) table.set_align(c, util::Align::kRight);
  for (const auto& row : top) {
    table.add_row({std::to_string(row.pandaid), row.job_failed ? "F" : "D",
                   util::format_duration(row.queuing_time),
                   util::format_duration(row.transfer_time_in_queue),
                   util::format_percent(row.queue_fraction),
                   util::format_bytes(
                       static_cast<double>(row.transferred_bytes))});
  }
  table.print(os);
}

}  // namespace

void write_campaign_report(std::ostream& os,
                           const telemetry::MetadataStore& store,
                           const grid::Topology& topology,
                           const core::TriMatchResult& tri,
                           const ReportOptions& options) {
  os << "PANDARUS CAMPAIGN REPORT\n";
  os << "========================\n";

  heading(os, "Overall matching (paper Section 5.1)");
  print_overall(os, overall_summary(store, tri.exact));

  heading(os, "Activity breakdown of exact matches (Table 1)");
  print_table1(os, activity_breakdown(store, tri.exact));

  heading(os, "Matching methods (Tables 2a/2b)");
  print_table2(os, compare_methods(store, tri));

  heading(os, "Top local-transfer jobs by queuing time (Fig. 5)");
  top_jobs_section(os, store, tri, core::LocalityClass::kAllLocal,
                   options.top_jobs);

  heading(os, "Top remote-transfer jobs by queuing time (Fig. 6)");
  top_jobs_section(os, store, tri, core::LocalityClass::kAllRemote,
                   options.top_jobs);

  heading(os, "Transfer-time threshold sweep (Fig. 9)");
  {
    const auto rows = build_breakdown(store, tri.exact);
    const auto sweep = run_threshold_sweep(rows, default_thresholds());
    const auto above = sweep.above(options.anomaly_queue_share_threshold);
    std::size_t above_total = 0;
    for (auto n : above) above_total += n;
    os << "Matched jobs: " << sweep.total_jobs << "; successful "
       << sweep.successful_jobs() << " ("
       << util::format_percent(
              sweep.total_jobs > 0
                  ? static_cast<double>(sweep.successful_jobs()) /
                        static_cast<double>(sweep.total_jobs)
                  : 0.0)
       << ").  Jobs above "
       << util::format_percent(options.anomaly_queue_share_threshold, 0)
       << " transfer share: " << above_total << ", of which failed "
       << above[1] + above[3] << ".\n";
  }

  if (options.include_imbalance) {
    heading(os, "Spatial/temporal imbalance (Section 3.2)");
    const auto spatial = spatial_imbalance(store, topology);
    const auto temporal = temporal_imbalance(store);
    os << "Gini(site bytes) = " << util::format_fixed(spatial.gini_bytes, 3)
       << ", Gini(site jobs) = " << util::format_fixed(spatial.gini_jobs, 3)
       << "; top-1 byte share "
       << util::format_percent(spatial.top1_byte_share) << ", top-5 "
       << util::format_percent(spatial.top5_byte_share) << "\n";
    os << "Temporal peak/mean (6h bins): "
       << util::format_fixed(temporal.peak_to_mean(), 2) << "\n";
    const auto errors = error_distribution(store);
    os << "Failed jobs " << errors.total_failed << " of "
       << errors.total_jobs << "; error mix:";
    for (const auto& [code, count] : errors.by_code) {
      os << "  " << code << "=" << util::format_percent(errors.share(code), 0);
    }
    os << "\n";
  }

  if (options.include_anomalies) {
    heading(os, "Automated anomaly detection (Section 7)");
    core::AnomalyDetectorConfig config;
    config.queue_share_threshold = options.anomaly_queue_share_threshold;
    const auto report = core::AnomalyDetector(config).scan(store, tri.rm2);
    util::Table table({"Class", "Flags"});
    table.set_align(1, util::Align::kRight);
    for (std::size_t t = 0; t < core::kAnomalyTypeCount; ++t) {
      table.add_row({core::anomaly_name(static_cast<core::AnomalyType>(t)),
                     util::format_count(std::uint64_t{report.counts[t]})});
    }
    table.print(os);
    os << "Flagged " << report.jobs_flagged << "/" << report.jobs_scanned
       << " matched jobs; failure rate flagged "
       << util::format_percent(report.flagged_failure_rate)
       << " vs unflagged "
       << util::format_percent(report.unflagged_failure_rate) << "\n";
  }

  if (options.include_case_studies) {
    const CaseStudyExtractor extractor(store, tri);
    heading(os, "Case study: sequential staging (Fig. 10)");
    if (const auto cs = extractor.sequential_staging_case()) {
      os << "(matched by " << core::method_name(cs->method) << ", spread x"
         << util::format_fixed(cs->throughput_spread, 1) << ")\n"
         << render_timeline(store, cs->match);
    } else {
      os << "(no candidate in this campaign)\n";
    }
    heading(os, "Case study: failed job with spanning transfer (Fig. 11)");
    if (const auto cs = extractor.failed_spanning_case()) {
      os << render_timeline(store, cs->match);
    } else {
      os << "(no candidate in this campaign)\n";
    }
    heading(os, "Case study: RM2 redundancy + inference (Fig. 12)");
    if (const auto cs = extractor.rm2_redundant_case()) {
      os << render_transfer_table(store, topology, cs->match);
      std::uint64_t wasted = 0;
      for (const auto& group : cs->redundant) wasted += group.wasted_bytes();
      os << "Avoidable volume in this job: "
         << util::format_bytes(static_cast<double>(wasted)) << "\n";
    } else {
      os << "(no candidate in this campaign)\n";
    }
  }
  os << "\n(end of report)\n";
}

}  // namespace pandarus::analysis
