#include "analysis/summary.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "util/format.hpp"
#include "util/table.hpp"

namespace pandarus::analysis {
namespace {

/// Unique matched transfer indices, restricted to events carrying a
/// jeditaskid — the population the paper's transfer-side counts use
/// ("30,380 transfers with jeditaskid were successfully linked").
std::vector<std::size_t> unique_matched_with_taskid(
    const telemetry::MetadataStore& store, const core::MatchResult& result) {
  std::vector<std::size_t> indices;
  for (const core::MatchedJob& m : result.jobs) {
    for (std::size_t ti : m.transfer_indices) {
      if (store.transfers()[ti].has_jeditaskid()) indices.push_back(ti);
    }
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return indices;
}

}  // namespace

OverallSummary overall_summary(const telemetry::MetadataStore& store,
                               const core::MatchResult& exact) {
  OverallSummary s;
  const auto counts = store.counts();
  s.total_jobs = counts.jobs;
  s.total_transfers = counts.transfers;
  s.transfers_with_taskid = counts.transfers_with_taskid;
  s.matched_transfers = unique_matched_with_taskid(store, exact).size();
  s.matched_jobs = exact.matched_job_count();
  s.matched_transfer_pct =
      s.transfers_with_taskid > 0
          ? static_cast<double>(s.matched_transfers) /
                static_cast<double>(s.transfers_with_taskid)
          : 0.0;
  s.matched_job_pct = s.total_jobs > 0
                          ? static_cast<double>(s.matched_jobs) /
                                static_cast<double>(s.total_jobs)
                          : 0.0;
  const auto rows = build_breakdown(store, exact);
  const auto agg = aggregate(rows);
  s.mean_queue_fraction = agg.mean_queue_fraction;
  s.geomean_queue_fraction = agg.geomean_queue_fraction;
  return s;
}

ActivityBreakdown activity_breakdown(const telemetry::MetadataStore& store,
                                     const core::MatchResult& result) {
  ActivityBreakdown b;
  for (std::size_t a = 0; a < dms::kActivityCount; ++a) {
    b.rows[a].activity = static_cast<dms::Activity>(a);
  }
  for (const telemetry::TransferRecord& t : store.transfers()) {
    if (!t.has_jeditaskid()) continue;
    ++b.rows[static_cast<std::size_t>(t.activity)].total;
    ++b.taskid_total;
  }
  for (std::size_t ti : unique_matched_with_taskid(store, result)) {
    const telemetry::TransferRecord& t = store.transfers()[ti];
    ++b.rows[static_cast<std::size_t>(t.activity)].matched;
    ++b.matched_total;
  }
  return b;
}

MethodComparison compare_methods(const telemetry::MetadataStore& store,
                                 const core::TriMatchResult& tri) {
  MethodComparison c;
  const auto counts = store.counts();
  const core::MatchMethod methods[] = {core::MatchMethod::kExact,
                                       core::MatchMethod::kRM1,
                                       core::MatchMethod::kRM2};
  for (std::size_t m = 0; m < 3; ++m) {
    const core::MatchResult& result = tri.by_method(methods[m]);

    MethodTransferRow& tr = c.transfers[m];
    tr.method = methods[m];
    for (std::size_t ti : unique_matched_with_taskid(store, result)) {
      if (store.transfers()[ti].is_local()) {
        ++tr.local;
      } else {
        ++tr.remote;
      }
    }
    tr.matched_pct = counts.transfers_with_taskid > 0
                         ? static_cast<double>(tr.total()) /
                               static_cast<double>(counts.transfers_with_taskid)
                         : 0.0;

    MethodJobRow& jr = c.jobs[m];
    jr.method = methods[m];
    for (const core::MatchedJob& match : result.jobs) {
      switch (match.locality()) {
        case core::LocalityClass::kAllLocal: ++jr.all_local; break;
        case core::LocalityClass::kAllRemote: ++jr.all_remote; break;
        case core::LocalityClass::kMixed: ++jr.mixed; break;
      }
    }
    jr.matched_pct = counts.jobs > 0
                         ? static_cast<double>(jr.total()) /
                               static_cast<double>(counts.jobs)
                         : 0.0;
  }
  return c;
}

void print_overall(std::ostream& os, const OverallSummary& s) {
  os << "Collected " << util::format_count(std::uint64_t{s.total_jobs})
     << " user jobs and "
     << util::format_count(std::uint64_t{s.total_transfers})
     << " file-level transfer events; "
     << util::format_count(std::uint64_t{s.transfers_with_taskid})
     << " transfers carry a valid jeditaskid.\n";
  os << "Exact matching linked "
     << util::format_count(std::uint64_t{s.matched_transfers})
     << " transfers (" << util::format_percent(s.matched_transfer_pct)
     << " of transfers with jeditaskid) and "
     << util::format_count(std::uint64_t{s.matched_jobs}) << " jobs ("
     << util::format_percent(s.matched_job_pct) << " of user jobs).\n";
  os << "Transfer time during job queuing: mean "
     << util::format_percent(s.mean_queue_fraction) << ", geometric mean "
     << util::format_percent(s.geomean_queue_fraction, 3) << ".\n";
}

void print_table1(std::ostream& os, const ActivityBreakdown& b) {
  util::Table table({"Transfer activity type", "Matched count",
                     "Total count", "Percentage"});
  for (std::size_t col = 1; col <= 3; ++col) {
    table.set_align(col, util::Align::kRight);
  }
  for (const ActivityRow& row : b.rows) {
    if (row.total == 0 && row.matched == 0) continue;
    table.add_row({dms::activity_name(row.activity),
                   util::format_count(std::uint64_t{row.matched}),
                   util::format_count(std::uint64_t{row.total}),
                   util::format_percent(row.percentage())});
  }
  table.add_separator();
  const double pct = b.taskid_total > 0
                         ? static_cast<double>(b.matched_total) /
                               static_cast<double>(b.taskid_total)
                         : 0.0;
  table.add_row({"Total", util::format_count(std::uint64_t{b.matched_total}),
                 util::format_count(std::uint64_t{b.taskid_total}),
                 util::format_percent(pct)});
  table.print(os);
}

void print_table2(std::ostream& os, const MethodComparison& c) {
  os << "(a) Matched transfers count\n";
  util::Table ta({"Matching method", "Local transfer", "Remote transfer",
                  "Total transfer", "Total matched %"});
  for (std::size_t col = 1; col <= 4; ++col) {
    ta.set_align(col, util::Align::kRight);
  }
  for (const MethodTransferRow& row : c.transfers) {
    ta.add_row({core::method_name(row.method),
                util::format_count(std::uint64_t{row.local}),
                util::format_count(std::uint64_t{row.remote}),
                util::format_count(std::uint64_t{row.total()}),
                util::format_percent(row.matched_pct)});
  }
  ta.print(os);

  os << "(b) Matched job count\n";
  util::Table tb({"Matching method", "Jobs all local", "Jobs all remote",
                  "Jobs mixed", "Total jobs", "Total matched %"});
  for (std::size_t col = 1; col <= 5; ++col) {
    tb.set_align(col, util::Align::kRight);
  }
  for (const MethodJobRow& row : c.jobs) {
    tb.add_row({core::method_name(row.method),
                util::format_count(std::uint64_t{row.all_local}),
                util::format_count(std::uint64_t{row.all_remote}),
                util::format_count(std::uint64_t{row.mixed}),
                util::format_count(std::uint64_t{row.total()}),
                util::format_percent(row.matched_pct)});
  }
  tb.print(os);
}

}  // namespace pandarus::analysis
