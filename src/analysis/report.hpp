// Campaign report: one call assembling every analysis artefact of the
// paper's evaluation into a single human-readable document — §5.1's
// summary, Tables 1/2, the Fig. 5/6 selections, Fig. 9's sweep, the
// three case studies, imbalance and anomaly sections.
//
// This is the "operator view" a production deployment of the matching
// framework would publish per observation window.
#pragma once

#include <iosfwd>

#include "analysis/casestudy.hpp"
#include "analysis/summary.hpp"
#include "core/anomaly.hpp"

namespace pandarus::analysis {

struct ReportOptions {
  std::size_t top_jobs = 10;          ///< rows in the Fig. 5/6 sections
  bool include_case_studies = true;   ///< timelines are verbose
  bool include_anomalies = true;
  bool include_imbalance = true;
  double anomaly_queue_share_threshold = 0.75;
};

/// Writes the full report to `os`.  The store must outlive the call; the
/// topology provides site names.
void write_campaign_report(std::ostream& os,
                           const telemetry::MetadataStore& store,
                           const grid::Topology& topology,
                           const core::TriMatchResult& tri,
                           const ReportOptions& options = {});

}  // namespace pandarus::analysis
