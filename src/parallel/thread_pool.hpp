// Fixed-size thread pool.
//
// The paper's §5.5 calls out that metadata volume "imposes the need for
// efficient computing for scalability" and names parallelization as the
// valuable next step; the matching core (core/parallel_driver) runs its
// job partitions through this pool.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"

namespace pandarus::parallel {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      queue_.push_back(QueuedTask{[task] { (*task)(); },
                                  std::chrono::steady_clock::now()});
      queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    cv_.notify_one();
    return future;
  }

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void wait_idle();

 private:
  /// A queued closure plus its enqueue instant, so workers can report
  /// how long it waited (pandarus_pool_task_wait_seconds).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  // Process-wide pool metrics (all ThreadPool instances aggregate into
  // the same series; the depth gauge is last-writer-wins).
  obs::Counter* tasks_executed_;
  obs::Gauge* queue_depth_;
  obs::Histogram* task_wait_;
};

/// Splits [0, n) into roughly equal chunks and runs `body(begin, end)` on
/// the pool; blocks until all chunks complete.  With a 1-thread pool this
/// degrades to a serial loop with no task overhead.
void parallel_for_chunks(ThreadPool& pool, std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t min_chunk = 256);

/// Map-reduce over [0, n): each worker folds its chunk into a local
/// accumulator (default-constructed T), then `combine` merges them in
/// chunk order, so the reduction is deterministic regardless of thread
/// scheduling.
template <typename T, typename Fold, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t n, Fold fold, Combine combine,
                  std::size_t min_chunk = 256) {
  if (n == 0) return T{};
  const std::size_t max_chunks = std::max<std::size_t>(1, pool.size() * 4);
  const std::size_t chunk =
      std::max(min_chunk, (n + max_chunks - 1) / max_chunks);
  std::vector<std::future<T>> futures;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futures.push_back(pool.submit([=] {
      T acc{};
      for (std::size_t i = begin; i < end; ++i) fold(acc, i);
      return acc;
    }));
  }
  T result = futures.front().get();
  for (std::size_t i = 1; i < futures.size(); ++i)
    combine(result, futures[i].get());
  return result;
}

}  // namespace pandarus::parallel
