// Sharded hash map: concurrent inserts from matcher workers without a
// global lock.  Shard count is a power of two fixed at construction.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pandarus::parallel {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedMap {
 public:
  explicit ShardedMap(std::size_t shard_count = 16) {
    // Round up to a power of two so shard selection is a mask.
    std::size_t n = 1;
    while (n < shard_count) n <<= 1;
    shards_ = std::vector<Shard>(n);
  }

  /// Inserts or overwrites.
  void put(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    std::scoped_lock lock(shard.mutex);
    shard.map[key] = std::move(value);
  }

  /// Applies `fn(Value&)` to the (default-constructed if absent) entry.
  template <typename Fn>
  void update(const Key& key, Fn&& fn) {
    Shard& shard = shard_for(key);
    std::scoped_lock lock(shard.mutex);
    fn(shard.map[key]);
  }

  /// Copies the value out if present.
  [[nodiscard]] bool get(const Key& key, Value& out) const {
    const Shard& shard = shard_for(key);
    std::scoped_lock lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    out = it->second;
    return true;
  }

  [[nodiscard]] bool contains(const Key& key) const {
    const Shard& shard = shard_for(key);
    std::scoped_lock lock(shard.mutex);
    return shard.map.contains(key);
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::scoped_lock lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

  /// Single-threaded visitation of every entry (shard by shard).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& shard : shards_) {
      std::scoped_lock lock(shard.mutex);
      for (const auto& [key, value] : shard.map) fn(key, value);
    }
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Value, Hash> map;
  };

  Shard& shard_for(const Key& key) {
    return shards_[Hash{}(key) & (shards_.size() - 1)];
  }
  const Shard& shard_for(const Key& key) const {
    return shards_[Hash{}(key) & (shards_.size() - 1)];
  }

  std::vector<Shard> shards_;
};

}  // namespace pandarus::parallel
