#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace pandarus::parallel {

ThreadPool::ThreadPool(std::size_t threads)
    : tasks_executed_(&obs::Registry::global().counter(
          "pandarus_pool_tasks_executed_total",
          "Tasks dequeued and run by thread-pool workers")),
      queue_depth_(&obs::Registry::global().gauge(
          "pandarus_pool_queue_depth",
          "Tasks waiting in the pool queue (last observed)")),
      task_wait_(&obs::Registry::global().histogram(
          "pandarus_pool_task_wait_seconds",
          {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0},
          "Submit-to-dequeue wait per task")) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
      ++active_;
    }
    task_wait_->observe(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - task.enqueued)
                            .count());
    tasks_executed_->inc();
    {
      const obs::ScopedSpan span("pool/task", "parallel");
      task.fn();
    }
    {
      std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_chunk) {
  if (n == 0) return;
  if (pool.size() <= 1 || n <= min_chunk) {
    body(0, n);
    return;
  }
  const std::size_t max_chunks = pool.size() * 4;
  const std::size_t chunk =
      std::max(min_chunk, (n + max_chunks - 1) / max_chunks);
  std::vector<std::future<void>> futures;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futures.push_back(pool.submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& future : futures) future.get();
}

}  // namespace pandarus::parallel
