#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace pandarus::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_chunk) {
  if (n == 0) return;
  if (pool.size() <= 1 || n <= min_chunk) {
    body(0, n);
    return;
  }
  const std::size_t max_chunks = pool.size() * 4;
  const std::size_t chunk =
      std::max(min_chunk, (n + max_chunks - 1) / max_chunks);
  std::vector<std::future<void>> futures;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futures.push_back(pool.submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& future : futures) future.get();
}

}  // namespace pandarus::parallel
