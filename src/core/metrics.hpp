// Job/transfer timing metrics (paper §5.1): "file transfer time is
// defined as the cumulative duration during the job's queuing time phase
// in which at least one associated file was actively transferring" —
// i.e. the measure of the *union* of transfer intervals clipped to the
// queuing window, not the sum of durations.
#pragma once

#include <span>
#include <vector>

#include "core/match_types.hpp"
#include "util/time.hpp"

namespace pandarus::core {

struct Interval {
  util::SimTime begin = 0;
  util::SimTime end = 0;
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Measure of the union of (possibly overlapping, unsorted) intervals.
/// Empty/inverted intervals contribute nothing.
[[nodiscard]] util::SimDuration union_measure(std::vector<Interval> spans);

/// Timing breakdown of one matched job.
struct JobTransferMetrics {
  util::SimDuration queuing_time = 0;
  util::SimDuration wall_time = 0;
  /// Union of transfer activity clipped to [creation, start).
  util::SimDuration transfer_time_in_queue = 0;
  /// Union of transfer activity clipped to [start, end) — nonzero for
  /// Direct IO and for the anomalous spans of Fig. 11.
  util::SimDuration transfer_time_in_wall = 0;
  std::uint64_t transferred_bytes = 0;
  /// True when some matched transfer crosses the job's start time.
  bool transfer_spans_execution = false;

  [[nodiscard]] double queue_fraction() const noexcept {
    return queuing_time > 0 ? static_cast<double>(transfer_time_in_queue) /
                                  static_cast<double>(queuing_time)
                            : 0.0;
  }
};

/// Computes the breakdown for one matched job against the store it was
/// matched in.
[[nodiscard]] JobTransferMetrics compute_metrics(
    const telemetry::MetadataStore& store, const MatchedJob& match);

}  // namespace pandarus::core
