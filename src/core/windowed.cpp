#include "core/windowed.hpp"

#include <algorithm>
#include <unordered_set>

namespace pandarus::core {
namespace {

struct Span {
  util::SimTime lo = 0;
  util::SimTime hi = 0;  // exclusive
};

Span job_end_span(const telemetry::MetadataStore& store) {
  Span span{util::kNever, 0};
  for (const auto& j : store.jobs()) {
    span.lo = std::min(span.lo, j.end_time);
    span.hi = std::max(span.hi, j.end_time + 1);
  }
  if (span.lo == util::kNever) span = {0, 0};
  return span;
}

}  // namespace

std::size_t WindowedMatcher::window_count() const {
  const Span span = job_end_span(*store_);
  if (span.hi <= span.lo || config_.window <= 0) return 0;
  return static_cast<std::size_t>(
      (span.hi - span.lo + config_.window - 1) / config_.window);
}

MatchResult WindowedMatcher::run(const MatchOptions& options) const {
  MatchResult out;
  out.method = options.method;
  out.jobs_considered = store_->jobs().size();

  const Span span = job_end_span(*store_);
  if (span.hi <= span.lo || config_.window <= 0) return out;

  for (util::SimTime w0 = span.lo; w0 < span.hi; w0 += config_.window) {
    const util::SimTime w1 = w0 + config_.window;

    // Jobs completed in this window (the query module "only reports jobs
    // that are completed before the end of the interval").
    const auto job_indices = store_->jobs_completed_in(w0, w1);
    if (job_indices.empty()) continue;

    // Transfers started inside the window or its lookback margin.
    const auto transfer_indices =
        store_->transfers_started_in(w0 - config_.lookback, w1);

    // File rows bridging to this window's jobs.
    std::unordered_set<std::int64_t> pandaids;
    pandaids.reserve(job_indices.size() * 2);
    for (std::size_t ji : job_indices) {
      pandaids.insert(store_->jobs()[ji].pandaid);
    }

    // Build the window snapshot (original indices recorded for the
    // back-translation below).
    telemetry::MetadataStore window_store;
    for (std::size_t ji : job_indices) {
      window_store.record_job(store_->jobs()[ji]);
    }
    for (const auto& row : store_->files()) {
      if (pandaids.contains(row.pandaid)) window_store.record_file(row);
    }
    std::vector<std::size_t> transfer_map;
    transfer_map.reserve(transfer_indices.size());
    for (std::size_t ti : transfer_indices) {
      window_store.record_transfer(store_->transfers()[ti]);
      transfer_map.push_back(ti);
    }

    const Matcher matcher(window_store);
    MatchResult window_result = matcher.run(options);
    for (MatchedJob& m : window_result.jobs) {
      m.job_index = job_indices[m.job_index];
      for (std::size_t& ti : m.transfer_indices) ti = transfer_map[ti];
      std::sort(m.transfer_indices.begin(), m.transfer_indices.end());
      out.jobs.push_back(std::move(m));
    }
  }

  std::sort(out.jobs.begin(), out.jobs.end(),
            [](const MatchedJob& a, const MatchedJob& b) {
              return a.job_index < b.job_index;
            });
  return out;
}

}  // namespace pandarus::core
