// Parallel matching driver (paper §5.5: "any future systematic and
// scalable analysis designs, such as parallelization, will be especially
// valuable").
//
// Jobs are independent in Algorithm 1, so the driver partitions the job
// index range over a thread pool and merges per-chunk results in chunk
// order — output is byte-identical to the serial run.
#pragma once

#include "core/exact.hpp"
#include "parallel/thread_pool.hpp"

namespace pandarus::core {

class ParallelMatchDriver {
 public:
  ParallelMatchDriver(const Matcher& matcher, parallel::ThreadPool& pool)
      : matcher_(&matcher), pool_(&pool) {}

  /// Same contract as Matcher::run, parallelized.
  [[nodiscard]] MatchResult run(const MatchOptions& options) const;

 private:
  const Matcher* matcher_;
  parallel::ThreadPool* pool_;
};

}  // namespace pandarus::core
