#include "core/match_types.hpp"

namespace pandarus::core {

const char* method_name(MatchMethod method) noexcept {
  switch (method) {
    case MatchMethod::kExact: return "Exact";
    case MatchMethod::kRM1: return "RM1";
    case MatchMethod::kRM2: return "RM2";
  }
  return "?";
}

}  // namespace pandarus::core
