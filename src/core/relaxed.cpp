#include "core/relaxed.hpp"

namespace pandarus::core {

TriMatchResult run_all_methods(const Matcher& matcher) {
  TriMatchResult out;
  out.exact = matcher.run(MatchOptions::exact());
  out.rm1 = matcher.run(MatchOptions::rm1());
  out.rm2 = matcher.run(MatchOptions::rm2());
  return out;
}

}  // namespace pandarus::core
