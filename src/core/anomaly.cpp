#include "core/anomaly.hpp"

#include <algorithm>
#include <map>

#include "util/stats.hpp"

namespace pandarus::core {

const char* anomaly_name(AnomalyType type) noexcept {
  switch (type) {
    case AnomalyType::kExcessiveTransferShare:
      return "excessive transfer share of queuing";
    case AnomalyType::kSpanningTransfer:
      return "transfer spans queuing and execution";
    case AnomalyType::kRedundantDelivery:
      return "redundant delivery of the same file";
    case AnomalyType::kStalledThroughput:
      return "throughput far below link median";
    case AnomalyType::kUnknownEndpoint:
      return "matched transfer with unknown endpoint";
  }
  return "?";
}

AnomalyReport AnomalyDetector::scan(const telemetry::MetadataStore& store,
                                    const MatchResult& result) const {
  AnomalyReport report;
  report.jobs_scanned = result.jobs.size();

  // Per-link median throughput over the *whole* event stream (not just
  // matched transfers), so stall detection has context.
  std::map<std::pair<grid::SiteId, grid::SiteId>, std::vector<double>>
      link_throughputs;
  for (const telemetry::TransferRecord& t : store.transfers()) {
    if (!t.success) continue;
    const double bps = t.throughput_bps();
    if (bps > 0.0) {
      link_throughputs[{t.source_site, t.destination_site}].push_back(bps);
    }
  }
  std::map<std::pair<grid::SiteId, grid::SiteId>, double> link_median;
  for (auto& [key, samples] : link_throughputs) {
    if (samples.size() < config_.min_link_samples) continue;
    link_median[key] = util::quantile(samples, 0.5);
  }

  std::size_t flagged_failed = 0;
  std::size_t unflagged_failed = 0;
  for (const MatchedJob& match : result.jobs) {
    const telemetry::JobRecord& job = store.jobs()[match.job_index];
    const JobTransferMetrics metrics = compute_metrics(store, match);
    bool flagged = false;
    auto emit = [&](AnomalyType type, double severity) {
      Anomaly a;
      a.type = type;
      a.job_index = match.job_index;
      a.pandaid = job.pandaid;
      a.severity = severity;
      a.job_failed = job.failed;
      ++report.counts[static_cast<std::size_t>(type)];
      report.anomalies.push_back(a);
      flagged = true;
    };

    if (metrics.queue_fraction() > config_.queue_share_threshold) {
      emit(AnomalyType::kExcessiveTransferShare, metrics.queue_fraction());
    }
    if (metrics.transfer_spans_execution) {
      emit(AnomalyType::kSpanningTransfer,
           static_cast<double>(metrics.transfer_time_in_wall));
    }

    const auto redundant = find_redundant_transfers(store, match);
    if (!redundant.empty()) {
      std::uint64_t wasted = 0;
      for (const auto& group : redundant) wasted += group.wasted_bytes();
      emit(AnomalyType::kRedundantDelivery, static_cast<double>(wasted));
    }

    bool any_unknown = false;
    double worst_slowdown = 0.0;
    for (std::size_t ti : match.transfer_indices) {
      const telemetry::TransferRecord& t = store.transfers()[ti];
      if (t.source_site == grid::kUnknownSite ||
          t.destination_site == grid::kUnknownSite) {
        any_unknown = true;
      }
      auto it = link_median.find({t.source_site, t.destination_site});
      if (it == link_median.end()) continue;
      const double bps = t.throughput_bps();
      if (bps <= 0.0) continue;
      const double slowdown = it->second / bps;
      if (slowdown > config_.stall_slowdown_factor) {
        worst_slowdown = std::max(worst_slowdown, slowdown);
      }
    }
    if (worst_slowdown > 0.0) {
      emit(AnomalyType::kStalledThroughput, worst_slowdown);
    }
    if (any_unknown) {
      emit(AnomalyType::kUnknownEndpoint, 1.0);
    }

    if (flagged) {
      ++report.jobs_flagged;
      flagged_failed += job.failed;
    } else {
      unflagged_failed += job.failed;
    }
  }

  report.flagged_failure_rate =
      report.jobs_flagged > 0
          ? static_cast<double>(flagged_failed) /
                static_cast<double>(report.jobs_flagged)
          : 0.0;
  const std::size_t unflagged = report.jobs_scanned - report.jobs_flagged;
  report.unflagged_failure_rate =
      unflagged > 0 ? static_cast<double>(unflagged_failed) /
                          static_cast<double>(unflagged)
                    : 0.0;
  return report;
}

}  // namespace pandarus::core
