// Algorithm 1: mapping jobs to file-transfer events (paper §4.2).
//
// Transfers carry no pandaid, so the algorithm pivots through the PanDA
// file table: for job J_j, the file rows F'_j sharing its (pandaid,
// jeditaskid) provide the attribute tuple {lfn, dataset, proddblock,
// scope, file_size} that candidate transfers must match exactly.  The
// final filter keeps candidates that
//   (1) started before the job's end time,
//   (2) — exact method only — whose total size S_j equals the job's
//       ninputfilebytes or noutputfilebytes (evaluated over the whole
//       time-passing candidate set, as the paper does: "this filtering
//       step treats T'_j as a whole set rather than solving the
//       underlying NP-hard subset-selection problem"), and
//   (3) satisfy the direction/site condition: downloads must land at the
//       job's computing site, uploads must leave from it.
//
// The relaxed variants RM1/RM2 (§4.3) reuse the same pipeline with the
// size gate disabled (RM1) and unknown site labels admitted (RM2); see
// core/relaxed.hpp for the presets.
#pragma once

#include <memory>

#include "core/match_index.hpp"
#include "core/match_types.hpp"

namespace pandarus::core {

/// Knobs distinguishing exact/RM1/RM2 (and any custom hybrid).
struct MatchOptions {
  MatchMethod method = MatchMethod::kExact;
  /// Gate on S_j == ninputfilebytes or noutputfilebytes (exact only).
  bool enforce_size_sum = true;
  /// Accept transfers whose relevant endpoint is UNKNOWN (RM2 only).
  bool relax_unknown_site = false;
  /// Require candidate transfers to carry the job's jeditaskid.  The
  /// paper's accounting implies this (every linked transfer "with
  /// jeditaskid" matches the task that owns the job); disabling it
  /// admits anonymous rule-driven traffic as candidates — useful as an
  /// ablation of how much provenance the task id actually carries.
  bool require_taskid_match = true;

  [[nodiscard]] static MatchOptions exact() noexcept {
    return {MatchMethod::kExact, true, false, true};
  }
  [[nodiscard]] static MatchOptions rm1() noexcept {
    return {MatchMethod::kRM1, false, false, true};
  }
  [[nodiscard]] static MatchOptions rm2() noexcept {
    return {MatchMethod::kRM2, false, true, true};
  }
  [[nodiscard]] static MatchOptions for_method(MatchMethod m) noexcept {
    switch (m) {
      case MatchMethod::kExact: return exact();
      case MatchMethod::kRM1: return rm1();
      case MatchMethod::kRM2: return rm2();
    }
    return exact();
  }
};

/// Why a job did or did not match: the terminal stage of Algorithm 1's
/// pipeline for that job.  The enumerators are ordered by pipeline
/// position, so "later" outcomes imply every earlier stage passed.
enum class MatchOutcome : std::uint8_t {
  kNoFileRows = 0,       ///< no PanDA file-table rows bridge the job
  kNoCandidates = 1,     ///< rows exist but no transfer attribute-matches
  kSizeGateFailed = 2,   ///< S_j != ninputfilebytes and != noutputfilebytes
  kSiteCheckEliminatedAll = 3,  ///< candidates survived but none at the
                                ///< right endpoint
  kMatched = 4,
};
inline constexpr std::size_t kMatchOutcomeCount = 5;

[[nodiscard]] const char* match_outcome_name(MatchOutcome outcome) noexcept;

/// Structured explanation of one job's trip through Algorithm 1 — the
/// paper's §5.5 data-quality diagnosis ("raw data of uncertain quality")
/// made queryable.
struct MatchDiagnosis {
  MatchOutcome outcome = MatchOutcome::kNoFileRows;
  std::size_t file_rows = 0;        ///< rows with matching jeditaskid
  std::size_t candidates = 0;       ///< attribute+time-matched transfers
  std::uint64_t candidate_sum = 0;  ///< S_j over the candidate set
  std::size_t site_passing = 0;     ///< candidates passing the site check
};

/// Matcher over one (already corrupted) metadata snapshot.  Construction
/// builds (or adopts) the MatchIndex Algorithm 1 needs — file rows by
/// (pandaid, jeditaskid) and transfers by interned lfn symbol — and is
/// then reusable across methods and threads (all queries are const).
class Matcher {
 public:
  /// Builds the index serially.
  explicit Matcher(const telemetry::MetadataStore& store);

  /// Builds the index with the parallel two-pass group-by over `pool`.
  Matcher(const telemetry::MetadataStore& store, parallel::ThreadPool& pool);

  /// Adopts a prebuilt index (shared across matchers without a rebuild).
  explicit Matcher(std::shared_ptr<const MatchIndex> index);

  /// Runs Algorithm 1's inner loop for one job; the result's
  /// transfer_indices is empty when the job matches nothing.
  [[nodiscard]] MatchedJob match_job(std::size_t job_index,
                                     const MatchOptions& options) const;

  /// Like match_job, but reports which pipeline stage stopped the job.
  [[nodiscard]] MatchDiagnosis diagnose_job(std::size_t job_index,
                                            const MatchOptions& options) const;

  /// Serial run over all jobs in the store.
  [[nodiscard]] MatchResult run(const MatchOptions& options) const;

  [[nodiscard]] const telemetry::MetadataStore& store() const noexcept {
    return index_->store();
  }

  /// The shared index (e.g. to hand to another Matcher).
  [[nodiscard]] const std::shared_ptr<const MatchIndex>& index()
      const noexcept {
    return index_;
  }

 private:
  friend class ParallelMatchDriver;

  /// Candidate construction shared by match_job and diagnose_job:
  /// attribute-key-matched, taskid-checked (per options), time-filtered,
  /// deduplicated, ascending.  `file_rows` (optional) receives the count
  /// of bridging file rows.  Returns a per-thread scratch buffer valid
  /// until this thread's next call.
  [[nodiscard]] const std::vector<std::size_t>& collect_candidates(
      std::size_t job_index, const MatchOptions& options,
      std::size_t* file_rows) const;

  /// The store's index: file rows by (pandaid, jeditaskid), transfers
  /// by lfn symbol, composite attribute keys.  The underlying store
  /// must outlive the matcher and stay unmodified.
  std::shared_ptr<const MatchIndex> index_;
};

}  // namespace pandarus::core
