// Algorithm 1: mapping jobs to file-transfer events (paper §4.2).
//
// Transfers carry no pandaid, so the algorithm pivots through the PanDA
// file table: for job J_j, the file rows F'_j sharing its (pandaid,
// jeditaskid) provide the attribute tuple {lfn, dataset, proddblock,
// scope, file_size} that candidate transfers must match exactly.  The
// final filter keeps candidates that
//   (1) started before the job's end time,
//   (2) — exact method only — whose total size S_j equals the job's
//       ninputfilebytes or noutputfilebytes (evaluated over the whole
//       time-passing candidate set, as the paper does: "this filtering
//       step treats T'_j as a whole set rather than solving the
//       underlying NP-hard subset-selection problem"), and
//   (3) satisfy the direction/site condition: downloads must land at the
//       job's computing site, uploads must leave from it.
//
// The relaxed variants RM1/RM2 (§4.3) reuse the same pipeline with the
// size gate disabled (RM1) and unknown site labels admitted (RM2); see
// core/relaxed.hpp for the presets.
#pragma once

#include <string_view>
#include <unordered_map>

#include "core/match_types.hpp"

namespace pandarus::core {

/// Knobs distinguishing exact/RM1/RM2 (and any custom hybrid).
struct MatchOptions {
  MatchMethod method = MatchMethod::kExact;
  /// Gate on S_j == ninputfilebytes or noutputfilebytes (exact only).
  bool enforce_size_sum = true;
  /// Accept transfers whose relevant endpoint is UNKNOWN (RM2 only).
  bool relax_unknown_site = false;
  /// Require candidate transfers to carry the job's jeditaskid.  The
  /// paper's accounting implies this (every linked transfer "with
  /// jeditaskid" matches the task that owns the job); disabling it
  /// admits anonymous rule-driven traffic as candidates — useful as an
  /// ablation of how much provenance the task id actually carries.
  bool require_taskid_match = true;

  [[nodiscard]] static MatchOptions exact() noexcept {
    return {MatchMethod::kExact, true, false, true};
  }
  [[nodiscard]] static MatchOptions rm1() noexcept {
    return {MatchMethod::kRM1, false, false, true};
  }
  [[nodiscard]] static MatchOptions rm2() noexcept {
    return {MatchMethod::kRM2, false, true, true};
  }
  [[nodiscard]] static MatchOptions for_method(MatchMethod m) noexcept {
    switch (m) {
      case MatchMethod::kExact: return exact();
      case MatchMethod::kRM1: return rm1();
      case MatchMethod::kRM2: return rm2();
    }
    return exact();
  }
};

/// Why a job did or did not match: the terminal stage of Algorithm 1's
/// pipeline for that job.  The enumerators are ordered by pipeline
/// position, so "later" outcomes imply every earlier stage passed.
enum class MatchOutcome : std::uint8_t {
  kNoFileRows = 0,       ///< no PanDA file-table rows bridge the job
  kNoCandidates = 1,     ///< rows exist but no transfer attribute-matches
  kSizeGateFailed = 2,   ///< S_j != ninputfilebytes and != noutputfilebytes
  kSiteCheckEliminatedAll = 3,  ///< candidates survived but none at the
                                ///< right endpoint
  kMatched = 4,
};
inline constexpr std::size_t kMatchOutcomeCount = 5;

[[nodiscard]] const char* match_outcome_name(MatchOutcome outcome) noexcept;

/// Structured explanation of one job's trip through Algorithm 1 — the
/// paper's §5.5 data-quality diagnosis ("raw data of uncertain quality")
/// made queryable.
struct MatchDiagnosis {
  MatchOutcome outcome = MatchOutcome::kNoFileRows;
  std::size_t file_rows = 0;        ///< rows with matching jeditaskid
  std::size_t candidates = 0;       ///< attribute+time-matched transfers
  std::uint64_t candidate_sum = 0;  ///< S_j over the candidate set
  std::size_t site_passing = 0;     ///< candidates passing the site check
};

/// Matcher over one (already corrupted) metadata snapshot.  Construction
/// builds the two indexes Algorithm 1 needs — file rows by pandaid and
/// transfers by lfn — and is then reusable across methods and threads
/// (all queries are const).
class Matcher {
 public:
  explicit Matcher(const telemetry::MetadataStore& store);

  /// Runs Algorithm 1's inner loop for one job; the result's
  /// transfer_indices is empty when the job matches nothing.
  [[nodiscard]] MatchedJob match_job(std::size_t job_index,
                                     const MatchOptions& options) const;

  /// Like match_job, but reports which pipeline stage stopped the job.
  [[nodiscard]] MatchDiagnosis diagnose_job(std::size_t job_index,
                                            const MatchOptions& options) const;

  /// Serial run over all jobs in the store.
  [[nodiscard]] MatchResult run(const MatchOptions& options) const;

  [[nodiscard]] const telemetry::MetadataStore& store() const noexcept {
    return *store_;
  }

 private:
  friend class ParallelMatchDriver;

  /// Candidate construction shared by match_job and diagnose_job:
  /// attribute-matched, taskid-checked (per options), time-filtered,
  /// deduplicated.  `file_rows` (optional) receives the count of
  /// bridging file rows.
  [[nodiscard]] std::vector<std::size_t> collect_candidates(
      const telemetry::JobRecord& job, const MatchOptions& options,
      std::size_t* file_rows) const;

  const telemetry::MetadataStore* store_;
  /// pandaid -> indices into store.files().
  std::unordered_map<std::int64_t, std::vector<std::size_t>> files_by_job_;
  /// lfn -> indices into store.transfers().  Keys view into the store's
  /// strings; the store must outlive the matcher and stay unmodified.
  std::unordered_map<std::string_view, std::vector<std::size_t>>
      transfers_by_lfn_;
};

}  // namespace pandarus::core
