// Relaxed matching strategies RM1/RM2 (paper §4.3) and the convenience
// driver that runs all three methods over one snapshot.
//
// RM1 drops the byte-exact size-sum gate, recovering (1) jobs whose
// candidate set contains a valid subset but not an exact-sum whole, and
// (2) jobs whose recorded sizes are imprecise.  RM2 additionally retains
// transfers whose relevant endpoint is recorded as UNKNOWN/invalid.
// Guaranteed inclusions (tested as invariants): for every job,
//   exact-matched set ⊆ RM1-matched set ⊆ RM2-matched set.
#pragma once

#include <array>

#include "core/exact.hpp"

namespace pandarus::core {

/// Results for all three methods, in method order.
struct TriMatchResult {
  MatchResult exact;
  MatchResult rm1;
  MatchResult rm2;

  [[nodiscard]] const MatchResult& by_method(MatchMethod m) const noexcept {
    switch (m) {
      case MatchMethod::kExact: return exact;
      case MatchMethod::kRM1: return rm1;
      case MatchMethod::kRM2: return rm2;
    }
    return exact;
  }
};

/// Runs exact, RM1 and RM2 over the snapshot with one shared index.
[[nodiscard]] TriMatchResult run_all_methods(const Matcher& matcher);

}  // namespace pandarus::core
