// MatchIndex: the shared, immutable index layer behind Algorithm 1.
//
// The paper's §5.5 notes that metadata volume "imposes the need for
// efficient computing for scalability ... such as parallelization".
// This index is where that lands for the matching core:
//
//  * file rows are grouped by OWNING JOB — keyed on the full (pandaid,
//    jeditaskid) bridge, so stale rows (same pandaid, different task
//    generation) are excluded at build time instead of per query;
//  * transfers are grouped by interned lfn symbol, which turns the old
//    string-keyed hash map into a counting sort over dense ids;
//  * every record gets one 64-bit composite attribute key — the interned
//    (dataset, proddblock, scope) triple in the high half and an
//    interned file-size id in the low half — so the attribute-join
//    predicate of Algorithm 1 is ONE integer compare per candidate.
//    Key equality is exact (interned, not hashed): equal keys iff all
//    three strings and the size are equal.
//
// Both group-bys are CSR layouts (offsets + slots) built with a
// deterministic two-pass scheme — per-chunk count, column-major prefix
// sum, per-chunk scatter — optionally sharded over a ThreadPool.  The
// scatter preserves record order within each group regardless of thread
// count, so serial and parallel builds are bit-identical.
//
// One MatchIndex is built per snapshot and shared by the exact, RM1/RM2
// and windowed matchers and the ParallelMatchDriver (all queries const).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "parallel/thread_pool.hpp"
#include "telemetry/store.hpp"

namespace pandarus::core {

class MatchIndex {
 public:
  /// Serial build.
  explicit MatchIndex(const telemetry::MetadataStore& store)
      : MatchIndex(store, nullptr) {}

  /// Parallel two-pass build over `pool` (nullptr degrades to serial).
  /// The store must outlive the index and stay unmodified.
  MatchIndex(const telemetry::MetadataStore& store,
             parallel::ThreadPool* pool);

  /// File rows whose (pandaid, jeditaskid) equals the job's — the F'_j
  /// of Algorithm 1, stale rows already excluded.  Ascending row order.
  [[nodiscard]] std::span<const std::uint32_t> files_of_job(
      std::size_t job_index) const noexcept {
    return group(file_offsets_, file_slots_, job_index);
  }

  /// Transfers whose lfn has the given symbol id.  Ascending row order.
  [[nodiscard]] std::span<const std::uint32_t> transfers_with_lfn(
      util::Symbol lfn_sym) const noexcept {
    if (lfn_sym + 1 >= transfer_offsets_.size()) return {};
    return group(transfer_offsets_, transfer_slots_, lfn_sym);
  }

  /// Composite attribute keys; `file_key(i) == transfer_key(j)` iff the
  /// records agree on dataset, proddblock, scope AND file_size.
  [[nodiscard]] std::uint64_t file_key(std::size_t file_index) const noexcept {
    return file_keys_[file_index];
  }
  [[nodiscard]] std::uint64_t transfer_key(
      std::size_t transfer_index) const noexcept {
    return transfer_keys_[transfer_index];
  }

  [[nodiscard]] const telemetry::MetadataStore& store() const noexcept {
    return *store_;
  }

 private:
  static std::span<const std::uint32_t> group(
      const std::vector<std::uint32_t>& offsets,
      const std::vector<std::uint32_t>& slots, std::size_t g) noexcept {
    if (g + 1 >= offsets.size()) return {};
    return std::span<const std::uint32_t>(slots)
        .subspan(offsets[g], offsets[g + 1] - offsets[g]);
  }

  const telemetry::MetadataStore* store_;
  /// CSR over jobs: file_slots_[file_offsets_[j] .. file_offsets_[j+1])
  /// are the file-row indices bridging to job j.
  std::vector<std::uint32_t> file_offsets_;
  std::vector<std::uint32_t> file_slots_;
  /// CSR over lfn symbols, same layout, into store.transfers().
  std::vector<std::uint32_t> transfer_offsets_;
  std::vector<std::uint32_t> transfer_slots_;
  std::vector<std::uint64_t> file_keys_;
  std::vector<std::uint64_t> transfer_keys_;
};

}  // namespace pandarus::core
