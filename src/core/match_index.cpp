#include "core/match_index.hpp"

#include <algorithm>
#include <future>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace pandarus::core {
namespace {

constexpr std::uint32_t kNone = 0xFFFF'FFFFu;

/// Minimal open-addressing u64 -> dense-id table (linear probing,
/// power-of-two capacity).  A node-based unordered_map costs one
/// allocation per distinct key, which used to dominate the whole index
/// build; this is two cache lines per lookup and zero allocation after
/// construction.
class FlatU64Interner {
 public:
  explicit FlatU64Interner(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    keys_.resize(cap);
    ids_.assign(cap, kNone);
    mask_ = cap - 1;
  }

  std::uint32_t intern(std::uint64_t key) noexcept {
    std::size_t i = util::hash_mix(key) & mask_;
    while (ids_[i] != kNone) {
      if (keys_[i] == key) return ids_[i];
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    ids_[i] = next_;
    return next_++;
  }

 private:
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> ids_;
  std::size_t mask_ = 0;
  std::uint32_t next_ = 0;
};

/// Deterministic two-pass group-by into a CSR layout (count ->
/// column-major prefix sum -> scatter), in the spirit of two-pass
/// parallel group-by engines.  `emit(i, sink)` assigns item i to zero or
/// more groups by calling sink(g); it must be pure — it runs once in the
/// count pass and once in the scatter pass.  Chunks are contiguous item
/// ranges and each chunk scatters into its own reserved slot range, so
/// slots within a group end up in ascending item order regardless of
/// thread count: serial and parallel builds are bit-identical.
template <typename EmitFn>
void build_csr(parallel::ThreadPool* pool, std::size_t n_items,
               std::size_t n_groups, const EmitFn& emit,
               std::vector<std::uint32_t>& offsets,
               std::vector<std::uint32_t>& slots) {
  // Enough chunks to feed the pool, but bounded: the count matrix costs
  // n_chunks * n_groups u32s, and tiny chunks are all scheduling.
  std::size_t n_chunks = 1;
  if (pool != nullptr && pool->size() > 1 && n_items > 0) {
    n_chunks =
        std::min({pool->size(), (n_items - 1) / 2048 + 1, std::size_t{16}});
  }
  const std::size_t stride =
      n_items == 0 ? 1 : (n_items + n_chunks - 1) / n_chunks;
  std::vector<std::vector<std::uint32_t>> counts(
      n_chunks, std::vector<std::uint32_t>(n_groups, 0));

  const auto for_each_chunk = [&](auto&& body) {
    if (n_chunks == 1) {
      body(std::size_t{0});
      return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      futures.push_back(pool->submit([&body, c] { body(c); }));
    }
    for (auto& f : futures) f.get();
  };

  for_each_chunk([&](std::size_t c) {
    auto& local = counts[c];
    const std::size_t end = std::min(n_items, (c + 1) * stride);
    for (std::size_t i = c * stride; i < end; ++i) {
      emit(i, [&](std::uint32_t g) { ++local[g]; });
    }
  });

  offsets.assign(n_groups + 1, 0);
  std::uint32_t running = 0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::uint32_t n = counts[c][g];
      counts[c][g] = running;  // becomes chunk c's write cursor for g
      running += n;
    }
    offsets[g + 1] = running;
  }

  slots.resize(running);
  for_each_chunk([&](std::size_t c) {
    auto& cursor = counts[c];
    const std::size_t end = std::min(n_items, (c + 1) * stride);
    for (std::size_t i = c * stride; i < end; ++i) {
      emit(i, [&](std::uint32_t g) {
        slots[cursor[g]++] = static_cast<std::uint32_t>(i);
      });
    }
  });
}

}  // namespace

MatchIndex::MatchIndex(const telemetry::MetadataStore& store,
                       parallel::ThreadPool* pool)
    : store_(&store) {
  const obs::ScopedSpan span(pool != nullptr ? "match_index/build_parallel"
                                             : "match_index/build",
                             "core");
  static obs::Counter& builds = obs::Registry::global().counter(
      "pandarus_match_index_builds_total", "MatchIndex constructions");
  builds.inc();
  const auto jobs = store.jobs();
  const auto files = store.files();
  const auto transfers = store.transfers();
  const std::size_t n_jobs = jobs.size();

  // pandaid -> intrusive chain of job slots.  The common case is one
  // job per pandaid; duplicates (pathological stores) are chained so a
  // file row can bridge to every job whose (pandaid, jeditaskid) agree.
  std::vector<std::uint32_t> next_same_pandaid(n_jobs, kNone);
  std::unordered_map<std::int64_t, std::uint32_t> job_by_pandaid;
  job_by_pandaid.reserve(n_jobs * 2);
  for (std::size_t j = 0; j < n_jobs; ++j) {
    const auto [it, inserted] = job_by_pandaid.try_emplace(
        jobs[j].pandaid, static_cast<std::uint32_t>(j));
    if (!inserted) {
      next_same_pandaid[j] = it->second;
      it->second = static_cast<std::uint32_t>(j);
    }
  }

  // One hash lookup per file row, hoisted out of the two CSR passes.
  std::vector<std::uint32_t> row_head(files.size(), kNone);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto it = job_by_pandaid.find(files[i].pandaid);
    if (it != job_by_pandaid.end()) row_head[i] = it->second;
  }

  const auto emit_file = [&](std::size_t i, auto&& sink) {
    const std::int64_t jeditaskid = files[i].jeditaskid;
    for (std::uint32_t j = row_head[i]; j != kNone;
         j = next_same_pandaid[j]) {
      if (jobs[j].jeditaskid == jeditaskid) sink(j);
    }
  };
  build_csr(pool, files.size(), n_jobs, emit_file, file_offsets_,
            file_slots_);

  // Counting sort over dense lfn symbols.  The offsets table spans the
  // whole shared symbol table; non-lfn symbols simply own empty groups.
  const std::size_t n_syms = store.symbols().size();
  const auto emit_transfer = [&](std::size_t i, auto&& sink) {
    const util::Symbol s = transfers[i].lfn_sym;
    if (s < n_syms) sink(s);
  };
  build_csr(pool, transfers.size(), n_syms, emit_transfer,
            transfer_offsets_, transfer_slots_);

  // Composite attribute keys: interned (dataset, proddblock, scope)
  // triple in the high half, an interned file-size id in the low half.
  // Sizes are folded in here rather than at ingest because the
  // corruption injector jitters them in place after recording.  Key
  // equality is exact: equal keys iff the triple and the size agree.
  FlatU64Interner sizes(files.size() + transfers.size());
  file_keys_.resize(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    file_keys_[i] = util::pack_symbols(files[i].attr_sym,
                                       sizes.intern(files[i].file_size));
  }
  transfer_keys_.resize(transfers.size());
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    transfer_keys_[i] = util::pack_symbols(transfers[i].attr_sym,
                                           sizes.intern(transfers[i].file_size));
  }
}

}  // namespace pandarus::core
