// Automated anomaly detection — the paper's §7 proposal made concrete:
// "Future efforts should focus on automating anomaly detection based on
// transfer-time thresholds".
//
// Given a matched snapshot, the detector flags the pathologies the
// paper's case studies identified by hand:
//  * excessive transfer share   — transfer time above a threshold
//                                 fraction of queuing time (Fig. 9/10);
//  * spanning transfer          — a matched transfer crossing the job's
//                                 start time (Fig. 11);
//  * redundant delivery         — the same file delivered to the same
//                                 effective destination more than once
//                                 inside the job's matched set (Fig. 12);
//  * stalled throughput         — a matched transfer running far below
//                                 the typical throughput of its link
//                                 (the 17.7x/20x spreads of Figs 10/11);
//  * unknown endpoint           — a matched transfer whose endpoint is
//                                 missing, i.e. inferable metadata debt.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/inference.hpp"
#include "core/metrics.hpp"
#include "core/relaxed.hpp"

namespace pandarus::core {

enum class AnomalyType : std::uint8_t {
  kExcessiveTransferShare = 0,
  kSpanningTransfer = 1,
  kRedundantDelivery = 2,
  kStalledThroughput = 3,
  kUnknownEndpoint = 4,
};
inline constexpr std::size_t kAnomalyTypeCount = 5;

[[nodiscard]] const char* anomaly_name(AnomalyType type) noexcept;

struct Anomaly {
  AnomalyType type = AnomalyType::kExcessiveTransferShare;
  std::size_t job_index = 0;
  std::int64_t pandaid = 0;
  /// Magnitude in the anomaly's natural unit: share in [0,1] for
  /// excessive-transfer, wasted bytes for redundancy, slowdown factor
  /// for stalls, spanned wall-milliseconds for spanning transfers.
  double severity = 0.0;
  bool job_failed = false;
};

struct AnomalyReport {
  std::vector<Anomaly> anomalies;
  std::array<std::size_t, kAnomalyTypeCount> counts{};
  std::size_t jobs_scanned = 0;
  std::size_t jobs_flagged = 0;

  /// Failure rate among flagged vs unflagged jobs: the paper's
  /// "potential relationship between high transfer-time percentages and
  /// elevated error rates" quantified.
  double flagged_failure_rate = 0.0;
  double unflagged_failure_rate = 0.0;
};

struct AnomalyDetectorConfig {
  /// Flag jobs whose transfer time exceeds this share of queuing time
  /// (the paper highlights the >75% population).
  double queue_share_threshold = 0.75;
  /// Flag matched transfers slower than median_link_throughput / this.
  double stall_slowdown_factor = 10.0;
  /// Minimum per-link sample before stall detection is meaningful.
  std::size_t min_link_samples = 5;
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyDetectorConfig config = {})
      : config_(config) {}

  /// Scans every matched job; pure function of the snapshot.
  [[nodiscard]] AnomalyReport scan(const telemetry::MetadataStore& store,
                                   const MatchResult& result) const;

 private:
  AnomalyDetectorConfig config_;
};

}  // namespace pandarus::core
