#include "core/metrics.hpp"

#include <algorithm>

namespace pandarus::core {

util::SimDuration union_measure(std::vector<Interval> spans) {
  std::erase_if(spans, [](const Interval& s) { return s.end <= s.begin; });
  if (spans.empty()) return 0;
  std::sort(spans.begin(), spans.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  util::SimDuration total = 0;
  util::SimTime cur_begin = spans.front().begin;
  util::SimTime cur_end = spans.front().end;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].begin <= cur_end) {
      cur_end = std::max(cur_end, spans[i].end);
    } else {
      total += cur_end - cur_begin;
      cur_begin = spans[i].begin;
      cur_end = spans[i].end;
    }
  }
  total += cur_end - cur_begin;
  return total;
}

JobTransferMetrics compute_metrics(const telemetry::MetadataStore& store,
                                   const MatchedJob& match) {
  const telemetry::JobRecord& job = store.jobs()[match.job_index];
  JobTransferMetrics out;
  out.queuing_time = job.queuing_time();
  out.wall_time = job.wall_time();

  std::vector<Interval> in_queue;
  std::vector<Interval> in_wall;
  for (std::size_t ti : match.transfer_indices) {
    const telemetry::TransferRecord& t = store.transfers()[ti];
    out.transferred_bytes += t.file_size;
    if (t.started_at < job.start_time && t.finished_at > job.start_time) {
      out.transfer_spans_execution = true;
    }
    in_queue.push_back({std::max(t.started_at, job.creation_time),
                        std::min(t.finished_at, job.start_time)});
    in_wall.push_back({std::max(t.started_at, job.start_time),
                       std::min(t.finished_at, job.end_time)});
  }
  out.transfer_time_in_queue = union_measure(std::move(in_queue));
  out.transfer_time_in_wall = union_measure(std::move(in_wall));
  return out;
}

}  // namespace pandarus::core
