#include "core/inference.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

namespace pandarus::core {

using telemetry::TransferRecord;

namespace {

/// Transfers that physically deliver a replica to their destination.
/// Direct-IO streams read remotely without creating a copy, so repeated
/// streams are not "redundant transfers" and carry no placement
/// evidence for site inference.
bool is_delivery(const TransferRecord& t) {
  return t.is_download() &&
         t.activity != dms::Activity::kAnalysisDownloadDirectIO;
}

}  // namespace

std::vector<InferredSite> infer_unknown_sites(
    const telemetry::MetadataStore& store, const MatchedJob& match) {
  // Group the matched set by (lfn, size); within a group, any known
  // destination provides evidence for the unknown ones.
  std::map<std::pair<std::string, std::uint64_t>, std::vector<std::size_t>>
      groups;
  for (std::size_t ti : match.transfer_indices) {
    const TransferRecord& t = store.transfers()[ti];
    if (!is_delivery(t)) continue;
    groups[{t.lfn, t.file_size}].push_back(ti);
  }

  std::vector<InferredSite> result;
  for (const auto& [key, indices] : groups) {
    std::size_t known = SIZE_MAX;
    for (std::size_t ti : indices) {
      if (store.transfers()[ti].destination_site != grid::kUnknownSite) {
        known = ti;
        break;
      }
    }
    if (known == SIZE_MAX) continue;
    const grid::SiteId site = store.transfers()[known].destination_site;
    for (std::size_t ti : indices) {
      if (store.transfers()[ti].destination_site == grid::kUnknownSite) {
        result.push_back({ti, known, site});
      }
    }
  }
  return result;
}

std::vector<RedundantGroup> find_redundant_transfers(
    const telemetry::MetadataStore& store, const MatchedJob& match) {
  const auto inferred = infer_unknown_sites(store, match);
  auto effective_destination = [&](std::size_t ti) {
    const grid::SiteId recorded = store.transfers()[ti].destination_site;
    if (recorded != grid::kUnknownSite) return recorded;
    for (const InferredSite& inf : inferred) {
      if (inf.transfer_index == ti) return inf.inferred_destination;
    }
    return grid::kUnknownSite;
  };

  std::map<std::tuple<std::string, std::uint64_t, grid::SiteId>,
           std::vector<std::size_t>>
      groups;
  for (std::size_t ti : match.transfer_indices) {
    const TransferRecord& t = store.transfers()[ti];
    if (!is_delivery(t) || !t.success) continue;
    const grid::SiteId dst = effective_destination(ti);
    if (dst == grid::kUnknownSite) continue;
    groups[{t.lfn, t.file_size, dst}].push_back(ti);
  }

  std::vector<RedundantGroup> result;
  for (auto& [key, indices] : groups) {
    if (indices.size() < 2) continue;
    RedundantGroup group;
    group.lfn = std::get<0>(key);
    group.file_size = std::get<1>(key);
    group.destination = std::get<2>(key);
    group.transfer_indices = std::move(indices);
    result.push_back(std::move(group));
  }
  return result;
}

GlobalRedundancy scan_global_redundancy(const telemetry::MetadataStore& store,
                                        util::SimDuration within) {
  // (lfn symbol, size, dst) -> delivery times.  The store's interned
  // lfn symbol keeps the map light at millions of records and — unlike
  // the string hash this used to fold — makes the grouping exact.
  struct Key {
    util::Symbol lfn;
    std::uint64_t size;
    grid::SiteId dst;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return k.lfn ^ (k.size * 0x9e3779b97f4a7c15ULL) ^
             (static_cast<std::uint64_t>(k.dst) << 17);
    }
  };

  std::unordered_map<Key, std::vector<util::SimTime>, KeyHash> deliveries;
  deliveries.reserve(store.transfers().size());
  for (const TransferRecord& t : store.transfers()) {
    if (!is_delivery(t) || !t.success) continue;
    if (t.destination_site == grid::kUnknownSite) continue;
    deliveries[{t.lfn_sym, t.file_size, t.destination_site}].push_back(
        t.finished_at);
  }

  GlobalRedundancy out;
  for (auto& [key, times] : deliveries) {
    if (times.size() < 2) continue;
    std::sort(times.begin(), times.end());
    std::uint64_t redundant = 0;
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (within == util::kNever || times[i] - times[i - 1] <= within) {
        ++redundant;
      }
    }
    if (redundant == 0) continue;
    ++out.groups;
    out.redundant_transfers += redundant;
    out.wasted_bytes += key.size * redundant;
  }
  return out;
}

}  // namespace pandarus::core
