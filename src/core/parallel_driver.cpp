#include "core/parallel_driver.hpp"

#include "obs/trace.hpp"

namespace pandarus::core {

MatchResult ParallelMatchDriver::run(const MatchOptions& options) const {
  const obs::ScopedSpan span("match/parallel_run", "core",
                             static_cast<std::int64_t>(options.method));
  const std::size_t n = matcher_->store().jobs().size();

  MatchResult out = parallel::parallel_reduce<MatchResult>(
      *pool_, n,
      [this, &options](MatchResult& acc, std::size_t i) {
        MatchedJob m = matcher_->match_job(i, options);
        if (m.matched()) acc.jobs.push_back(std::move(m));
      },
      [](MatchResult& into, MatchResult&& chunk) {
        into.jobs.insert(into.jobs.end(),
                         std::make_move_iterator(chunk.jobs.begin()),
                         std::make_move_iterator(chunk.jobs.end()));
      });
  out.method = options.method;
  out.jobs_considered = n;
  return out;
}

}  // namespace pandarus::core
