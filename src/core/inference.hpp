// Metadata inference and redundancy detection (paper §5.4, Fig. 12 /
// Table 3).
//
// When a matched set contains the same logical file twice — once with a
// known endpoint and once recorded as UNKNOWN — the byte-exact file
// sizes pair the two events and the unknown endpoint can be recovered
// ("effectively converting uncertain cases into exact ones").  The same
// pairing exposes redundant transfers: the file reached the site twice,
// which is "in principle avoidable".
#pragma once

#include <cstdint>
#include <vector>

#include "core/match_types.hpp"

namespace pandarus::core {

struct InferredSite {
  std::size_t transfer_index = 0;        ///< the UNKNOWN-endpoint record
  std::size_t evidence_index = 0;        ///< the paired known record
  grid::SiteId inferred_destination = grid::kUnknownSite;
};

/// Pairs UNKNOWN-destination downloads in a matched set with
/// same-(lfn, size) known-destination events and returns the inferred
/// sites.  Pure function of the store snapshot.
[[nodiscard]] std::vector<InferredSite> infer_unknown_sites(
    const telemetry::MetadataStore& store, const MatchedJob& match);

struct RedundantGroup {
  std::string lfn;
  std::uint64_t file_size = 0;
  grid::SiteId destination = grid::kUnknownSite;  ///< after inference
  std::vector<std::size_t> transfer_indices;      ///< >= 2 events
  [[nodiscard]] std::uint64_t wasted_bytes() const noexcept {
    return file_size * (transfer_indices.size() - 1);
  }
};

/// Finds redundant transfer groups inside one matched set: the same
/// (lfn, size) delivered to the same effective destination more than
/// once.  UNKNOWN destinations are first resolved via
/// infer_unknown_sites.
[[nodiscard]] std::vector<RedundantGroup> find_redundant_transfers(
    const telemetry::MetadataStore& store, const MatchedJob& match);

struct GlobalRedundancy {
  std::uint64_t redundant_transfers = 0;
  std::uint64_t wasted_bytes = 0;
  std::size_t groups = 0;
};

/// Store-wide sweep: successful downloads of the same (lfn, size) to the
/// same known destination, counted beyond the first.  `within` bounds
/// the gap between consecutive deliveries that counts as redundant —
/// re-staging a file whose disk replica legitimately expired days later
/// is lifecycle churn, not waste.  Pass util::kNever to count every
/// repeat.  This is the aggregate "avoidable traffic" number the
/// paper's mitigation discussion targets.
[[nodiscard]] GlobalRedundancy scan_global_redundancy(
    const telemetry::MetadataStore& store,
    util::SimDuration within = util::kNever);

}  // namespace pandarus::core
