#include "core/exact.hpp"

#include <algorithm>

namespace pandarus::core {

using telemetry::FileRecord;
using telemetry::JobRecord;
using telemetry::TransferRecord;

const char* match_outcome_name(MatchOutcome outcome) noexcept {
  switch (outcome) {
    case MatchOutcome::kNoFileRows: return "no file-table rows";
    case MatchOutcome::kNoCandidates: return "no candidate transfers";
    case MatchOutcome::kSizeGateFailed: return "size-sum gate failed";
    case MatchOutcome::kSiteCheckEliminatedAll:
      return "site check eliminated all";
    case MatchOutcome::kMatched: return "matched";
  }
  return "?";
}

Matcher::Matcher(const telemetry::MetadataStore& store) : store_(&store) {
  const auto files = store.files();
  files_by_job_.reserve(files.size() / 4 + 1);
  for (std::size_t i = 0; i < files.size(); ++i) {
    files_by_job_[files[i].pandaid].push_back(i);
  }
  const auto transfers = store.transfers();
  transfers_by_lfn_.reserve(transfers.size());
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    transfers_by_lfn_[transfers[i].lfn].push_back(i);
  }
}

namespace {

/// Attribute equality between a file row and a transfer event: the join
/// predicate of Algorithm 1's candidate-construction step.
bool attributes_match(const FileRecord& f, const TransferRecord& t) {
  return t.file_size == f.file_size && t.lfn == f.lfn &&
         t.dataset == f.dataset && t.proddblock == f.proddblock &&
         t.scope == f.scope;
}

/// Direction/site condition.  Under RM2 an UNKNOWN endpoint on the
/// relevant side is accepted (§4.3: such labels "may be incorrectly
/// recorded in the metadata while still corresponding to valid matches").
bool site_condition(const TransferRecord& t, const JobRecord& j,
                    bool relax_unknown) {
  if (t.is_download()) {
    return t.destination_site == j.computing_site ||
           (relax_unknown && t.destination_site == grid::kUnknownSite);
  }
  if (t.is_upload()) {
    return t.source_site == j.computing_site ||
           (relax_unknown && t.source_site == grid::kUnknownSite);
  }
  return false;
}

}  // namespace

std::vector<std::size_t> Matcher::collect_candidates(
    const JobRecord& job, const MatchOptions& options,
    std::size_t* file_rows) const {
  if (file_rows != nullptr) *file_rows = 0;
  std::vector<std::size_t> candidates;
  auto files_it = files_by_job_.find(job.pandaid);
  if (files_it == files_by_job_.end()) return candidates;

  const auto files = store_->files();
  const auto transfers = store_->transfers();

  // Candidate transfers: attribute-matched against any file row of F'_j,
  // then time-filtered (started before the job's end).  Deduplicated,
  // since one transfer may match both an input and an output row in
  // pathological stores.
  for (std::size_t fi : files_it->second) {
    const FileRecord& row = files[fi];
    if (row.jeditaskid != job.jeditaskid) continue;  // stale file row
    if (file_rows != nullptr) ++*file_rows;
    auto lfn_it = transfers_by_lfn_.find(std::string_view(row.lfn));
    if (lfn_it == transfers_by_lfn_.end()) continue;
    for (std::size_t ti : lfn_it->second) {
      const TransferRecord& t = transfers[ti];
      if (options.require_taskid_match && t.jeditaskid != job.jeditaskid) {
        continue;
      }
      if (t.started_at < job.end_time && attributes_match(row, t)) {
        candidates.push_back(ti);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

MatchedJob Matcher::match_job(std::size_t job_index,
                              const MatchOptions& options) const {
  const JobRecord& job = store_->jobs()[job_index];
  MatchedJob result;
  result.job_index = job_index;

  const auto transfers = store_->transfers();
  const std::vector<std::size_t> candidates =
      collect_candidates(job, options, nullptr);
  if (candidates.empty()) return result;

  // Size-sum gate over the whole candidate set (exact method only).
  if (options.enforce_size_sum) {
    std::uint64_t sum = 0;
    for (std::size_t ti : candidates) sum += transfers[ti].file_size;
    if (sum != job.ninputfilebytes && sum != job.noutputfilebytes) {
      return result;
    }
  }

  // Direction/site condition per transfer.
  for (std::size_t ti : candidates) {
    const TransferRecord& t = transfers[ti];
    if (!site_condition(t, job, options.relax_unknown_site)) continue;
    result.transfer_indices.push_back(ti);
    if (t.is_local()) {
      ++result.local_transfers;
    } else {
      ++result.remote_transfers;
    }
  }
  return result;
}

MatchDiagnosis Matcher::diagnose_job(std::size_t job_index,
                                     const MatchOptions& options) const {
  const JobRecord& job = store_->jobs()[job_index];
  const auto transfers = store_->transfers();

  MatchDiagnosis diagnosis;
  const std::vector<std::size_t> candidates =
      collect_candidates(job, options, &diagnosis.file_rows);
  if (diagnosis.file_rows == 0) {
    diagnosis.outcome = MatchOutcome::kNoFileRows;
    return diagnosis;
  }
  diagnosis.candidates = candidates.size();
  if (candidates.empty()) {
    diagnosis.outcome = MatchOutcome::kNoCandidates;
    return diagnosis;
  }

  for (std::size_t ti : candidates) {
    diagnosis.candidate_sum += transfers[ti].file_size;
  }
  if (options.enforce_size_sum &&
      diagnosis.candidate_sum != job.ninputfilebytes &&
      diagnosis.candidate_sum != job.noutputfilebytes) {
    diagnosis.outcome = MatchOutcome::kSizeGateFailed;
    return diagnosis;
  }

  for (std::size_t ti : candidates) {
    diagnosis.site_passing +=
        site_condition(transfers[ti], job, options.relax_unknown_site);
  }
  diagnosis.outcome = diagnosis.site_passing > 0
                          ? MatchOutcome::kMatched
                          : MatchOutcome::kSiteCheckEliminatedAll;
  return diagnosis;
}

MatchResult Matcher::run(const MatchOptions& options) const {
  MatchResult out;
  out.method = options.method;
  out.jobs_considered = store_->jobs().size();
  for (std::size_t i = 0; i < out.jobs_considered; ++i) {
    MatchedJob m = match_job(i, options);
    if (m.matched()) out.jobs.push_back(std::move(m));
  }
  return out;
}

}  // namespace pandarus::core
