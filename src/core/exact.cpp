#include "core/exact.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pandarus::core {

using telemetry::JobRecord;
using telemetry::TransferRecord;

const char* match_outcome_name(MatchOutcome outcome) noexcept {
  switch (outcome) {
    case MatchOutcome::kNoFileRows: return "no file-table rows";
    case MatchOutcome::kNoCandidates: return "no candidate transfers";
    case MatchOutcome::kSizeGateFailed: return "size-sum gate failed";
    case MatchOutcome::kSiteCheckEliminatedAll:
      return "site check eliminated all";
    case MatchOutcome::kMatched: return "matched";
  }
  return "?";
}

Matcher::Matcher(const telemetry::MetadataStore& store)
    : index_(std::make_shared<const MatchIndex>(store)) {}

Matcher::Matcher(const telemetry::MetadataStore& store,
                 parallel::ThreadPool& pool)
    : index_(std::make_shared<const MatchIndex>(store, &pool)) {}

Matcher::Matcher(std::shared_ptr<const MatchIndex> index)
    : index_(std::move(index)) {}

namespace {

/// The Table-2-style coverage funnel, process-wide and cumulative over
/// every run/method.  Candidate-stage counters are filled by
/// collect_candidates (so diagnose_job contributes too); job-stage
/// counters only by match_job.  Hot loops accumulate in plain locals
/// and flush here once per job, so the per-candidate cost is zero.
struct FunnelMetrics {
  obs::Counter& candidates_scanned = obs::Registry::global().counter(
      "pandarus_match_candidates_scanned_total",
      "Transfer candidates examined (per file-row scan)");
  obs::Counter& reject_taskid = obs::Registry::global().counter(
      "pandarus_match_reject_taskid_total",
      "Candidates rejected: jeditaskid mismatch");
  obs::Counter& reject_attr_key = obs::Registry::global().counter(
      "pandarus_match_reject_attr_key_total",
      "Candidates rejected: composite attribute key mismatch");
  obs::Counter& reject_time = obs::Registry::global().counter(
      "pandarus_match_reject_time_total",
      "Candidates rejected: started after the job ended");
  obs::Counter& candidates_accepted = obs::Registry::global().counter(
      "pandarus_match_candidates_accepted_total",
      "Candidates surviving attribute, taskid and time filters");
  obs::Counter& reject_size_sum = obs::Registry::global().counter(
      "pandarus_match_reject_size_sum_total",
      "Jobs rejected: candidate size sum matched neither byte total");
  obs::Counter& reject_site = obs::Registry::global().counter(
      "pandarus_match_reject_site_total",
      "Candidates rejected: direction/site condition");
  obs::Counter& jobs_examined = obs::Registry::global().counter(
      "pandarus_match_jobs_examined_total", "Jobs run through Algorithm 1");
  obs::Counter& jobs_no_file_rows = obs::Registry::global().counter(
      "pandarus_match_jobs_no_file_rows_total",
      "Jobs with no bridging PanDA file rows");
  obs::Counter& jobs_no_candidates = obs::Registry::global().counter(
      "pandarus_match_jobs_no_candidates_total",
      "Jobs whose file rows matched no transfer");
  obs::Counter& jobs_site_eliminated = obs::Registry::global().counter(
      "pandarus_match_jobs_site_eliminated_total",
      "Jobs where the site check eliminated every candidate");
  obs::Counter& jobs_matched = obs::Registry::global().counter(
      "pandarus_match_jobs_matched_total", "Jobs linked to >= 1 transfer");
  obs::Counter& runs = obs::Registry::global().counter(
      "pandarus_match_runs_total", "Full Matcher::run passes");
  obs::Counter& run_wall_us = obs::Registry::global().counter(
      "pandarus_match_run_wall_us_total",
      "Wall-clock microseconds spent in Matcher::run");

  static FunnelMetrics& get() {
    static FunnelMetrics metrics;
    return metrics;
  }
};

/// Direction/site condition.  Under RM2 an UNKNOWN endpoint on the
/// relevant side is accepted (§4.3: such labels "may be incorrectly
/// recorded in the metadata while still corresponding to valid matches").
bool site_condition(const TransferRecord& t, const JobRecord& j,
                    bool relax_unknown) {
  if (t.is_download()) {
    return t.destination_site == j.computing_site ||
           (relax_unknown && t.destination_site == grid::kUnknownSite);
  }
  if (t.is_upload()) {
    return t.source_site == j.computing_site ||
           (relax_unknown && t.source_site == grid::kUnknownSite);
  }
  return false;
}

}  // namespace

const std::vector<std::size_t>& Matcher::collect_candidates(
    std::size_t job_index, const MatchOptions& options,
    std::size_t* file_rows) const {
  // Reused per worker thread: the per-job allocate/free that used to
  // dominate the inner loop is gone.
  thread_local std::vector<std::size_t> scratch;
  scratch.clear();

  const auto rows = index_->files_of_job(job_index);
  if (file_rows != nullptr) *file_rows = rows.size();
  if (rows.empty()) return scratch;

  const telemetry::MetadataStore& store = index_->store();
  const JobRecord& job = store.jobs()[job_index];
  const auto files = store.files();
  const auto transfers = store.transfers();

  // Candidate transfers: attribute-key-matched against any file row of
  // F'_j (one integer compare — lfn equality is structural through the
  // lfn-symbol group, the composite key covers the rest), then
  // time-filtered (started before the job's end).  Funnel tallies stay
  // in locals until the single flush below the loop.
  std::uint64_t scanned = 0;
  std::uint64_t rej_taskid = 0;
  std::uint64_t rej_key = 0;
  std::uint64_t rej_time = 0;
  std::size_t contributing_rows = 0;
  for (const std::uint32_t fi : rows) {
    const std::uint64_t fkey = index_->file_key(fi);
    const std::size_t before = scratch.size();
    for (const std::uint32_t ti : index_->transfers_with_lfn(files[fi].lfn_sym)) {
      const TransferRecord& t = transfers[ti];
      ++scanned;
      if (options.require_taskid_match && t.jeditaskid != job.jeditaskid) {
        ++rej_taskid;
        continue;
      }
      if (index_->transfer_key(ti) != fkey) {
        ++rej_key;
        continue;
      }
      if (t.started_at >= job.end_time) {
        ++rej_time;
        continue;
      }
      scratch.push_back(ti);
    }
    contributing_rows += scratch.size() > before;
  }

  FunnelMetrics& funnel = FunnelMetrics::get();
  funnel.candidates_scanned.inc(scanned);
  if (rej_taskid > 0) funnel.reject_taskid.inc(rej_taskid);
  if (rej_key > 0) funnel.reject_attr_key.inc(rej_key);
  if (rej_time > 0) funnel.reject_time.inc(rej_time);
  funnel.candidates_accepted.inc(scratch.size());

  // Each lfn group is already ascending, so a single contributing row
  // needs no post-processing.  Multiple rows can interleave groups and —
  // when a job carries the same lfn as both input and output — duplicate
  // a transfer, so sort + dedup only then.
  if (contributing_rows > 1) {
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()),
                  scratch.end());
  }
  return scratch;
}

MatchedJob Matcher::match_job(std::size_t job_index,
                              const MatchOptions& options) const {
  const telemetry::MetadataStore& store = index_->store();
  const JobRecord& job = store.jobs()[job_index];
  MatchedJob result;
  result.job_index = job_index;

  FunnelMetrics& funnel = FunnelMetrics::get();
  funnel.jobs_examined.inc();

  const auto transfers = store.transfers();
  std::size_t file_rows = 0;
  const std::vector<std::size_t>& candidates =
      collect_candidates(job_index, options, &file_rows);
  if (candidates.empty()) {
    (file_rows == 0 ? funnel.jobs_no_file_rows : funnel.jobs_no_candidates)
        .inc();
    return result;
  }

  // Size-sum gate over the whole candidate set (exact method only).
  if (options.enforce_size_sum) {
    std::uint64_t sum = 0;
    for (std::size_t ti : candidates) sum += transfers[ti].file_size;
    if (sum != job.ninputfilebytes && sum != job.noutputfilebytes) {
      funnel.reject_size_sum.inc();
      return result;
    }
  }

  // Direction/site condition per transfer.
  std::uint64_t rej_site = 0;
  for (std::size_t ti : candidates) {
    const TransferRecord& t = transfers[ti];
    if (!site_condition(t, job, options.relax_unknown_site)) {
      ++rej_site;
      continue;
    }
    result.transfer_indices.push_back(ti);
    if (t.is_local()) {
      ++result.local_transfers;
    } else {
      ++result.remote_transfers;
    }
  }
  if (rej_site > 0) funnel.reject_site.inc(rej_site);
  (result.transfer_indices.empty() ? funnel.jobs_site_eliminated
                                   : funnel.jobs_matched)
      .inc();
  return result;
}

MatchDiagnosis Matcher::diagnose_job(std::size_t job_index,
                                     const MatchOptions& options) const {
  const telemetry::MetadataStore& store = index_->store();
  const JobRecord& job = store.jobs()[job_index];
  const auto transfers = store.transfers();

  MatchDiagnosis diagnosis;
  const std::vector<std::size_t>& candidates =
      collect_candidates(job_index, options, &diagnosis.file_rows);
  if (diagnosis.file_rows == 0) {
    diagnosis.outcome = MatchOutcome::kNoFileRows;
    return diagnosis;
  }
  diagnosis.candidates = candidates.size();
  if (candidates.empty()) {
    diagnosis.outcome = MatchOutcome::kNoCandidates;
    return diagnosis;
  }

  for (std::size_t ti : candidates) {
    diagnosis.candidate_sum += transfers[ti].file_size;
  }
  if (options.enforce_size_sum &&
      diagnosis.candidate_sum != job.ninputfilebytes &&
      diagnosis.candidate_sum != job.noutputfilebytes) {
    diagnosis.outcome = MatchOutcome::kSizeGateFailed;
    return diagnosis;
  }

  for (std::size_t ti : candidates) {
    diagnosis.site_passing +=
        site_condition(transfers[ti], job, options.relax_unknown_site);
  }
  diagnosis.outcome = diagnosis.site_passing > 0
                          ? MatchOutcome::kMatched
                          : MatchOutcome::kSiteCheckEliminatedAll;
  return diagnosis;
}

MatchResult Matcher::run(const MatchOptions& options) const {
  const obs::ScopedSpan span("match/run", "core",
                             static_cast<std::int64_t>(options.method));
  const std::int64_t t0 = obs::TraceRecorder::now_us();
  MatchResult out;
  out.method = options.method;
  out.jobs_considered = index_->store().jobs().size();
  for (std::size_t i = 0; i < out.jobs_considered; ++i) {
    MatchedJob m = match_job(i, options);
    if (m.matched()) out.jobs.push_back(std::move(m));
  }
  FunnelMetrics& funnel = FunnelMetrics::get();
  funnel.runs.inc();
  funnel.run_wall_us.inc(
      static_cast<std::uint64_t>(obs::TraceRecorder::now_us() - t0));
  return out;
}

}  // namespace pandarus::core
