// Types shared across the matching core (the paper's contribution).
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/store.hpp"

namespace pandarus::core {

/// The three matching strategies of §4.2/§4.3.
enum class MatchMethod : std::uint8_t {
  kExact = 0,  ///< Algorithm 1 (attribute match + time + size sum + site)
  kRM1 = 1,    ///< exact minus the byte-exact size-sum gate
  kRM2 = 2,    ///< RM1 plus acceptance of unknown/invalid site labels
};

[[nodiscard]] const char* method_name(MatchMethod method) noexcept;

/// Job-level locality classification used by Table 2b.
enum class LocalityClass : std::uint8_t {
  kAllLocal = 0,
  kAllRemote = 1,
  kMixed = 2,
};

/// One job together with its matched transfer events: an element of the
/// mapping set M of Algorithm 1.
struct MatchedJob {
  std::size_t job_index = 0;  ///< index into MetadataStore::jobs()
  std::vector<std::size_t> transfer_indices;  ///< into ::transfers()
  std::uint32_t local_transfers = 0;
  std::uint32_t remote_transfers = 0;

  [[nodiscard]] bool matched() const noexcept {
    return !transfer_indices.empty();
  }
  [[nodiscard]] LocalityClass locality() const noexcept {
    if (local_transfers > 0 && remote_transfers > 0)
      return LocalityClass::kMixed;
    return remote_transfers > 0 ? LocalityClass::kAllRemote
                                : LocalityClass::kAllLocal;
  }
};

/// Result of running one method over a job population.
struct MatchResult {
  MatchMethod method = MatchMethod::kExact;
  /// Only jobs with a non-empty matched set appear here, ordered by
  /// job_index (deterministic regardless of parallelism).
  std::vector<MatchedJob> jobs;
  std::size_t jobs_considered = 0;

  [[nodiscard]] std::size_t matched_job_count() const noexcept {
    return jobs.size();
  }
  [[nodiscard]] std::size_t matched_transfer_count() const noexcept {
    std::size_t n = 0;
    for (const auto& j : jobs) n += j.transfer_indices.size();
    return n;
  }
};

}  // namespace pandarus::core
