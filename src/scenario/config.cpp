#include "scenario/config.hpp"

namespace pandarus::scenario {

ScenarioConfig ScenarioConfig::small() {
  ScenarioConfig cfg;
  cfg.days = 0.5;
  cfg.arrival_tail_days = 0.15;
  cfg.topology.n_tier1 = 4;
  cfg.topology.n_tier2 = 8;
  cfg.topology.n_tier3 = 2;
  cfg.workload.n_input_datasets = 60;
  cfg.workload.user_tasks_per_day = 120.0;
  cfg.workload.prod_tasks_per_day = 30.0;
  cfg.replicated_datasets = 30;
  cfg.carousel_waves_per_day = 16.0;
  cfg.datasets_per_wave = 2;
  cfg.churn_files_per_day = 3'000.0;
  return cfg;
}

ScenarioConfig ScenarioConfig::paper_scale() {
  ScenarioConfig cfg;
  cfg.days = 8.0;
  return cfg;
}

ScenarioConfig& ScenarioConfig::with_self_healing() {
  transfer.retry_backoff_base = util::seconds(20);
  transfer.breaker_enabled = true;
  transfer.breaker_threshold = 4;
  transfer.breaker_cooldown = util::minutes(10);
  transfer.alternate_source_retry = true;
  transfer.max_attempts = 4;
  return *this;
}

ScenarioConfig ScenarioConfig::heatmap_campaign() {
  ScenarioConfig cfg;
  cfg.days = 20.0;
  cfg.arrival_tail_days = 1.0;
  cfg.workload.user_tasks_per_day = 180.0;
  cfg.workload.prod_tasks_per_day = 60.0;
  cfg.carousel_waves_per_day = 20.0;
  cfg.datasets_per_wave = 6;
  return cfg;
}

}  // namespace pandarus::scenario
