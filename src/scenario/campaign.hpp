// End-to-end campaign driver: builds the grid, seeds the catalog, runs
// the coupled WMS/DMS simulation for the configured window, applies
// metadata corruption, and returns the telemetry snapshot ready for
// matching and analysis.  This is the single entry point used by the
// examples and every bench binary.
#pragma once

#include <vector>

#include "dms/catalog.hpp"
#include "dms/deletion.hpp"
#include "dms/rse.hpp"
#include "grid/topology.hpp"
#include "obs/flow.hpp"
#include "scenario/config.hpp"
#include "telemetry/corruption.hpp"
#include "telemetry/store.hpp"

namespace pandarus::scenario {

struct ScenarioResult {
  grid::Topology topology;
  dms::RseRegistry rses;
  dms::FileCatalog catalog;
  telemetry::MetadataStore store;  ///< after corruption injection
  telemetry::CorruptionReport corruption{};

  util::SimTime window_begin = 0;
  util::SimTime window_end = 0;

  // Run statistics from the live components.
  wms::PandaServer::Stats panda{};
  dms::DeletionDaemon::Stats deletion{};
  dms::TransferEngine::Stats transfers{};
  dms::RuleEngine::Stats rules{};
  wms::WorkloadGenerator::Stats workload{};
  std::uint64_t events_processed = 0;

  /// Drain health: whether the scheduler emptied inside the grace
  /// period, and what the transfer engine still held if it did not.
  bool drained = true;
  std::size_t transfers_in_flight = 0;
  /// Fault windows that began during the run (0 on fault-free runs).
  std::uint64_t fault_windows = 0;

  /// Causal-flow aggregates, harvested when a FlowTracker was installed
  /// for the run (all-zero / empty otherwise).  Purely in-memory: flow
  /// tracking never alters the campaign's non-flow_* event stream.
  obs::FlowTotals flow_totals{};
  std::vector<obs::LinkCritical> flow_link_ranking;
};

/// Runs one deterministic campaign.  Equal configs (including seed)
/// produce bit-identical results.
[[nodiscard]] ScenarioResult run_campaign(const ScenarioConfig& config);

}  // namespace pandarus::scenario
