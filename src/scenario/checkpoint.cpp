#include "scenario/checkpoint.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/flow.hpp"
#include "telemetry/io.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace pandarus::scenario {
namespace {

constexpr char kMagic[8] = {'P', 'C', 'K', 'P', 'T', '0', '1', '\n'};

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64_le(std::string& out, std::uint64_t v) {
  put_u32_le(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32_le(out, static_cast<std::uint32_t>(v >> 32));
}

void put_blob(std::string& out, const std::string& s) {
  put_u64_le(out, s.size());
  out.append(s);
}

/// Bounds-checked little-endian reader over a serialized payload; any
/// short read trips `ok` and subsequent reads return zero/empty.
struct Reader {
  const unsigned char* p = nullptr;
  std::size_t n = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (n < 4) {
      ok = false;
      return 0;
    }
    const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
    p += 4;
    n -= 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::uint8_t u8() {
    if (n < 1) {
      ok = false;
      return 0;
    }
    const std::uint8_t v = p[0];
    ++p;
    --n;
    return v;
  }
  std::string blob() {
    const std::uint64_t len = u64();
    if (!ok || n < len) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    n -= len;
    return s;
  }
};

std::string serialize_payload(const Checkpoint& ckpt) {
  std::string payload;
  put_u64_le(payload, ckpt.config_digest);
  put_u64_le(payload, static_cast<std::uint64_t>(ckpt.day));
  put_u64_le(payload, static_cast<std::uint64_t>(ckpt.sim_now));
  put_u64_le(payload, ckpt.log_watermark);
  put_u64_le(payload, ckpt.log_accepted);
  put_u64_le(payload, ckpt.log_dropped);
  put_u64_le(payload, ckpt.log_bytes);
  put_u64_le(payload, ckpt.prefix_bytes);
  put_u32_le(payload, ckpt.prefix_crc);
  payload.push_back(ckpt.flows_installed ? '\1' : '\0');
  const Fingerprint& f = ckpt.fingerprint;
  put_u64_le(payload, f.scheduler_processed);
  put_u64_le(payload, f.scheduler_queued);
  put_u64_le(payload, f.transfer_digest);
  put_u64_le(payload, f.injector_digest);
  put_u64_le(payload, f.flow_digest);
  put_u64_le(payload, f.store_jobs);
  put_u64_le(payload, f.store_files);
  put_u64_le(payload, f.store_transfers);
  put_blob(payload, ckpt.store_jobs_csv);
  put_blob(payload, ckpt.store_files_csv);
  put_blob(payload, ckpt.store_transfers_csv);
  return payload;
}

bool parse_payload(const std::string& payload, Checkpoint& out) {
  Reader r{reinterpret_cast<const unsigned char*>(payload.data()),
           payload.size(), true};
  out.config_digest = r.u64();
  out.day = r.i64();
  out.sim_now = r.i64();
  out.log_watermark = r.u64();
  out.log_accepted = r.u64();
  out.log_dropped = r.u64();
  out.log_bytes = r.u64();
  out.prefix_bytes = r.u64();
  out.prefix_crc = r.u32();
  out.flows_installed = r.u8() != 0;
  Fingerprint& f = out.fingerprint;
  f.scheduler_processed = r.u64();
  f.scheduler_queued = r.u64();
  f.transfer_digest = r.u64();
  f.injector_digest = r.u64();
  f.flow_digest = r.u64();
  f.store_jobs = r.u64();
  f.store_files = r.u64();
  f.store_transfers = r.u64();
  out.store_jobs_csv = r.blob();
  out.store_files_csv = r.blob();
  out.store_transfers_csv = r.blob();
  return r.ok && r.n == 0;
}

std::string checkpoint_name(std::int64_t day) {
  char name[48];
  std::snprintf(name, sizeof name, "ckpt-day-%04lld.pckpt",
                static_cast<long long>(day));
  return name;
}

bool read_whole_file(const std::string& path, std::string& out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out.clear();
  char block[1 << 16];
  while (true) {
    const std::size_t got = std::fread(block, 1, sizeof block, f);
    out.append(block, got);
    if (got < sizeof block) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok && error != nullptr) *error = "read error on " + path;
  return ok;
}

std::string store_csv(void (*writer)(std::ostream&,
                                     const telemetry::MetadataStore&),
                      const telemetry::MetadataStore& store) {
  std::ostringstream os;
  writer(os, store);
  return std::move(os).str();
}

}  // namespace

std::uint64_t config_digest(const ScenarioConfig& c) {
  const auto dbits = [](double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof b);
    return b;
  };
  // Determinism-relevant knobs only: checkpoint_dir and other pure
  // output settings are deliberately excluded, so a resume pointed at a
  // different snapshot directory still matches.
  std::uint64_t h = util::hash_mix(0x70636b7074ull, c.seed, dbits(c.days));
  h = util::hash_mix(h, dbits(c.arrival_tail_days), dbits(c.slot_scale));
  h = util::hash_mix(h, c.replicated_datasets,
                     c.replicate_production_output ? 1u : 0u);
  h = util::hash_mix(h, dbits(c.carousel_waves_per_day), c.datasets_per_wave);
  h = util::hash_mix(h, dbits(c.churn_files_per_day),
                     dbits(c.churn_local_fraction));
  h = util::hash_mix(h, dbits(c.eviction_sweeps_per_day),
                     dbits(c.eviction_probability));
  h = util::hash_mix(h, static_cast<std::uint64_t>(c.sample_interval_ms),
                     c.apply_corruption ? 1u : 0u);
  h = util::hash_mix(h, dbits(c.faults.intensity), c.fault_windows.size());
  return h;
}

bool write_checkpoint(const Checkpoint& ckpt, const std::string& dir) {
  ::mkdir(dir.c_str(), 0777);  // best-effort; fopen below reports failure
  const std::string payload = serialize_payload(ckpt);
  std::string frame;
  frame.reserve(sizeof kMagic + 12 + payload.size());
  frame.append(kMagic, sizeof kMagic);
  put_u64_le(frame, payload.size());
  frame.append(payload);
  put_u32_le(frame, util::crc32(payload));

  const std::string path = dir + "/" + checkpoint_name(ckpt.day);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    util::log_warning() << "checkpoint: cannot open " << tmp;
    return false;
  }
  bool ok = std::fwrite(frame.data(), 1, frame.size(), f) == frame.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    util::log_warning() << "checkpoint: failed to write " << path;
  }
  return ok;
}

std::optional<Checkpoint> load_checkpoint_file(const std::string& path,
                                               std::string* error) {
  std::string frame;
  if (!read_whole_file(path, frame, error)) return std::nullopt;
  const std::size_t header = sizeof kMagic + 8;
  if (frame.size() < header + 4 ||
      std::memcmp(frame.data(), kMagic, sizeof kMagic) != 0) {
    if (error != nullptr) *error = path + ": not a checkpoint file";
    return std::nullopt;
  }
  Reader len_reader{
      reinterpret_cast<const unsigned char*>(frame.data() + sizeof kMagic), 8,
      true};
  const std::uint64_t payload_len = len_reader.u64();
  if (payload_len != frame.size() - header - 4) {
    if (error != nullptr) *error = path + ": truncated or torn checkpoint";
    return std::nullopt;
  }
  const std::string payload = frame.substr(header, payload_len);
  Reader crc_reader{
      reinterpret_cast<const unsigned char*>(frame.data() + header +
                                             payload_len),
      4, true};
  if (crc_reader.u32() != util::crc32(payload)) {
    if (error != nullptr) *error = path + ": checkpoint CRC mismatch";
    return std::nullopt;
  }
  Checkpoint ckpt;
  if (!parse_payload(payload, ckpt)) {
    if (error != nullptr) *error = path + ": malformed checkpoint payload";
    return std::nullopt;
  }
  return ckpt;
}

std::optional<Checkpoint> load_latest_checkpoint(const std::string& dir,
                                                 std::string* error) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (error != nullptr) *error = "cannot open directory " + dir;
    return std::nullopt;
  }
  std::vector<std::pair<std::int64_t, std::string>> candidates;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    constexpr std::string_view prefix = "ckpt-day-";
    constexpr std::string_view suffix = ".pckpt";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    char* end = nullptr;
    const long long day = std::strtoll(digits.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;
    candidates.emplace_back(day, dir + "/" + name);
  }
  ::closedir(d);
  // Newest day first; a torn final snapshot falls back to the previous
  // day instead of failing the resume.
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::string first_error;
  for (const auto& [day, path] : candidates) {
    std::string load_error;
    if (std::optional<Checkpoint> ckpt =
            load_checkpoint_file(path, &load_error)) {
      if (!first_error.empty()) {
        util::log_warning() << "checkpoint: skipped newer snapshot ("
                            << first_error << "), resuming from day " << day;
      }
      return ckpt;
    }
    if (first_error.empty()) first_error = load_error;
  }
  if (error != nullptr) {
    *error = first_error.empty() ? "no checkpoint in " + dir
                                 : std::move(first_error);
  }
  return std::nullopt;
}

namespace detail {
namespace {

DayBoundaryHook& hook_slot() {
  static DayBoundaryHook hook;
  return hook;
}

}  // namespace

DayBoundaryHook exchange_day_boundary_hook(DayBoundaryHook hook) {
  DayBoundaryHook previous = std::move(hook_slot());
  hook_slot() = std::move(hook);
  return previous;
}

bool day_boundary_hook_installed() {
  return static_cast<bool>(hook_slot());
}

void notify_day_boundary(const DayBoundary& boundary) {
  if (hook_slot()) hook_slot()(boundary);
}

}  // namespace detail

CheckpointWriter::CheckpointWriter(const ScenarioConfig& config)
    : config_digest_(config_digest(config)), dir_(config.checkpoint_dir) {
  if (dir_.empty()) {
    if (const char* env = std::getenv("PANDARUS_CHECKPOINT")) dir_ = env;
  }
}

bool CheckpointWriter::active() const {
  return !dir_.empty() || detail::day_boundary_hook_installed();
}

void CheckpointWriter::on_day_boundary(const detail::DayBoundary& b) {
  if (dir_.empty()) return;
  // A verification hook means this run is resume_campaign()'s re-
  // execution: it must read the crashed run's snapshots, not replace
  // them.
  if (detail::day_boundary_hook_installed()) return;
  std::string fresh;
  if (b.log != nullptr) {
    cursor_ = b.log->snapshot_ndjson(fresh, cursor_);
    prefix_crc_.update(fresh);
    prefix_bytes_ += fresh.size();
  }
  Checkpoint ckpt;
  ckpt.config_digest = config_digest_;
  ckpt.day = b.day;
  ckpt.sim_now = b.sim_now;
  if (b.log != nullptr) {
    ckpt.log_watermark = b.log->watermark();
    ckpt.log_accepted = b.log->events_written();
    ckpt.log_dropped = b.log->dropped();
    ckpt.log_bytes = b.log->bytes_written();
  }
  ckpt.prefix_bytes = prefix_bytes_;
  ckpt.prefix_crc = prefix_crc_.value();
  ckpt.flows_installed = b.flows_installed;
  ckpt.fingerprint = b.fingerprint;
  if (b.store != nullptr) {
    ckpt.store_jobs_csv = store_csv(&telemetry::write_jobs_csv, *b.store);
    ckpt.store_files_csv = store_csv(&telemetry::write_files_csv, *b.store);
    ckpt.store_transfers_csv =
        store_csv(&telemetry::write_transfers_csv, *b.store);
  }
  if (write_checkpoint(ckpt, dir_)) ++written_;
}

ResumeOutcome resume_campaign(const ScenarioConfig& config,
                              const std::string& checkpoint_dir) {
  ResumeOutcome out;
  if (obs::EventLog::installed() != nullptr) {
    out.error = "resume_campaign: an EventLog is already installed";
    return out;
  }

  std::string load_error;
  std::optional<Checkpoint> ckpt =
      load_latest_checkpoint(checkpoint_dir, &load_error);
  if (ckpt) {
    out.had_checkpoint = true;
    out.resumed_day = ckpt->day;
    out.prefix_bytes = ckpt->prefix_bytes;
    if (ckpt->config_digest != config_digest(config)) {
      out.error =
          "resume_campaign: checkpoint was written by a different config";
      return out;
    }
  }

  // The re-execution must not overwrite the crashed run's snapshots —
  // belt (cleared config) and suspenders (the installed hook below
  // suppresses CheckpointWriter, covering PANDARUS_CHECKPOINT too).
  ScenarioConfig run_config = config;
  run_config.checkpoint_dir.clear();

  struct VerifyState {
    std::uint64_t cursor = 0;
    util::Crc32 crc;
    std::uint64_t bytes = 0;
    bool saw_day = false;
    bool fingerprint_ok = false;
    bool store_ok = false;
    bool prefix_ok = false;
  } state;

  detail::DayBoundaryHook previous = detail::exchange_day_boundary_hook(
      [&state, &ckpt](const detail::DayBoundary& b) {
        std::string fresh;
        if (b.log != nullptr) {
          state.cursor = b.log->snapshot_ndjson(fresh, state.cursor);
          state.crc.update(fresh);
          state.bytes += fresh.size();
        }
        if (!ckpt || b.day != ckpt->day) return;
        state.saw_day = true;
        state.fingerprint_ok = b.fingerprint == ckpt->fingerprint &&
                               b.flows_installed == ckpt->flows_installed;
        state.prefix_ok = state.bytes == ckpt->prefix_bytes &&
                          state.crc.value() == ckpt->prefix_crc &&
                          (b.log == nullptr ||
                           (b.log->watermark() == ckpt->log_watermark &&
                            b.log->bytes_written() == ckpt->log_bytes));
        state.store_ok =
            b.store != nullptr &&
            store_csv(&telemetry::write_jobs_csv, *b.store) ==
                ckpt->store_jobs_csv &&
            store_csv(&telemetry::write_files_csv, *b.store) ==
                ckpt->store_files_csv &&
            store_csv(&telemetry::write_transfers_csv, *b.store) ==
                ckpt->store_transfers_csv;
      });

  // Fresh sinks for the deterministic re-execution; same defaults as a
  // from-scratch run so the terminal log_stats line matches byte for
  // byte.
  obs::EventLog log;
  log.install();
  std::optional<obs::FlowTracker> flows;
  if (ckpt && ckpt->flows_installed) {
    flows.emplace();
    flows->install();
  }

  out.result = run_campaign(run_config);

  detail::exchange_day_boundary_hook(std::move(previous));
  log.close();
  out.full_ndjson = log.to_ndjson();
  log.uninstall();
  if (flows) flows->uninstall();

  if (!ckpt) {
    // Nothing to resume from (crash before the first day boundary, or
    // every snapshot torn): the from-scratch run stands on its own.
    out.suffix = out.full_ndjson;
    out.ok = true;
    return out;
  }

  out.checkpoint = std::move(*ckpt);
  out.fingerprint_verified =
      state.saw_day && state.fingerprint_ok && state.store_ok;
  out.prefix_verified = state.saw_day && state.prefix_ok;
  out.ok = out.fingerprint_verified && out.prefix_verified;
  if (out.ok) {
    out.suffix = out.full_ndjson.substr(
        std::min<std::size_t>(out.checkpoint.prefix_bytes,
                              out.full_ndjson.size()));
  } else if (!state.saw_day) {
    out.error = "resume_campaign: re-run never reached the checkpoint day";
  } else {
    out.error = std::string("resume_campaign: re-run diverged at day ") +
                std::to_string(out.checkpoint.day) + " (" +
                (state.fingerprint_ok ? "" : "fingerprint ") +
                (state.store_ok ? "" : "store ") +
                (state.prefix_ok ? "" : "prefix ") + "mismatch)";
  }
  return out;
}

}  // namespace pandarus::scenario
