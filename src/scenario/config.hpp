// Campaign configuration: one struct bundling every knob of the
// simulated ATLAS-like environment, with presets for the paper's
// studies.
#pragma once

#include <cstdint>

#include <string>
#include <vector>

#include "dms/rule.hpp"
#include "dms/transfer.hpp"
#include "fault/fault.hpp"
#include "grid/builder.hpp"
#include "telemetry/corruption.hpp"
#include "telemetry/recorder.hpp"
#include "wms/brokerage.hpp"
#include "wms/panda_server.hpp"
#include "wms/workload.hpp"

namespace pandarus::scenario {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  /// Observation window length; the paper's main study spans 8 days
  /// (04/01/2025-04/09/2025), the Fig. 3 heatmap 92 days.
  double days = 8.0;
  /// New tasks stop arriving this long before the window ends so most
  /// jobs reach a terminal state inside the window.
  double arrival_tail_days = 0.75;

  grid::TopologyParams topology{};
  /// CPU slots are scaled down with the workload (we simulate a fixed
  /// fraction of ATLAS's job rate, so sites keep realistic utilization
  /// and the hot-site queuing of Fig. 5 emerges).
  double slot_scale = 0.02;

  wms::WorkloadParams workload{};
  wms::Brokerage::Params brokerage{};
  wms::PandaServer::Params panda{};
  dms::TransferEngine::Params transfer{};
  dms::RuleEngine::Params rules{};
  telemetry::Recorder::Params recorder{};
  telemetry::CorruptionParams corruption{};
  bool apply_corruption = true;

  /// Input datasets placed under a 2-copy Tier-1 replication rule.
  std::uint32_t replicated_datasets = 150;
  /// Production output datasets get the same rule as they appear.
  bool replicate_production_output = true;

  /// Data-Carousel tape staging: waves per day, datasets per wave.
  /// These local TAPE->DISK flows dominate the Fig. 3 diagonal.
  double carousel_waves_per_day = 48.0;
  std::uint32_t datasets_per_wave = 10;

  /// Background consolidation churn: individual files moved between
  /// disk RSEs per day, with no task provenance.  This is the dominant
  /// share of the event stream (the paper's 5.2M no-jeditaskid events).
  double churn_files_per_day = 14'000.0;
  /// Share of churn that is intra-site consolidation (src == dst): disk
  /// pool rebalancing inside one facility, part of the local volume that
  /// dominates the Fig. 3 diagonal.
  double churn_local_fraction = 0.8;

  /// Lifetime eviction of cold datasets' disk replicas (Rucio deletion):
  /// sweeps per day and the per-dataset expiry probability per sweep.
  double eviction_sweeps_per_day = 8.0;
  double eviction_probability = 0.6;

  /// Simulated-clock period of the obs::Sampler time series (queue
  /// depths, in-flight transfers, per-link load).  Only consulted when
  /// an obs::EventLog is installed; <= 0 disables sampling entirely.
  std::int64_t sample_interval_ms = 30 * 60 * 1000;

  /// Infrastructure faults.  `faults.intensity > 0` samples a seeded
  /// fault plan over the observation window (site/link/storage/service
  /// windows, see fault::Plan::sample); `fault_windows` adds explicit
  /// windows on top.  Both empty (the default) leaves every run
  /// bit-identical to a fault-free build.
  fault::Plan::SampleParams faults{};
  std::vector<fault::FaultWindow> fault_windows;

  /// Directory for per-day scenario::Checkpoint snapshots; empty (the
  /// default) disables checkpointing.  The PANDARUS_CHECKPOINT
  /// environment variable supplies a fallback when this is empty, so
  /// existing binaries gain crash-resumable campaigns without a rebuild.
  std::string checkpoint_dir;

  /// Turns on the transfer engine's recovery stack (exponential backoff,
  /// per-link circuit breaker, alternate-source retry, deeper retry
  /// budget).  Off by default so existing presets keep their legacy
  /// instant-requeue behavior.
  ScenarioConfig& with_self_healing();

  /// Presets -----------------------------------------------------------
  /// Fast, small: unit/integration tests (half a day, small grid).
  [[nodiscard]] static ScenarioConfig small();
  /// The paper's 8-day §5 study at ~1/20 of ATLAS's job rate.
  [[nodiscard]] static ScenarioConfig paper_scale();
  /// Longer, heavier campaign for the Fig. 3 transfer-pattern heatmap.
  [[nodiscard]] static ScenarioConfig heatmap_campaign();
};

}  // namespace pandarus::scenario
