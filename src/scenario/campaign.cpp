#include "scenario/campaign.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "analysis/serve_endpoints.hpp"
#include "dms/deletion.hpp"
#include "dms/rule.hpp"
#include "dms/selector.hpp"
#include "dms/transfer.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "obs/event_log.hpp"
#include "obs/flow.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/serve.hpp"
#include "obs/trace.hpp"
#include "scenario/checkpoint.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/io.hpp"
#include "telemetry/recorder.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "wms/panda_server.hpp"
#include "wms/workload.hpp"

namespace pandarus::scenario {
namespace {

/// Creates one DISK RSE per site plus TAPE RSEs at T0/T1 sites.
void create_rses(const grid::Topology& topology, dms::RseRegistry& rses) {
  for (const grid::Site& site : topology.sites()) {
    dms::Rse disk;
    disk.name = site.name + "_DATADISK";
    disk.site = site.id;
    disk.kind = dms::RseKind::kDisk;
    disk.capacity_bytes = site.storage_bytes;
    rses.add(std::move(disk));
    if (site.tier == grid::Tier::kT0 || site.tier == grid::Tier::kT1) {
      dms::Rse tape;
      tape.name = site.name + "_MCTAPE";
      tape.site = site.id;
      tape.kind = dms::RseKind::kTape;
      tape.capacity_bytes = site.storage_bytes * 4;
      rses.add(std::move(tape));
    }
  }
}

}  // namespace

ScenarioResult run_campaign(const ScenarioConfig& config) {
  const obs::ScopedSpan campaign_span("campaign/run", "scenario");
  const std::int64_t wall_start_us = obs::TraceRecorder::now_us();
  obs::Registry::global()
      .counter("pandarus_campaign_runs_total", "Campaigns simulated")
      .inc();

  // A campaign binary with a StatusServer installed (PANDARUS_SERVE)
  // gets the /api endpoints for free — the providers read only the
  // EventLog's published prefix and mutex-guarded aggregates, never
  // live simulator state.
  if (obs::StatusServer* server = obs::StatusServer::installed()) {
    analysis::attach_live_status(*server);
  }

  ScenarioResult result;
  util::Rng rng(config.seed);

  std::optional<obs::ScopedSpan> phase_span;
  phase_span.emplace("campaign/setup", "scenario");

  // --- substrate construction -------------------------------------------
  grid::TopologyParams topo_params = config.topology;
  topo_params.seed = util::hash_mix(config.seed, 0x7090);
  result.topology = grid::build_wlcg_like(topo_params);
  for (const grid::Site& s : result.topology.sites()) {
    auto& site = result.topology.site_mutable(s.id);
    site.cpu_slots = std::max<std::uint32_t>(
        4, static_cast<std::uint32_t>(static_cast<double>(site.cpu_slots) *
                                      config.slot_scale));
  }
  create_rses(result.topology, result.rses);

  dms::ReplicaCatalog replicas(result.catalog, result.rses);
  sim::Scheduler scheduler;

  dms::TransferEngine engine(scheduler, result.topology, replicas,
                             rng.fork(0x7e), config.transfer);
  telemetry::Recorder recorder(result.store, result.catalog, rng.fork(0x2ec),
                               config.recorder);
  engine.set_sink(
      [&recorder](const dms::TransferOutcome& o) { recorder.on_transfer(o); });

  dms::RuleEngine rule_engine(scheduler, result.topology, result.catalog,
                              replicas, result.rses, engine, rng.fork(0x21e),
                              config.rules);

  wms::Brokerage brokerage(result.topology, result.catalog, replicas,
                           config.brokerage);
  wms::SiteQueues queues(scheduler, result.topology, rng.fork(0x51));

  wms::PandaServer::Hooks hooks;
  hooks.on_job_complete = [&recorder](const wms::Job& job) {
    recorder.on_job_complete(job);
  };
  hooks.on_task_complete = [&recorder, &rule_engine,
                            &config](const wms::Task& task) {
    recorder.on_task_complete(task);
    // Production output datasets fall under the standard 2-copy T1 rule
    // as they appear, sustaining rule-driven WAN traffic all campaign.
    if (config.replicate_production_output &&
        task.kind == wms::JobKind::kProduction &&
        task.output_dataset != dms::kNoDataset) {
      rule_engine.add_rule({task.output_dataset, 2, grid::Tier::kT1});
    }
  };

  wms::PandaServer server(scheduler, result.topology, result.catalog,
                          replicas, result.rses, engine, brokerage, queues,
                          rng.fork(0x9a17da), config.panda, hooks);

  wms::WorkloadGenerator workload(scheduler, result.topology, result.catalog,
                                  replicas, result.rses, server,
                                  rng.fork(0x303), config.workload);
  workload.bootstrap_catalog();

  // --- background data management ---------------------------------------
  result.window_begin = 0;
  result.window_end = util::days(config.days);
  const util::SimTime arrivals_until =
      result.window_end - util::days(config.arrival_tail_days);

  // --- infrastructure faults --------------------------------------------
  // Alternate-source resolution is always available; whether retries use
  // it is governed by config.transfer.alternate_source_retry.
  engine.enable_alternate_sources(result.rses);
  fault::Plan fault_plan;
  for (const fault::FaultWindow& w : config.fault_windows) {
    fault_plan.add(w);
  }
  if (config.faults.intensity > 0.0) {
    const fault::Plan sampled = fault::Plan::sample(
        config.faults, result.topology, result.window_end,
        util::hash_mix(config.seed, 0xfa177));
    for (const fault::FaultWindow& w : sampled.windows) {
      fault_plan.add(w);
    }
  }
  std::optional<fault::Injector> injector;
  if (!fault_plan.empty()) {
    injector.emplace(scheduler);
    engine.set_injector(*injector);
    brokerage.set_injector(*injector);
    server.set_injector(*injector);
    injector->arm(fault_plan);
  }

  // Replication rules over the most popular input datasets.
  const auto& datasets = workload.input_datasets();
  const std::size_t n_rules = std::min<std::size_t>(
      config.replicated_datasets, datasets.size());
  for (std::size_t i = 0; i < n_rules; ++i) {
    rule_engine.add_rule({datasets[i], 2, grid::Tier::kT1});
  }
  rule_engine.start_periodic(result.window_end);

  // Data-Carousel staging waves (paper §6, iDDS/Data Carousel): whole
  // archived datasets are staged from a site's TAPE RSE to its DISK RSE.
  // These local flows are what makes the Fig. 3 diagonal dominate, with
  // the largest cells at the tape-heavy sites (CERN-like T0 first).
  // All wave times are pre-scheduled, so no event outlives this scope.
  const auto& archives = workload.tape_archives();
  if (config.carousel_waves_per_day > 0.0 && !archives.empty()) {
    util::Rng wave_rng = rng.fork(0xca0);
    const auto wave_gap = static_cast<util::SimDuration>(
        24.0 * 3600.0 * 1000.0 / config.carousel_waves_per_day);
    for (util::SimTime at = wave_gap / 2; at < result.window_end;
         at += wave_gap) {
      std::vector<std::pair<dms::DatasetId, grid::SiteId>> picks;
      for (std::uint32_t d = 0; d < config.datasets_per_wave; ++d) {
        picks.push_back(archives[wave_rng.uniform_index(archives.size())]);
      }
      scheduler.schedule_at(at, [&rule_engine, picks = std::move(picks)] {
        for (const auto& [ds, site] : picks) {
          rule_engine.stage_from_tape(ds, site);
        }
      });
    }
  }

  // Background churn: Rucio-style consolidation/pre-placement moving
  // individual files between disk RSEs.  This rule-less traffic carries
  // no jeditaskid and makes up the bulk of the event stream, as in the
  // paper's window (5.2M of 6.78M transfers had no task identifier).
  if (config.churn_files_per_day > 0.0 && !datasets.empty()) {
    struct ChurnState {
      util::Rng rng;
      std::vector<grid::SiteId> disk_sites;
      dms::ReplicaSelector selector;
    };
    auto churn = std::make_shared<ChurnState>(ChurnState{
        rng.fork(0xc4),
        {},
        dms::ReplicaSelector(result.topology, result.rses, replicas)});
    for (const grid::Site& s : result.topology.sites()) {
      if (s.tier != grid::Tier::kT3 &&
          result.rses.disk_at(s.id) != dms::kNoRse) {
        churn->disk_sites.push_back(s.id);
      }
    }
    const auto churn_gap = static_cast<util::SimDuration>(
        24.0 * 3600.0 * 1000.0 / config.churn_files_per_day);
    for (util::SimTime at = churn_gap; at < result.window_end;
         at += churn_gap) {
      scheduler.schedule_at(at, [churn, &scheduler, &engine, &replicas,
                                 &result, &datasets, &config] {
        const dms::DatasetId ds =
            datasets[churn->rng.uniform_index(datasets.size())];
        const auto files = result.catalog.files_of(ds);
        if (files.empty() || churn->disk_sites.empty()) return;
        const dms::FileId file =
            files[churn->rng.uniform_index(files.size())];
        dms::TransferRequest req;
        req.file = file;
        req.size_bytes = result.catalog.file(file).size_bytes;
        req.activity = dms::Activity::kDataRebalance;
        if (churn->rng.bernoulli(config.churn_local_fraction)) {
          // Intra-site consolidation: move the file between pools of one
          // facility that already holds it.
          dms::RseId holder = dms::kNoRse;
          for (dms::RseId r : replicas.replicas(file)) {
            if (result.rses.rse(r).kind == dms::RseKind::kDisk) {
              holder = r;
              break;
            }
          }
          if (holder == dms::kNoRse) return;
          const grid::SiteId site = result.rses.rse(holder).site;
          req.src = site;
          req.dst = site;
          req.dst_rse = holder;
        } else {
          const grid::SiteId dst =
              churn->disk_sites[churn->rng.uniform_index(
                  churn->disk_sites.size())];
          if (replicas.on_disk_at_site(file, dst)) return;
          const dms::RseId src_rse =
              churn->selector.select_source(file, dst, scheduler.now());
          if (src_rse == dms::kNoRse) return;
          req.src = result.rses.rse(src_rse).site;
          req.dst = dst;
          req.dst_rse = result.rses.disk_at(dst);
        }
        engine.submit(std::move(req));
      });
    }
  }

  // Lifetime eviction (Rucio's deletion daemon): transient disk replicas
  // of tape-only datasets expire periodically, so cold data goes cold
  // again and later jobs must re-stage — sustaining the Analysis/
  // Production Download populations instead of a one-shot warm-up.
  dms::DeletionDaemon::Params deletion_params;
  if (config.eviction_sweeps_per_day > 0.0) {
    deletion_params.sweep_interval = static_cast<util::SimDuration>(
        24.0 * 3600.0 * 1000.0 / config.eviction_sweeps_per_day);
  }
  deletion_params.expiry_prob = config.eviction_probability;
  dms::DeletionDaemon deletion(scheduler, result.catalog, replicas,
                               result.rses, rng.fork(0xe71c),
                               deletion_params);
  for (dms::DatasetId ds : workload.tape_only_datasets()) {
    deletion.add_transient(ds);
  }
  if (config.eviction_sweeps_per_day > 0.0) {
    deletion.start(result.window_end);
  }

  // Periodic time-series sampling, only when an event log or health
  // engine is installed: probes are read-only and consume no simulation
  // RNG, so a sampled run is bit-identical to an unsampled one.  Ticks
  // are pre-scheduled like the carousel waves, so no event outlives
  // this scope.
  std::optional<obs::Sampler> sampler;
  if ((obs::EventLog::installed() != nullptr ||
       obs::HealthEngine::installed() != nullptr) &&
      config.sample_interval_ms > 0) {
    sampler.emplace(config.sample_interval_ms);
    sampler->add_column("jobs_queued", [&queues] {
      return static_cast<std::int64_t>(queues.total_queued());
    });
    sampler->add_column("jobs_running", [&queues] {
      return static_cast<std::int64_t>(queues.total_running());
    });
    sampler->add_column("transfers_in_flight", [&engine] {
      return static_cast<std::int64_t>(engine.in_flight());
    });
    sampler->add_column("transfers_submitted", [&engine] {
      return static_cast<std::int64_t>(engine.stats().submitted);
    });
    sampler->add_column("transfers_completed", [&engine] {
      return static_cast<std::int64_t>(engine.stats().completed);
    });
    sampler->add_column("transfers_retried", [&engine] {
      return static_cast<std::int64_t>(engine.stats().retries);
    });
    sampler->add_column("bytes_moved", [&engine] {
      return static_cast<std::int64_t>(engine.stats().bytes_moved);
    });
    sampler->add_column("sim_events_processed", [&scheduler] {
      return static_cast<std::int64_t>(scheduler.processed_count());
    });
    // Telemetry self-audit: the stream's own drop counter rides in the
    // stream, so the health engine's event-drop watchdog works from
    // the sampled series alone (live and in replay).
    sampler->add_column("events_dropped", [] {
      obs::EventLog* log = obs::EventLog::installed();
      return log != nullptr ? static_cast<std::int64_t>(log->dropped())
                            : std::int64_t{0};
    });
    // Fault/recovery health: live fault windows and open breakers show
    // up alongside queue depth in the sampled series.
    sampler->add_gauge(obs::Registry::global().gauge(
        "pandarus_fault_windows_active", "Fault windows currently active"));
    sampler->add_gauge(obs::Registry::global().gauge(
        "pandarus_dms_breakers_open",
        "Links with an open (or probing) circuit breaker"));
    // Matcher funnel totals: flat during the campaign itself, live when
    // a matcher shares the process (method-comparison sweeps).
    sampler->add_counter(obs::Registry::global().counter(
        "pandarus_match_candidates_scanned_total",
        "Transfer candidates scanned by the matcher"));
    sampler->add_counter(obs::Registry::global().counter(
        "pandarus_match_jobs_matched_total", "Jobs matched to a transfer"));
    // The health engine consumes the same row the "sample" event
    // carries, at the same stream position, so its detectors see
    // identical sequences live and in replay.
    if (obs::HealthEngine::installed() != nullptr) {
      sampler->set_row_observer(
          [](std::int64_t ts, const std::vector<std::string>& names,
             const std::vector<std::int64_t>& values) {
            if (obs::HealthEngine* health = obs::HealthEngine::installed()) {
              health->on_sample(ts, names, values);
            }
          });
    }
    // Per-link load: one link_sample event per currently active link,
    // mirrored into the health engine's link-utilization detector.
    sampler->add_emitter([&engine, &result](std::int64_t ts) {
      obs::EventLog* log = obs::EventLog::installed();
      obs::HealthEngine* health = obs::HealthEngine::installed();
      if (log == nullptr && health == nullptr) return;
      for (const dms::TransferEngine::LinkProbe& p : engine.probe_links()) {
        const double cap =
            result.topology.link(p.key.src, p.key.dst).effective_capacity(ts);
        const double utilization = cap > 0.0 ? p.rate_bps / cap : 0.0;
        if (log != nullptr) {
          log->emit(
              obs::Event("link_sample", ts,
                         static_cast<std::int64_t>(
                             (static_cast<std::uint64_t>(p.key.src) << 32) |
                             p.key.dst))
                  .field("src", p.key.src)
                  .field("dst", p.key.dst)
                  .field("active", p.active)
                  .field("queued", p.queued)
                  .field("bytes_in_flight", p.bytes_in_flight)
                  .field("rate_bps", p.rate_bps)
                  .field("utilization", utilization));
        }
        if (health != nullptr) {
          health->on_link_sample(ts, p.key.src, p.key.dst,
                                 static_cast<std::int64_t>(p.queued),
                                 utilization);
        }
      }
    });
    obs::Sampler& ticks = *sampler;
    for (std::int64_t at = config.sample_interval_ms;
         at <= result.window_end; at += config.sample_interval_ms) {
      scheduler.schedule_at(at, [&ticks, at] { ticks.sample_at(at); });
    }
  }

  workload.start(arrivals_until);
  phase_span.reset();

  // Per-day checkpointing (config.checkpoint_dir / PANDARUS_CHECKPOINT)
  // and the resume-verification seam share one observation point: the
  // day boundary, right after that day's publish().  Assembling the
  // fingerprints costs a few container walks per simulated day and is
  // skipped entirely when neither consumer is armed, so default runs
  // stay byte- and cost-identical.
  CheckpointWriter checkpoints(config);
  const auto day_boundary = [&](std::int64_t day) {
    if (!checkpoints.active()) return;
    detail::DayBoundary boundary;
    boundary.day = day;
    boundary.sim_now = scheduler.now();
    boundary.store = &result.store;
    boundary.log = obs::EventLog::installed();
    obs::FlowTracker* flows = obs::FlowTracker::installed();
    boundary.flows_installed = flows != nullptr;
    Fingerprint& f = boundary.fingerprint;
    f.scheduler_processed = scheduler.processed_count();
    f.scheduler_queued = scheduler.queued_count();
    f.transfer_digest = engine.state_digest();
    f.injector_digest = injector ? injector->state_digest() : 0;
    f.flow_digest = flows != nullptr ? flows->state_digest() : 0;
    const telemetry::MetadataStore::Counts counts = result.store.counts();
    f.store_jobs = counts.jobs;
    f.store_files = counts.files;
    f.store_transfers = counts.transfers;
    checkpoints.on_day_boundary(boundary);
    detail::notify_day_boundary(boundary);
  };

  // The drain loop is segmented at simulated-day boundaries purely for
  // observability: run_until over consecutive prefixes fires the same
  // events in the same order as one call, and each segment becomes a
  // "campaign/day" span (arg = day index) in the trace.
  {
    const obs::ScopedSpan simulate_span("campaign/simulate", "scenario");
    // Live-progress gauges for obs::serve's SSE stream; gauges never
    // touch the event stream, so they are determinism-neutral.
    obs::Gauge& sim_now = obs::Registry::global().gauge(
        "pandarus_campaign_sim_now_ms",
        "Simulated time reached by the running campaign");
    obs::Registry::global()
        .gauge("pandarus_campaign_window_end_ms",
               "Observation-window end of the running campaign")
        .set(result.window_end);
    const util::SimTime horizon = result.window_end + util::days(3);
    std::int64_t day = 0;
    for (util::SimTime t = 0; t < horizon; ++day) {
      t = std::min(horizon, t + util::days(1));
      const obs::ScopedSpan day_span("campaign/day", "scenario", day);
      scheduler.run_until(t);
      sim_now.set(t);
      // Publish this day's events so snapshot readers (serve, periodic
      // flush) can see a consistent prefix while the campaign runs.
      if (obs::EventLog* log = obs::EventLog::installed()) log->publish();
      day_boundary(day);
    }
  }
  phase_span.emplace("campaign/post_process", "scenario");

  result.drained = scheduler.empty();
  result.transfers_in_flight = engine.in_flight();
  if (injector.has_value()) {
    result.fault_windows = injector->stats().begun;
  }
  if (!result.drained) {
    util::log_warning() << "campaign drained incompletely: events remain "
                           "after the grace window";
  }

  // --- post-processing ----------------------------------------------------
  if (config.apply_corruption) {
    result.corruption = telemetry::inject_corruption(
        result.store, config.corruption, rng.fork(0xc0de));
  }

  // Harvest: with an event log installed, close the stream with the
  // campaign header, the site table, and one *_record event per store
  // row.  This runs after corruption injection, so a replay of the
  // NDJSON rebuilds exactly the store the analyses see.
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(
        obs::Event("campaign_meta", scheduler.now(), std::int64_t{0})
            .field("seed", config.seed)
            .field("days", config.days)
            .field("window_begin", result.window_begin)
            .field("window_end", result.window_end)
            .field("sites",
                   static_cast<std::uint64_t>(result.topology.site_count()))
            .field("sample_interval_ms", config.sample_interval_ms)
            .field("samples",
                   sampler ? static_cast<std::int64_t>(sampler->rows().size())
                           : std::int64_t{0}));
    for (const grid::Site& s : result.topology.sites()) {
      log->emit(obs::Event("site_record", scheduler.now(),
                           static_cast<std::int64_t>(s.id))
                    .field("name", s.name)
                    .field("country", s.country)
                    .field("tier", static_cast<std::int32_t>(s.tier))
                    .field("cpu_slots", s.cpu_slots));
    }
    telemetry::emit_store_events(result.store, scheduler.now());
    // Harvest published immediately: a live /api/summary scrape from
    // here on replays the full record set and equals the post-hoc
    // analysis::report numbers.
    log->publish();
  }

  result.panda = server.stats();
  result.deletion = deletion.stats();
  result.transfers = engine.stats();
  result.rules = rule_engine.stats();
  result.workload = workload.stats();
  result.events_processed = scheduler.processed_count();

  // Causal-flow harvest: aggregates only — flow tracking must leave the
  // non-flow_* event stream byte-identical, so nothing is emitted here.
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    result.flow_totals = flows->totals();
    result.flow_link_ranking = flows->link_ranking();
  }

  phase_span.reset();
  obs::Registry::global()
      .gauge("pandarus_campaign_last_wall_ms",
             "Wall-clock milliseconds of the most recent run_campaign")
      .set(obs::to_millis(obs::TraceRecorder::now_us() - wall_start_us));
  return result;
}

}  // namespace pandarus::scenario
