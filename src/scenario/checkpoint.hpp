// Campaign checkpoint/resume (replay-validated).
//
// A pandarus campaign is a deterministic function of its config: the
// scheduler's event closures capture live object references and cannot
// be serialized, so a checkpoint does NOT try to freeze the heap.
// Instead it snapshots, at each simulated-day boundary, everything
// needed to *prove* that a re-execution has reconverged with the
// crashed run:
//
//   - a digest of the determinism-relevant config knobs,
//   - fingerprints of every stateful component (scheduler event
//     counts, TransferEngine/Injector/FlowTracker state_digest()s),
//   - the full MetadataStore as CSV blobs,
//   - the byte count and CRC32 of the EventLog's published NDJSON
//     prefix at that boundary.
//
// resume_campaign() then re-executes the campaign from its seed with a
// fresh EventLog and, at the checkpointed day, verifies that every
// fingerprint, the store blobs, and the regenerated prefix CRC match
// the snapshot.  When they do, the regenerated stream is bit-identical
// to the crashed run's, so its suffix can be spliced onto whatever
// prefix obs::recover salvaged from disk:
//
//   salvaged == full[:salvaged.size()]           (prefix invariant)
//   salvaged + full[salvaged.size():] == uninterrupted run   (parity)
//
// Snapshot files are self-validating: magic + length-framed payload +
// trailing CRC32, written tmp→fsync→rename so a crash mid-write never
// leaves a loadable-but-torn file.  load_latest_checkpoint() walks the
// directory newest-day-first and skips snapshots that fail validation,
// so a torn final snapshot silently falls back to the previous day.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "scenario/campaign.hpp"
#include "scenario/config.hpp"
#include "util/crc32.hpp"

namespace pandarus::obs {
class EventLog;
}  // namespace pandarus::obs

namespace pandarus::scenario {

/// Deterministic digests of every stateful campaign component at one
/// simulated-day boundary.  Two runs of the same config agree on all
/// fields at equal boundaries; a mismatch on resume means the re-run
/// diverged (wrong config, wrong build) and the resume is rejected.
struct Fingerprint {
  std::uint64_t scheduler_processed = 0;
  std::uint64_t scheduler_queued = 0;
  std::uint64_t transfer_digest = 0;
  std::uint64_t injector_digest = 0;  ///< 0 when no injector is armed
  std::uint64_t flow_digest = 0;      ///< 0 when no FlowTracker installed
  std::uint64_t store_jobs = 0;
  std::uint64_t store_files = 0;
  std::uint64_t store_transfers = 0;

  [[nodiscard]] bool operator==(const Fingerprint&) const = default;
};

/// One per-day snapshot.  `store_*_csv` carry the full MetadataStore so
/// verification compares actual content, not just counts.
struct Checkpoint {
  std::uint64_t config_digest = 0;
  std::int64_t day = -1;     ///< day index just completed (0-based)
  std::int64_t sim_now = 0;  ///< scheduler time at the boundary
  // EventLog state at the boundary.
  std::uint64_t log_watermark = 0;
  std::uint64_t log_accepted = 0;
  std::uint64_t log_dropped = 0;
  std::uint64_t log_bytes = 0;
  /// Published-prefix NDJSON at the boundary: byte count and CRC32.
  std::uint64_t prefix_bytes = 0;
  std::uint32_t prefix_crc = 0;
  bool flows_installed = false;
  Fingerprint fingerprint;
  std::string store_jobs_csv;
  std::string store_files_csv;
  std::string store_transfers_csv;
};

/// Digest of the determinism-relevant ScenarioConfig knobs; stored in
/// every snapshot so a resume with a different config is rejected
/// instead of producing a silently wrong splice.
[[nodiscard]] std::uint64_t config_digest(const ScenarioConfig& config);

/// Writes `ckpt` to `<dir>/ckpt-day-NNNN.pckpt` (tmp + fsync + rename).
/// False (with a warning logged) on I/O failure.
bool write_checkpoint(const Checkpoint& ckpt, const std::string& dir);

/// Parses and validates one snapshot file.  nullopt (with `error` set
/// when non-null) on open failure, bad magic, short payload, or CRC
/// mismatch.
std::optional<Checkpoint> load_checkpoint_file(const std::string& path,
                                               std::string* error = nullptr);

/// Highest-day valid snapshot in `dir`; torn or corrupt snapshots are
/// skipped (falling back to earlier days).  nullopt when none loads.
std::optional<Checkpoint> load_latest_checkpoint(const std::string& dir,
                                                 std::string* error = nullptr);

namespace detail {

/// Everything the campaign drain loop exposes at a day boundary (after
/// that day's publish()).  Handed to the installed observer and to the
/// CheckpointWriter.
struct DayBoundary {
  std::int64_t day = 0;
  std::int64_t sim_now = 0;
  Fingerprint fingerprint;
  const telemetry::MetadataStore* store = nullptr;
  obs::EventLog* log = nullptr;  ///< installed log; may be null
  bool flows_installed = false;
};

using DayBoundaryHook = std::function<void(const DayBoundary&)>;

/// Installs the process-wide day-boundary observer, returning the
/// previous one.  resume_campaign() uses this seam to verify
/// fingerprints mid-run; while a hook is installed, CheckpointWriter
/// suppresses snapshot writing (the verify re-run must not clobber the
/// crashed run's snapshots).  Campaigns are single-threaded; this seam
/// is not thread-safe and must not be raced with a running campaign.
DayBoundaryHook exchange_day_boundary_hook(DayBoundaryHook hook);
[[nodiscard]] bool day_boundary_hook_installed();
void notify_day_boundary(const DayBoundary& boundary);

}  // namespace detail

/// Owned by run_campaign(): resolves the snapshot directory from
/// `config.checkpoint_dir`, falling back to the PANDARUS_CHECKPOINT
/// environment variable, and writes one snapshot per completed day.
/// Inert when neither names a directory or a verification hook is
/// installed.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(const ScenarioConfig& config);

  /// True when day boundaries must assemble a DayBoundary record —
  /// either to write snapshots or to feed an installed observer.
  [[nodiscard]] bool active() const;

  void on_day_boundary(const detail::DayBoundary& boundary);

  [[nodiscard]] std::uint64_t snapshots_written() const noexcept {
    return written_;
  }

 private:
  std::uint64_t config_digest_ = 0;
  std::string dir_;
  std::uint64_t cursor_ = 0;  ///< snapshot_ndjson() resume cursor
  std::uint64_t prefix_bytes_ = 0;
  util::Crc32 prefix_crc_;  ///< running CRC of the published prefix
  std::uint64_t written_ = 0;
};

/// Result of resume_campaign().  When `had_checkpoint`, `ok` requires
/// both verification bits; `full_ndjson` is the regenerated complete
/// stream (byte-identical to an uninterrupted run) and `suffix` is the
/// part after the checkpointed prefix.  Callers splice at whatever
/// prefix length they actually salvaged from disk:
///   final = salvaged + full_ndjson.substr(salvaged.size())
/// after checking salvaged == full_ndjson[:salvaged.size()].
struct ResumeOutcome {
  bool ok = false;
  std::string error;
  bool had_checkpoint = false;
  std::int64_t resumed_day = -1;
  std::uint64_t prefix_bytes = 0;
  bool fingerprint_verified = false;
  bool prefix_verified = false;
  Checkpoint checkpoint;
  ScenarioResult result;
  std::string full_ndjson;
  std::string suffix;
};

/// Re-executes the campaign deterministically with a fresh EventLog
/// (and FlowTracker, when the snapshot says one was installed),
/// verifying reconvergence against the newest valid snapshot in
/// `checkpoint_dir`.  With no loadable snapshot the run proceeds as a
/// plain from-scratch execution (`had_checkpoint == false`, still ok).
/// A config digest mismatch or failed verification yields ok == false.
/// Installs its own EventLog for the duration and uninstalls it before
/// returning; the caller must not have one installed (resume refuses
/// with an error rather than clobbering a live log).
ResumeOutcome resume_campaign(const ScenarioConfig& config,
                              const std::string& checkpoint_dir);

}  // namespace pandarus::scenario
