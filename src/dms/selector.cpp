#include "dms/selector.hpp"

namespace pandarus::dms {

RseId ReplicaSelector::select_source(FileId file, grid::SiteId dst,
                                     util::SimTime t,
                                     grid::SiteId exclude_site) const {
  RseId local_disk = kNoRse;
  RseId local_tape = kNoRse;
  RseId best_remote_disk = kNoRse;
  double best_remote_capacity = -1.0;
  RseId any_tape = kNoRse;

  for (RseId rse_id : replicas_->replicas(file)) {
    const Rse& rse = rses_->rse(rse_id);
    if (rse.site == exclude_site) continue;
    if (rse.site == dst) {
      if (rse.kind == RseKind::kDisk) {
        local_disk = rse_id;
      } else {
        local_tape = rse_id;
      }
      continue;
    }
    if (rse.kind == RseKind::kDisk) {
      const double capacity =
          topology_->link(rse.site, dst).effective_capacity(t);
      if (capacity > best_remote_capacity) {
        best_remote_capacity = capacity;
        best_remote_disk = rse_id;
      }
    } else if (any_tape == kNoRse) {
      any_tape = rse_id;
    }
  }

  if (local_disk != kNoRse) return local_disk;
  if (local_tape != kNoRse) return local_tape;
  if (best_remote_disk != kNoRse) return best_remote_disk;
  return any_tape;
}

}  // namespace pandarus::dms
