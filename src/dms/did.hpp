// Data identifiers (paper §2.2): the three-tier namespace of files,
// datasets and containers, referenced by globally unique DIDs
// (scope:name).  Files are the unit of transfer; datasets group files
// for bulk operations; containers aggregate datasets.
#pragma once

#include <cstdint>
#include <string>

namespace pandarus::dms {

using FileId = std::uint64_t;
using DatasetId = std::uint32_t;
using ContainerId = std::uint32_t;

inline constexpr DatasetId kNoDataset = 0xFFFFFFFFu;
inline constexpr ContainerId kNoContainer = 0xFFFFFFFFu;

/// Transfer activity classes as recorded in Rucio transfer events
/// (Table 1 of the paper).  `kDataRebalance` covers rule-driven
/// placement/consolidation traffic that carries no task identifier.
enum class Activity : std::uint8_t {
  kAnalysisDownload = 0,
  kAnalysisUpload = 1,
  kAnalysisDownloadDirectIO = 2,
  kProductionUpload = 3,
  kProductionDownload = 4,
  kDataRebalance = 5,
};
inline constexpr std::size_t kActivityCount = 6;

[[nodiscard]] const char* activity_name(Activity activity) noexcept;

/// Download activities move data *to* the job's computing site; upload
/// activities move job outputs *from* it.  Rebalance traffic is
/// destination-oriented, so it counts as a download for the purposes of
/// Algorithm 1's site check.
[[nodiscard]] bool is_download(Activity activity) noexcept;
[[nodiscard]] bool is_upload(Activity activity) noexcept;

/// Terminal-outcome attribution for transfers: why a transfer failed,
/// or why it completed without a usable replica.  Recorded on the
/// TransferOutcome/TransferRecord so reports can break terminal
/// failures down by cause.
enum class TransferError : std::uint8_t {
  kNone = 0,                ///< success with the replica registered
  kAborted = 1,             ///< per-attempt abort exhausted max_attempts
  kStalledTerminal = 2,     ///< final failed attempt was a stalled one
  kRegistrationFailed = 3,  ///< bytes moved, replica never registered
  kFaultWindow = 4,         ///< failed under an active fault window
  kBreakerRejected = 5,     ///< failed while its link's breaker was open
};
inline constexpr std::size_t kTransferErrorCount = 6;

[[nodiscard]] const char* transfer_error_name(TransferError error) noexcept;

struct FileInfo {
  FileId id = 0;
  DatasetId dataset = kNoDataset;
  std::uint64_t size_bytes = 0;
};

struct DatasetInfo {
  DatasetId id = kNoDataset;
  ContainerId container = kNoContainer;
  std::string scope;   ///< e.g. "mc23_13p6TeV" or "user.jdoe"
  std::string name;    ///< dataset DID name
  std::uint32_t first_file_index = 0;  ///< for lfn generation
};

struct ContainerInfo {
  ContainerId id = kNoContainer;
  ContainerId parent = kNoContainer;  ///< containers can nest (§2.2)
  std::string scope;
  std::string name;
};

}  // namespace pandarus::dms
