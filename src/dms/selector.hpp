// Replica selection (paper §2.2, step 2 of the transfer workflow):
// given a file needed at a destination site, choose the best source
// replica "based on protocol, throughput, and network performance".
#pragma once

#include "dms/catalog.hpp"
#include "grid/topology.hpp"
#include "util/time.hpp"

namespace pandarus::dms {

class ReplicaSelector {
 public:
  ReplicaSelector(const grid::Topology& topology, const RseRegistry& rses,
                  const ReplicaCatalog& replicas)
      : topology_(&topology), rses_(&rses), replicas_(&replicas) {}

  /// Best source RSE for staging `file` to `dst` at time `t`:
  ///  1. a DISK replica at the destination site itself (local copy);
  ///  2. the site's own TAPE replica (local staging beats WAN);
  ///  3. otherwise the remote DISK replica with the highest effective
  ///     link capacity toward `dst` right now;
  ///  4. a remote TAPE replica as a last resort.
  /// Returns kNoRse when the file has no replica anywhere.
  [[nodiscard]] RseId select_source(FileId file, grid::SiteId dst,
                                    util::SimTime t) const {
    return select_source(file, dst, t, grid::kUnknownSite);
  }

  /// Same, ignoring replicas hosted at `exclude_site` — the transfer
  /// engine's alternate-source retry, which must route *around* a
  /// faulted or breaker-open source.
  [[nodiscard]] RseId select_source(FileId file, grid::SiteId dst,
                                    util::SimTime t,
                                    grid::SiteId exclude_site) const;

 private:
  const grid::Topology* topology_;
  const RseRegistry* rses_;
  const ReplicaCatalog* replicas_;
};

}  // namespace pandarus::dms
