// File and replica catalogs (the Rucio namespace + replica bookkeeping).
//
// The FileCatalog owns dataset/file metadata and generates the string
// identifiers (lfn, dataset name, proddblock, scope) that Algorithm 1
// later matches on.  The ReplicaCatalog tracks which RSEs hold a physical
// copy of each file, exactly the state PanDA's brokerage and Rucio's
// replica selection consult.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dms/did.hpp"
#include "dms/rse.hpp"

namespace pandarus::dms {

class FileCatalog {
 public:
  /// Number of files per proddblock sub-division of a dataset.
  static constexpr std::uint32_t kFilesPerBlock = 10;

  /// Creates a container DID; `parent` nests it inside another container
  /// (paper §2.2: containers "can themselves be nested, enabling
  /// flexible grouping of large-scale collections").
  ContainerId create_container(std::string scope, std::string name,
                               ContainerId parent = kNoContainer);

  DatasetId create_dataset(std::string scope, std::string name,
                           ContainerId container = kNoContainer);

  /// Attaches an existing dataset to a container (replacing any previous
  /// attachment).
  void attach_dataset(DatasetId dataset, ContainerId container);

  [[nodiscard]] const ContainerInfo& container(ContainerId id) const {
    return containers_.at(id);
  }
  [[nodiscard]] std::size_t container_count() const noexcept {
    return containers_.size();
  }
  /// Datasets directly attached to the container.
  [[nodiscard]] std::span<const DatasetId> datasets_of(ContainerId id) const;
  /// Every file reachable from the container, following nested
  /// containers recursively (deterministic depth-first order).
  [[nodiscard]] std::vector<FileId> files_of_container(ContainerId id) const;
  /// Total bytes reachable from the container.
  [[nodiscard]] std::uint64_t container_bytes(ContainerId id) const;

  /// Appends a file of the given size to a dataset.
  FileId add_file(DatasetId dataset, std::uint64_t size_bytes);

  [[nodiscard]] const FileInfo& file(FileId id) const {
    return files_.at(id).info;
  }
  [[nodiscard]] const DatasetInfo& dataset(DatasetId id) const {
    return datasets_.at(id);
  }
  [[nodiscard]] std::span<const FileId> files_of(DatasetId id) const;

  [[nodiscard]] std::size_t file_count() const noexcept {
    return files_.size();
  }
  [[nodiscard]] std::size_t dataset_count() const noexcept {
    return datasets_.size();
  }

  /// Logical file name, e.g. "AOD.000123._000004.pool.root".
  [[nodiscard]] std::string lfn(FileId id) const;
  /// The block-level data identifier the file belongs to,
  /// e.g. "mc23:dataset_000123_block002".
  [[nodiscard]] std::string proddblock(FileId id) const;
  [[nodiscard]] const std::string& scope(FileId id) const;
  [[nodiscard]] const std::string& dataset_name(FileId id) const;

  [[nodiscard]] std::uint64_t dataset_bytes(DatasetId id) const;

 private:
  struct FileEntry {
    FileInfo info;
    std::uint32_t index_in_dataset = 0;
  };
  std::vector<FileEntry> files_;
  std::vector<DatasetInfo> datasets_;
  std::vector<std::vector<FileId>> dataset_files_;
  std::vector<ContainerInfo> containers_;
  std::vector<std::vector<DatasetId>> container_datasets_;
  std::vector<std::vector<ContainerId>> container_children_;
};

class ReplicaCatalog {
 public:
  /// The catalog updates each RSE's `used_bytes` as replicas come and
  /// go, so storage accounting (and quota checks) stay consistent with
  /// the replica table by construction.
  ReplicaCatalog(const FileCatalog& files, RseRegistry& rses)
      : files_(&files), rses_(&rses) {}

  /// Registers a replica; idempotent.  Ignores (and reports false for)
  /// RSEs whose quota the file would overflow.
  bool add_replica(FileId file, RseId rse);
  /// Removes a replica if present; returns whether one was removed.
  bool remove_replica(FileId file, RseId rse);

  /// True when `rse` has room for `bytes` more (capacity 0 = unlimited).
  [[nodiscard]] bool has_space(RseId rse, std::uint64_t bytes) const;

  [[nodiscard]] bool has_replica(FileId file, RseId rse) const;
  /// True when any RSE at `site` holds the file.
  [[nodiscard]] bool resident_at_site(FileId file, grid::SiteId site) const;
  /// True when a DISK RSE at `site` holds the file (tape copies do not
  /// count: jobs cannot read from tape without staging).
  [[nodiscard]] bool on_disk_at_site(FileId file, grid::SiteId site) const;

  [[nodiscard]] std::span<const RseId> replicas(FileId file) const;

  /// Total bytes of `files` resident on disk at `site` — the quantity
  /// PanDA's data-locality brokerage maximizes.
  [[nodiscard]] std::uint64_t bytes_on_disk_at_site(
      std::span<const FileId> files, const FileCatalog& catalog,
      grid::SiteId site) const;

  [[nodiscard]] std::size_t replica_count() const noexcept { return total_; }

 private:
  const FileCatalog* files_;
  RseRegistry* rses_;
  std::vector<std::vector<RseId>> by_file_;
  std::size_t total_ = 0;
};

}  // namespace pandarus::dms
