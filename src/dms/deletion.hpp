// Deletion daemon: Rucio's replica-lifetime enforcement (paper §2.2:
// rules protect replicas from deletion "until all rules expire").
//
// Transient disk replicas of registered datasets expire memorylessly:
// each sweep, every transient dataset's disk copies are removed with
// `expiry_prob`.  Cold data thereby goes cold again after carousel
// staging or job-driven staging, sustaining the re-staging traffic that
// the paper's Download populations and redundant-transfer findings live
// on.  Tape copies are never deleted (they are the archival tier).
#pragma once

#include <cstdint>
#include <vector>

#include "dms/catalog.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace pandarus::dms {

class DeletionDaemon {
 public:
  struct Params {
    util::SimDuration sweep_interval = util::hours(3);
    /// Per-sweep probability that a transient dataset's disk replicas
    /// expire (memoryless lifetime with mean sweep_interval/prob).
    double expiry_prob = 0.6;
  };

  struct Stats {
    std::uint64_t sweeps = 0;
    std::uint64_t datasets_expired = 0;
    std::uint64_t replicas_deleted = 0;
    std::uint64_t bytes_deleted = 0;
  };

  DeletionDaemon(sim::Scheduler& scheduler, const FileCatalog& catalog,
                 ReplicaCatalog& replicas, const RseRegistry& rses,
                 util::Rng rng, Params params);

  /// Marks a dataset's disk replicas as transient (lifetime-managed).
  void add_transient(DatasetId dataset) { transient_.push_back(dataset); }
  [[nodiscard]] std::size_t transient_count() const noexcept {
    return transient_.size();
  }

  /// One sweep: expire a random subset of transient datasets.  Returns
  /// the number of datasets expired.
  std::uint32_t sweep_once();

  /// Schedules sweeps every sweep_interval until `until`.
  void start(util::SimTime until);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  sim::Scheduler& scheduler_;
  const FileCatalog& catalog_;
  ReplicaCatalog& replicas_;
  const RseRegistry& rses_;
  util::Rng rng_;
  Params params_;
  Stats stats_;
  std::vector<DatasetId> transient_;
};

}  // namespace pandarus::dms
