#include "dms/did.hpp"

namespace pandarus::dms {

const char* activity_name(Activity activity) noexcept {
  switch (activity) {
    case Activity::kAnalysisDownload: return "Analysis Download";
    case Activity::kAnalysisUpload: return "Analysis Upload";
    case Activity::kAnalysisDownloadDirectIO:
      return "Analysis Download Direct IO";
    case Activity::kProductionUpload: return "Production Upload";
    case Activity::kProductionDownload: return "Production Download";
    case Activity::kDataRebalance: return "Data Rebalance";
  }
  return "Unknown";
}

const char* transfer_error_name(TransferError error) noexcept {
  switch (error) {
    case TransferError::kNone: return "none";
    case TransferError::kAborted: return "aborted";
    case TransferError::kStalledTerminal: return "stalled_terminal";
    case TransferError::kRegistrationFailed: return "registration_failed";
    case TransferError::kFaultWindow: return "fault_window";
    case TransferError::kBreakerRejected: return "breaker_rejected";
  }
  return "?";
}

bool is_download(Activity activity) noexcept {
  switch (activity) {
    case Activity::kAnalysisDownload:
    case Activity::kAnalysisDownloadDirectIO:
    case Activity::kProductionDownload:
    case Activity::kDataRebalance:
      return true;
    case Activity::kAnalysisUpload:
    case Activity::kProductionUpload:
      return false;
  }
  return false;
}

bool is_upload(Activity activity) noexcept {
  switch (activity) {
    case Activity::kAnalysisUpload:
    case Activity::kProductionUpload:
      return true;
    default:
      return false;
  }
}

}  // namespace pandarus::dms
