// Transfer engine: the FTS-like machinery beneath Rucio (paper §2.2,
// step 3 of the transfer workflow).
//
// Each directional link admits at most `max_active` concurrent transfers
// (the rest queue); active transfers share the link's effective capacity
// equally, capped by a per-stream protocol limit.  Rates are
// re-evaluated whenever link membership changes and periodically while
// transfers are active, so the diurnal/bursty background load of the
// LoadModel shows up as the bandwidth fluctuation of Figs. 7/8.
//
// Failure injection reproduces the paper's pathologies:
//  * stalls   — a transfer crawls at a small fraction of its fair share
//               (the 17.7x / 20x throughput spreads of Figs. 10/11);
//  * failures — the transfer aborts and is retried up to max_attempts;
//  * registration failures — the transfer completes but the new replica
//               is never registered, so later jobs re-stage the same
//               files (the redundant-transfer pattern of Fig. 12).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dms/catalog.hpp"
#include "dms/did.hpp"
#include "grid/topology.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace pandarus::dms {

struct TransferRequest {
  FileId file = 0;
  std::uint64_t size_bytes = 0;
  grid::SiteId src = grid::kUnknownSite;
  grid::SiteId dst = grid::kUnknownSite;
  RseId dst_rse = kNoRse;  ///< replica registered here on success
  Activity activity = Activity::kDataRebalance;
  std::int64_t jeditaskid = -1;  ///< -1: no task provenance
  std::int64_t pandaid = -1;     ///< internal provenance; never exposed to matching
  /// Invoked at completion (success or terminal failure) before the
  /// engine-wide sink.
  std::function<void(const struct TransferOutcome&)> on_complete;
};

struct TransferOutcome {
  std::uint64_t transfer_id = 0;
  FileId file = 0;
  std::uint64_t size_bytes = 0;
  grid::SiteId src = grid::kUnknownSite;
  grid::SiteId dst = grid::kUnknownSite;
  Activity activity = Activity::kDataRebalance;
  std::int64_t jeditaskid = -1;
  std::int64_t pandaid = -1;
  util::SimTime submitted_at = 0;
  util::SimTime started_at = 0;   ///< when it left the queue
  util::SimTime finished_at = 0;
  bool success = false;
  bool replica_registered = false;
  std::uint32_t attempts = 1;

  [[nodiscard]] double throughput_bps() const noexcept {
    const double secs = util::to_seconds(finished_at - started_at);
    return secs > 0.0 ? static_cast<double>(size_bytes) / secs : 0.0;
  }
  [[nodiscard]] bool is_local() const noexcept { return src == dst; }
};

class TransferEngine {
 public:
  struct Params {
    double failure_prob = 0.01;        ///< per-attempt abort probability
    std::uint32_t max_attempts = 2;
    double stall_prob = 0.06;          ///< per-attempt stall probability
    /// Stall severity: the rate multiplier is drawn log-uniformly from
    /// [stall_factor_min, stall_factor_max].  The deep end of the range
    /// produces transfers that outlive the staging watchdog and span
    /// into execution (Fig. 11).
    double stall_factor_min = 0.0005;
    double stall_factor_max = 0.15;
    double per_stream_cap_bps = 700e6; ///< single-stream protocol limit
    double registration_failure_prob = 0.008;
    util::SimDuration rerate_interval = util::minutes(5);
  };

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;  ///< terminal failures (retries exhausted)
    std::uint64_t retries = 0;
    std::uint64_t registration_failures = 0;
    std::uint64_t quota_rejections = 0;
    std::uint64_t bytes_moved = 0;
  };

  TransferEngine(sim::Scheduler& scheduler, const grid::Topology& topology,
                 ReplicaCatalog& replicas, util::Rng rng, Params params);
  /// Default-parameter convenience (defined out of line: in-class `= {}`
  /// would need Params' NSDMIs before the enclosing class is complete).
  TransferEngine(sim::Scheduler& scheduler, const grid::Topology& topology,
                 ReplicaCatalog& replicas, util::Rng rng);

  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;
  ~TransferEngine();

  /// Queues the transfer; returns its id.  Completion is reported through
  /// the request's on_complete and then the engine-wide sink.
  std::uint64_t submit(TransferRequest request);

  /// Engine-wide completion sink (the telemetry recorder).
  void set_sink(std::function<void(const TransferOutcome&)> sink) {
    sink_ = std::move(sink);
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }

  /// Point-in-time view of one link's load, for the periodic sampler.
  struct LinkProbe {
    grid::LinkKey key{};
    std::uint32_t active = 0;          ///< transfers holding a slot
    std::uint32_t queued = 0;          ///< transfers waiting for a slot
    std::uint64_t bytes_in_flight = 0; ///< remaining bytes of active ones
    double rate_bps = 0.0;             ///< summed assigned rates
  };
  /// Links with any current activity, sorted by (src, dst) so sampled
  /// output is deterministic.  Read-only; byte progress is as of the
  /// last rate re-evaluation.
  [[nodiscard]] std::vector<LinkProbe> probe_links() const;

 private:
  struct Active;
  struct LinkState;

  LinkState& link_state(grid::SiteId src, grid::SiteId dst);
  void try_start(LinkState& ls);
  void start_one(LinkState& ls);
  void update_rates(LinkState& ls);
  void complete(LinkState& ls, Active* active);
  void finalize(std::unique_ptr<Active> active, bool success);
  void schedule_rerate(LinkState& ls);

  sim::Scheduler& scheduler_;
  const grid::Topology& topology_;
  ReplicaCatalog& replicas_;
  util::Rng rng_;
  Params params_;
  Stats stats_;
  std::uint64_t next_id_ = 1;
  std::size_t in_flight_ = 0;
  std::function<void(const TransferOutcome&)> sink_;
  std::unordered_map<grid::LinkKey, std::unique_ptr<LinkState>,
                     grid::LinkKeyHash>
      links_;
};

}  // namespace pandarus::dms
