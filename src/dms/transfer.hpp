// Transfer engine: the FTS-like machinery beneath Rucio (paper §2.2,
// step 3 of the transfer workflow).
//
// Each directional link admits at most `max_active` concurrent transfers
// (the rest queue); active transfers share the link's effective capacity
// equally, capped by a per-stream protocol limit.  Rates are
// re-evaluated whenever link membership changes and periodically while
// transfers are active, so the diurnal/bursty background load of the
// LoadModel shows up as the bandwidth fluctuation of Figs. 7/8.
//
// Failure injection reproduces the paper's pathologies:
//  * stalls   — a transfer crawls at a small fraction of its fair share
//               (the 17.7x / 20x throughput spreads of Figs. 10/11);
//  * failures — the transfer aborts and is retried up to max_attempts;
//  * registration failures — the transfer completes but the new replica
//               is never registered, so later jobs re-stage the same
//               files (the redundant-transfer pattern of Fig. 12).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include <optional>

#include "dms/catalog.hpp"
#include "dms/did.hpp"
#include "dms/selector.hpp"
#include "fault/injector.hpp"
#include "grid/topology.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace pandarus::dms {

struct TransferRequest {
  FileId file = 0;
  std::uint64_t size_bytes = 0;
  grid::SiteId src = grid::kUnknownSite;
  grid::SiteId dst = grid::kUnknownSite;
  RseId dst_rse = kNoRse;  ///< replica registered here on success
  Activity activity = Activity::kDataRebalance;
  std::int64_t jeditaskid = -1;  ///< -1: no task provenance
  std::int64_t pandaid = -1;     ///< internal provenance; never exposed to matching
  /// Invoked at completion (success or terminal failure) before the
  /// engine-wide sink.
  std::function<void(const struct TransferOutcome&)> on_complete;
};

struct TransferOutcome {
  std::uint64_t transfer_id = 0;
  FileId file = 0;
  std::uint64_t size_bytes = 0;
  grid::SiteId src = grid::kUnknownSite;
  grid::SiteId dst = grid::kUnknownSite;
  Activity activity = Activity::kDataRebalance;
  std::int64_t jeditaskid = -1;
  std::int64_t pandaid = -1;
  util::SimTime submitted_at = 0;
  util::SimTime started_at = 0;   ///< when it left the queue
  util::SimTime finished_at = 0;
  bool success = false;
  bool replica_registered = false;
  std::uint32_t attempts = 1;
  /// Terminal-outcome attribution: kNone on clean success, otherwise
  /// why the transfer failed (or completed without a replica).
  TransferError error = TransferError::kNone;

  [[nodiscard]] double throughput_bps() const noexcept {
    const double secs = util::to_seconds(finished_at - started_at);
    return secs > 0.0 ? static_cast<double>(size_bytes) / secs : 0.0;
  }
  [[nodiscard]] bool is_local() const noexcept { return src == dst; }
};

class TransferEngine {
 public:
  struct Params {
    double failure_prob = 0.01;        ///< per-attempt abort probability
    std::uint32_t max_attempts = 2;
    double stall_prob = 0.06;          ///< per-attempt stall probability
    /// Stall severity: the rate multiplier is drawn log-uniformly from
    /// [stall_factor_min, stall_factor_max].  The deep end of the range
    /// produces transfers that outlive the staging watchdog and span
    /// into execution (Fig. 11).
    double stall_factor_min = 0.0005;
    double stall_factor_max = 0.15;
    double per_stream_cap_bps = 700e6; ///< single-stream protocol limit
    double registration_failure_prob = 0.008;
    util::SimDuration rerate_interval = util::minutes(5);

    /// --- self-healing (all default-off: the legacy instant same-queue
    /// requeue and its RNG stream are preserved bit-for-bit) ----------
    /// Base delay before a failed attempt re-enters the queue; doubles
    /// per attempt up to retry_backoff_max.  0 keeps the legacy
    /// synchronous requeue.
    util::SimDuration retry_backoff_base = 0;
    util::SimDuration retry_backoff_max = util::minutes(30);
    /// +/- fraction of deterministic per-(transfer, attempt) jitter on
    /// the backoff delay (hash-derived, never drawn from the RNG stream).
    double retry_jitter = 0.25;
    /// Per-link circuit breaker: after breaker_threshold consecutive
    /// failed attempts the link stops admitting work for
    /// breaker_cooldown, then lets a single half-open probe through.
    bool breaker_enabled = false;
    std::uint32_t breaker_threshold = 4;
    util::SimDuration breaker_cooldown = util::minutes(10);
    /// Re-resolve the source replica via ReplicaSelector when the
    /// current source link is faulted or its breaker is open (requires
    /// enable_alternate_sources()).
    bool alternate_source_retry = false;
    /// Re-check cadence for a held-back queue when no wake time (window
    /// end, breaker cooldown) is known.
    util::SimDuration blocked_poll = util::minutes(2);
  };

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;  ///< terminal failures (retries exhausted)
    std::uint64_t retries = 0;
    std::uint64_t registration_failures = 0;
    std::uint64_t quota_rejections = 0;
    std::uint64_t bytes_moved = 0;
    std::uint64_t breaker_opens = 0;      ///< closed/half-open -> open
    std::uint64_t alt_source_retries = 0; ///< attempts moved to a new source
    std::uint64_t backoff_delays = 0;     ///< retries held back by backoff
  };

  TransferEngine(sim::Scheduler& scheduler, const grid::Topology& topology,
                 ReplicaCatalog& replicas, util::Rng rng, Params params);
  /// Default-parameter convenience (defined out of line: in-class `= {}`
  /// would need Params' NSDMIs before the enclosing class is complete).
  TransferEngine(sim::Scheduler& scheduler, const grid::Topology& topology,
                 ReplicaCatalog& replicas, util::Rng rng);

  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;
  ~TransferEngine();

  /// Queues the transfer; returns its id.  Completion is reported through
  /// the request's on_complete and then the engine-wide sink.
  std::uint64_t submit(TransferRequest request);

  /// Engine-wide completion sink (the telemetry recorder).
  void set_sink(std::function<void(const TransferOutcome&)> sink) {
    sink_ = std::move(sink);
  }

  /// Wires the fault injector in: admission consults its link/site
  /// state, brownouts scale link capacity, storage outages fail replica
  /// registration, and the engine subscribes to transitions so active
  /// attempts on a blacked-out link abort at window begin.
  void set_injector(fault::Injector& injector);

  /// Enables alternate-source resolution (Params::alternate_source_retry)
  /// by giving the engine a ReplicaSelector over `rses`.
  void enable_alternate_sources(const RseRegistry& rses);

  /// Links whose circuit breaker is currently open or probing.
  [[nodiscard]] std::size_t open_breakers() const noexcept {
    return open_breakers_;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }

  /// Order-independent-of-rehash fingerprint of the engine's mutable
  /// state: per-link breaker/backoff/queue state and every in-flight
  /// attempt's progress, hashed over links sorted by (src, dst).  Two
  /// deterministic runs of the same campaign agree at equal sim times;
  /// scenario::Checkpoint uses this to prove a resumed run re-reached
  /// the checkpointed state.
  [[nodiscard]] std::uint64_t state_digest() const;

  /// Point-in-time view of one link's load, for the periodic sampler.
  struct LinkProbe {
    grid::LinkKey key{};
    std::uint32_t active = 0;          ///< transfers holding a slot
    std::uint32_t queued = 0;          ///< transfers waiting for a slot
    std::uint64_t bytes_in_flight = 0; ///< remaining bytes of active ones
    double rate_bps = 0.0;             ///< summed assigned rates
  };
  /// Links with any current activity, sorted by (src, dst) so sampled
  /// output is deterministic.  Read-only; active-transfer byte progress
  /// is advanced to the probe instant.
  [[nodiscard]] std::vector<LinkProbe> probe_links() const;

 private:
  struct Active;
  struct LinkState;

  LinkState& link_state(grid::SiteId src, grid::SiteId dst);
  void try_start(LinkState& ls);
  void start_one(LinkState& ls);
  void update_rates(LinkState& ls);
  void complete(LinkState& ls, Active* active);
  void finalize(std::unique_ptr<Active> active, bool success);
  void schedule_rerate(LinkState& ls);
  /// Whether the link may start another transfer right now (fault
  /// windows, breaker state); advances an expired open breaker to
  /// half-open as a side effect.
  bool admits(LinkState& ls);
  /// A queue held back by a fault window or breaker: reroute what can
  /// move to an alternate source, arm a wake-up for the rest.
  void handle_blocked(LinkState& ls);
  /// Moves a backoff-parked transfer back into the pending queue.
  void release_delayed(LinkState& ls, Active* raw);
  /// Exponential backoff with deterministic per-(id, attempt) jitter;
  /// 0 when backoff is disabled.
  [[nodiscard]] util::SimDuration backoff_delay(std::uint64_t id,
                                                std::uint32_t attempt) const;
  void breaker_on_result(LinkState& ls, bool attempt_failed);
  /// Re-resolves the source replica away from the current one; on
  /// success rewrites the request's src and returns the new link.
  LinkState* reroute_target(Active& active);
  void on_fault(const fault::FaultWindow& window, bool begin);

  sim::Scheduler& scheduler_;
  const grid::Topology& topology_;
  ReplicaCatalog& replicas_;
  util::Rng rng_;
  Params params_;
  Stats stats_;
  std::uint64_t next_id_ = 1;
  std::size_t in_flight_ = 0;
  std::size_t open_breakers_ = 0;
  std::function<void(const TransferOutcome&)> sink_;
  const fault::Injector* injector_ = nullptr;
  const RseRegistry* rses_ = nullptr;
  std::optional<ReplicaSelector> selector_;
  std::unordered_map<grid::LinkKey, std::unique_ptr<LinkState>,
                     grid::LinkKeyHash>
      links_;
};

}  // namespace pandarus::dms
