// Rucio Storage Elements (paper §2.2): logical storage endpoints.
// Each site hosts one DISK RSE; Tier-0/Tier-1 sites additionally host a
// TAPE RSE.  Tape staging (TAPE -> DISK at the same site) is the main
// producer of the huge *local* transfer volumes on the Fig. 3 diagonal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/site.hpp"

namespace pandarus::dms {

using RseId = std::uint32_t;
inline constexpr RseId kNoRse = 0xFFFFFFFFu;

enum class RseKind : std::uint8_t { kDisk = 0, kTape = 1 };

struct Rse {
  RseId id = kNoRse;
  std::string name;  ///< e.g. "CERN-PROD_DATADISK"
  grid::SiteId site = grid::kUnknownSite;
  RseKind kind = RseKind::kDisk;
  std::uint64_t capacity_bytes = 0;
  std::uint64_t used_bytes = 0;
};

/// Registry of RSEs with site-indexed lookup.
class RseRegistry {
 public:
  RseId add(Rse rse);

  [[nodiscard]] const Rse& rse(RseId id) const { return rses_.at(id); }
  [[nodiscard]] Rse& rse_mutable(RseId id) { return rses_.at(id); }
  [[nodiscard]] std::size_t count() const noexcept { return rses_.size(); }

  /// The site's DISK RSE, or kNoRse when the site has none.
  [[nodiscard]] RseId disk_at(grid::SiteId site) const;
  /// The site's TAPE RSE, or kNoRse.
  [[nodiscard]] RseId tape_at(grid::SiteId site) const;

  [[nodiscard]] const std::vector<Rse>& all() const noexcept { return rses_; }

 private:
  std::vector<Rse> rses_;
  std::vector<RseId> disk_by_site_;  // indexed by SiteId
  std::vector<RseId> tape_by_site_;
};

}  // namespace pandarus::dms
