#include "dms/rse.hpp"

namespace pandarus::dms {

RseId RseRegistry::add(Rse rse) {
  const auto id = static_cast<RseId>(rses_.size());
  rse.id = id;
  const grid::SiteId site = rse.site;
  if (site != grid::kUnknownSite) {
    auto& index = rse.kind == RseKind::kDisk ? disk_by_site_ : tape_by_site_;
    if (index.size() <= site) index.resize(site + 1, kNoRse);
    index[site] = id;
  }
  rses_.push_back(std::move(rse));
  return id;
}

RseId RseRegistry::disk_at(grid::SiteId site) const {
  if (site == grid::kUnknownSite || site >= disk_by_site_.size()) return kNoRse;
  return disk_by_site_[site];
}

RseId RseRegistry::tape_at(grid::SiteId site) const {
  if (site == grid::kUnknownSite || site >= tape_by_site_.size()) return kNoRse;
  return tape_by_site_[site];
}

}  // namespace pandarus::dms
