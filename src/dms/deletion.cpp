#include "dms/deletion.hpp"

#include "obs/event_log.hpp"

namespace pandarus::dms {

DeletionDaemon::DeletionDaemon(sim::Scheduler& scheduler,
                               const FileCatalog& catalog,
                               ReplicaCatalog& replicas,
                               const RseRegistry& rses, util::Rng rng,
                               Params params)
    : scheduler_(scheduler),
      catalog_(catalog),
      replicas_(replicas),
      rses_(rses),
      rng_(rng),
      params_(params) {}

std::uint32_t DeletionDaemon::sweep_once() {
  ++stats_.sweeps;
  const std::uint64_t replicas_before = stats_.replicas_deleted;
  const std::uint64_t bytes_before = stats_.bytes_deleted;
  std::uint32_t expired = 0;
  for (DatasetId ds : transient_) {
    if (!rng_.bernoulli(params_.expiry_prob)) continue;
    bool any = false;
    for (FileId f : catalog_.files_of(ds)) {
      // Copy: remove_replica mutates the list we iterate.
      const std::vector<RseId> held(replicas_.replicas(f).begin(),
                                    replicas_.replicas(f).end());
      for (RseId r : held) {
        if (rses_.rse(r).kind != RseKind::kDisk) continue;
        if (replicas_.remove_replica(f, r)) {
          any = true;
          ++stats_.replicas_deleted;
          stats_.bytes_deleted += catalog_.file(f).size_bytes;
        }
      }
    }
    if (any) {
      ++expired;
      ++stats_.datasets_expired;
    }
  }
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("deletion_sweep", scheduler_.now(),
                         static_cast<std::int64_t>(stats_.sweeps))
                  .field("expired", expired)
                  .field("replicas_deleted",
                         stats_.replicas_deleted - replicas_before)
                  .field("bytes_deleted", stats_.bytes_deleted - bytes_before));
  }
  return expired;
}

void DeletionDaemon::start(util::SimTime until) {
  const util::SimTime next = scheduler_.now() + params_.sweep_interval;
  if (next >= until) return;
  scheduler_.schedule_at(next, [this, until] {
    sweep_once();
    start(until);
  });
}

}  // namespace pandarus::dms
