#include "dms/transfer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "obs/event_log.hpp"
#include "obs/flow.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace pandarus::dms {
namespace {

/// obs mirrors of the engine's Stats plus link-level churn, resolved
/// once per process and shared by every TransferEngine instance.
struct EngineMetrics {
  obs::Counter& submitted = obs::Registry::global().counter(
      "pandarus_dms_transfers_submitted_total", "Transfer requests queued");
  obs::Counter& completed = obs::Registry::global().counter(
      "pandarus_dms_transfers_completed_total",
      "Transfers finished successfully");
  obs::Counter& failed = obs::Registry::global().counter(
      "pandarus_dms_transfers_failed_total",
      "Transfers terminally failed (retries exhausted)");
  obs::Counter& retries = obs::Registry::global().counter(
      "pandarus_dms_transfer_retries_total", "Failed attempts requeued");
  obs::Counter& bytes_moved = obs::Registry::global().counter(
      "pandarus_dms_bytes_moved_total", "Payload bytes of completed transfers");
  obs::Counter& link_rerates = obs::Registry::global().counter(
      "pandarus_dms_link_rerates_total",
      "Per-link fair-share rate re-evaluations");
  obs::Counter& reschedules = obs::Registry::global().counter(
      "pandarus_dms_transfer_reschedules_total",
      "Completion events moved because link sharing changed");
  obs::Gauge& in_flight = obs::Registry::global().gauge(
      "pandarus_dms_transfers_in_flight",
      "Transfers submitted but not yet finalized");
  obs::Counter& breaker_opens = obs::Registry::global().counter(
      "pandarus_dms_breaker_opens_total",
      "Circuit-breaker transitions to the open state");
  obs::Gauge& breakers_open = obs::Registry::global().gauge(
      "pandarus_dms_breakers_open",
      "Links with an open (or probing) circuit breaker");
  obs::Counter& alt_source = obs::Registry::global().counter(
      "pandarus_dms_alt_source_retries_total",
      "Transfers re-routed to an alternate source replica");
  obs::Counter& backoffs = obs::Registry::global().counter(
      "pandarus_dms_backoff_delays_total",
      "Retries held back by exponential backoff");

  static EngineMetrics& get() {
    static EngineMetrics metrics;
    return metrics;
  }
};

std::int64_t link_entity(grid::SiteId src, grid::SiteId dst) noexcept {
  return static_cast<std::int64_t>((static_cast<std::uint64_t>(src) << 32) |
                                   dst);
}

}  // namespace

// One transfer occupying a slot on a link.
struct TransferEngine::Active {
  TransferRequest request;
  std::uint64_t id = 0;
  util::SimTime submitted_at = 0;
  util::SimTime started_at = 0;
  std::uint32_t attempt = 1;
  bool stalled = false;
  double stall_factor = 1.0;
  bool doomed = false;  ///< this attempt will abort at its "finish" time
  /// A fault window contributed to this transfer's failure (service
  /// brownout raised the abort draw, or a blackout/outage killed an
  /// in-flight attempt).
  bool fault_tainted = false;
  /// The doomed attempt must resolve immediately (blackout abort), not
  /// at its natural finish time.
  bool abort_immediately = false;
  bool breaker_rejected = false;

  double bytes_done = 0.0;
  double rate_bps = 0.0;
  util::SimTime last_update = 0;
  sim::Scheduler::EventHandle finish_event;
};

struct TransferEngine::LinkState {
  grid::LinkKey key;
  std::vector<std::unique_ptr<Active>> active;
  std::deque<std::unique_ptr<Active>> pending;
  /// Backoff holding pen: retries waiting out their delay.  Owned here
  /// (not by the scheduler callback) so nothing leaks if the scheduler
  /// is torn down with events still queued.
  std::vector<std::unique_ptr<Active>> delayed;
  sim::Scheduler::EventHandle rerate_event;
  sim::Scheduler::EventHandle wake_event;

  enum class Breaker : std::uint8_t { kClosed, kOpen, kHalfOpen };
  Breaker breaker = Breaker::kClosed;
  std::uint32_t consecutive_failures = 0;
  util::SimTime open_until = 0;
};

TransferEngine::TransferEngine(sim::Scheduler& scheduler,
                               const grid::Topology& topology,
                               ReplicaCatalog& replicas, util::Rng rng,
                               Params params)
    : scheduler_(scheduler),
      topology_(topology),
      replicas_(replicas),
      rng_(rng),
      params_(params) {}

TransferEngine::TransferEngine(sim::Scheduler& scheduler,
                               const grid::Topology& topology,
                               ReplicaCatalog& replicas, util::Rng rng)
    : TransferEngine(scheduler, topology, replicas, rng, Params{}) {}

TransferEngine::~TransferEngine() = default;

void TransferEngine::set_injector(fault::Injector& injector) {
  injector_ = &injector;
  injector.subscribe([this](const fault::FaultWindow& window, bool begin) {
    on_fault(window, begin);
  });
}

void TransferEngine::enable_alternate_sources(const RseRegistry& rses) {
  rses_ = &rses;
  selector_.emplace(topology_, rses, replicas_);
}

TransferEngine::LinkState& TransferEngine::link_state(grid::SiteId src,
                                                      grid::SiteId dst) {
  const grid::LinkKey key{src, dst};
  auto it = links_.find(key);
  if (it == links_.end()) {
    auto ls = std::make_unique<LinkState>();
    ls->key = key;
    it = links_.emplace(key, std::move(ls)).first;
  }
  return *it->second;
}

std::uint64_t TransferEngine::submit(TransferRequest request) {
  assert(request.size_bytes > 0);
  auto active = std::make_unique<Active>();
  active->request = std::move(request);
  active->id = next_id_++;
  active->submitted_at = scheduler_.now();
  const std::uint64_t id = active->id;

  LinkState& ls = link_state(active->request.src, active->request.dst);
  ls.pending.push_back(std::move(active));
  ++stats_.submitted;
  ++in_flight_;
  EngineMetrics::get().submitted.inc();
  EngineMetrics::get().in_flight.add(1);
  if (obs::EventLog* log = obs::EventLog::installed()) {
    const TransferRequest& req = ls.pending.back()->request;
    log->emit(obs::Event("transfer_submit", scheduler_.now(),
                         static_cast<std::int64_t>(id))
                  .field("file", static_cast<std::uint64_t>(req.file))
                  .field("bytes", req.size_bytes)
                  .field("src", req.src)
                  .field("dst", req.dst)
                  .field("activity", static_cast<std::int32_t>(req.activity))
                  .field("task", req.jeditaskid));
  }
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    const TransferRequest& req = ls.pending.back()->request;
    flows->transfer_submitted(id, static_cast<std::int64_t>(req.file),
                              req.src, req.dst, scheduler_.now());
  }
  try_start(ls);
  return id;
}

bool TransferEngine::admits(LinkState& ls) {
  if (injector_ != nullptr &&
      injector_->link_blocked(ls.key.src, ls.key.dst)) {
    return false;
  }
  if (!params_.breaker_enabled) return true;
  if (ls.breaker == LinkState::Breaker::kOpen &&
      scheduler_.now() >= ls.open_until) {
    ls.breaker = LinkState::Breaker::kHalfOpen;  // cooldown over: probe
  }
  if (ls.breaker == LinkState::Breaker::kOpen) return false;
  if (ls.breaker == LinkState::Breaker::kHalfOpen && !ls.active.empty()) {
    return false;  // the half-open probe holds the only admission
  }
  return true;
}

void TransferEngine::try_start(LinkState& ls) {
  const grid::NetworkLink& link = topology_.link(ls.key.src, ls.key.dst);
  bool started = false;
  while (!ls.pending.empty() && ls.active.size() < link.max_active &&
         admits(ls)) {
    start_one(ls);
    started = true;
  }
  if (started) update_rates(ls);
  if (!ls.pending.empty() && ls.active.size() < link.max_active) {
    // Slots are free but admission said no: a fault window or the
    // breaker is holding the queue back.
    handle_blocked(ls);
  }
}

void TransferEngine::handle_blocked(LinkState& ls) {
  // First chance: re-route queued transfers whose file has a replica on
  // a healthier link.
  if (params_.alternate_source_retry && selector_.has_value() &&
      !ls.pending.empty()) {
    std::deque<std::unique_ptr<Active>> kept;
    while (!ls.pending.empty()) {
      std::unique_ptr<Active> a = std::move(ls.pending.front());
      ls.pending.pop_front();
      if (LinkState* target = reroute_target(*a)) {
        target->pending.push_back(std::move(a));
        try_start(*target);
      } else {
        kept.push_back(std::move(a));
      }
    }
    ls.pending = std::move(kept);
  }
  if (ls.pending.empty() || ls.wake_event.pending()) return;

  // Wake when the blockage can actually lift: the blocking windows'
  // end, the breaker cooldown, or a plain poll when neither is known.
  const util::SimTime now = scheduler_.now();
  util::SimTime at = now;
  if (injector_ != nullptr) {
    at = std::max(at, injector_->blocked_until(ls.key.src, ls.key.dst));
  }
  if (params_.breaker_enabled && ls.breaker == LinkState::Breaker::kOpen) {
    at = std::max(at, ls.open_until);
  }
  if (at <= now) at = now + params_.blocked_poll;
  ls.wake_event = scheduler_.schedule_at(at, [this, &ls] {
    ls.wake_event = {};
    try_start(ls);
  });
}

TransferEngine::LinkState* TransferEngine::reroute_target(Active& active) {
  const RseId alt = selector_->select_source(
      active.request.file, active.request.dst, scheduler_.now(),
      /*exclude_site=*/active.request.src);
  if (alt == kNoRse) return nullptr;
  const grid::SiteId src = rses_->rse(alt).site;
  if (src == active.request.src) return nullptr;
  LinkState& target = link_state(src, active.request.dst);
  if (injector_ != nullptr && injector_->link_blocked(src, active.request.dst)) {
    return nullptr;
  }
  if (params_.breaker_enabled &&
      target.breaker == LinkState::Breaker::kOpen &&
      scheduler_.now() < target.open_until) {
    return nullptr;
  }
  ++stats_.alt_source_retries;
  EngineMetrics::get().alt_source.inc();
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("transfer_reroute", scheduler_.now(),
                         static_cast<std::int64_t>(active.id))
                  .field("old_src", active.request.src)
                  .field("new_src", src)
                  .field("dst", active.request.dst)
                  .field("attempt", active.attempt));
  }
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->transfer_rerouted(active.id);
  }
  active.request.src = src;
  return &target;
}

void TransferEngine::start_one(LinkState& ls) {
  auto active = std::move(ls.pending.front());
  ls.pending.pop_front();

  const grid::NetworkLink& link = topology_.link(ls.key.src, ls.key.dst);
  // Protocol setup latency delays the effective start a little.
  active->started_at =
      scheduler_.now() + static_cast<util::SimDuration>(link.latency_ms);
  active->last_update = active->started_at;
  active->bytes_done = 0.0;
  active->stalled = rng_.bernoulli(params_.stall_prob);
  if (active->stalled) {
    // Log-uniform severity: most stalls are mild, a tail is crippling.
    const double lo = std::log(params_.stall_factor_min);
    const double hi = std::log(params_.stall_factor_max);
    active->stall_factor = std::exp(rng_.uniform(lo, hi));
  }
  double abort_prob = params_.failure_prob;
  const double boost = injector_ != nullptr ? injector_->abort_boost() : 0.0;
  abort_prob += boost;
  active->doomed = rng_.bernoulli(abort_prob);
  if (active->doomed && boost > 0.0) active->fault_tainted = true;
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("transfer_start", scheduler_.now(),
                         static_cast<std::int64_t>(active->id))
                  .field("src", ls.key.src)
                  .field("dst", ls.key.dst)
                  .field("attempt", active->attempt)
                  .field("effective_start", active->started_at));
  }
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->attempt_start(active->id, active->attempt, ls.key.src, ls.key.dst,
                         scheduler_.now());
  }
  ls.active.push_back(std::move(active));
  schedule_rerate(ls);
}

void TransferEngine::update_rates(LinkState& ls) {
  if (ls.active.empty()) {
    ls.rerate_event.cancel();
    return;
  }
  const util::SimTime now = scheduler_.now();
  const grid::NetworkLink& link = topology_.link(ls.key.src, ls.key.dst);
  const double fault_factor =
      injector_ != nullptr
          ? injector_->link_capacity_factor(ls.key.src, ls.key.dst)
          : 1.0;
  const double capacity =
      std::max(link.effective_capacity(now, fault_factor), 1e3);
  const double fair_share =
      capacity / static_cast<double>(ls.active.size());
  EngineMetrics::get().link_rerates.inc();
  EngineMetrics::get().reschedules.inc(ls.active.size());

  for (auto& active : ls.active) {
    // Account progress since the last rate change.
    if (now > active->last_update && active->rate_bps > 0.0) {
      active->bytes_done += active->rate_bps *
                            util::to_seconds(now - active->last_update);
    }
    active->last_update = std::max(now, active->started_at);

    double rate = std::min(fair_share, params_.per_stream_cap_bps);
    if (active->stalled) rate *= active->stall_factor;
    active->rate_bps = std::max(rate, 1e3);

    const double remaining =
        std::max(0.0, static_cast<double>(active->request.size_bytes) -
                          active->bytes_done);
    const auto eta = static_cast<util::SimDuration>(
        std::ceil(remaining / active->rate_bps * 1000.0));
    active->finish_event.cancel();
    Active* raw = active.get();
    const util::SimTime finish_at =
        active->abort_immediately
            ? now
            : active->last_update + std::max<util::SimDuration>(eta, 1);
    active->finish_event =
        scheduler_.schedule_at(finish_at, [this, &ls, raw] {
          complete(ls, raw);
        });
  }
}

void TransferEngine::schedule_rerate(LinkState& ls) {
  if (ls.rerate_event.pending()) return;
  ls.rerate_event = scheduler_.schedule_after(params_.rerate_interval,
                                              [this, &ls] {
                                                ls.rerate_event = {};
                                                update_rates(ls);
                                                if (!ls.active.empty())
                                                  schedule_rerate(ls);
                                              });
}

void TransferEngine::breaker_on_result(LinkState& ls, bool attempt_failed) {
  if (attempt_failed) {
    ++ls.consecutive_failures;
    const bool trips =
        ls.breaker == LinkState::Breaker::kHalfOpen ||
        (ls.breaker == LinkState::Breaker::kClosed &&
         ls.consecutive_failures >= params_.breaker_threshold);
    if (!trips) return;
    if (ls.breaker == LinkState::Breaker::kClosed) {
      ++open_breakers_;
      EngineMetrics::get().breakers_open.add(1);
    }
    ls.breaker = LinkState::Breaker::kOpen;
    ls.open_until = scheduler_.now() + params_.breaker_cooldown;
    ++stats_.breaker_opens;
    EngineMetrics::get().breaker_opens.inc();
    util::log_warning() << "circuit breaker open: link " << ls.key.src << "->"
                        << ls.key.dst << " after " << ls.consecutive_failures
                        << " consecutive failed attempts";
    if (obs::EventLog* log = obs::EventLog::installed()) {
      log->emit(obs::Event("breaker_state", scheduler_.now(),
                           link_entity(ls.key.src, ls.key.dst))
                    .field("src", ls.key.src)
                    .field("dst", ls.key.dst)
                    .field("state", "open")
                    .field("consecutive_failures", ls.consecutive_failures)
                    .field("open_until", ls.open_until));
    }
    if (obs::HealthEngine* health = obs::HealthEngine::installed()) {
      health->on_breaker(scheduler_.now(), ls.key.src, ls.key.dst,
                         /*open=*/true);
    }
  } else {
    ls.consecutive_failures = 0;
    if (ls.breaker == LinkState::Breaker::kClosed) return;
    // A success on an open or probing link is evidence it recovered.
    ls.breaker = LinkState::Breaker::kClosed;
    if (open_breakers_ > 0) --open_breakers_;
    EngineMetrics::get().breakers_open.add(-1);
    if (obs::EventLog* log = obs::EventLog::installed()) {
      log->emit(obs::Event("breaker_state", scheduler_.now(),
                           link_entity(ls.key.src, ls.key.dst))
                    .field("src", ls.key.src)
                    .field("dst", ls.key.dst)
                    .field("state", "closed")
                    .field("consecutive_failures", std::uint32_t{0})
                    .field("open_until", util::SimTime{0}));
    }
    if (obs::HealthEngine* health = obs::HealthEngine::installed()) {
      health->on_breaker(scheduler_.now(), ls.key.src, ls.key.dst,
                         /*open=*/false);
    }
  }
}

util::SimDuration TransferEngine::backoff_delay(std::uint64_t id,
                                                std::uint32_t attempt) const {
  if (params_.retry_backoff_base <= 0) return 0;
  // `attempt` is the upcoming attempt number (>= 2): the first retry
  // waits one base interval, doubling from there.
  const double base =
      static_cast<double>(params_.retry_backoff_base) *
      std::pow(2.0, static_cast<double>(attempt) - 2.0);
  double delay =
      std::min(base, static_cast<double>(params_.retry_backoff_max));
  // Deterministic jitter from a stateless hash: no RNG stream is
  // consumed, so enabling backoff never perturbs unrelated draws.
  const double u = util::hash_unit(util::hash_mix(0xb0ffu, id, attempt));
  delay *= 1.0 + params_.retry_jitter * (2.0 * u - 1.0);
  return std::max<util::SimDuration>(
      1, static_cast<util::SimDuration>(std::llround(delay)));
}

void TransferEngine::release_delayed(LinkState& ls, Active* raw) {
  auto it = std::find_if(ls.delayed.begin(), ls.delayed.end(),
                         [raw](const auto& p) { return p.get() == raw; });
  if (it == ls.delayed.end()) return;
  std::unique_ptr<Active> active = std::move(*it);
  ls.delayed.erase(it);
  ls.pending.push_back(std::move(active));
  try_start(ls);
}

void TransferEngine::complete(LinkState& ls, Active* active) {
  // Extract the finished transfer from the active set.
  auto it = std::find_if(ls.active.begin(), ls.active.end(),
                         [active](const auto& p) { return p.get() == active; });
  assert(it != ls.active.end());
  std::unique_ptr<Active> done = std::move(*it);
  ls.active.erase(it);

  const bool attempt_failed = done->doomed;
  if (params_.breaker_enabled) breaker_on_result(ls, attempt_failed);

  if (attempt_failed && done->attempt < params_.max_attempts) {
    // Retry: requeue the transfer with attempt bumped, possibly on a
    // different source link and after a backoff delay.
    ++stats_.retries;
    EngineMetrics::get().retries.inc();
    LinkState* target = &ls;
    const bool degraded =
        (injector_ != nullptr &&
         injector_->link_blocked(ls.key.src, ls.key.dst)) ||
        (params_.breaker_enabled &&
         ls.breaker != LinkState::Breaker::kClosed);
    if (degraded && params_.alternate_source_retry && selector_.has_value()) {
      if (LinkState* alt = reroute_target(*done)) target = alt;
    }
    const util::SimDuration delay =
        backoff_delay(done->id, done->attempt + 1);
    if (obs::EventLog* log = obs::EventLog::installed()) {
      log->emit(obs::Event("transfer_retry", scheduler_.now(),
                           static_cast<std::int64_t>(done->id))
                    .field("failed_attempt", done->attempt)
                    .field("src", ls.key.src)
                    .field("dst", ls.key.dst)
                    .field("next_src", target->key.src)
                    .field("backoff_ms", delay));
    }
    if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
      flows->attempt_end(done->id, scheduler_.now(), /*success=*/false,
                         /*terminal=*/false, /*registered=*/false);
    }
    done->attempt += 1;
    done->finish_event = {};
    done->rate_bps = 0.0;
    done->doomed = false;
    done->abort_immediately = false;
    if (delay <= 0) {
      target->pending.push_back(std::move(done));
      if (target != &ls) try_start(*target);
    } else {
      ++stats_.backoff_delays;
      EngineMetrics::get().backoffs.inc();
      Active* raw = done.get();
      target->delayed.push_back(std::move(done));
      scheduler_.schedule_after(delay, [this, target, raw] {
        release_delayed(*target, raw);
      });
    }
  } else {
    if (attempt_failed && params_.breaker_enabled &&
        ls.breaker == LinkState::Breaker::kOpen) {
      done->breaker_rejected = true;
    }
    finalize(std::move(done), !attempt_failed);
  }
  // Freed slot: admit queued work and rebalance the shares.
  try_start(ls);
  update_rates(ls);
}

void TransferEngine::finalize(std::unique_ptr<Active> active, bool success) {
  TransferOutcome outcome;
  outcome.transfer_id = active->id;
  outcome.file = active->request.file;
  outcome.size_bytes = active->request.size_bytes;
  outcome.src = active->request.src;
  outcome.dst = active->request.dst;
  outcome.activity = active->request.activity;
  outcome.jeditaskid = active->request.jeditaskid;
  outcome.pandaid = active->request.pandaid;
  outcome.submitted_at = active->submitted_at;
  outcome.started_at = active->started_at;
  outcome.finished_at = scheduler_.now();
  outcome.success = success;
  outcome.attempts = active->attempt;

  if (success) {
    stats_.bytes_moved += active->request.size_bytes;
    EngineMetrics::get().bytes_moved.inc(active->request.size_bytes);
    bool quota_rejected = false;
    if (active->request.dst_rse != kNoRse) {
      const bool storage_down =
          injector_ != nullptr && injector_->storage_down(active->request.dst);
      if (storage_down) {
        // Clustered lost registrations: the destination's storage
        // endpoint is inside a fault window.
        ++stats_.registration_failures;
        outcome.error = TransferError::kRegistrationFailed;
      } else if (rng_.bernoulli(params_.registration_failure_prob)) {
        ++stats_.registration_failures;
        outcome.error = TransferError::kRegistrationFailed;
      } else if (replicas_.add_replica(active->request.file,
                                       active->request.dst_rse)) {
        outcome.replica_registered = true;
      } else {
        // Destination RSE over quota: the bytes moved but no replica
        // could be registered (it will be garbage-collected) — another
        // source of catalog-unknown copies and re-transfers.
        ++stats_.quota_rejections;
        quota_rejected = true;
        outcome.error = TransferError::kRegistrationFailed;
      }
    }
    // Quota rejections are tallied apart from completions, keeping
    // submitted == completed + failed + quota_rejections an identity.
    if (!quota_rejected) {
      ++stats_.completed;
      EngineMetrics::get().completed.inc();
    }
  } else {
    ++stats_.failed;
    EngineMetrics::get().failed.inc();
    if (active->fault_tainted) {
      outcome.error = TransferError::kFaultWindow;
    } else if (active->breaker_rejected) {
      outcome.error = TransferError::kBreakerRejected;
    } else if (active->stalled) {
      outcome.error = TransferError::kStalledTerminal;
    } else {
      outcome.error = TransferError::kAborted;
    }
  }
  --in_flight_;
  EngineMetrics::get().in_flight.add(-1);

  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event(outcome.success ? "transfer_done" : "transfer_fail",
                         outcome.finished_at,
                         static_cast<std::int64_t>(outcome.transfer_id))
                  .field("bytes", outcome.size_bytes)
                  .field("src", outcome.src)
                  .field("dst", outcome.dst)
                  .field("activity",
                         static_cast<std::int32_t>(outcome.activity))
                  .field("task", outcome.jeditaskid)
                  .field("submitted", outcome.submitted_at)
                  .field("started", outcome.started_at)
                  .field("attempts", outcome.attempts)
                  .field("registered", outcome.replica_registered)
                  .field("error", transfer_error_name(outcome.error)));
  }
  if (obs::HealthEngine* health = obs::HealthEngine::installed()) {
    health->on_transfer_terminal(outcome.finished_at, outcome.success,
                                 transfer_error_name(outcome.error),
                                 outcome.finished_at - outcome.submitted_at);
  }
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->attempt_end(outcome.transfer_id, outcome.finished_at,
                       outcome.success, /*terminal=*/true,
                       outcome.replica_registered);
  }

  if (active->request.on_complete) active->request.on_complete(outcome);
  if (sink_) sink_(outcome);
}

void TransferEngine::on_fault(const fault::FaultWindow& window, bool begin) {
  const bool kills_links =
      window.kind == fault::FaultKind::kSiteOutage ||
      window.kind == fault::FaultKind::kLinkBlackout;
  if (!kills_links) return;

  // Deterministic order over the affected links regardless of hash-map
  // layout.
  std::vector<LinkState*> affected;
  for (auto& [key, ls] : links_) {
    const bool hit =
        window.kind == fault::FaultKind::kLinkBlackout
            ? key == window.link
            : key.src == window.site || key.dst == window.site;
    if (hit) affected.push_back(ls.get());
  }
  std::sort(affected.begin(), affected.end(),
            [](const LinkState* a, const LinkState* b) {
              if (a->key.src != b->key.src) return a->key.src < b->key.src;
              return a->key.dst < b->key.dst;
            });

  if (begin) {
    // Abort in-flight attempts now: the link is gone, not slow.  The
    // retry machinery (backoff, breaker, alternate source) takes over
    // in complete().
    for (LinkState* ls : affected) {
      std::vector<Active*> raws;
      raws.reserve(ls->active.size());
      for (auto& a : ls->active) {
        a->doomed = true;
        a->fault_tainted = true;
        a->abort_immediately = true;
        raws.push_back(a.get());
      }
      for (Active* raw : raws) {
        raw->finish_event.cancel();
        complete(*ls, raw);
      }
    }
  } else {
    // Window over: wake any queue the blockage held back.
    for (LinkState* ls : affected) {
      if (!ls->pending.empty()) try_start(*ls);
    }
  }
}

std::vector<TransferEngine::LinkProbe> TransferEngine::probe_links() const {
  std::vector<LinkProbe> probes;
  probes.reserve(links_.size());
  const util::SimTime now = scheduler_.now();
  for (const auto& [key, ls] : links_) {
    if (ls->active.empty() && ls->pending.empty() && ls->delayed.empty()) {
      continue;
    }
    LinkProbe p;
    p.key = key;
    p.active = static_cast<std::uint32_t>(ls->active.size());
    p.queued =
        static_cast<std::uint32_t>(ls->pending.size() + ls->delayed.size());
    for (const auto& a : ls->active) {
      // Advance byte progress to the probe instant so sampled link
      // series do not under/over-shoot between rerate ticks.
      double bytes_done = a->bytes_done;
      if (now > a->last_update && a->rate_bps > 0.0) {
        bytes_done += a->rate_bps * util::to_seconds(now - a->last_update);
      }
      const double remaining =
          std::max(0.0, static_cast<double>(a->request.size_bytes) -
                            bytes_done);
      p.bytes_in_flight += static_cast<std::uint64_t>(remaining);
      p.rate_bps += a->rate_bps;
    }
    probes.push_back(p);
  }
  std::sort(probes.begin(), probes.end(),
            [](const LinkProbe& a, const LinkProbe& b) {
              if (a.key.src != b.key.src) return a.key.src < b.key.src;
              return a.key.dst < b.key.dst;
            });
  return probes;
}

std::uint64_t TransferEngine::state_digest() const {
  const auto bits = [](double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof b);
    return b;
  };
  std::uint64_t h = util::hash_mix(next_id_, in_flight_, open_breakers_);
  h = util::hash_mix(h, stats_.submitted, stats_.completed);
  h = util::hash_mix(h, stats_.failed, stats_.retries);
  h = util::hash_mix(h, stats_.registration_failures, stats_.quota_rejections);
  h = util::hash_mix(h, stats_.bytes_moved, stats_.breaker_opens);
  h = util::hash_mix(h, stats_.alt_source_retries, stats_.backoff_delays);
  // Sorted by link key: the unordered_map's iteration order depends on
  // rehash history, which two runs need not share.
  std::vector<const LinkState*> links;
  links.reserve(links_.size());
  for (const auto& [key, ls] : links_) links.push_back(ls.get());
  std::sort(links.begin(), links.end(),
            [](const LinkState* a, const LinkState* b) {
              if (a->key.src != b->key.src) return a->key.src < b->key.src;
              return a->key.dst < b->key.dst;
            });
  const auto mix_attempt = [&h, &bits](const Active& a) {
    h = util::hash_mix(h, a.id, a.attempt);
    h = util::hash_mix(h, static_cast<std::uint64_t>(a.submitted_at),
                       bits(a.bytes_done));
    h = util::hash_mix(h, bits(a.rate_bps),
                       static_cast<std::uint64_t>(a.last_update));
  };
  for (const LinkState* ls : links) {
    h = util::hash_mix(
        h, (static_cast<std::uint64_t>(ls->key.src) << 32) | ls->key.dst,
        static_cast<std::uint64_t>(ls->breaker));
    h = util::hash_mix(h, ls->consecutive_failures,
                       static_cast<std::uint64_t>(ls->open_until));
    h = util::hash_mix(h, ls->active.size(),
                       ls->pending.size() + (ls->delayed.size() << 32));
    for (const auto& a : ls->active) mix_attempt(*a);
    for (const auto& a : ls->pending) mix_attempt(*a);
    for (const auto& a : ls->delayed) mix_attempt(*a);
  }
  return h;
}

}  // namespace pandarus::dms
