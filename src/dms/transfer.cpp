#include "dms/transfer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace pandarus::dms {
namespace {

/// obs mirrors of the engine's Stats plus link-level churn, resolved
/// once per process and shared by every TransferEngine instance.
struct EngineMetrics {
  obs::Counter& submitted = obs::Registry::global().counter(
      "pandarus_dms_transfers_submitted_total", "Transfer requests queued");
  obs::Counter& completed = obs::Registry::global().counter(
      "pandarus_dms_transfers_completed_total",
      "Transfers finished successfully");
  obs::Counter& failed = obs::Registry::global().counter(
      "pandarus_dms_transfers_failed_total",
      "Transfers terminally failed (retries exhausted)");
  obs::Counter& retries = obs::Registry::global().counter(
      "pandarus_dms_transfer_retries_total", "Failed attempts requeued");
  obs::Counter& bytes_moved = obs::Registry::global().counter(
      "pandarus_dms_bytes_moved_total", "Payload bytes of completed transfers");
  obs::Counter& link_rerates = obs::Registry::global().counter(
      "pandarus_dms_link_rerates_total",
      "Per-link fair-share rate re-evaluations");
  obs::Counter& reschedules = obs::Registry::global().counter(
      "pandarus_dms_transfer_reschedules_total",
      "Completion events moved because link sharing changed");
  obs::Gauge& in_flight = obs::Registry::global().gauge(
      "pandarus_dms_transfers_in_flight",
      "Transfers submitted but not yet finalized");

  static EngineMetrics& get() {
    static EngineMetrics metrics;
    return metrics;
  }
};

}  // namespace

// One transfer occupying a slot on a link.
struct TransferEngine::Active {
  TransferRequest request;
  std::uint64_t id = 0;
  util::SimTime submitted_at = 0;
  util::SimTime started_at = 0;
  std::uint32_t attempt = 1;
  bool stalled = false;
  double stall_factor = 1.0;
  bool doomed = false;  ///< this attempt will abort at its "finish" time

  double bytes_done = 0.0;
  double rate_bps = 0.0;
  util::SimTime last_update = 0;
  sim::Scheduler::EventHandle finish_event;
};

struct TransferEngine::LinkState {
  grid::LinkKey key;
  std::vector<std::unique_ptr<Active>> active;
  std::deque<std::unique_ptr<Active>> pending;
  sim::Scheduler::EventHandle rerate_event;
};

TransferEngine::TransferEngine(sim::Scheduler& scheduler,
                               const grid::Topology& topology,
                               ReplicaCatalog& replicas, util::Rng rng,
                               Params params)
    : scheduler_(scheduler),
      topology_(topology),
      replicas_(replicas),
      rng_(rng),
      params_(params) {}

TransferEngine::TransferEngine(sim::Scheduler& scheduler,
                               const grid::Topology& topology,
                               ReplicaCatalog& replicas, util::Rng rng)
    : TransferEngine(scheduler, topology, replicas, rng, Params{}) {}

TransferEngine::~TransferEngine() = default;

TransferEngine::LinkState& TransferEngine::link_state(grid::SiteId src,
                                                      grid::SiteId dst) {
  const grid::LinkKey key{src, dst};
  auto it = links_.find(key);
  if (it == links_.end()) {
    auto ls = std::make_unique<LinkState>();
    ls->key = key;
    it = links_.emplace(key, std::move(ls)).first;
  }
  return *it->second;
}

std::uint64_t TransferEngine::submit(TransferRequest request) {
  assert(request.size_bytes > 0);
  auto active = std::make_unique<Active>();
  active->request = std::move(request);
  active->id = next_id_++;
  active->submitted_at = scheduler_.now();
  const std::uint64_t id = active->id;

  LinkState& ls = link_state(active->request.src, active->request.dst);
  ls.pending.push_back(std::move(active));
  ++stats_.submitted;
  ++in_flight_;
  EngineMetrics::get().submitted.inc();
  EngineMetrics::get().in_flight.add(1);
  if (obs::EventLog* log = obs::EventLog::installed()) {
    const TransferRequest& req = ls.pending.back()->request;
    log->emit(obs::Event("transfer_submit", scheduler_.now(),
                         static_cast<std::int64_t>(id))
                  .field("file", static_cast<std::uint64_t>(req.file))
                  .field("bytes", req.size_bytes)
                  .field("src", req.src)
                  .field("dst", req.dst)
                  .field("activity", static_cast<std::int32_t>(req.activity))
                  .field("task", req.jeditaskid));
  }
  try_start(ls);
  return id;
}

void TransferEngine::try_start(LinkState& ls) {
  const grid::NetworkLink& link = topology_.link(ls.key.src, ls.key.dst);
  bool started = false;
  while (!ls.pending.empty() && ls.active.size() < link.max_active) {
    start_one(ls);
    started = true;
  }
  if (started) update_rates(ls);
}

void TransferEngine::start_one(LinkState& ls) {
  auto active = std::move(ls.pending.front());
  ls.pending.pop_front();

  const grid::NetworkLink& link = topology_.link(ls.key.src, ls.key.dst);
  // Protocol setup latency delays the effective start a little.
  active->started_at =
      scheduler_.now() + static_cast<util::SimDuration>(link.latency_ms);
  active->last_update = active->started_at;
  active->bytes_done = 0.0;
  active->stalled = rng_.bernoulli(params_.stall_prob);
  if (active->stalled) {
    // Log-uniform severity: most stalls are mild, a tail is crippling.
    const double lo = std::log(params_.stall_factor_min);
    const double hi = std::log(params_.stall_factor_max);
    active->stall_factor = std::exp(rng_.uniform(lo, hi));
  }
  active->doomed = rng_.bernoulli(params_.failure_prob);
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("transfer_start", scheduler_.now(),
                         static_cast<std::int64_t>(active->id))
                  .field("src", ls.key.src)
                  .field("dst", ls.key.dst)
                  .field("attempt", active->attempt)
                  .field("effective_start", active->started_at));
  }
  ls.active.push_back(std::move(active));
  schedule_rerate(ls);
}

void TransferEngine::update_rates(LinkState& ls) {
  if (ls.active.empty()) {
    ls.rerate_event.cancel();
    return;
  }
  const util::SimTime now = scheduler_.now();
  const grid::NetworkLink& link = topology_.link(ls.key.src, ls.key.dst);
  const double capacity = std::max(link.effective_capacity(now), 1e3);
  const double fair_share =
      capacity / static_cast<double>(ls.active.size());
  EngineMetrics::get().link_rerates.inc();
  EngineMetrics::get().reschedules.inc(ls.active.size());

  for (auto& active : ls.active) {
    // Account progress since the last rate change.
    if (now > active->last_update && active->rate_bps > 0.0) {
      active->bytes_done += active->rate_bps *
                            util::to_seconds(now - active->last_update);
    }
    active->last_update = std::max(now, active->started_at);

    double rate = std::min(fair_share, params_.per_stream_cap_bps);
    if (active->stalled) rate *= active->stall_factor;
    active->rate_bps = std::max(rate, 1e3);

    const double remaining =
        std::max(0.0, static_cast<double>(active->request.size_bytes) -
                          active->bytes_done);
    const auto eta = static_cast<util::SimDuration>(
        std::ceil(remaining / active->rate_bps * 1000.0));
    active->finish_event.cancel();
    Active* raw = active.get();
    active->finish_event = scheduler_.schedule_at(
        active->last_update + std::max<util::SimDuration>(eta, 1),
        [this, &ls, raw] { complete(ls, raw); });
  }
}

void TransferEngine::schedule_rerate(LinkState& ls) {
  if (ls.rerate_event.pending()) return;
  ls.rerate_event = scheduler_.schedule_after(params_.rerate_interval,
                                              [this, &ls] {
                                                ls.rerate_event = {};
                                                update_rates(ls);
                                                if (!ls.active.empty())
                                                  schedule_rerate(ls);
                                              });
}

void TransferEngine::complete(LinkState& ls, Active* active) {
  // Extract the finished transfer from the active set.
  auto it = std::find_if(ls.active.begin(), ls.active.end(),
                         [active](const auto& p) { return p.get() == active; });
  assert(it != ls.active.end());
  std::unique_ptr<Active> done = std::move(*it);
  ls.active.erase(it);

  const bool attempt_failed = done->doomed;
  if (attempt_failed && done->attempt < params_.max_attempts) {
    // Retry: requeue the transfer with attempt bumped.
    ++stats_.retries;
    EngineMetrics::get().retries.inc();
    if (obs::EventLog* log = obs::EventLog::installed()) {
      log->emit(obs::Event("transfer_retry", scheduler_.now(),
                           static_cast<std::int64_t>(done->id))
                    .field("failed_attempt", done->attempt)
                    .field("src", ls.key.src)
                    .field("dst", ls.key.dst));
    }
    done->attempt += 1;
    done->finish_event = {};
    done->rate_bps = 0.0;
    ls.pending.push_back(std::move(done));
  } else {
    finalize(std::move(done), !attempt_failed);
  }
  // Freed slot: admit queued work and rebalance the shares.
  try_start(ls);
  update_rates(ls);
}

void TransferEngine::finalize(std::unique_ptr<Active> active, bool success) {
  TransferOutcome outcome;
  outcome.transfer_id = active->id;
  outcome.file = active->request.file;
  outcome.size_bytes = active->request.size_bytes;
  outcome.src = active->request.src;
  outcome.dst = active->request.dst;
  outcome.activity = active->request.activity;
  outcome.jeditaskid = active->request.jeditaskid;
  outcome.pandaid = active->request.pandaid;
  outcome.submitted_at = active->submitted_at;
  outcome.started_at = active->started_at;
  outcome.finished_at = scheduler_.now();
  outcome.success = success;
  outcome.attempts = active->attempt;

  if (success) {
    ++stats_.completed;
    stats_.bytes_moved += active->request.size_bytes;
    EngineMetrics::get().completed.inc();
    EngineMetrics::get().bytes_moved.inc(active->request.size_bytes);
    if (active->request.dst_rse != kNoRse) {
      if (rng_.bernoulli(params_.registration_failure_prob)) {
        ++stats_.registration_failures;
      } else if (replicas_.add_replica(active->request.file,
                                       active->request.dst_rse)) {
        outcome.replica_registered = true;
      } else {
        // Destination RSE over quota: the bytes moved but no replica
        // could be registered (it will be garbage-collected) — another
        // source of catalog-unknown copies and re-transfers.
        ++stats_.quota_rejections;
      }
    }
  } else {
    ++stats_.failed;
    EngineMetrics::get().failed.inc();
  }
  --in_flight_;
  EngineMetrics::get().in_flight.add(-1);

  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event(outcome.success ? "transfer_done" : "transfer_fail",
                         outcome.finished_at,
                         static_cast<std::int64_t>(outcome.transfer_id))
                  .field("bytes", outcome.size_bytes)
                  .field("src", outcome.src)
                  .field("dst", outcome.dst)
                  .field("activity",
                         static_cast<std::int32_t>(outcome.activity))
                  .field("task", outcome.jeditaskid)
                  .field("submitted", outcome.submitted_at)
                  .field("started", outcome.started_at)
                  .field("attempts", outcome.attempts)
                  .field("registered", outcome.replica_registered));
  }

  if (active->request.on_complete) active->request.on_complete(outcome);
  if (sink_) sink_(outcome);
}

std::vector<TransferEngine::LinkProbe> TransferEngine::probe_links() const {
  std::vector<LinkProbe> probes;
  probes.reserve(links_.size());
  for (const auto& [key, ls] : links_) {
    if (ls->active.empty() && ls->pending.empty()) continue;
    LinkProbe p;
    p.key = key;
    p.active = static_cast<std::uint32_t>(ls->active.size());
    p.queued = static_cast<std::uint32_t>(ls->pending.size());
    for (const auto& a : ls->active) {
      const double remaining =
          std::max(0.0, static_cast<double>(a->request.size_bytes) -
                            a->bytes_done);
      p.bytes_in_flight += static_cast<std::uint64_t>(remaining);
      p.rate_bps += a->rate_bps;
    }
    probes.push_back(p);
  }
  std::sort(probes.begin(), probes.end(),
            [](const LinkProbe& a, const LinkProbe& b) {
              if (a.key.src != b.key.src) return a.key.src < b.key.src;
              return a.key.dst < b.key.dst;
            });
  return probes;
}

}  // namespace pandarus::dms
