#include "dms/rule.hpp"

#include <algorithm>

#include "obs/event_log.hpp"

namespace pandarus::dms {

RuleEngine::RuleEngine(sim::Scheduler& scheduler,
                       const grid::Topology& topology,
                       const FileCatalog& catalog, ReplicaCatalog& replicas,
                       const RseRegistry& rses, TransferEngine& engine,
                       util::Rng rng, Params params)
    : scheduler_(scheduler),
      topology_(topology),
      catalog_(catalog),
      replicas_(replicas),
      rses_(rses),
      engine_(engine),
      selector_(topology, rses, replicas),
      rng_(rng),
      params_(params) {}

RuleEngine::RuleEngine(sim::Scheduler& scheduler,
                       const grid::Topology& topology,
                       const FileCatalog& catalog, ReplicaCatalog& replicas,
                       const RseRegistry& rses, TransferEngine& engine,
                       util::Rng rng)
    : RuleEngine(scheduler, topology, catalog, replicas, rses, engine, rng,
                 Params{}) {}

std::uint32_t RuleEngine::evaluate_once() {
  ++stats_.passes;
  if (rules_.empty()) return 0;

  std::uint32_t submitted = 0;
  // Candidate destinations are recomputed per rule; round-robin over the
  // rules so every dataset gets evaluated across passes even when the
  // per-pass transfer budget is exhausted early.
  for (std::size_t visited = 0;
       visited < rules_.size() && submitted < params_.max_transfers_per_pass;
       ++visited) {
    const ReplicationRule& rule = rules_[next_rule_];
    next_rule_ = (next_rule_ + 1) % rules_.size();

    std::vector<grid::SiteId> tier_sites =
        topology_.sites_of_tier(rule.target_tier);
    if (tier_sites.empty()) continue;

    for (FileId file : catalog_.files_of(rule.dataset)) {
      if (submitted >= params_.max_transfers_per_pass) break;

      // Count disk replicas and remember which target-tier sites already
      // hold one so we do not place duplicates.
      std::uint32_t disk_copies = 0;
      for (RseId rse_id : replicas_.replicas(file)) {
        if (rses_.rse(rse_id).kind == RseKind::kDisk) ++disk_copies;
      }
      if (disk_copies >= rule.copies) continue;

      // Pick a destination at the target tier that lacks the file.
      grid::SiteId dst = grid::kUnknownSite;
      const std::size_t offset = rng_.uniform_index(tier_sites.size());
      for (std::size_t k = 0; k < tier_sites.size(); ++k) {
        const grid::SiteId candidate =
            tier_sites[(offset + k) % tier_sites.size()];
        if (!replicas_.on_disk_at_site(file, candidate) &&
            rses_.disk_at(candidate) != kNoRse) {
          dst = candidate;
          break;
        }
      }
      if (dst == grid::kUnknownSite) continue;

      const RseId source = selector_.select_source(file, dst, scheduler_.now());
      if (source == kNoRse) continue;

      TransferRequest req;
      req.file = file;
      req.size_bytes = catalog_.file(file).size_bytes;
      req.src = rses_.rse(source).site;
      req.dst = dst;
      req.dst_rse = rses_.disk_at(dst);
      req.activity = Activity::kDataRebalance;
      engine_.submit(std::move(req));
      ++submitted;
    }
  }
  stats_.transfers_submitted += submitted;
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("rule_pass", scheduler_.now(),
                         static_cast<std::int64_t>(stats_.passes))
                  .field("rules", static_cast<std::uint64_t>(rules_.size()))
                  .field("submitted", submitted));
  }
  return submitted;
}

void RuleEngine::start_periodic(util::SimTime until) {
  if (scheduler_.now() >= until) return;
  scheduler_.schedule_after(params_.evaluation_interval, [this, until] {
    evaluate_once();
    start_periodic(until);
  });
}

std::uint32_t RuleEngine::stage_from_tape(DatasetId dataset,
                                          grid::SiteId site) {
  const RseId tape = rses_.tape_at(site);
  const RseId disk = rses_.disk_at(site);
  if (tape == kNoRse || disk == kNoRse) return 0;

  std::uint32_t submitted = 0;
  for (FileId file : catalog_.files_of(dataset)) {
    if (!replicas_.has_replica(file, tape)) continue;
    if (replicas_.has_replica(file, disk)) continue;
    TransferRequest req;
    req.file = file;
    req.size_bytes = catalog_.file(file).size_bytes;
    req.src = site;
    req.dst = site;
    req.dst_rse = disk;
    req.activity = Activity::kDataRebalance;
    engine_.submit(std::move(req));
    ++submitted;
  }
  stats_.staged_from_tape += submitted;
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("rule_stage", scheduler_.now(),
                         static_cast<std::int64_t>(dataset))
                  .field("site", site)
                  .field("submitted", submitted));
  }
  return submitted;
}

}  // namespace pandarus::dms
