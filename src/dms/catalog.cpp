#include "dms/catalog.hpp"

#include <algorithm>
#include <cstdio>

namespace pandarus::dms {

ContainerId FileCatalog::create_container(std::string scope,
                                          std::string name,
                                          ContainerId parent) {
  const auto id = static_cast<ContainerId>(containers_.size());
  ContainerInfo info;
  info.id = id;
  info.parent = parent;
  info.scope = std::move(scope);
  info.name = std::move(name);
  containers_.push_back(std::move(info));
  container_datasets_.emplace_back();
  container_children_.emplace_back();
  if (parent != kNoContainer) {
    container_children_.at(parent).push_back(id);
  }
  return id;
}

void FileCatalog::attach_dataset(DatasetId dataset, ContainerId container) {
  DatasetInfo& ds = datasets_.at(dataset);
  if (ds.container != kNoContainer) {
    auto& old_list = container_datasets_.at(ds.container);
    std::erase(old_list, dataset);
  }
  ds.container = container;
  if (container != kNoContainer) {
    container_datasets_.at(container).push_back(dataset);
  }
}

std::span<const DatasetId> FileCatalog::datasets_of(ContainerId id) const {
  return container_datasets_.at(id);
}

std::vector<FileId> FileCatalog::files_of_container(ContainerId id) const {
  std::vector<FileId> out;
  // Depth-first: own datasets first, then nested containers in creation
  // order.  Containers cannot form cycles (a child records its parent at
  // creation), so plain recursion is safe.
  for (DatasetId ds : container_datasets_.at(id)) {
    const auto files = files_of(ds);
    out.insert(out.end(), files.begin(), files.end());
  }
  for (ContainerId child : container_children_.at(id)) {
    const auto nested = files_of_container(child);
    out.insert(out.end(), nested.begin(), nested.end());
  }
  return out;
}

std::uint64_t FileCatalog::container_bytes(ContainerId id) const {
  std::uint64_t total = 0;
  for (FileId f : files_of_container(id)) total += file(f).size_bytes;
  return total;
}

DatasetId FileCatalog::create_dataset(std::string scope, std::string name,
                                      ContainerId container) {
  const auto id = static_cast<DatasetId>(datasets_.size());
  DatasetInfo ds;
  ds.id = id;
  ds.container = container;
  ds.scope = std::move(scope);
  ds.name = std::move(name);
  datasets_.push_back(std::move(ds));
  dataset_files_.emplace_back();
  if (container != kNoContainer) {
    container_datasets_.at(container).push_back(id);
  }
  return id;
}

FileId FileCatalog::add_file(DatasetId dataset, std::uint64_t size_bytes) {
  const auto id = static_cast<FileId>(files_.size());
  FileEntry entry;
  entry.info.id = id;
  entry.info.dataset = dataset;
  entry.info.size_bytes = size_bytes;
  entry.index_in_dataset =
      static_cast<std::uint32_t>(dataset_files_.at(dataset).size());
  files_.push_back(std::move(entry));
  dataset_files_[dataset].push_back(id);
  return id;
}

std::span<const FileId> FileCatalog::files_of(DatasetId id) const {
  return dataset_files_.at(id);
}

std::string FileCatalog::lfn(FileId id) const {
  const FileEntry& entry = files_.at(id);
  char buf[64];
  std::snprintf(buf, sizeof buf, "AOD.%06u._%06u.pool.root",
                entry.info.dataset, entry.index_in_dataset);
  return buf;
}

std::string FileCatalog::proddblock(FileId id) const {
  const FileEntry& entry = files_.at(id);
  const DatasetInfo& ds = datasets_.at(entry.info.dataset);
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s_block%03u", ds.name.c_str(),
                entry.index_in_dataset / kFilesPerBlock);
  return buf;
}

const std::string& FileCatalog::scope(FileId id) const {
  return datasets_.at(files_.at(id).info.dataset).scope;
}

const std::string& FileCatalog::dataset_name(FileId id) const {
  return datasets_.at(files_.at(id).info.dataset).name;
}

std::uint64_t FileCatalog::dataset_bytes(DatasetId id) const {
  std::uint64_t total = 0;
  for (FileId f : dataset_files_.at(id)) total += files_[f].info.size_bytes;
  return total;
}

bool ReplicaCatalog::has_space(RseId rse, std::uint64_t bytes) const {
  const Rse& r = rses_->rse(rse);
  return r.capacity_bytes == 0 || r.used_bytes + bytes <= r.capacity_bytes;
}

bool ReplicaCatalog::add_replica(FileId file, RseId rse) {
  if (by_file_.size() <= file) by_file_.resize(file + 1);
  auto& list = by_file_[file];
  if (std::find(list.begin(), list.end(), rse) != list.end()) {
    return true;  // idempotent
  }
  const std::uint64_t size = files_->file(file).size_bytes;
  if (!has_space(rse, size)) return false;
  list.push_back(rse);
  ++total_;
  rses_->rse_mutable(rse).used_bytes += size;
  return true;
}

bool ReplicaCatalog::remove_replica(FileId file, RseId rse) {
  if (file >= by_file_.size()) return false;
  auto& list = by_file_[file];
  auto it = std::find(list.begin(), list.end(), rse);
  if (it == list.end()) return false;
  list.erase(it);
  --total_;
  Rse& r = rses_->rse_mutable(rse);
  const std::uint64_t size = files_->file(file).size_bytes;
  r.used_bytes = r.used_bytes >= size ? r.used_bytes - size : 0;
  return true;
}

bool ReplicaCatalog::has_replica(FileId file, RseId rse) const {
  if (file >= by_file_.size()) return false;
  const auto& list = by_file_[file];
  return std::find(list.begin(), list.end(), rse) != list.end();
}

bool ReplicaCatalog::resident_at_site(FileId file, grid::SiteId site) const {
  if (file >= by_file_.size()) return false;
  for (RseId rse : by_file_[file]) {
    if (rses_->rse(rse).site == site) return true;
  }
  return false;
}

bool ReplicaCatalog::on_disk_at_site(FileId file, grid::SiteId site) const {
  if (file >= by_file_.size()) return false;
  for (RseId rse : by_file_[file]) {
    const Rse& r = rses_->rse(rse);
    if (r.site == site && r.kind == RseKind::kDisk) return true;
  }
  return false;
}

std::span<const RseId> ReplicaCatalog::replicas(FileId file) const {
  static const std::vector<RseId> kEmpty;
  if (file >= by_file_.size()) return kEmpty;
  return by_file_[file];
}

std::uint64_t ReplicaCatalog::bytes_on_disk_at_site(
    std::span<const FileId> files, const FileCatalog& catalog,
    grid::SiteId site) const {
  std::uint64_t total = 0;
  for (FileId f : files) {
    if (on_disk_at_site(f, site)) total += catalog.file(f).size_bytes;
  }
  return total;
}

}  // namespace pandarus::dms
