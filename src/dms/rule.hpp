// Replication rules and the rule engine (paper §2.2): declarative
// statements of where data must exist; Rucio transfers missing replicas
// automatically.  The engine also drives the "Data Carousel" style tape
// staging that dominates the local volume on the Fig. 3 diagonal.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "dms/catalog.hpp"
#include "dms/selector.hpp"
#include "dms/transfer.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace pandarus::dms {

struct ReplicationRule {
  DatasetId dataset = kNoDataset;
  std::uint32_t copies = 2;          ///< required DISK replicas per file
  grid::Tier target_tier = grid::Tier::kT1;
};

class RuleEngine {
 public:
  struct Params {
    /// Ceiling on transfers submitted per evaluation pass, so one pass
    /// cannot flood the transfer engine.
    std::uint32_t max_transfers_per_pass = 2'000;
    util::SimDuration evaluation_interval = util::minutes(30);
  };

  struct Stats {
    std::uint64_t passes = 0;
    std::uint64_t transfers_submitted = 0;
    std::uint64_t staged_from_tape = 0;
  };

  RuleEngine(sim::Scheduler& scheduler, const grid::Topology& topology,
             const FileCatalog& catalog, ReplicaCatalog& replicas,
             const RseRegistry& rses, TransferEngine& engine,
             util::Rng rng, Params params);
  RuleEngine(sim::Scheduler& scheduler, const grid::Topology& topology,
             const FileCatalog& catalog, ReplicaCatalog& replicas,
             const RseRegistry& rses, TransferEngine& engine, util::Rng rng);

  void add_rule(ReplicationRule rule) { rules_.push_back(rule); }
  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }

  /// One evaluation pass: submit rebalance transfers (no task provenance)
  /// for every file whose rule is under-satisfied, up to the per-pass cap.
  /// Returns the number of transfers submitted.
  std::uint32_t evaluate_once();

  /// Schedules evaluate_once() every `evaluation_interval` until `until`.
  void start_periodic(util::SimTime until);

  /// Stages every file of `dataset` from the site's TAPE RSE to its DISK
  /// RSE (local transfers).  Files without a tape copy at the site are
  /// skipped.  Returns the number of transfers submitted.
  std::uint32_t stage_from_tape(DatasetId dataset, grid::SiteId site);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  sim::Scheduler& scheduler_;
  const grid::Topology& topology_;
  const FileCatalog& catalog_;
  ReplicaCatalog& replicas_;
  const RseRegistry& rses_;
  TransferEngine& engine_;
  ReplicaSelector selector_;
  util::Rng rng_;
  Params params_;
  Stats stats_;
  std::vector<ReplicationRule> rules_;
  std::size_t next_rule_ = 0;  ///< round-robin cursor across passes
};

}  // namespace pandarus::dms
