// Pandarus — umbrella header.
//
// A simulation and analysis library reproducing "Data Management System
// Analysis for Distributed Computing Workloads" (SC Workshops '25): a
// WLCG-like grid, a Rucio-like data management substrate, a PanDA-like
// workload manager, telemetry with realistic metadata corruption, the
// paper's exact/RM1/RM2 job-transfer matching algorithms, and the
// analyses behind every table and figure of its evaluation.
//
// Typical use:
//
//   auto result  = pandarus::scenario::run_campaign(
//                      pandarus::scenario::ScenarioConfig::paper_scale());
//   pandarus::core::Matcher matcher(result.store);
//   auto tri     = pandarus::core::run_all_methods(matcher);
//   auto summary = pandarus::analysis::overall_summary(result.store,
//                                                      tri.exact);
#pragma once

#include "analysis/bandwidth.hpp"
#include "analysis/breakdown.hpp"
#include "analysis/casestudy.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/event_source.hpp"
#include "analysis/events_replay.hpp"
#include "analysis/health_replay.hpp"
#include "analysis/heatmap.hpp"
#include "analysis/imbalance.hpp"
#include "analysis/metric_query.hpp"
#include "analysis/report.hpp"
#include "analysis/report_html.hpp"
#include "analysis/serve_endpoints.hpp"
#include "analysis/summary.hpp"
#include "analysis/threshold.hpp"
#include "analysis/volume_growth.hpp"
#include "core/anomaly.hpp"
#include "core/exact.hpp"
#include "core/inference.hpp"
#include "core/match_index.hpp"
#include "core/match_types.hpp"
#include "core/metrics.hpp"
#include "core/parallel_driver.hpp"
#include "core/relaxed.hpp"
#include "core/windowed.hpp"
#include "dms/catalog.hpp"
#include "dms/did.hpp"
#include "dms/rse.hpp"
#include "dms/rule.hpp"
#include "dms/selector.hpp"
#include "dms/transfer.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "grid/builder.hpp"
#include "grid/link.hpp"
#include "grid/load_model.hpp"
#include "grid/site.hpp"
#include "grid/topology.hpp"
#include "obs/colstore.hpp"
#include "obs/env.hpp"
#include "obs/event_log.hpp"
#include "obs/flow.hpp"
#include "obs/health.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/process.hpp"
#include "obs/sampler.hpp"
#include "obs/serve.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/campaign.hpp"
#include "scenario/config.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/corruption.hpp"
#include "telemetry/io.hpp"
#include "telemetry/query.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/records.hpp"
#include "telemetry/store.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/histogram.hpp"
#include "util/interner.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"
#include "wms/brokerage.hpp"
#include "wms/job.hpp"
#include "wms/panda_server.hpp"
#include "wms/workload.hpp"
