// Workload generation: the task/job population of an ATLAS-like campaign.
//
// User-analysis tasks (the paper's 966,453-job study population) and
// production tasks arrive as Poisson processes.  Each task reads one or
// two input datasets chosen by a Zipf popularity law — the skew is what
// concentrates load on the sites hosting hot data under data-locality
// brokerage (§3.1).  Jobs of a task sample overlapping file subsets, so
// concurrently submitted jobs share staging transfers.
#pragma once

#include <cstdint>
#include <vector>

#include "dms/catalog.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "wms/panda_server.hpp"

namespace pandarus::wms {

struct WorkloadParams {
  // -- catalog bootstrap --------------------------------------------------
  std::uint32_t n_input_datasets = 400;
  std::uint32_t files_per_dataset_min = 4;
  std::uint32_t files_per_dataset_max = 40;
  double file_size_median = 2.5e9;  ///< bytes; heavy-tailed (Fig. 10: 2-5 GB)
  double file_size_sigma = 0.8;
  /// Initial DISK replicas per dataset (all files at the same sites).
  std::uint32_t min_disk_replicas = 1;
  std::uint32_t max_disk_replicas = 3;
  /// Fraction of datasets that also have a TAPE copy at a T0/T1 site
  /// (the Data Carousel population).  Tape placement is biased toward
  /// Tier-0, which is why the biggest staging diagonals sit there.
  double tape_fraction = 0.5;
  /// The coldest `cold_fraction` of datasets (by Zipf rank) are
  /// tape-eligible; of those, `tape_only_fraction` live on tape only,
  /// with no permanent disk replica: jobs touching them must stage,
  /// producing the Analysis/Production Download populations of Table 1.
  double cold_fraction = 0.6;
  double tape_only_fraction = 0.75;
  /// Zipf exponent for dataset popularity.
  double zipf_s = 1.1;

  // -- arrivals -------------------------------------------------------------
  double user_tasks_per_day = 250.0;
  double prod_tasks_per_day = 50.0;
  double user_jobs_per_task_median = 10.0;
  double user_jobs_per_task_sigma = 1.0;
  std::uint32_t max_jobs_per_task = 400;
  double prod_jobs_per_task_median = 20.0;
  double prod_jobs_per_task_sigma = 0.8;
  /// Mean gap between successive job submissions within one task.
  util::SimDuration job_stagger_mean = util::minutes(2);
  /// Batch priorities: production holds a fixed elevated share; each
  /// user task draws uniformly from [user_priority_min, max].
  std::int32_t production_priority = 500;
  std::int32_t user_priority_min = 100;
  std::int32_t user_priority_max = 900;

  // -- per-job shape ----------------------------------------------------
  std::uint32_t files_per_job_min = 1;
  std::uint32_t files_per_job_max = 6;
  std::uint32_t outputs_per_analysis_job = 1;
  std::uint32_t outputs_per_prod_job = 3;
  double output_size_median = 400e6;
  double output_size_sigma = 0.8;
  /// Execution time: lognormal base plus input-proportional term.
  double exec_median_ms = 12.0 * 60.0 * 1000.0;
  double exec_sigma = 0.9;
  double exec_bytes_per_ms = 30e3;  ///< 30 MB/s nominal processing rate
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(sim::Scheduler& scheduler, const grid::Topology& topology,
                    dms::FileCatalog& catalog, dms::ReplicaCatalog& replicas,
                    const dms::RseRegistry& rses, PandaServer& server,
                    util::Rng rng, WorkloadParams params);

  /// Creates the input datasets, their files, initial disk replicas and
  /// tape copies.  Must run before start().
  void bootstrap_catalog();

  /// Schedules Poisson task arrivals on [now, until).
  void start(util::SimTime until);

  struct Stats {
    std::uint64_t user_tasks = 0;
    std::uint64_t prod_tasks = 0;
    std::uint64_t user_jobs = 0;
    std::uint64_t prod_jobs = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<dms::DatasetId>& input_datasets()
      const noexcept {
    return input_datasets_;
  }
  /// Datasets with a tape archive and the site holding it — the Data
  /// Carousel staging population.
  [[nodiscard]] const std::vector<std::pair<dms::DatasetId, grid::SiteId>>&
  tape_archives() const noexcept {
    return tape_archives_;
  }
  /// Cold datasets whose only permanent copy is on tape; disk replicas
  /// of these are transient (carousel staging + lifetime eviction).
  [[nodiscard]] const std::vector<dms::DatasetId>& tape_only_datasets()
      const noexcept {
    return tape_only_datasets_;
  }

 private:
  void schedule_next_arrival(JobKind kind, util::SimTime until);
  void spawn_task(JobKind kind, util::SimTime until);
  dms::DatasetId pick_dataset();

  sim::Scheduler& scheduler_;
  const grid::Topology& topology_;
  dms::FileCatalog& catalog_;
  dms::ReplicaCatalog& replicas_;
  const dms::RseRegistry& rses_;
  PandaServer& server_;
  util::Rng rng_;
  WorkloadParams params_;
  Stats stats_;

  std::vector<dms::DatasetId> input_datasets_;
  std::vector<std::pair<dms::DatasetId, grid::SiteId>> tape_archives_;
  std::vector<dms::DatasetId> tape_only_datasets_;
  std::vector<double> popularity_;  ///< Zipf weights over input_datasets_
  TaskId next_task_id_ = 100'000'000;
  JobId next_panda_id_ = 6'580'000'000;
  std::uint32_t next_output_dataset_ = 0;
};

}  // namespace pandarus::wms
