#include "wms/job.hpp"

namespace pandarus::wms::errors {

const char* message(std::int32_t code) noexcept {
  switch (code) {
    case kNone: return "OK";
    case kStageInTimeout: return "Stage-in did not complete in time";
    case kLostHeartbeat: return "Lost heartbeat";
    case kExecutionFailure: return "Payload execution failed";
    case kSiteServiceError: return "Site service error";
    case kOverlay: return "Non-zero return code from Overlay (1)";
    case kStageOutFailure: return "Stage-out failure";
    case kSiteOutage: return "Computing site went offline mid-run";
  }
  return "Unknown error";
}

}  // namespace pandarus::wms::errors
