// The PanDA server: global job orchestration (paper §2.1).
//
// Lifecycle of a job, matching the phases the paper measures:
//
//   creation ──► brokerage ──► staging ──► site queue ──► running ──► done
//   |<──────────────── queuing time ────────────────►|<─ wall time ─►|
//
// * Brokerage picks the computing site (data-locality by default).
// * Staging: missing input files are transferred to the site's DISK RSE
//   via the DMS.  Staging is *shared*: if another job already requested
//   the same file to the same site, the new job waits on the in-flight
//   transfer instead of duplicating it — which is exactly why a single
//   job's matched transfer set rarely sums to its ninputfilebytes and
//   the paper's exact matching only links 0.82% of jobs.
// * A staging watchdog releases the job to the batch queue after
//   `stage_timeout` even if transfers are still running; such transfers
//   span queuing *and* execution, reproducing the anomalous pattern of
//   Fig. 11 (and its elevated "Overlay" failures).
// * Direct-IO jobs skip pre-staging; their transfers start with the
//   payload and overlap execution (the "Analysis Download Direct IO"
//   activity of Table 1).
// * Output handling: outputs are registered at the local RSE; a subset
//   of jobs additionally exports outputs via an Upload transfer, and the
//   job's end time is recorded *after* stage-out completes — the reason
//   Analysis Upload transfers match at 95% in Table 1.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "dms/rule.hpp"
#include "dms/selector.hpp"
#include "dms/transfer.hpp"
#include "fault/injector.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "wms/brokerage.hpp"
#include "wms/job.hpp"
#include "wms/site_queue.hpp"

namespace pandarus::wms {

class PandaServer {
 public:
  struct Params {
    /// Fraction of user-analysis jobs reading inputs via direct IO.
    /// Direct-IO jobs emit one stream event per input file, so the
    /// Table 1 Direct-IO : Download event ratio (~3:1) emerges from this
    /// together with the staging-miss rate.
    double p_direct_io = 0.25;
    /// Probability an analysis job exports its outputs off-site.
    double p_analysis_upload = 0.01;
    /// Probability a production job uploads outputs to a Tier-1.
    double p_production_upload = 0.95;
    /// Harvester stages at *dataset* granularity: the first job of a
    /// task needing a dataset at a site triggers transfers for every
    /// missing file of that dataset there (tagged with the task's
    /// jeditaskid), not just the job's own chunk.  When a task spreads
    /// over several sites, sibling staging of the same files elsewhere
    /// pollutes each job's byte-sum gate — the main reason the paper's
    /// exact matching links only 8.38% of Analysis Download events
    /// while RM1 recovers them (Table 1 / Table 2).
    bool dataset_level_staging = true;
    /// Staging watchdog: release the job to the batch queue after this
    /// long even if stage-in transfers are still running.
    util::SimDuration stage_timeout = util::minutes(20);
    /// Extra failure probability when staging dragged into execution.
    double overlay_failure_prob = 0.6;
    /// Failure probability when a stage-in transfer terminally failed.
    double stage_fail_job_prob = 0.75;
    /// Staging-stress hazard: when staging consumed more than
    /// stress_share of a nontrivial queue wait, the same storage/site
    /// stress that slowed the transfers also endangers the payload
    /// (expired turls, lost heartbeats).  This is the paper's Fig. 9
    /// observation — the >75% transfer-time tail is almost entirely
    /// failed jobs — and its Fig. 11 caution that "it remains plausible
    /// that the lengthy transfer increased the likelihood of failure".
    double stress_share_threshold = 0.45;
    util::SimDuration stress_min_queue = util::seconds(30);
    double stress_failure_prob = 0.85;
    /// Lognormal sigma on execution time.
    double walltime_sigma = 0.35;
    /// Small bookkeeping delay between payload end and record close when
    /// no stage-out transfer is involved.
    util::SimDuration finalize_delay = util::seconds(2);

    /// Failed jobs are resubmitted (new pandaid, fresh brokerage) with
    /// this probability, up to max_job_attempts total attempts.  The
    /// failed attempt still leaves a job record — PanDA's job table
    /// keeps every attempt — which is how "job failed within a
    /// successful task" (Fig. 9) arises.
    double p_retry = 0.6;
    std::uint32_t max_job_attempts = 2;
  };

  /// Completion hooks; both fire at job/task terminal states.
  struct Hooks {
    std::function<void(const Job&)> on_job_complete;
    std::function<void(const Task&)> on_task_complete;
  };

  PandaServer(sim::Scheduler& scheduler, const grid::Topology& topology,
              const dms::FileCatalog& catalog, dms::ReplicaCatalog& replicas,
              const dms::RseRegistry& rses, dms::TransferEngine& engine,
              const Brokerage& brokerage, SiteQueues& queues, util::Rng rng,
              Params params, Hooks hooks);

  PandaServer(const PandaServer&) = delete;
  PandaServer& operator=(const PandaServer&) = delete;
  ~PandaServer();

  /// Registers a task; its jobs are submitted separately.
  void submit_task(Task task);

  /// Submits a job (creation time = now).  The task must already exist.
  void submit_job(Job job);

  /// Subscribes to site-outage fault windows: jobs running at a site
  /// when it goes down are failed with errors::kSiteOutage (and retried
  /// through the normal resubmission path).
  void set_injector(fault::Injector& injector);

  [[nodiscard]] const Task& task(TaskId id) const { return tasks_.at(id); }
  [[nodiscard]] std::size_t active_jobs() const noexcept {
    return jobs_.size();
  }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t finished = 0;
    std::uint64_t failed = 0;
    std::uint64_t stage_in_transfers = 0;
    std::uint64_t prefetch_transfers = 0;
    std::uint64_t shared_stage_hits = 0;
    std::uint64_t stage_timeouts = 0;
    std::uint64_t upload_transfers = 0;
    std::uint64_t retries = 0;
    std::uint64_t site_outage_kills = 0;  ///< running jobs killed by outages
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct JobRuntime;
  struct StagingKeyHash;

  void begin_staging(JobRuntime& rt);
  void request_file(JobRuntime& rt, dms::FileId file, dms::Activity activity);
  /// Task-level prefetch: submits a transfer through the shared-staging
  /// ledger without registering the job as a waiter.
  void prefetch_file(const Job& job, dms::FileId file, dms::Activity activity);
  void on_stage_done(JobId job, dms::FileId file, bool success);
  void proceed_to_queue(JobRuntime& rt);
  void start_execution(JobRuntime& rt);
  void finish_execution(JobRuntime& rt);
  void begin_stage_out(JobRuntime& rt, bool payload_failed,
                       std::int32_t error_code);
  void finalize_job(JobRuntime& rt, bool failed, std::int32_t error_code);
  void on_site_outage(grid::SiteId site);

  sim::Scheduler& scheduler_;
  const grid::Topology& topology_;
  const dms::FileCatalog& catalog_;
  dms::ReplicaCatalog& replicas_;
  const dms::RseRegistry& rses_;
  dms::TransferEngine& engine_;
  const Brokerage& brokerage_;
  SiteQueues& queues_;
  dms::ReplicaSelector selector_;
  util::Rng rng_;
  Params params_;
  Hooks hooks_;
  Stats stats_;

  std::unordered_map<TaskId, Task> tasks_;
  std::unordered_map<JobId, std::unique_ptr<JobRuntime>> jobs_;
  /// pandaid space for resubmitted attempts, disjoint from the
  /// workload generator's ids.
  JobId next_retry_id_ = 9'000'000'000;

  /// Shared staging ledger: (file, site) -> the in-flight transfer and
  /// the jobs waiting on it.  The transfer id lets a late joiner link
  /// its causal flow to the transfer another job (or a task prefetch)
  /// already started; 0 means no transfer exists (no-replica failures
  /// resolve through the ledger without one).
  struct StagingEntry {
    std::uint64_t transfer_id = 0;
    std::vector<JobId> waiters;
  };
  std::unordered_map<std::uint64_t, StagingEntry> staging_waiters_;
};

}  // namespace pandarus::wms
