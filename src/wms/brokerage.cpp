#include "wms/brokerage.hpp"

#include <algorithm>
#include <cassert>

#include "obs/flow.hpp"

namespace pandarus::wms {

const char* policy_name(BrokeragePolicy policy) noexcept {
  switch (policy) {
    case BrokeragePolicy::kDataLocality: return "data-locality";
    case BrokeragePolicy::kLoadAware: return "load-aware";
    case BrokeragePolicy::kHybrid: return "hybrid";
  }
  return "?";
}

Brokerage::Brokerage(const grid::Topology& topology,
                     const dms::FileCatalog& catalog,
                     const dms::ReplicaCatalog& replicas, Params params)
    : topology_(&topology),
      catalog_(&catalog),
      replicas_(&replicas),
      params_(params) {}

double Brokerage::locality_bytes(const Job& job, grid::SiteId site) const {
  double bytes = 0.0;
  for (dms::FileId f : job.input_files) {
    const auto size = static_cast<double>(catalog_->file(f).size_bytes);
    if (replicas_->on_disk_at_site(f, site)) {
      bytes += size;
    } else if (replicas_->resident_at_site(f, site)) {
      bytes += params_.tape_locality_weight * size;
    }
  }
  return bytes;
}

bool Brokerage::eligible(const grid::Site& site, const Job& job) const {
  if (site.cpu_slots == 0) return false;
  if (job.kind == JobKind::kProduction && params_.production_excludes_t3 &&
      site.tier == grid::Tier::kT3) {
    return false;
  }
  return true;
}

grid::SiteId Brokerage::choose_site(const Job& job, const SiteQueues& queues,
                                    util::Rng& rng) const {
  std::int64_t scored = 0;
  grid::SiteId best = pick(job, queues, rng, /*skip_down_sites=*/true, &scored);
  if (best == grid::kUnknownSite) {
    // Every eligible site is inside an outage window: assign anyway
    // (the job queues at a dead site, as it would in production).
    best = pick(job, queues, rng, /*skip_down_sites=*/false, &scored);
  }
  assert(best != grid::kUnknownSite);
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->broker_scored(static_cast<std::int64_t>(job.pandaid), scored);
  }
  return best;
}

grid::SiteId Brokerage::pick(const Job& job, const SiteQueues& queues,
                             util::Rng& rng, bool skip_down_sites,
                             std::int64_t* scored) const {
  grid::SiteId best = grid::kUnknownSite;
  double best_score = -1e300;
  if (scored != nullptr) *scored = 0;

  for (const grid::Site& site : topology_->sites()) {
    if (!eligible(site, job)) continue;
    if (skip_down_sites && injector_ != nullptr &&
        injector_->site_down(site.id)) {
      continue;
    }
    if (scored != nullptr) ++*scored;

    double score = 0.0;
    switch (params_.policy) {
      case BrokeragePolicy::kDataLocality: {
        // Primary criterion: resident input bytes — disk at full weight,
        // tape-only copies discounted (the job will pay a local staging
        // pass, but staying at the archive site still beats a WAN pull).
        // Secondary: break ties toward idle capacity so fully resident
        // datasets spread over their replica holders.
        const double resident = locality_bytes(job, site.id);
        const double idle_frac =
            1.0 - std::min(1.0, static_cast<double>(queues.running(site.id) +
                                                    queues.queued(site.id)) /
                                    static_cast<double>(site.cpu_slots));
        score = resident + idle_frac * 1e3;  // bytes dominate
        break;
      }
      case BrokeragePolicy::kLoadAware: {
        score = -queues.estimated_wait_ms(site.id);
        break;
      }
      case BrokeragePolicy::kHybrid: {
        const double resident_gb = locality_bytes(job, site.id) / 1e9;
        score = resident_gb * params_.wait_per_gb_ms -
                queues.estimated_wait_ms(site.id);
        break;
      }
    }
    // Deterministic jitter (well below any real score difference) keeps
    // choices unbiased among exact ties.
    score += rng.next_double() * 1e-3;

    if (score > best_score) {
      best_score = score;
      best = site.id;
    }
  }
  return best;
}

}  // namespace pandarus::wms
