// Per-site batch queues (the Harvester/pilot layer of paper §2.1).
//
// Each site exposes `cpu_slots` concurrent payload slots.  A job that has
// finished staging requests a slot; when one frees up, the pilot
// provisioning delay (exponential with the site's batch_delay_mean_ms)
// elapses before the payload actually starts.  Sites flagged as
// congested by the topology builder have 12x the delay — these produce
// the extreme local queuing times of Fig. 5.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "grid/topology.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace pandarus::wms {

class SiteQueues {
 public:
  SiteQueues(sim::Scheduler& scheduler, const grid::Topology& topology,
             util::Rng rng);

  /// Requests a payload slot at `site`; `on_start` fires once the slot is
  /// acquired and the pilot is up.  Higher `priority` requests are
  /// admitted first; equal priorities keep FIFO order.  The caller must
  /// later release the slot with release_slot(site).
  void request_slot(grid::SiteId site, std::function<void()> on_start,
                    std::int32_t priority = 0);

  /// Frees a slot, admitting the next queued request if any.
  void release_slot(grid::SiteId site);

  [[nodiscard]] std::size_t queued(grid::SiteId site) const;
  [[nodiscard]] std::size_t running(grid::SiteId site) const;

  /// Rough expected wait (ms) for a new arrival: queue depth over service
  /// capacity plus the pilot delay.  Used by load-aware brokerage.
  [[nodiscard]] double estimated_wait_ms(grid::SiteId site) const;

  /// Grid-wide totals, for the periodic sampler's queue-depth columns.
  [[nodiscard]] std::size_t total_queued() const;
  [[nodiscard]] std::size_t total_running() const;

 private:
  struct Waiter {
    std::int32_t priority = 0;
    std::uint64_t seq = 0;  ///< FIFO tiebreak within a priority
    std::function<void()> on_start;
  };
  struct WaiterOrder {
    bool operator()(const Waiter& a, const Waiter& b) const noexcept {
      // max-heap: higher priority first, then earlier arrival.
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };
  struct SiteState {
    std::uint32_t slots = 0;
    std::uint32_t busy = 0;
    double pilot_delay_mean_ms = 0.0;
    std::priority_queue<Waiter, std::vector<Waiter>, WaiterOrder> waiting;
  };

  void admit(grid::SiteId site);

  sim::Scheduler& scheduler_;
  util::Rng rng_;
  std::uint64_t next_seq_ = 0;
  std::vector<SiteState> sites_;
};

}  // namespace pandarus::wms
