#include "wms/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

namespace pandarus::wms {

WorkloadGenerator::WorkloadGenerator(
    sim::Scheduler& scheduler, const grid::Topology& topology,
    dms::FileCatalog& catalog, dms::ReplicaCatalog& replicas,
    const dms::RseRegistry& rses, PandaServer& server, util::Rng rng,
    WorkloadParams params)
    : scheduler_(scheduler),
      topology_(topology),
      catalog_(catalog),
      replicas_(replicas),
      rses_(rses),
      server_(server),
      rng_(rng),
      params_(params) {}

void WorkloadGenerator::bootstrap_catalog() {
  // Sites eligible to host initial replicas, weighted by storage size so
  // T0/T1 hold most data (as on the real grid).
  std::vector<grid::SiteId> hosts;
  std::vector<double> host_weights;
  for (const grid::Site& s : topology_.sites()) {
    if (rses_.disk_at(s.id) == dms::kNoRse) continue;
    hosts.push_back(s.id);
    host_weights.push_back(static_cast<double>(s.storage_bytes));
  }

  // Tape hosts, heavily biased toward Tier-0 (CERN castor/CTA holds the
  // master archive) so the biggest carousel diagonals land there.
  // Tier-1s with single-stream storage frontends get extra weight: their
  // constrained tape systems hold a disproportionate share of archives
  // relative to their disk, which is how the sequential-staging jobs of
  // Fig. 10 arise.
  std::vector<grid::SiteId> tape_sites;
  std::vector<double> tape_weights;
  for (const grid::Site& s : topology_.sites()) {
    if (rses_.tape_at(s.id) == dms::kNoRse) continue;
    tape_sites.push_back(s.id);
    tape_weights.push_back(s.tier == grid::Tier::kT0      ? 8.0
                           : s.max_parallel_streams == 1 ? 3.0
                                                         : 1.0);
  }

  char name[80];
  for (std::uint32_t d = 0; d < params_.n_input_datasets; ++d) {
    std::snprintf(name, sizeof name,
                  "mc23_13p6TeV.%08u.PhPy8EG.DAOD_PHYS.e%04u", 410'000 + d,
                  8'000 + d % 100);
    const dms::DatasetId ds =
        catalog_.create_dataset("mc23_13p6TeV", name);
    const auto n_files = static_cast<std::uint32_t>(rng_.uniform_int(
        params_.files_per_dataset_min, params_.files_per_dataset_max));
    for (std::uint32_t f = 0; f < n_files; ++f) {
      const auto size = static_cast<std::uint64_t>(rng_.lognormal_median(
          params_.file_size_median, params_.file_size_sigma));
      catalog_.add_file(ds, std::max<std::uint64_t>(size, 1'000'000));
    }

    // Cold datasets (unpopular by Zipf rank == creation order) may live
    // on tape only; everything else gets 1..max disk replicas.
    const bool cold =
        d >= static_cast<std::uint32_t>(
                 static_cast<double>(params_.n_input_datasets) *
                 (1.0 - params_.cold_fraction));
    const bool tape_only = cold && !tape_sites.empty() &&
                           rng_.bernoulli(params_.tape_only_fraction);

    if (!tape_only) {
      const auto copies = static_cast<std::uint32_t>(rng_.uniform_int(
          params_.min_disk_replicas, params_.max_disk_replicas));
      // Sample without replacement: remove each chosen host from a local
      // copy (weights of zero-storage sites are floored so every disk
      // host remains selectable).
      std::vector<grid::SiteId> pool = hosts;
      std::vector<double> pool_weights = host_weights;
      for (double& w : pool_weights) w = std::max(w, 1.0);
      for (std::uint32_t c = 0; c < copies && !pool.empty(); ++c) {
        const std::size_t pick = rng_.weighted_index(pool_weights);
        const grid::SiteId site = pool[pick];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        pool_weights.erase(pool_weights.begin() +
                           static_cast<std::ptrdiff_t>(pick));
        const dms::RseId rse = rses_.disk_at(site);
        for (dms::FileId f : catalog_.files_of(ds)) {
          replicas_.add_replica(f, rse);
        }
      }
    }

    // Tape archive copy (Data Carousel source); mandatory for tape-only
    // datasets.
    if (!tape_sites.empty() &&
        (tape_only || rng_.bernoulli(params_.tape_fraction))) {
      const grid::SiteId site = tape_sites[rng_.weighted_index(tape_weights)];
      const dms::RseId tape = rses_.tape_at(site);
      for (dms::FileId f : catalog_.files_of(ds)) {
        replicas_.add_replica(f, tape);
      }
      tape_archives_.emplace_back(ds, site);
    }
    if (tape_only) tape_only_datasets_.push_back(ds);

    input_datasets_.push_back(ds);
  }

  // Zipf popularity over datasets: weight(rank k) = 1 / k^s.
  popularity_.resize(input_datasets_.size());
  for (std::size_t k = 0; k < popularity_.size(); ++k) {
    popularity_[k] =
        1.0 / std::pow(static_cast<double>(k + 1), params_.zipf_s);
  }
}

void WorkloadGenerator::start(util::SimTime until) {
  schedule_next_arrival(JobKind::kUserAnalysis, until);
  schedule_next_arrival(JobKind::kProduction, until);
}

void WorkloadGenerator::schedule_next_arrival(JobKind kind,
                                              util::SimTime until) {
  const double per_day = kind == JobKind::kUserAnalysis
                             ? params_.user_tasks_per_day
                             : params_.prod_tasks_per_day;
  if (per_day <= 0.0) return;
  const double mean_gap_ms = 24.0 * 3600.0 * 1000.0 / per_day;
  const auto gap =
      static_cast<util::SimDuration>(rng_.exponential(mean_gap_ms));
  const util::SimTime at = scheduler_.now() + gap;
  if (at >= until) return;
  scheduler_.schedule_at(at, [this, kind, until] {
    spawn_task(kind, until);
    schedule_next_arrival(kind, until);
  });
}

dms::DatasetId WorkloadGenerator::pick_dataset() {
  return input_datasets_[rng_.weighted_index(popularity_)];
}

void WorkloadGenerator::spawn_task(JobKind kind, util::SimTime until) {
  const bool user = kind == JobKind::kUserAnalysis;
  Task task;
  task.jeditaskid = next_task_id_++;
  task.kind = kind;
  char buf[64];
  std::snprintf(buf, sizeof buf, user ? "user.aphys%03u" : "prodsys",
                static_cast<unsigned>(rng_.uniform_int(0, 199)));
  task.user = buf;

  // One or two input datasets, Zipf-popular.
  task.input_datasets.push_back(pick_dataset());
  if (rng_.bernoulli(0.3)) {
    const dms::DatasetId second = pick_dataset();
    if (second != task.input_datasets.front()) {
      task.input_datasets.push_back(second);
    }
  }

  // Output dataset for the whole task.
  std::snprintf(buf, sizeof buf, "%s.%09u.out.%08u",
                user ? "user" : "mc23_prod", next_output_dataset_++,
                static_cast<unsigned>(task.jeditaskid % 100'000'000));
  task.output_dataset =
      catalog_.create_dataset(user ? "user" : "mc23_prod", buf);

  // Production runs at a fixed elevated share; user tasks draw a
  // per-task priority so heavy users do not starve light ones.
  const std::int32_t task_priority =
      user ? static_cast<std::int32_t>(rng_.uniform_int(
                 params_.user_priority_min, params_.user_priority_max))
           : params_.production_priority;

  const double jobs_median = user ? params_.user_jobs_per_task_median
                                  : params_.prod_jobs_per_task_median;
  const double jobs_sigma =
      user ? params_.user_jobs_per_task_sigma : params_.prod_jobs_per_task_sigma;
  const auto n_jobs = static_cast<std::uint32_t>(
      std::clamp(rng_.lognormal_median(jobs_median, jobs_sigma), 1.0,
                 static_cast<double>(params_.max_jobs_per_task)));

  // Jobs arrive staggered; submissions falling outside the window are
  // dropped, and total_jobs reflects only the jobs actually submitted so
  // the task reaches a terminal state before the campaign ends.
  std::vector<std::pair<util::SimTime, Job>> scheduled;
  util::SimTime at = scheduler_.now();
  for (std::uint32_t j = 0; j < n_jobs; ++j) {
    Job job;
    job.pandaid = next_panda_id_++;
    job.jeditaskid = task.jeditaskid;
    job.kind = kind;
    job.priority = task_priority;

    // Input files: contiguous disjoint chunks of the dataset, as JEDI's
    // job splitting produces (each job processes distinct files; chunks
    // only wrap and overlap once a task outgrows its dataset).
    const auto want = static_cast<std::uint32_t>(rng_.uniform_int(
        params_.files_per_job_min, params_.files_per_job_max));
    std::unordered_set<dms::FileId> inputs;
    const dms::DatasetId ds =
        task.input_datasets[j % task.input_datasets.size()];
    const auto files = catalog_.files_of(ds);
    if (!files.empty()) {
      const std::size_t start =
          (static_cast<std::size_t>(j) * want) % files.size();
      for (std::uint32_t k = 0; k < want; ++k) {
        inputs.insert(files[(start + k) % files.size()]);
      }
    }
    job.input_files.assign(inputs.begin(), inputs.end());
    std::sort(job.input_files.begin(), job.input_files.end());
    for (dms::FileId f : job.input_files) {
      job.ninputfilebytes += catalog_.file(f).size_bytes;
    }

    // Output files are registered in the catalog up front; replicas
    // appear when the job completes.
    const std::uint32_t n_out = user ? params_.outputs_per_analysis_job
                                     : params_.outputs_per_prod_job;
    for (std::uint32_t k = 0; k < n_out; ++k) {
      const auto size = static_cast<std::uint64_t>(rng_.lognormal_median(
          params_.output_size_median, params_.output_size_sigma));
      const dms::FileId f = catalog_.add_file(
          task.output_dataset, std::max<std::uint64_t>(size, 100'000));
      job.output_files.push_back(f);
      job.noutputfilebytes += catalog_.file(f).size_bytes;
    }

    job.base_exec_ms = static_cast<util::SimDuration>(
        rng_.lognormal_median(params_.exec_median_ms, params_.exec_sigma) +
        static_cast<double>(job.ninputfilebytes) / params_.exec_bytes_per_ms);

    at += static_cast<util::SimDuration>(
        rng_.exponential(static_cast<double>(params_.job_stagger_mean)));
    if (at >= until) break;
    scheduled.emplace_back(at, std::move(job));
  }

  if (scheduled.empty()) return;
  task.total_jobs = static_cast<std::uint32_t>(scheduled.size());
  if (user) {
    ++stats_.user_tasks;
    stats_.user_jobs += task.total_jobs;
  } else {
    ++stats_.prod_tasks;
    stats_.prod_jobs += task.total_jobs;
  }
  server_.submit_task(task);
  for (auto& [when, job] : scheduled) {
    scheduler_.schedule_at(when, [this, j = std::move(job)]() mutable {
      server_.submit_job(std::move(j));
    });
  }
}

}  // namespace pandarus::wms
