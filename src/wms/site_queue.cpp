#include "wms/site_queue.hpp"

#include <algorithm>

#include <cassert>

namespace pandarus::wms {

SiteQueues::SiteQueues(sim::Scheduler& scheduler,
                       const grid::Topology& topology, util::Rng rng)
    : scheduler_(scheduler), rng_(rng) {
  sites_.resize(topology.site_count());
  for (const grid::Site& s : topology.sites()) {
    sites_[s.id].slots = s.cpu_slots;
    sites_[s.id].pilot_delay_mean_ms = s.batch_delay_mean_ms;
  }
}

void SiteQueues::request_slot(grid::SiteId site,
                              std::function<void()> on_start,
                              std::int32_t priority) {
  SiteState& state = sites_.at(site);
  state.waiting.push(Waiter{priority, next_seq_++, std::move(on_start)});
  admit(site);
}

void SiteQueues::release_slot(grid::SiteId site) {
  SiteState& state = sites_.at(site);
  assert(state.busy > 0);
  --state.busy;
  admit(site);
}

void SiteQueues::admit(grid::SiteId site) {
  SiteState& state = sites_.at(site);
  while (state.busy < state.slots && !state.waiting.empty()) {
    // priority_queue::top() is const; moving the callback out before
    // pop() is safe because the heap order never inspects `on_start`.
    auto on_start = std::move(
        const_cast<Waiter&>(state.waiting.top()).on_start);
    state.waiting.pop();
    ++state.busy;  // the slot is held through pilot provisioning
    // Lognormal with a fat shape: pilot provisioning is usually quick
    // but occasionally takes hours (the extreme local queuing of Fig. 5
    // needs this tail; an exponential would make >10^4 s waits
    // astronomically rare).
    const auto delay = static_cast<util::SimDuration>(std::min(
        rng_.lognormal_median(state.pilot_delay_mean_ms * 0.6, 1.6),
        static_cast<double>(util::hours(36))));
    scheduler_.schedule_after(delay, std::move(on_start));
  }
}

std::size_t SiteQueues::queued(grid::SiteId site) const {
  return sites_.at(site).waiting.size();
}

std::size_t SiteQueues::running(grid::SiteId site) const {
  return sites_.at(site).busy;
}

std::size_t SiteQueues::total_queued() const {
  std::size_t total = 0;
  for (const SiteState& s : sites_) total += s.waiting.size();
  return total;
}

std::size_t SiteQueues::total_running() const {
  std::size_t total = 0;
  for (const SiteState& s : sites_) total += s.busy;
  return total;
}

double SiteQueues::estimated_wait_ms(grid::SiteId site) const {
  const SiteState& state = sites_.at(site);
  if (state.slots == 0) return 1e15;
  // Queue depth scaled by a nominal 30-minute service time per slot,
  // plus the pilot delay every arrival pays.
  const double per_job_ms = 30.0 * 60.0 * 1000.0;
  const double backlog =
      static_cast<double>(state.waiting.size() +
                          (state.busy >= state.slots ? state.busy : 0)) /
      static_cast<double>(state.slots);
  return backlog * per_job_ms + state.pilot_delay_mean_ms;
}

}  // namespace pandarus::wms
