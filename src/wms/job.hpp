// Jobs and tasks (paper §2.1).
//
// A JEDI task (jeditaskid) fans out into jobs (pandaid).  User-analysis
// jobs are the population the paper studies (its 8-day window collected
// 966,453 *user* jobs); production jobs exist in the simulation because
// their transfers dominate the transfer-event population (Table 1:
// 824,963 Production Upload events) even though they never match.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dms/did.hpp"
#include "grid/site.hpp"
#include "util/time.hpp"

namespace pandarus::wms {

using JobId = std::int64_t;
using TaskId = std::int64_t;

enum class JobKind : std::uint8_t { kUserAnalysis = 0, kProduction = 1 };

enum class JobStatus : std::uint8_t {
  kPending = 0,   ///< submitted, not yet assigned
  kStaging = 1,   ///< waiting for input transfers
  kQueued = 2,    ///< waiting for a slot at the site
  kRunning = 3,
  kFinished = 4,  ///< terminal success
  kFailed = 5,    ///< terminal failure
};

enum class TaskStatus : std::uint8_t {
  kRunning = 0,
  kDone = 1,    ///< all jobs finished successfully
  kFailed = 2,  ///< at least one job failed
};

/// PanDA pilot-style error codes for failed jobs.  kOverlay is the
/// paper's Fig. 11 example ("Non-zero return code from Overlay (1)",
/// code 1305).
namespace errors {
inline constexpr std::int32_t kNone = 0;
inline constexpr std::int32_t kStageInTimeout = 1099;
inline constexpr std::int32_t kLostHeartbeat = 1110;
inline constexpr std::int32_t kExecutionFailure = 1187;
inline constexpr std::int32_t kSiteServiceError = 1201;
inline constexpr std::int32_t kOverlay = 1305;
inline constexpr std::int32_t kStageOutFailure = 1137;
/// The job's computing site entered a fault window (site outage) while
/// the job was running; PanDA kills and optionally resubmits it.
inline constexpr std::int32_t kSiteOutage = 1213;

[[nodiscard]] const char* message(std::int32_t code) noexcept;
}  // namespace errors

struct Job {
  JobId pandaid = 0;
  TaskId jeditaskid = 0;
  JobKind kind = JobKind::kUserAnalysis;

  std::vector<dms::FileId> input_files;
  std::vector<dms::FileId> output_files;
  std::uint64_t ninputfilebytes = 0;
  std::uint64_t noutputfilebytes = 0;

  /// True when inputs stream during execution instead of pre-staging
  /// (the paper's "Analysis Download Direct IO" activity).
  bool direct_io = false;

  /// Nominal execution time on a speed-1.0 slot, before site scaling.
  util::SimDuration base_exec_ms = 0;

  /// Attempt number; PanDA resubmits failed jobs as fresh pandaids, so
  /// retries appear in telemetry as separate job records (the source of
  /// Fig. 9's "job failed within a successful task" class).
  std::uint32_t attempt = 1;

  /// Brokerage/batch priority (paper §2.1: jobs are "assigned to
  /// computing sites by a brokerage module, based on many criteria such
  /// as job type, priority, ...").  Higher runs first at a site.
  std::int32_t priority = 0;

  grid::SiteId computing_site = grid::kUnknownSite;
  util::SimTime creation_time = 0;
  util::SimTime start_time = util::kNever;
  util::SimTime end_time = util::kNever;

  JobStatus status = JobStatus::kPending;
  std::int32_t error_code = errors::kNone;

  [[nodiscard]] util::SimDuration queuing_time() const noexcept {
    return start_time == util::kNever ? 0 : start_time - creation_time;
  }
  [[nodiscard]] util::SimDuration wall_time() const noexcept {
    return (start_time == util::kNever || end_time == util::kNever)
               ? 0
               : end_time - start_time;
  }
};

struct Task {
  TaskId jeditaskid = 0;
  JobKind kind = JobKind::kUserAnalysis;
  std::string user;  ///< owner, e.g. "user.aphys042"
  std::vector<dms::DatasetId> input_datasets;
  dms::DatasetId output_dataset = dms::kNoDataset;
  std::uint32_t total_jobs = 0;
  std::uint32_t completed_jobs = 0;
  std::uint32_t failed_jobs = 0;
  TaskStatus status = TaskStatus::kRunning;

  [[nodiscard]] bool all_jobs_done() const noexcept {
    return completed_jobs + failed_jobs >= total_jobs;
  }
};

}  // namespace pandarus::wms
