#include "wms/panda_server.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "obs/event_log.hpp"
#include "obs/flow.hpp"

namespace pandarus::wms {
namespace {

/// Composite (file, site) key for the shared-staging ledger.  FileIds are
/// sequential and stay far below 2^44 even in the largest campaigns.
std::uint64_t staging_key(dms::FileId file, grid::SiteId site) {
  return (file << 20) | (site & 0xFFFFFu);
}

/// One job_state event per lifecycle transition (the PanDA status-change
/// stream the paper's job records are distilled from).
void emit_job_state(const Job& job, const char* state, util::SimTime ts) {
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("job_state", ts,
                         static_cast<std::int64_t>(job.pandaid))
                  .field("state", state)
                  .field("task", job.jeditaskid)
                  .field("site", job.computing_site)
                  .field("attempt", job.attempt));
  }
}

}  // namespace

struct PandaServer::JobRuntime {
  Job job;
  std::uint32_t pending_stage = 0;
  /// Sequential-pilot sites: files not yet requested, staged one by one.
  std::deque<dms::FileId> stage_queue;
  dms::Activity stage_activity = dms::Activity::kAnalysisDownload;
  std::vector<dms::FileId> direct_io_files;
  bool stage_failed = false;
  bool direct_io_failed = false;
  bool released_by_watchdog = false;
  util::SimTime staging_completed_at = util::kNever;
  bool queued_or_later = false;
  std::uint32_t pending_uploads = 0;
  bool upload_failed = false;
  sim::Scheduler::EventHandle watchdog;
};

PandaServer::PandaServer(sim::Scheduler& scheduler,
                         const grid::Topology& topology,
                         const dms::FileCatalog& catalog,
                         dms::ReplicaCatalog& replicas,
                         const dms::RseRegistry& rses,
                         dms::TransferEngine& engine,
                         const Brokerage& brokerage, SiteQueues& queues,
                         util::Rng rng, Params params, Hooks hooks)
    : scheduler_(scheduler),
      topology_(topology),
      catalog_(catalog),
      replicas_(replicas),
      rses_(rses),
      engine_(engine),
      brokerage_(brokerage),
      queues_(queues),
      selector_(topology, rses, replicas),
      rng_(rng),
      params_(params),
      hooks_(std::move(hooks)) {}

PandaServer::~PandaServer() = default;

void PandaServer::submit_task(Task task) {
  tasks_.emplace(task.jeditaskid, std::move(task));
}

void PandaServer::submit_job(Job job) {
  assert(tasks_.contains(job.jeditaskid));
  job.creation_time = scheduler_.now();
  job.status = JobStatus::kPending;
  if (job.kind == JobKind::kUserAnalysis) {
    job.direct_io = rng_.bernoulli(params_.p_direct_io);
  }
  ++stats_.submitted;

  auto rt = std::make_unique<JobRuntime>();
  rt->job = std::move(job);
  // The flow root opens before brokerage so the brokerage hook can
  // annotate it with the number of candidates it scored.
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->begin_flow(static_cast<std::int64_t>(rt->job.pandaid),
                      rt->job.jeditaskid,
                      static_cast<std::int32_t>(rt->job.attempt),
                      scheduler_.now());
  }
  rt->job.computing_site = brokerage_.choose_site(rt->job, queues_, rng_);
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->broker_decision(static_cast<std::int64_t>(rt->job.pandaid),
                           rt->job.computing_site, scheduler_.now());
  }
  JobRuntime& ref = *rt;
  jobs_.emplace(ref.job.pandaid, std::move(rt));
  emit_job_state(ref.job, "submitted", scheduler_.now());
  begin_staging(ref);
}

void PandaServer::begin_staging(JobRuntime& rt) {
  rt.job.status = JobStatus::kStaging;
  emit_job_state(rt.job, "staging", scheduler_.now());
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->stage_begin(static_cast<std::int64_t>(rt.job.pandaid),
                       scheduler_.now());
  }
  const grid::SiteId site = rt.job.computing_site;

  std::vector<dms::FileId> missing;
  for (dms::FileId f : rt.job.input_files) {
    if (!replicas_.on_disk_at_site(f, site)) missing.push_back(f);
  }

  if (rt.job.direct_io) {
    // Direct IO streams *every* input during execution (reads through the
    // storage frontend are recorded as transfer events whether the
    // replica is local or remote); no pre-staging.
    rt.direct_io_files = rt.job.input_files;
    proceed_to_queue(rt);
    return;
  }

  if (missing.empty()) {
    proceed_to_queue(rt);
    return;
  }

  const dms::Activity activity = rt.job.kind == JobKind::kUserAnalysis
                                     ? dms::Activity::kAnalysisDownload
                                     : dms::Activity::kProductionDownload;
  rt.stage_activity = activity;
  rt.pending_stage = static_cast<std::uint32_t>(missing.size());
  if (topology_.site(site).max_parallel_streams <= 1) {
    // Sequential pilot (Fig. 10): download the inputs one at a time.
    rt.stage_queue.assign(missing.begin(), missing.end());
    const dms::FileId first = rt.stage_queue.front();
    rt.stage_queue.pop_front();
    request_file(rt, first, activity);
  } else {
    for (dms::FileId f : missing) request_file(rt, f, activity);
  }

  // Dataset-level prefetch: pull the rest of each touched dataset to the
  // site under the same task id.  The shared-staging ledger deduplicates
  // against in-flight requests; the job itself only waits on its own
  // files.  Sequential-pilot sites use the dumb one-file-at-a-time path
  // with no prefetch — which is exactly why their matched transfer sets
  // appear back-to-back (Fig. 10).
  if (params_.dataset_level_staging &&
      topology_.site(site).max_parallel_streams > 1) {
    std::vector<dms::DatasetId> touched;
    for (dms::FileId f : missing) {
      const dms::DatasetId ds = catalog_.file(f).dataset;
      if (std::find(touched.begin(), touched.end(), ds) == touched.end()) {
        touched.push_back(ds);
      }
    }
    for (dms::DatasetId ds : touched) {
      for (dms::FileId f : catalog_.files_of(ds)) {
        if (replicas_.on_disk_at_site(f, site)) continue;
        if (std::find(missing.begin(), missing.end(), f) != missing.end()) {
          continue;  // already requested with this job as waiter
        }
        prefetch_file(rt.job, f, activity);
      }
    }
  }

  const JobId id = rt.job.pandaid;
  rt.watchdog = scheduler_.schedule_after(params_.stage_timeout, [this, id] {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    JobRuntime& runtime = *it->second;
    if (runtime.queued_or_later) return;
    ++stats_.stage_timeouts;
    runtime.released_by_watchdog = true;
    proceed_to_queue(runtime);
  });
}

void PandaServer::request_file(JobRuntime& rt, dms::FileId file,
                               dms::Activity activity) {
  const grid::SiteId site = rt.job.computing_site;
  const std::uint64_t key = staging_key(file, site);

  auto it = staging_waiters_.find(key);
  if (it != staging_waiters_.end()) {
    // Another job already requested this file to this site: share the
    // in-flight transfer instead of duplicating it.
    it->second.waiters.push_back(rt.job.pandaid);
    ++stats_.shared_stage_hits;
    if (it->second.transfer_id != 0) {
      if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
        flows->link_transfer(static_cast<std::int64_t>(rt.job.pandaid),
                             it->second.transfer_id, scheduler_.now(),
                             /*shared=*/true);
      }
    }
    return;
  }
  staging_waiters_.emplace(key, StagingEntry{0, {rt.job.pandaid}});

  const dms::RseId source =
      selector_.select_source(file, site, scheduler_.now());
  if (source == dms::kNoRse) {
    // No replica anywhere: resolve immediately as a staging failure.
    scheduler_.schedule_after(0, [this, key, file] {
      auto waiters_it = staging_waiters_.find(key);
      if (waiters_it == staging_waiters_.end()) return;
      std::vector<JobId> waiters = std::move(waiters_it->second.waiters);
      staging_waiters_.erase(waiters_it);
      for (JobId id : waiters) on_stage_done(id, file, /*success=*/false);
    });
    return;
  }

  dms::TransferRequest req;
  req.file = file;
  req.size_bytes = catalog_.file(file).size_bytes;
  req.src = rses_.rse(source).site;
  req.dst = site;
  req.dst_rse = rses_.disk_at(site);
  req.activity = activity;
  req.jeditaskid = rt.job.jeditaskid;
  req.pandaid = rt.job.pandaid;
  req.on_complete = [this, key, file](const dms::TransferOutcome& outcome) {
    auto waiters_it = staging_waiters_.find(key);
    if (waiters_it == staging_waiters_.end()) return;
    std::vector<JobId> waiters = std::move(waiters_it->second.waiters);
    staging_waiters_.erase(waiters_it);
    for (JobId id : waiters) on_stage_done(id, file, outcome.success);
  };
  const std::uint64_t transfer_id = engine_.submit(std::move(req));
  if (auto entry = staging_waiters_.find(key); entry != staging_waiters_.end()) {
    entry->second.transfer_id = transfer_id;
  }
  ++stats_.stage_in_transfers;
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->link_transfer(static_cast<std::int64_t>(rt.job.pandaid),
                         transfer_id, scheduler_.now(), /*shared=*/false);
  }
}

void PandaServer::prefetch_file(const Job& job, dms::FileId file,
                                dms::Activity activity) {
  const grid::SiteId site = job.computing_site;
  const std::uint64_t key = staging_key(file, site);
  if (staging_waiters_.contains(key)) return;  // already in flight
  staging_waiters_.emplace(key, StagingEntry{});

  const dms::RseId source =
      selector_.select_source(file, site, scheduler_.now());
  if (source == dms::kNoRse) {
    staging_waiters_.erase(key);
    return;
  }

  dms::TransferRequest req;
  req.file = file;
  req.size_bytes = catalog_.file(file).size_bytes;
  req.src = rses_.rse(source).site;
  req.dst = site;
  req.dst_rse = rses_.disk_at(site);
  req.activity = activity;
  req.jeditaskid = job.jeditaskid;  // Harvester acts for the task
  req.pandaid = -1;
  req.on_complete = [this, key, file](const dms::TransferOutcome& outcome) {
    auto waiters_it = staging_waiters_.find(key);
    if (waiters_it == staging_waiters_.end()) return;
    std::vector<JobId> waiters = std::move(waiters_it->second.waiters);
    staging_waiters_.erase(waiters_it);
    // Jobs submitted after the prefetch began may have joined as waiters.
    for (JobId id : waiters) on_stage_done(id, file, outcome.success);
  };
  const std::uint64_t transfer_id = engine_.submit(std::move(req));
  if (auto entry = staging_waiters_.find(key); entry != staging_waiters_.end()) {
    entry->second.transfer_id = transfer_id;
  }
  ++stats_.prefetch_transfers;
}

void PandaServer::on_stage_done(JobId job, dms::FileId /*file*/,
                                bool success) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return;
  JobRuntime& rt = *it->second;
  if (rt.pending_stage > 0) --rt.pending_stage;
  if (!success) rt.stage_failed = true;
  // Sequential pilot: chain the next download.  The watchdog may have
  // already released the job; the pilot keeps pulling the remaining
  // files regardless (they overlap execution — the Fig. 11 pattern).
  if (!rt.stage_queue.empty()) {
    const dms::FileId next = rt.stage_queue.front();
    rt.stage_queue.pop_front();
    request_file(rt, next, rt.stage_activity);
    return;
  }
  if (rt.pending_stage == 0 && !rt.queued_or_later) {
    rt.watchdog.cancel();
    rt.staging_completed_at = scheduler_.now();
    proceed_to_queue(rt);
  }
}

void PandaServer::proceed_to_queue(JobRuntime& rt) {
  rt.queued_or_later = true;
  rt.job.status = JobStatus::kQueued;
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("job_state", scheduler_.now(),
                         static_cast<std::int64_t>(rt.job.pandaid))
                  .field("state", "queued")
                  .field("task", rt.job.jeditaskid)
                  .field("site", rt.job.computing_site)
                  .field("attempt", rt.job.attempt)
                  .field("watchdog_release", rt.released_by_watchdog));
  }
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->queue_enter(static_cast<std::int64_t>(rt.job.pandaid),
                       scheduler_.now(), rt.released_by_watchdog);
  }
  const JobId id = rt.job.pandaid;
  queues_.request_slot(
      rt.job.computing_site,
      [this, id] {
        auto it = jobs_.find(id);
        if (it == jobs_.end()) return;
        start_execution(*it->second);
      },
      rt.job.priority);
}

void PandaServer::start_execution(JobRuntime& rt) {
  rt.job.status = JobStatus::kRunning;
  rt.job.start_time = scheduler_.now();
  emit_job_state(rt.job, "running", scheduler_.now());
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->run_begin(static_cast<std::int64_t>(rt.job.pandaid),
                     scheduler_.now());
  }

  // Direct IO: open the streams now; they run concurrently with the
  // payload (Table 1's "Analysis Download Direct IO" activity).  The
  // streams do not create replicas.
  for (dms::FileId f : rt.direct_io_files) {
    const dms::RseId source =
        selector_.select_source(f, rt.job.computing_site, scheduler_.now());
    if (source == dms::kNoRse) {
      rt.direct_io_failed = true;
      continue;
    }
    dms::TransferRequest req;
    req.file = f;
    req.size_bytes = catalog_.file(f).size_bytes;
    req.src = rses_.rse(source).site;
    req.dst = rt.job.computing_site;
    req.dst_rse = dms::kNoRse;
    req.activity = dms::Activity::kAnalysisDownloadDirectIO;
    req.jeditaskid = rt.job.jeditaskid;
    req.pandaid = rt.job.pandaid;
    const JobId id = rt.job.pandaid;
    req.on_complete = [this, id](const dms::TransferOutcome& outcome) {
      if (outcome.success) return;
      auto it = jobs_.find(id);
      if (it != jobs_.end()) it->second->direct_io_failed = true;
    };
    const std::uint64_t transfer_id = engine_.submit(std::move(req));
    if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
      flows->link_transfer(static_cast<std::int64_t>(id), transfer_id,
                           scheduler_.now(), /*shared=*/false);
    }
  }

  const grid::Site& site = topology_.site(rt.job.computing_site);
  double exec_ms = static_cast<double>(rt.job.base_exec_ms) /
                   std::max(site.cpu_speed, 0.1) *
                   rng_.lognormal_median(1.0, params_.walltime_sigma);
  // Payloads with failed stage-ins abort early.
  if (rt.stage_failed) exec_ms *= 0.1;
  const JobId id = rt.job.pandaid;
  scheduler_.schedule_after(static_cast<util::SimDuration>(exec_ms),
                            [this, id] {
                              auto it = jobs_.find(id);
                              if (it == jobs_.end()) return;
                              finish_execution(*it->second);
                            });
}

void PandaServer::finish_execution(JobRuntime& rt) {
  const grid::Site& site = topology_.site(rt.job.computing_site);
  double failure_prob = site.base_failure_prob;
  std::int32_t error_code = errors::kExecutionFailure;

  if (rt.stage_failed) {
    failure_prob += params_.stage_fail_job_prob;
    error_code = errors::kStageInTimeout;
  } else if (rt.released_by_watchdog) {
    // Staging spanned into execution (Fig. 11): the payload raced its
    // own inputs; Overlay-style failures dominate this population.
    failure_prob += params_.overlay_failure_prob;
    error_code = errors::kOverlay;
  } else if (rt.direct_io_failed) {
    failure_prob += 0.5;
    error_code = errors::kOverlay;
  } else {
    // Routine failures draw a generic grid error.
    static constexpr std::int32_t kRoutine[] = {
        errors::kExecutionFailure, errors::kLostHeartbeat,
        errors::kSiteServiceError};
    error_code = kRoutine[rng_.uniform_index(3)];
  }

  // Staging-stress hazard: slow staging relative to the queue wait marks
  // a stressed storage path that also endangers the payload.
  const util::SimDuration queuing = rt.job.queuing_time();
  if (rt.staging_completed_at != util::kNever &&
      queuing > params_.stress_min_queue) {
    const double share =
        static_cast<double>(rt.staging_completed_at - rt.job.creation_time) /
        static_cast<double>(queuing);
    if (share > params_.stress_share_threshold) {
      failure_prob += params_.stress_failure_prob;
      if (error_code == errors::kExecutionFailure ||
          error_code == errors::kSiteServiceError) {
        error_code = errors::kLostHeartbeat;
      }
    }
  }

  const bool failed = rng_.bernoulli(std::min(failure_prob, 0.95));
  begin_stage_out(rt, failed, failed ? error_code : errors::kNone);
}

void PandaServer::begin_stage_out(JobRuntime& rt, bool payload_failed,
                                  std::int32_t error_code) {
  const grid::SiteId site = rt.job.computing_site;
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->stage_out_begin(static_cast<std::int64_t>(rt.job.pandaid),
                           scheduler_.now());
  }

  if (!payload_failed) {
    // Outputs land on the local RSE first; local writes are storage
    // operations, not Rucio transfer events.
    const dms::RseId local = rses_.disk_at(site);
    if (local != dms::kNoRse) {
      for (dms::FileId f : rt.job.output_files) {
        replicas_.add_replica(f, local);
      }
    }

    const double p_upload = rt.job.kind == JobKind::kUserAnalysis
                                ? params_.p_analysis_upload
                                : params_.p_production_upload;
    if (!rt.job.output_files.empty() && rng_.bernoulli(p_upload)) {
      // Export destination: a Tier-1 (production aggregation) or, for
      // analysis, any T1/T2 "home" site distinct from the computing one.
      std::vector<grid::SiteId> candidates =
          topology_.sites_of_tier(grid::Tier::kT1);
      if (rt.job.kind == JobKind::kUserAnalysis) {
        auto t2 = topology_.sites_of_tier(grid::Tier::kT2);
        candidates.insert(candidates.end(), t2.begin(), t2.end());
      }
      std::erase(candidates, site);
      if (!candidates.empty()) {
        const grid::SiteId dst =
            candidates[rng_.uniform_index(candidates.size())];
        const dms::Activity activity =
            rt.job.kind == JobKind::kUserAnalysis
                ? dms::Activity::kAnalysisUpload
                : dms::Activity::kProductionUpload;
        const JobId id = rt.job.pandaid;
        for (dms::FileId f : rt.job.output_files) {
          dms::TransferRequest req;
          req.file = f;
          req.size_bytes = catalog_.file(f).size_bytes;
          req.src = site;
          req.dst = dst;
          req.dst_rse = rses_.disk_at(dst);
          req.activity = activity;
          req.jeditaskid = rt.job.jeditaskid;
          req.pandaid = rt.job.pandaid;
          req.on_complete = [this, id](const dms::TransferOutcome& outcome) {
            auto it = jobs_.find(id);
            if (it == jobs_.end()) return;
            JobRuntime& runtime = *it->second;
            if (!outcome.success) runtime.upload_failed = true;
            if (runtime.pending_uploads > 0) --runtime.pending_uploads;
            if (runtime.pending_uploads == 0) {
              finalize_job(runtime, runtime.upload_failed,
                           runtime.upload_failed ? errors::kStageOutFailure
                                                 : errors::kNone);
            }
          };
          const std::uint64_t transfer_id = engine_.submit(std::move(req));
          if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
            flows->link_transfer(static_cast<std::int64_t>(id), transfer_id,
                                 scheduler_.now(), /*shared=*/false);
          }
          ++rt.pending_uploads;
          ++stats_.upload_transfers;
        }
        if (rt.pending_uploads > 0) return;  // finalize after stage-out
      }
    }
  }

  // No stage-out transfers: close the record after a bookkeeping delay.
  const JobId id = rt.job.pandaid;
  scheduler_.schedule_after(
      params_.finalize_delay, [this, id, payload_failed, error_code] {
        auto it = jobs_.find(id);
        if (it == jobs_.end()) return;
        finalize_job(*it->second, payload_failed, error_code);
      });
}

void PandaServer::finalize_job(JobRuntime& rt, bool failed,
                               std::int32_t error_code) {
  rt.job.end_time = scheduler_.now();
  rt.job.status = failed ? JobStatus::kFailed : JobStatus::kFinished;
  rt.job.error_code = failed ? error_code : errors::kNone;
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("job_state", scheduler_.now(),
                         static_cast<std::int64_t>(rt.job.pandaid))
                  .field("state", failed ? "failed" : "finished")
                  .field("task", rt.job.jeditaskid)
                  .field("site", rt.job.computing_site)
                  .field("attempt", rt.job.attempt)
                  .field("error", rt.job.error_code));
  }
  if (obs::FlowTracker* flows = obs::FlowTracker::installed()) {
    flows->end_flow(static_cast<std::int64_t>(rt.job.pandaid),
                    scheduler_.now(), failed, rt.job.error_code);
  }
  queues_.release_slot(rt.job.computing_site);

  if (failed) {
    ++stats_.failed;
  } else {
    ++stats_.finished;
  }

  // Every attempt leaves a job record, retried or not.
  if (hooks_.on_job_complete) hooks_.on_job_complete(rt.job);

  const bool retry = failed && rt.job.attempt < params_.max_job_attempts &&
                     rng_.bernoulli(params_.p_retry);
  if (retry) {
    // Resubmit as a fresh pandaid; brokerage runs again, so the retry
    // may land at a different site — "transfer-related error patterns
    // may shift when alternative sites are used" (paper §5.3).
    Job resubmit = rt.job;
    resubmit.pandaid = next_retry_id_++;
    resubmit.attempt = rt.job.attempt + 1;
    resubmit.status = JobStatus::kPending;
    resubmit.error_code = errors::kNone;
    resubmit.start_time = util::kNever;
    resubmit.end_time = util::kNever;
    ++stats_.retries;
    jobs_.erase(rt.job.pandaid);
    submit_job(std::move(resubmit));
    return;  // the task outcome rides on the retry
  }

  Task& task = tasks_.at(rt.job.jeditaskid);
  if (failed) {
    ++task.failed_jobs;
  } else {
    ++task.completed_jobs;
  }
  if (task.all_jobs_done()) {
    task.status =
        task.failed_jobs > 0 ? TaskStatus::kFailed : TaskStatus::kDone;
    if (hooks_.on_task_complete) hooks_.on_task_complete(task);
  }

  jobs_.erase(rt.job.pandaid);
}

void PandaServer::set_injector(fault::Injector& injector) {
  injector.subscribe([this](const fault::FaultWindow& window, bool begin) {
    if (begin && window.kind == fault::FaultKind::kSiteOutage) {
      on_site_outage(window.site);
    }
  });
}

void PandaServer::on_site_outage(grid::SiteId site) {
  // Running jobs at the dead site lose their pilot.  Collect ids first
  // (finalize_job mutates jobs_), sorted so the kill order — and the
  // RNG draws of the retry path — is deterministic.
  std::vector<JobId> doomed;
  for (const auto& [id, rt] : jobs_) {
    if (rt->job.computing_site == site &&
        rt->job.status == JobStatus::kRunning) {
      doomed.push_back(id);
    }
  }
  std::sort(doomed.begin(), doomed.end());
  for (JobId id : doomed) {
    // Deferred a tick: the injector's transition hook chain should not
    // reenter brokerage/transfer state mid-update.
    scheduler_.schedule_after(0, [this, id] {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) return;
      JobRuntime& rt = *it->second;
      if (rt.job.status != JobStatus::kRunning) return;
      ++stats_.site_outage_kills;
      finalize_job(rt, /*failed=*/true, errors::kSiteOutage);
    });
  }
}

}  // namespace pandarus::wms
