// Brokerage: assigning jobs to sites (paper §2.1, §3.1).
//
// PanDA's production heuristic is *data locality*: "in principle, it
// assigns computing jobs to the site that already hosts the required
// input data".  The paper's central observation is that this heuristic,
// locally optimal for the network, can overload individual sites and
// shift failures to the compute layer.  Two alternative policies are
// provided for the co-optimization ablation (bench_ablation_brokerage):
// a purely load-aware policy and a hybrid that trades resident bytes
// against expected queue wait.
#pragma once

#include <cstdint>

#include "dms/catalog.hpp"
#include "fault/injector.hpp"
#include "grid/topology.hpp"
#include "util/rng.hpp"
#include "wms/job.hpp"
#include "wms/site_queue.hpp"

namespace pandarus::wms {

enum class BrokeragePolicy : std::uint8_t {
  kDataLocality = 0,  ///< maximize input bytes already on disk at the site
  kLoadAware = 1,     ///< minimize expected queue wait
  kHybrid = 2,        ///< locality score discounted by load
};

[[nodiscard]] const char* policy_name(BrokeragePolicy policy) noexcept;

class Brokerage {
 public:
  struct Params {
    BrokeragePolicy policy = BrokeragePolicy::kDataLocality;
    /// Hybrid: ms of expected wait equivalent to one GB of locality.
    double wait_per_gb_ms = 2'000.0;
    /// Weight of tape-only copies in the locality score (the job must
    /// stage them locally, so they are worth less than disk bytes).
    double tape_locality_weight = 0.4;
    /// Production jobs only run at T0/T1/T2 sites.
    bool production_excludes_t3 = true;
  };

  Brokerage(const grid::Topology& topology, const dms::FileCatalog& catalog,
            const dms::ReplicaCatalog& replicas, Params params);

  /// Chooses the computing site for `job` given current queue state.
  /// Ties (e.g. no input data anywhere) break toward bigger, less busy
  /// sites with deterministic randomness from `rng`.
  [[nodiscard]] grid::SiteId choose_site(const Job& job,
                                         const SiteQueues& queues,
                                         util::Rng& rng) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Sites inside an outage fault window are skipped during selection.
  /// If *every* eligible site is down, brokerage falls back to ignoring
  /// outages (the job will queue and fail like it would in production).
  void set_injector(const fault::Injector& injector) noexcept {
    injector_ = &injector;
  }

 private:
  [[nodiscard]] bool eligible(const grid::Site& site, const Job& job) const;
  /// `scored` (optional) receives the number of candidate sites scored.
  [[nodiscard]] grid::SiteId pick(const Job& job, const SiteQueues& queues,
                                  util::Rng& rng, bool skip_down_sites,
                                  std::int64_t* scored = nullptr) const;
  /// Locality score in bytes: disk replicas at full weight, tape-only
  /// residency discounted by tape_locality_weight.
  [[nodiscard]] double locality_bytes(const Job& job, grid::SiteId site) const;

  const grid::Topology* topology_;
  const dms::FileCatalog* catalog_;
  const dms::ReplicaCatalog* replicas_;
  Params params_;
  const fault::Injector* injector_ = nullptr;
};

}  // namespace pandarus::wms
