// Arms a fault::Plan onto the discrete-event scheduler and answers
// point-in-time "is this piece of infrastructure healthy?" queries.
//
// Each window becomes two scheduler events (begin, end), so fault
// activations interleave with the rest of the simulation in the same
// deterministic (time, insertion-sequence) order as everything else —
// a faulted campaign replays bit-for-bit from its seed and plan.
//
// Consumers either poll the queries (the transfer engine checks
// link_blocked() before admitting work) or subscribe() to transitions
// (the engine aborts in-flight attempts on a blacked-out link; the
// PanDA server fails jobs whose computing site died).  State is updated
// *before* subscribers run, so a hook observing the injector sees the
// post-transition world.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "sim/scheduler.hpp"

namespace pandarus::fault {

class Injector {
 public:
  explicit Injector(sim::Scheduler& scheduler);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Schedules begin/end events for every window of the plan.  Call once
  /// before the campaign runs; additional calls append further windows.
  void arm(const Plan& plan);

  /// Registers a transition hook, called at each window begin
  /// (`active == true`) and end (`active == false`).
  using TransitionHook = std::function<void(const FaultWindow&, bool active)>;
  void subscribe(TransitionHook hook);

  /// --- point-in-time queries -----------------------------------------
  [[nodiscard]] bool site_down(grid::SiteId site) const;
  /// Replica registration at the site fails (storage outage or full
  /// site outage).
  [[nodiscard]] bool storage_down(grid::SiteId site) const;
  /// The link admits no transfers: an active blackout, or either
  /// endpoint inside a site outage.
  [[nodiscard]] bool link_blocked(grid::SiteId src, grid::SiteId dst) const;
  /// Product of active brownout factors on the link (1.0 when healthy).
  [[nodiscard]] double link_capacity_factor(grid::SiteId src,
                                            grid::SiteId dst) const;
  /// Additive abort-probability boost from active service brownouts.
  [[nodiscard]] double abort_boost() const noexcept { return abort_boost_; }
  /// Latest end time of the windows currently blocking the link — the
  /// earliest instant the blockage can lift.  now() when not blocked.
  [[nodiscard]] util::SimTime blocked_until(grid::SiteId src,
                                            grid::SiteId dst) const;

  [[nodiscard]] std::size_t active_count() const noexcept {
    return active_.size();
  }

  /// Deterministic fingerprint of the injector's mutable state (armed
  /// windows, which are active, transition counts); two runs of the
  /// same campaign agree at equal sim times (scenario::Checkpoint).
  [[nodiscard]] std::uint64_t state_digest() const;

  struct Stats {
    std::uint64_t armed = 0;
    std::uint64_t begun = 0;
    std::uint64_t ended = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void transition(std::size_t index, bool begin);
  void emit_event(const FaultWindow& window, std::size_t index,
                  bool begin) const;

  sim::Scheduler& scheduler_;
  std::vector<FaultWindow> windows_;
  std::vector<std::size_t> active_;  ///< indices into windows_
  /// Multiplicity counters so overlapping windows compose correctly.
  std::unordered_map<grid::SiteId, int> down_sites_;
  std::unordered_map<grid::SiteId, int> storage_down_;
  std::unordered_map<grid::LinkKey, int, grid::LinkKeyHash> blacked_links_;
  double abort_boost_ = 0.0;
  Stats stats_;
  std::vector<TransitionHook> hooks_;
};

}  // namespace pandarus::fault
