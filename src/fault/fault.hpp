// Deterministic infrastructure fault model.
//
// The paper's most striking phenomena are failure *correlations* — case
// study 4's cross-site failure clusters, Fig. 11's stalled transfers
// outliving the staging watchdog, Fig. 12's redundant re-staging after
// lost registrations — none of which a per-attempt coin flip can
// produce.  A fault::Plan is a timeline of typed windows during which a
// piece of infrastructure misbehaves:
//
//   kSiteOutage      the site is gone: every link touching it is dead,
//                    its storage stops registering replicas, and running
//                    jobs there fail (wms::errors::kSiteOutage);
//   kLinkBlackout    one directional link admits nothing; active
//                    attempts on it abort immediately;
//   kLinkBrownout    the link keeps working at `capacity_factor` of its
//                    LoadModel-derived capacity;
//   kStorageOutage   replica registration at the site fails (transfers
//                    still move bytes — the Fig. 12 lost-registration
//                    pathology, now clustered in time);
//   kServiceBrownout the transfer service itself degrades: every
//                    attempt's abort probability rises by `abort_boost`.
//
// Windows are either constructed explicitly or sampled from seeded
// per-day rates (Plan::sample).  Either way the timeline is plain data,
// armed onto the discrete-event scheduler by fault::Injector, so a
// faulted campaign is exactly as reproducible as a healthy one.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/link.hpp"
#include "grid/topology.hpp"
#include "util/time.hpp"

namespace pandarus::fault {

enum class FaultKind : std::uint8_t {
  kSiteOutage = 0,
  kLinkBlackout = 1,
  kLinkBrownout = 2,
  kStorageOutage = 3,
  kServiceBrownout = 4,
};
inline constexpr std::size_t kFaultKindCount = 5;

[[nodiscard]] const char* kind_name(FaultKind kind) noexcept;

struct FaultWindow {
  FaultKind kind = FaultKind::kLinkBrownout;
  util::SimTime begin = 0;
  util::SimTime end = 0;
  /// Target of site-scoped faults (kSiteOutage, kStorageOutage).
  grid::SiteId site = grid::kUnknownSite;
  /// Target of link-scoped faults (kLinkBlackout, kLinkBrownout).
  grid::LinkKey link{};
  /// kLinkBrownout: remaining fraction of the link's effective capacity.
  double capacity_factor = 1.0;
  /// kServiceBrownout: additive per-attempt abort probability.
  double abort_boost = 0.0;

  [[nodiscard]] bool contains(util::SimTime t) const noexcept {
    return t >= begin && t < end;
  }
};

/// An ordered timeline of fault windows.  Plain data: build it by hand,
/// sample it, or concatenate both.
struct Plan {
  std::vector<FaultWindow> windows;

  /// Seeded-rate sampling knobs.  All rates are per simulated day and
  /// scale linearly with `intensity` (0 disables sampling entirely), so
  /// a chaos sweep is a one-knob experiment.
  struct SampleParams {
    double intensity = 0.0;
    double site_outages_per_day = 0.25;
    double link_blackouts_per_day = 1.0;
    double link_brownouts_per_day = 2.0;
    double storage_outages_per_day = 0.5;
    double service_brownouts_per_day = 0.25;
    /// Mean duration of outage-class windows (exponential).
    util::SimDuration outage_mean = util::minutes(45);
    /// Mean duration of brownout-class windows (exponential).
    util::SimDuration brownout_mean = util::hours(2);
    double brownout_factor_min = 0.05;
    double brownout_factor_max = 0.4;
    double service_abort_boost = 0.25;
  };

  /// Draws a timeline over [0, horizon) from the seeded rates.  Window
  /// ends are clamped to `horizon` so every window resolves inside the
  /// campaign's drain grace period.  Site outages never target the T0
  /// (taking the anchor site down mostly measures the topology, not the
  /// recovery machinery).  Deterministic: equal arguments, equal plan.
  [[nodiscard]] static Plan sample(const SampleParams& params,
                                   const grid::Topology& topology,
                                   util::SimTime horizon, std::uint64_t seed);

  void add(FaultWindow window) { windows.push_back(window); }
  [[nodiscard]] bool empty() const noexcept { return windows.empty(); }
};

}  // namespace pandarus::fault
