#include "fault/injector.hpp"

#include <algorithm>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace pandarus::fault {
namespace {

struct InjectorMetrics {
  obs::Counter& begun = obs::Registry::global().counter(
      "pandarus_fault_windows_total", "Fault windows that began");
  obs::Gauge& active = obs::Registry::global().gauge(
      "pandarus_fault_windows_active", "Fault windows currently active");

  static InjectorMetrics& get() {
    static InjectorMetrics metrics;
    return metrics;
  }
};

}  // namespace

Injector::Injector(sim::Scheduler& scheduler) : scheduler_(scheduler) {}

void Injector::arm(const Plan& plan) {
  for (const FaultWindow& window : plan.windows) {
    if (window.end <= window.begin) continue;
    const std::size_t index = windows_.size();
    windows_.push_back(window);
    ++stats_.armed;
    scheduler_.schedule_at(window.begin,
                           [this, index] { transition(index, true); });
    scheduler_.schedule_at(window.end,
                           [this, index] { transition(index, false); });
  }
}

void Injector::subscribe(TransitionHook hook) {
  hooks_.push_back(std::move(hook));
}

void Injector::transition(std::size_t index, bool begin) {
  const FaultWindow& window = windows_[index];
  const int delta = begin ? 1 : -1;
  switch (window.kind) {
    case FaultKind::kSiteOutage:
      down_sites_[window.site] += delta;
      storage_down_[window.site] += delta;
      break;
    case FaultKind::kLinkBlackout:
      blacked_links_[window.link] += delta;
      break;
    case FaultKind::kLinkBrownout:
      break;  // factor is derived from the active window list
    case FaultKind::kStorageOutage:
      storage_down_[window.site] += delta;
      break;
    case FaultKind::kServiceBrownout:
      abort_boost_ = std::max(0.0, abort_boost_ + delta * window.abort_boost);
      break;
  }
  if (begin) {
    active_.push_back(index);
    ++stats_.begun;
    InjectorMetrics::get().begun.inc();
    InjectorMetrics::get().active.add(1);
    auto warn = util::log_warning();
    warn << "fault window begins: " << kind_name(window.kind);
    switch (window.kind) {
      case FaultKind::kSiteOutage:
      case FaultKind::kStorageOutage:
        warn << " site=" << window.site;
        break;
      case FaultKind::kLinkBlackout:
      case FaultKind::kLinkBrownout:
        warn << " link=" << window.link.src << "->" << window.link.dst;
        break;
      case FaultKind::kServiceBrownout:
        warn << " abort_boost=" << window.abort_boost;
        break;
    }
    warn << " until t=" << window.end;
  } else {
    active_.erase(std::remove(active_.begin(), active_.end(), index),
                  active_.end());
    ++stats_.ended;
    InjectorMetrics::get().active.add(-1);
  }
  emit_event(window, index, begin);
  for (const TransitionHook& hook : hooks_) hook(window, begin);
}

void Injector::emit_event(const FaultWindow& window, std::size_t index,
                          bool begin) const {
  if (obs::EventLog* log = obs::EventLog::installed()) {
    log->emit(obs::Event("fault_window", scheduler_.now(),
                         static_cast<std::int64_t>(index))
                  .field("fault", kind_name(window.kind))
                  .field("phase", begin ? "begin" : "end")
                  .field("site", window.site)
                  .field("src", window.link.src)
                  .field("dst", window.link.dst)
                  .field("begin", window.begin)
                  .field("end", window.end)
                  .field("capacity_factor", window.capacity_factor)
                  .field("abort_boost", window.abort_boost));
  }
}

bool Injector::site_down(grid::SiteId site) const {
  const auto it = down_sites_.find(site);
  return it != down_sites_.end() && it->second > 0;
}

bool Injector::storage_down(grid::SiteId site) const {
  const auto it = storage_down_.find(site);
  return it != storage_down_.end() && it->second > 0;
}

bool Injector::link_blocked(grid::SiteId src, grid::SiteId dst) const {
  if (site_down(src) || site_down(dst)) return true;
  const auto it = blacked_links_.find(grid::LinkKey{src, dst});
  return it != blacked_links_.end() && it->second > 0;
}

double Injector::link_capacity_factor(grid::SiteId src,
                                      grid::SiteId dst) const {
  double factor = 1.0;
  for (const std::size_t index : active_) {
    const FaultWindow& w = windows_[index];
    if (w.kind == FaultKind::kLinkBrownout && w.link.src == src &&
        w.link.dst == dst) {
      factor *= w.capacity_factor;
    }
  }
  return factor;
}

util::SimTime Injector::blocked_until(grid::SiteId src,
                                      grid::SiteId dst) const {
  util::SimTime until = scheduler_.now();
  for (const std::size_t index : active_) {
    const FaultWindow& w = windows_[index];
    const bool blocks =
        (w.kind == FaultKind::kSiteOutage &&
         (w.site == src || w.site == dst)) ||
        (w.kind == FaultKind::kLinkBlackout && w.link.src == src &&
         w.link.dst == dst);
    if (blocks) until = std::max(until, w.end);
  }
  return until;
}

std::uint64_t Injector::state_digest() const {
  std::uint64_t h =
      util::hash_mix(windows_.size(), stats_.begun, stats_.ended);
  // active_ holds activation-order indices — deterministic, since
  // transitions fire in scheduler (time, seq) order.
  for (const std::size_t index : active_) {
    const FaultWindow& w = windows_[index];
    h = util::hash_mix(h, index, static_cast<std::uint64_t>(w.kind));
    h = util::hash_mix(h, static_cast<std::uint64_t>(w.begin),
                       static_cast<std::uint64_t>(w.end));
    h = util::hash_mix(h, (static_cast<std::uint64_t>(w.link.src) << 32) |
                              (static_cast<std::uint64_t>(w.site) &
                               0xFFFFFFFFu));
  }
  return h;
}

}  // namespace pandarus::fault
