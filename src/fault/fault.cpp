#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace pandarus::fault {
namespace {

/// Exponential duration with mean `mean`, floored at two minutes so a
/// window is always long enough to be observable at sampler resolution.
util::SimDuration draw_duration(util::Rng& rng, util::SimDuration mean) {
  const double ms = rng.exponential(static_cast<double>(mean));
  return std::max(util::minutes(2), static_cast<util::SimDuration>(ms));
}

util::SimTime draw_begin(util::Rng& rng, util::SimTime horizon) {
  return rng.uniform_int(0, std::max<util::SimTime>(horizon - 1, 0));
}

}  // namespace

const char* kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kSiteOutage: return "site_outage";
    case FaultKind::kLinkBlackout: return "link_blackout";
    case FaultKind::kLinkBrownout: return "link_brownout";
    case FaultKind::kStorageOutage: return "storage_outage";
    case FaultKind::kServiceBrownout: return "service_brownout";
  }
  return "?";
}

Plan Plan::sample(const SampleParams& params, const grid::Topology& topology,
                  util::SimTime horizon, std::uint64_t seed) {
  Plan plan;
  if (params.intensity <= 0.0 || horizon <= 0) return plan;
  util::Rng rng(seed);
  const double days = util::to_days(horizon);

  // Candidate targets: all sites for storage faults and link endpoints,
  // non-T0 sites for full outages.
  std::vector<grid::SiteId> sites;
  std::vector<grid::SiteId> outage_sites;
  for (const grid::Site& s : topology.sites()) {
    sites.push_back(s.id);
    if (s.tier != grid::Tier::kT0) outage_sites.push_back(s.id);
  }
  if (sites.size() < 2) return plan;

  const auto count = [&](double per_day) {
    return rng.poisson(per_day * params.intensity * days);
  };
  const auto pick_link = [&] {
    const grid::SiteId src = sites[rng.uniform_index(sites.size())];
    grid::SiteId dst = sites[rng.uniform_index(sites.size())];
    while (dst == src) dst = sites[rng.uniform_index(sites.size())];
    return grid::LinkKey{src, dst};
  };
  const auto clamp_window = [&](FaultWindow w) {
    w.end = std::min(w.end, horizon);
    if (w.end > w.begin) plan.windows.push_back(w);
  };

  for (std::uint64_t i = count(params.site_outages_per_day); i > 0; --i) {
    if (outage_sites.empty()) break;
    FaultWindow w;
    w.kind = FaultKind::kSiteOutage;
    w.site = outage_sites[rng.uniform_index(outage_sites.size())];
    w.begin = draw_begin(rng, horizon);
    w.end = w.begin + draw_duration(rng, params.outage_mean);
    clamp_window(w);
  }
  for (std::uint64_t i = count(params.link_blackouts_per_day); i > 0; --i) {
    FaultWindow w;
    w.kind = FaultKind::kLinkBlackout;
    w.link = pick_link();
    w.begin = draw_begin(rng, horizon);
    w.end = w.begin + draw_duration(rng, params.outage_mean);
    clamp_window(w);
  }
  for (std::uint64_t i = count(params.link_brownouts_per_day); i > 0; --i) {
    FaultWindow w;
    w.kind = FaultKind::kLinkBrownout;
    w.link = pick_link();
    w.capacity_factor =
        rng.uniform(params.brownout_factor_min, params.brownout_factor_max);
    w.begin = draw_begin(rng, horizon);
    w.end = w.begin + draw_duration(rng, params.brownout_mean);
    clamp_window(w);
  }
  for (std::uint64_t i = count(params.storage_outages_per_day); i > 0; --i) {
    FaultWindow w;
    w.kind = FaultKind::kStorageOutage;
    w.site = sites[rng.uniform_index(sites.size())];
    w.begin = draw_begin(rng, horizon);
    w.end = w.begin + draw_duration(rng, params.outage_mean);
    clamp_window(w);
  }
  for (std::uint64_t i = count(params.service_brownouts_per_day); i > 0; --i) {
    FaultWindow w;
    w.kind = FaultKind::kServiceBrownout;
    w.abort_boost = params.service_abort_boost;
    w.begin = draw_begin(rng, horizon);
    w.end = w.begin + draw_duration(rng, params.brownout_mean);
    clamp_window(w);
  }

  // Chronological order (stable on the deterministic draw order) so the
  // armed begin events fire in timeline order regardless of fault class.
  std::stable_sort(plan.windows.begin(), plan.windows.end(),
                   [](const FaultWindow& a, const FaultWindow& b) {
                     return a.begin < b.begin;
                   });
  return plan;
}

}  // namespace pandarus::fault
