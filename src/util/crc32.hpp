// CRC32 (IEEE 802.3, reflected) — the one integrity checksum used by
// every durable pandarus container: colstore chunk frames, campaign
// checkpoints, and the recovery tooling that validates both.  The
// streaming form (Crc32) lets writers checksum data they never hold in
// one buffer (the event log's published prefix grows day by day).
#pragma once

#include <cstdint>
#include <string_view>

namespace pandarus::util {

/// One-shot CRC32 of `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// Incremental CRC32: feed any byte split, value() is identical to the
/// one-shot form over the concatenation.
class Crc32 {
 public:
  void update(std::string_view data) noexcept;
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace pandarus::util
