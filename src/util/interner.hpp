// String interning: dense uint32 symbol ids for the repeated metadata
// attribute strings (lfn, dataset, proddblock, scope).
//
// The paper's §5.5 scalability concern is allocator- and hash-bound: the
// matching core used to hash multi-hundred-byte strings once per lookup
// and once per candidate comparison.  Interning each distinct string to
// a dense id at record-ingest time makes every later equality test one
// integer compare and every group-by a counting sort over [0, size()).
//
// Ids are assigned in first-intern order, so they are deterministic for
// a fixed ingest order, and two ids are equal iff the strings are equal
// (exactness is structural, not probabilistic: there is no hashing in
// the id itself).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pandarus::util {

/// Dense id assigned by an interner.  32 bits bound the distinct-string
/// population at 4G — far above any snapshot this system indexes.
using Symbol = std::uint32_t;

/// Sentinel for "never interned" (records that did not pass through a
/// MetadataStore).  Indexes treat it as matching nothing.
inline constexpr Symbol kNoSymbol = 0xFFFF'FFFFu;

class StringInterner {
 public:
  /// Returns the id of `text`, assigning the next dense id on first
  /// sight.  Amortized O(len): one hash of the string, no allocation on
  /// hits (heterogeneous lookup).
  Symbol intern(std::string_view text);

  /// Id of `text` if already interned, kNoSymbol otherwise.
  [[nodiscard]] Symbol find(std::string_view text) const noexcept;

  /// The string behind an id.  Valid for the interner's lifetime.
  [[nodiscard]] std::string_view view(Symbol id) const noexcept {
    return views_[id];
  }

  [[nodiscard]] std::size_t size() const noexcept { return views_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// Node-based map: key storage is pointer-stable, so views_ can alias
  /// the keys instead of owning a second copy of every string.
  std::unordered_map<std::string, Symbol, Hash, std::equal_to<>> ids_;
  std::vector<std::string_view> views_;
};

/// Dense ids for arbitrary integer-like keys (already-hashed tuples,
/// packed symbol pairs, file sizes).  Same exactness contract as
/// StringInterner: equal ids iff equal keys.
template <typename Key, typename Hash = std::hash<Key>>
class KeyInterner {
 public:
  Symbol intern(const Key& key) {
    const auto next = static_cast<Symbol>(ids_.size());
    return ids_.try_emplace(key, next).first->second;
  }

  [[nodiscard]] Symbol find(const Key& key) const noexcept {
    const auto it = ids_.find(key);
    return it == ids_.end() ? kNoSymbol : it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }

 private:
  std::unordered_map<Key, Symbol, Hash> ids_;
};

/// Packs two symbols into one KeyInterner<uint64_t> key.  Chaining pair
/// interns is how wider tuples get exact dense ids: ((a,b)->p, (p,c)->q)
/// assigns equal q iff (a,b,c) are pairwise equal.
[[nodiscard]] constexpr std::uint64_t pack_symbols(Symbol hi,
                                                   Symbol lo) noexcept {
  return (static_cast<std::uint64_t>(hi) << 32) |
         static_cast<std::uint64_t>(lo);
}

}  // namespace pandarus::util
