#include "util/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace pandarus::util {

std::string format_bytes(double bytes, int precision) {
  static constexpr std::array<const char*, 7> kUnits = {
      "B", "KB", "MB", "GB", "TB", "PB", "EB"};
  const bool negative = bytes < 0;
  double v = std::abs(bytes);
  std::size_t unit = 0;
  while (v >= 1000.0 && unit + 1 < kUnits.size()) {
    v /= 1000.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%.*f %s", negative ? "-" : "", precision,
                v, kUnits[unit]);
  return buf;
}

std::string format_rate(double bytes_per_sec, int precision) {
  char buf[64];
  const double mbps = bytes_per_sec / 1e6;
  if (mbps >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.*f GBps", precision, mbps / 1000.0);
  } else if (mbps >= 0.1) {
    std::snprintf(buf, sizeof buf, "%.*f MBps", precision, mbps);
  } else {
    std::snprintf(buf, sizeof buf, "%.*f KBps", precision,
                  bytes_per_sec / 1e3);
  }
  return buf;
}

namespace {

std::string with_separators(std::string digits) {
  // Insert ',' every three digits from the right.
  const auto first =
      digits.size() > 0 && (digits[0] == '-') ? std::size_t{1} : std::size_t{0};
  std::size_t i = digits.size();
  while (i > first + 3) {
    i -= 3;
    digits.insert(i, 1, ',');
  }
  return digits;
}

}  // namespace

std::string format_count(std::uint64_t n) {
  return with_separators(std::to_string(n));
}

std::string format_count(std::int64_t n) {
  return with_separators(std::to_string(n));
}

std::string format_percent(double fraction, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string format_fixed(double x, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  return buf;
}

}  // namespace pandarus::util
