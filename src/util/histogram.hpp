// Fixed-width and logarithmic histograms for distribution reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pandarus::util {

/// Linear histogram over [lo, hi) with `bins` equal-width buckets plus
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept;

  /// Count of samples with value < x (interpolating inside the bin that
  /// contains x); used for threshold sweeps.
  [[nodiscard]] double cumulative_below(double x) const noexcept;

  /// Compact multi-line ASCII rendering (one row per non-empty bin).
  [[nodiscard]] std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Log2 histogram for heavy-tailed positive quantities (file sizes,
/// durations): bucket i counts samples in [2^i, 2^(i+1)).
class Log2Histogram {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::string to_string(std::size_t max_width = 50) const;

 private:
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 70;
  std::vector<std::uint64_t> counts_ =
      std::vector<std::uint64_t>(kMaxExp - kMinExp, 0);
  std::uint64_t total_ = 0;
  std::uint64_t nonpositive_ = 0;
};

}  // namespace pandarus::util
